//! Umbrella crate for the GlueFL reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so examples and integration
//! tests can `use gluefl_suite::...`. See the individual crates for the
//! substance:
//!
//! * [`gluefl_core`] — strategies, simulator, metrics, theory.
//! * [`gluefl_ml`] — flat-parameter MLP + BatchNorm substrate.
//! * [`gluefl_data`] — synthetic non-IID federated datasets.
//! * [`gluefl_compress`] — STC, mask shifting, APF, error comp.
//! * [`gluefl_sampling`] — uniform/MD/sticky samplers.
//! * [`gluefl_net`] — bandwidth, device, availability simulation.
//! * [`gluefl_tensor`] — bitmasks, top-k, sparse updates.
//! * [`gluefl_telemetry`] — clocks, counters, phase spans, journal,
//!   text exposition, structured logging.
//! * [`gluefl_wire`] — framed binary wire codec for round messages.
//! * [`gluefl_transport`] — real-socket client/server round loop with
//!   streaming aggregation.

#![forbid(unsafe_code)]

pub use gluefl_compress as compress;
pub use gluefl_core as core;
pub use gluefl_data as data;
pub use gluefl_ml as ml;
pub use gluefl_net as net;
pub use gluefl_sampling as sampling;
pub use gluefl_telemetry as telemetry;
pub use gluefl_tensor as tensor;
pub use gluefl_transport as transport;
pub use gluefl_wire as wire;
