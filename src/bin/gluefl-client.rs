//! `gluefl-client`: one federated participant over TCP.
//!
//! ```text
//! gluefl-client --addr 127.0.0.1:PORT --id N [--strategy gluefl]
//!               [--clients 8] [--rounds 3] [--seed 42]
//! ```
//!
//! The config flags must match the server's — both sides derive the
//! dataset, model init, and training seeds from the same [`SimConfig`],
//! which is what makes the run bit-identical to the in-process
//! simulator.
//!
//! [`SimConfig`]: gluefl_suite::core::SimConfig

use gluefl_suite::transport::{run_client, smoke_config};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr: String = parse_flag(&args, "--addr", String::new());
    let id: usize = parse_flag(&args, "--id", usize::MAX);
    let strategy: String = parse_flag(&args, "--strategy", "gluefl".to_string());
    let clients: usize = parse_flag(&args, "--clients", 8);
    let rounds: u32 = parse_flag(&args, "--rounds", 3);
    let seed: u64 = parse_flag(&args, "--seed", 42);
    if addr.is_empty() || id == usize::MAX {
        eprintln!("usage: gluefl-client --addr HOST:PORT --id N [--strategy S] [--clients N] [--rounds R] [--seed S]");
        std::process::exit(2);
    }
    let cfg = smoke_config(&strategy, clients, rounds, seed);
    if let Err(e) = run_client(&addr, cfg, id) {
        eprintln!("client {id} failed: {e}");
        std::process::exit(1);
    }
    println!("client {id} done");
}
