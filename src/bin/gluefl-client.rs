//! `gluefl-client`: one federated participant over TCP.
//!
//! ```text
//! gluefl-client --addr 127.0.0.1:PORT --id N [--strategy gluefl]
//!               [--clients 8] [--rounds 3] [--seed 42]
//!               [--log-format text|json] [--log-level info]
//!               [--metrics-out FILE]
//! ```
//!
//! The config flags must match the server's — both sides derive the
//! dataset, model init, and training seeds from the same [`SimConfig`],
//! which is what makes the run bit-identical to the in-process
//! simulator. `--metrics-out` enables client-side telemetry (per-kind
//! byte counters, Train/Encode phase spans) and dumps the final
//! snapshot to a file.
//!
//! [`SimConfig`]: gluefl_suite::core::SimConfig

use gluefl_suite::telemetry::{Field, Level, LogFormat, Logger, Telemetry};
use gluefl_suite::transport::{run_client_traced, smoke_config};
use std::sync::Arc;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr: String = parse_flag(&args, "--addr", String::new());
    let id: usize = parse_flag(&args, "--id", usize::MAX);
    let strategy: String = parse_flag(&args, "--strategy", "gluefl".to_string());
    let clients: usize = parse_flag(&args, "--clients", 8);
    let rounds: u32 = parse_flag(&args, "--rounds", 3);
    let seed: u64 = parse_flag(&args, "--seed", 42);
    let format: LogFormat = parse_flag(&args, "--log-format", LogFormat::Text);
    let level: Level = parse_flag(&args, "--log-level", Level::Info);
    let metrics_out: String = parse_flag(&args, "--metrics-out", String::new());
    let log = Logger::stdout(level, format);
    if addr.is_empty() || id == usize::MAX {
        eprintln!(
            "usage: gluefl-client --addr HOST:PORT --id N [--strategy S] [--clients N] \
             [--rounds R] [--seed S] [--log-format text|json] [--log-level L] \
             [--metrics-out FILE]"
        );
        std::process::exit(2);
    }
    let tel = (!metrics_out.is_empty()).then(|| Arc::new(Telemetry::new()));
    let cfg = smoke_config(&strategy, clients, rounds, seed);
    if let Err(e) = run_client_traced(&addr, cfg, id, tel.clone()) {
        log.error(
            "client failed",
            &[
                ("id", Field::U64(id as u64)),
                ("error", Field::Str(&e.to_string())),
            ],
        );
        std::process::exit(1);
    }
    if let Some(tel) = &tel {
        let text = tel.snapshot().render_text();
        if let Err(e) = std::fs::write(&metrics_out, text) {
            log.error(
                "metrics write failed",
                &[
                    ("path", Field::Str(&metrics_out)),
                    ("error", Field::Str(&e.to_string())),
                ],
            );
            std::process::exit(1);
        }
    }
    log.info("client done", &[("id", Field::U64(id as u64))]);
}
