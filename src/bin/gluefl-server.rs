//! `gluefl-server`: orchestrate a real-socket federated run.
//!
//! ```text
//! gluefl-server [--addr 127.0.0.1:0] [--strategy gluefl] [--clients 8]
//!               [--rounds 3] [--seed 42] [--offer-timeout-secs 30]
//!               [--upload-timeout-secs 30]
//!               [--log-format text|json] [--log-level info]
//!               [--metrics-addr 127.0.0.1:0] [--metrics-out FILE]
//! ```
//!
//! Prints the bound address first (so scripts can launch clients against
//! port 0), then one structured log line per round, then the final
//! parameter checksum. `--metrics-addr` serves the Prometheus-style text
//! exposition over HTTP for the duration of the run; `--metrics-out`
//! dumps the final snapshot to a file. Either flag enables telemetry;
//! without them the round loop runs with telemetry compiled out of the
//! hot path entirely.

use gluefl_suite::telemetry::{Field, Level, LogFormat, Logger, Telemetry};
use gluefl_suite::transport::{smoke_config, Server, ServerConfig};
use std::io::{Read as _, Write as _};
use std::sync::Arc;
use std::time::Duration;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Serves `GET /metrics` (or any request) with the hub's current text
/// exposition until the process exits. Returns the bound address.
fn serve_metrics(addr: &str, tel: Arc<Telemetry>) -> std::io::Result<String> {
    let listener = std::net::TcpListener::bind(addr)?;
    let bound = listener.local_addr()?.to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            // Drain the request line; the response is the same either way.
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            let body = tel.snapshot().render_text();
            let _ = write!(
                stream,
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            );
        }
    });
    Ok(bound)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr: String = parse_flag(&args, "--addr", "127.0.0.1:0".to_string());
    let strategy: String = parse_flag(&args, "--strategy", "gluefl".to_string());
    let clients: usize = parse_flag(&args, "--clients", 8);
    let rounds: u32 = parse_flag(&args, "--rounds", 3);
    let seed: u64 = parse_flag(&args, "--seed", 42);
    let offer_secs: u64 = parse_flag(&args, "--offer-timeout-secs", 30);
    let upload_secs: u64 = parse_flag(&args, "--upload-timeout-secs", 30);
    let format: LogFormat = parse_flag(&args, "--log-format", LogFormat::Text);
    let level: Level = parse_flag(&args, "--log-level", Level::Info);
    let metrics_addr: String = parse_flag(&args, "--metrics-addr", String::new());
    let metrics_out: String = parse_flag(&args, "--metrics-out", String::new());
    let log = Logger::stdout(level, format);

    // Telemetry costs one untaken branch per phase boundary when off;
    // the metrics flags are the opt-in.
    let tel =
        (!metrics_addr.is_empty() || !metrics_out.is_empty()).then(|| Arc::new(Telemetry::new()));

    let cfg = smoke_config(&strategy, clients, rounds, seed);
    let mut net = ServerConfig::local(clients);
    net.addr = addr;
    net.offer_timeout = Duration::from_secs(offer_secs);
    net.upload_timeout = Duration::from_secs(upload_secs);
    net.telemetry = tel.clone();

    let server = match Server::bind(cfg, net) {
        Ok(s) => s,
        Err(e) => {
            log.error("bind failed", &[("error", Field::Str(&e.to_string()))]);
            std::process::exit(1);
        }
    };
    // First line of output: the resolved address, for client launchers.
    // This line is a plain-format contract (scripts grep `^listening `),
    // so it bypasses the structured logger.
    println!("listening {}", server.local_addr());
    if let Some(tel) = &tel {
        if !metrics_addr.is_empty() {
            match serve_metrics(&metrics_addr, Arc::clone(tel)) {
                Ok(bound) => log.info("metrics", &[("addr", Field::Str(&bound))]),
                Err(e) => {
                    log.error(
                        "metrics bind failed",
                        &[("error", Field::Str(&e.to_string()))],
                    );
                    std::process::exit(1);
                }
            }
        }
    }
    match server.run() {
        Ok(report) => {
            for rec in &report.records {
                let acc = rec
                    .accuracy
                    .map_or_else(|| "-".to_string(), |a| format!("{a:.4}"));
                log.info(
                    "round",
                    &[
                        ("round", Field::U64(u64::from(rec.round))),
                        ("invited", Field::U64(rec.invited as u64)),
                        ("kept", Field::U64(rec.kept as u64)),
                        ("up_bytes", Field::U64(rec.up_bytes)),
                        ("wire_up_bytes", Field::U64(rec.wire_up_bytes)),
                        ("acc", Field::Str(&acc)),
                    ],
                );
            }
            log.info(
                "done",
                &[
                    ("strategy", Field::Str(&report.strategy)),
                    ("params_fnv", Field::Hex(report.final_params_fnv)),
                    ("skipped", Field::U64(report.skipped_uploads as u64)),
                    ("dead", Field::U64(report.dead_clients as u64)),
                ],
            );
            if let Some(tel) = &tel {
                if !metrics_out.is_empty() {
                    let text = tel.snapshot().render_text();
                    if let Err(e) = std::fs::write(&metrics_out, text) {
                        log.error(
                            "metrics write failed",
                            &[
                                ("path", Field::Str(&metrics_out)),
                                ("error", Field::Str(&e.to_string())),
                            ],
                        );
                        std::process::exit(1);
                    }
                    log.info("metrics written", &[("path", Field::Str(&metrics_out))]);
                }
            }
        }
        Err(e) => {
            log.error("server failed", &[("error", Field::Str(&e.to_string()))]);
            std::process::exit(1);
        }
    }
}
