//! `gluefl-server`: orchestrate a real-socket federated run.
//!
//! ```text
//! gluefl-server [--addr 127.0.0.1:0] [--strategy gluefl] [--clients 8]
//!               [--rounds 3] [--seed 42] [--offer-timeout-secs 30]
//!               [--upload-timeout-secs 30]
//! ```
//!
//! Prints the bound address first (so scripts can launch clients against
//! port 0), then one line per round, then the final parameter checksum.

use gluefl_suite::transport::{smoke_config, Server, ServerConfig};
use std::time::Duration;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr: String = parse_flag(&args, "--addr", "127.0.0.1:0".to_string());
    let strategy: String = parse_flag(&args, "--strategy", "gluefl".to_string());
    let clients: usize = parse_flag(&args, "--clients", 8);
    let rounds: u32 = parse_flag(&args, "--rounds", 3);
    let seed: u64 = parse_flag(&args, "--seed", 42);
    let offer_secs: u64 = parse_flag(&args, "--offer-timeout-secs", 30);
    let upload_secs: u64 = parse_flag(&args, "--upload-timeout-secs", 30);

    let cfg = smoke_config(&strategy, clients, rounds, seed);
    let mut net = ServerConfig::local(clients);
    net.addr = addr;
    net.offer_timeout = Duration::from_secs(offer_secs);
    net.upload_timeout = Duration::from_secs(upload_secs);

    let server = match Server::bind(cfg, net) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    // First line of output: the resolved address, for client launchers.
    println!("listening {}", server.local_addr());
    match server.run() {
        Ok(report) => {
            for rec in &report.records {
                println!(
                    "round {:>3}  invited {:>3}  kept {:>3}  up {:>9} B  wire_up {:>9} B  acc {}",
                    rec.round,
                    rec.invited,
                    rec.kept,
                    rec.up_bytes,
                    rec.wire_up_bytes,
                    rec.accuracy
                        .map_or_else(|| "-".to_string(), |a| format!("{a:.4}")),
                );
            }
            println!(
                "done strategy={} params_fnv={:#018x} skipped={} dead={}",
                report.strategy,
                report.final_params_fnv,
                report.skipped_uploads,
                report.dead_clients
            );
        }
        Err(e) => {
            eprintln!("server failed: {e}");
            std::process::exit(1);
        }
    }
}
