//! The paper's default FEMNIST/ShuffleNet comparison (Table 2, row 1):
//! FedAvg vs STC vs APF vs GlueFL under identical client randomness.
//!
//! ```text
//! cargo run --release --example femnist_shufflenet [-- rounds]
//! ```

use gluefl_compress::ApfConfig;
use gluefl_core::{GlueFlParams, RunResult, SimConfig, Simulation, StrategyConfig};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;
use gluefl_tensor::wire::bytes_to_mb;

fn main() {
    let rounds: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let base = SimConfig::paper_setup(
        DatasetProfile::Femnist,
        DatasetModel::ShuffleNet,
        StrategyConfig::FedAvg,
        0.05,
        rounds,
        7,
    );
    let k = base.round_size;
    let strategies = vec![
        StrategyConfig::FedAvg,
        StrategyConfig::Stc { q: 0.20 },
        StrategyConfig::Apf {
            config: ApfConfig::default(),
        },
        StrategyConfig::GlueFl(GlueFlParams::paper_default(k, DatasetModel::ShuffleNet)),
    ];

    println!(
        "FEMNIST / ShuffleNet-like: N = {}, K = {k}, {rounds} rounds, \
         OC = {:.1}\n",
        base.dataset.clients, base.oc
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "strategy", "down (MB)", "up (MB)", "round time", "final acc"
    );
    let mut results: Vec<RunResult> = Vec::new();
    for strategy in strategies {
        let mut cfg = base.clone();
        cfg.strategy = strategy;
        let result = Simulation::new(cfg).run();
        let up: u64 = result.rounds.iter().map(|r| r.up_bytes).sum();
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>10.1} s {:>9.1}%",
            result.strategy,
            bytes_to_mb(result.total.down_bytes),
            bytes_to_mb(up),
            result.total.total_secs / f64::from(rounds),
            result.total.accuracy * 100.0
        );
        results.push(result);
    }

    // Headline comparison: GlueFL downstream vs the best baseline.
    let dv = |name: &str| {
        results
            .iter()
            .find(|r| r.strategy == name)
            .map(|r| r.total.down_bytes)
            .expect("strategy ran")
    };
    let gluefl = dv("gluefl") as f64;
    let best_baseline = [dv("fedavg"), dv("stc"), dv("apf")]
        .into_iter()
        .min()
        .expect("baselines ran") as f64;
    println!(
        "\nGlueFL downstream saving vs best baseline: {:.0}%",
        (1.0 - gluefl / best_baseline) * 100.0
    );
}
