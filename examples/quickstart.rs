//! Quickstart: train a small federated model with GlueFL and watch the
//! bandwidth counters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gluefl_core::{GlueFlParams, SimConfig, Simulation, StrategyConfig};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;
use gluefl_tensor::wire::bytes_to_mb;

fn main() {
    // A miniature FEMNIST/ShuffleNet setup: 5% of the paper's client
    // population, the paper's GlueFL defaults scaled to the round size.
    let mut cfg = SimConfig::paper_setup(
        DatasetProfile::Femnist,
        DatasetModel::ShuffleNet,
        StrategyConfig::FedAvg, // replaced below
        0.05,
        60,
        42,
    );
    cfg.strategy = StrategyConfig::GlueFl(GlueFlParams::paper_default(
        cfg.round_size,
        DatasetModel::ShuffleNet,
    ));
    cfg.eval_every = 10;

    println!(
        "GlueFL quickstart: N = {} clients, K = {} per round, {} rounds",
        cfg.dataset.clients, cfg.round_size, cfg.rounds
    );
    let mut sim = Simulation::new(cfg);
    println!(
        "model: {} parameters ({} trainable)",
        sim.model().num_params(),
        sim.model().layout().trainable_count()
    );

    let mut cum_down = 0u64;
    for _ in 0..sim.config().rounds {
        let rec = sim.step();
        cum_down += rec.down_bytes;
        if let Some(acc) = rec.accuracy {
            println!(
                "round {:>3}: accuracy {:>5.1}%  |  down {:>7.2} MB cumulative  \
                 |  {:>4} positions changed",
                rec.round,
                acc * 100.0,
                bytes_to_mb(cum_down),
                rec.changed_positions
            );
        }
    }
    println!("done: downstream total {:.2} MB", bytes_to_mb(cum_down));
}
