//! Quickstart: train a small federated model with GlueFL and watch the
//! bandwidth counters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This example doubles as living documentation for the simulation
//! config: every knob used below is annotated with what it controls and
//! where it comes from in the paper. Internally each round's aggregate is
//! a `MaskedUpdate` (support mask + packed values) that the simulator
//! applies with word-level kernels — the "positions changed" column
//! printed below counts that update's nonzero covered positions plus the
//! BatchNorm statistics whose Appendix-D round mean moved, so it tracks
//! (and slightly exceeds) the `q`-bounded mask support.
//!
//! The tail of the example drops below the `Simulation` facade and runs
//! one client through the public training API directly — the shared
//! `MlpTopology`, a pooled `TrainSlot`, and `local_train_into` — the same
//! allocation-free, GEMM-backed path the simulator shards across worker
//! threads.

use gluefl_core::{
    local_train_into, GlueFlParams, SimConfig, Simulation, StrategyConfig, TrainSlot,
};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;
use gluefl_tensor::rng::derive_seed;
use gluefl_tensor::wire::bytes_to_mb;

fn main() {
    // `paper_setup` bundles the paper's §5.1 defaults for one
    // dataset/model pair. Its knobs:
    //   * `DatasetProfile::Femnist` — synthetic stand-in for FEMNIST:
    //     class count, feature dimension, non-IID label skew, and the
    //     heavy-tailed per-client sample sizes that drive the importance
    //     weights `p_i`.
    //   * `DatasetModel::ShuffleNet` — the flat-parameter MLP profile
    //     standing in for ShuffleNet, including the paper-scale reference
    //     parameter count used for bandwidth-at-paper-scale reporting.
    //   * strategy — replaced two lines down; `paper_setup` needs a
    //     placeholder.
    //   * `0.05` — population scale: 5% of the paper's FEMNIST client
    //     count, so the example runs in seconds on a laptop.
    //   * `60` — rounds to simulate.
    //   * `42` — the master seed. Data, model init, links, device
    //     speeds, availability, and every client's local training derive
    //     deterministically from it: same seed, same run, bit for bit.
    let mut cfg = SimConfig::paper_setup(
        DatasetProfile::Femnist,
        DatasetModel::ShuffleNet,
        StrategyConfig::FedAvg, // replaced below
        0.05,
        60,
        42,
    );

    // GlueFL with the paper's defaults scaled to the round size `K`:
    //   * `q` = 20% — total upload mask ratio per client;
    //   * `q_shr` = 16% — the shared-mask portion (positions the server
    //     already knows, uploaded without coordinates);
    //   * sticky group `S` and per-round sticky draw `C` sized from `K`
    //     (§3.1), so most participants repeat and stay mask-aligned;
    //   * mask regeneration interval + re-scaled error compensation
    //     (§3.3) as in the paper's main runs.
    cfg.strategy = StrategyConfig::GlueFl(GlueFlParams::paper_default(
        cfg.round_size,
        DatasetModel::ShuffleNet,
    ));

    // Evaluate on the held-out test set every 10 rounds (evaluation is
    // outside the simulated protocol; it just reads the global model).
    cfg.eval_every = 10;

    println!(
        "GlueFL quickstart: N = {} clients, K = {} per round, {} rounds",
        cfg.dataset.clients, cfg.round_size, cfg.rounds
    );
    let mut sim = Simulation::new(cfg);
    println!(
        "model: {} parameters ({} trainable)",
        sim.model().num_params(),
        sim.model().layout().trainable_count()
    );

    let mut cum_down = 0u64;
    let mut cum_up_analytic = 0u64;
    let mut cum_up_wire = 0u64;
    for _ in 0..sim.config().rounds {
        let rec = sim.step();
        cum_down += rec.down_bytes;
        cum_up_analytic += rec.up_bytes;
        // Since PR 5 every upload is actually serialized through the
        // gluefl-wire codec inside the round loop; `wire_up_bytes` is
        // the *measured* frame total. Under the default F32 codec it
        // equals the analytic `up_bytes` bit-for-bit.
        cum_up_wire += rec.wire_up_bytes;
        if let Some(acc) = rec.accuracy {
            println!(
                "round {:>3}: accuracy {:>5.1}%  |  down {:>7.2} MB cumulative  \
                 |  {:>4} positions changed",
                rec.round,
                acc * 100.0,
                bytes_to_mb(cum_down),
                rec.changed_positions
            );
        }
    }
    println!("done: downstream total {:.2} MB", bytes_to_mb(cum_down));
    println!(
        "upstream total: analytic {:.2} MB, measured on the wire {:.2} MB \
         (equal under the F32 codec)",
        bytes_to_mb(cum_up_analytic),
        bytes_to_mb(cum_up_wire)
    );
    assert_eq!(cum_up_analytic, cum_up_wire);

    // --- Accuracy vs bytes under different wire policies. ---
    // `SimConfig::wire` carries the whole encoding policy: the value
    // codec (F32 / F16 / QuantU8 — one byte per value plus a per-64-block
    // scale, deterministic stochastic rounding seeded per round+client),
    // the position-section layout (`legacy` pins the v1 bitmap/index
    // sections; `entropy` lets the writer pick delta-varint or RLE
    // sections when they are cheaper), and whether quantization residual
    // feeds back into error compensation. Same data, sampling, and
    // network randomness — only the wire representation changes.
    let compare_rounds = 20;
    let run_with = |wire: gluefl_core::WirePolicy| {
        let mut c = sim.config().clone();
        c.rounds = compare_rounds;
        c.eval_every = compare_rounds;
        // Keep every invited client (no over-commitment): measured frame
        // lengths drive per-client upload times, so under keep-fastest a
        // cheaper encoding can change which stragglers get dropped — a
        // real effect, but here we want the policies compared on the
        // same kept cohort so the F32 arms are bit-identical.
        c.oc = 1.0;
        c.wire = wire;
        let r = gluefl_core::Simulation::new(c).run();
        let up: u64 = r.rounds.iter().map(|x| x.wire_up_bytes).sum();
        (r.total.accuracy, up)
    };
    let (acc_f32, up_f32) = run_with(gluefl_core::WirePolicy::legacy(gluefl_core::WireCodec::F32));
    let (acc_ent, up_ent) = run_with(gluefl_core::WirePolicy::entropy(
        gluefl_core::WireCodec::F32,
    ));
    let (acc_q8, up_q8) = run_with(gluefl_core::WirePolicy::entropy(
        gluefl_core::WireCodec::QuantU8,
    ));
    println!(
        "\nwire-policy demo ({compare_rounds} rounds): \
         legacy f32 {:.1}% @ {:.2} MB up  |  \
         entropy f32 {:.1}% @ {:.2} MB ({:.0}% of legacy)  |  \
         entropy quant-u8 {:.1}% @ {:.2} MB ({:.0}%)",
        acc_f32 * 100.0,
        bytes_to_mb(up_f32),
        acc_ent * 100.0,
        bytes_to_mb(up_ent),
        100.0 * up_ent as f64 / up_f32 as f64,
        acc_q8 * 100.0,
        bytes_to_mb(up_q8),
        100.0 * up_q8 as f64 / up_f32 as f64
    );
    // Entropy layouts re-encode positions only; decoded values — and so
    // the trajectory — are bit-identical to legacy F32.
    assert_eq!(acc_f32.to_bits(), acc_ent.to_bits());
    assert!(up_ent <= up_f32);

    // --- Under the hood: one client step through the public training API.
    //
    // The simulator's whole training phase is built from these pieces, and
    // they are public so experiments can drive clients directly:
    //   * `MlpTopology` — the immutable architecture, shared by reference
    //     across every client (and worker thread). No model clones.
    //   * `TrainSlot` — a pooled parameter buffer + `TrainScratch`
    //     workspace; reusing one slot makes repeated client training
    //     allocation-free in steady state (the "clone" is a
    //     `copy_from_slice` into the slot).
    //   * `local_train_into` — E local SGD-with-momentum steps through the
    //     GEMM-backed `_into` kernels, deterministic in its arguments
    //     alone (the seed fixes the minibatch draws, so any worker thread
    //     produces the same bits).
    let cfg = sim.config().clone();
    let topo = sim.model().topology();
    let global = sim.model().params().to_vec();
    let trainable_mask = sim.model().layout().trainable_mask();
    let stats_positions: Vec<usize> = trainable_mask.not().iter_ones().collect();
    let mut slot = TrainSlot::default(); // production code takes one from a ScratchPool
    let mut delta = vec![0.0f32; sim.model().num_params()];
    let mut stats_drift = vec![0.0f32; stats_positions.len()];
    local_train_into(
        topo,
        &global,
        sim.data(),
        0, // client id
        cfg.local_steps,
        cfg.batch_size,
        cfg.lr_at_round(0),
        cfg.momentum,
        derive_seed(cfg.seed, "quickstart-demo", 0),
        &mut delta,
        &stats_positions,
        &mut stats_drift,
        &trainable_mask,
        &mut slot,
    );
    let l2: f32 = delta.iter().map(|d| d * d).sum::<f32>().sqrt();
    println!(
        "client 0 demo: {} local steps produced a delta with ‖Δ‖₂ = {l2:.3} \
         over {} trainable positions ({} BN statistics tracked separately)",
        cfg.local_steps,
        trainable_mask.count_ones(),
        stats_positions.len()
    );
}
