//! Straggler study: how over-commitment and the network environment shape
//! round time (the §5.6 / Figure 9 narrative as a runnable scenario).
//!
//! ```text
//! cargo run --release --example straggler_study
//! ```

use gluefl_core::{GlueFlParams, SimConfig, Simulation, StrategyConfig};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;
use gluefl_net::NetworkProfile;
use gluefl_sampling::overcommit::OcStrategy;

fn base(rounds: u32) -> SimConfig {
    let mut cfg = SimConfig::paper_setup(
        DatasetProfile::Femnist,
        DatasetModel::ShuffleNet,
        StrategyConfig::FedAvg,
        0.05,
        rounds,
        21,
    );
    cfg.strategy = StrategyConfig::GlueFl(GlueFlParams::paper_default(
        cfg.round_size,
        DatasetModel::ShuffleNet,
    ));
    cfg.eval_every = u32::MAX; // timing study: skip evaluation
    cfg
}

fn mean_round_secs(cfg: SimConfig) -> (f64, f64) {
    let result = Simulation::new(cfg).run();
    let n = result.rounds.len().max(1) as f64;
    let secs = result.rounds.iter().map(|r| r.round_secs).sum::<f64>() / n;
    let down_gb = result.total.down_bytes as f64 / 1e9;
    (secs, down_gb)
}

fn main() {
    let rounds = 40;

    println!("over-commitment sweep (GlueFL, edge network, {rounds} rounds):");
    println!("{:>8} {:>16} {:>16}", "OC", "round time (s)", "down (GB)");
    for oc in [1.0, 1.1, 1.2, 1.3, 1.4, 1.5] {
        let mut cfg = base(rounds);
        cfg.oc = oc;
        cfg.oc_strategy = OcStrategy::StickyFraction(0.1);
        let (secs, gb) = mean_round_secs(cfg);
        println!("{oc:>8.1} {secs:>16.1} {gb:>16.4}");
    }
    println!(
        "\nexpected shape: OC = 1.0 suffers stragglers (long rounds); rising \
         OC buys time with bandwidth, with diminishing returns past ~1.3.\n"
    );

    println!("network environments (GlueFL, OC = 1.3):");
    println!(
        "{:>12} {:>16} {:>16}",
        "network", "round time (s)", "down (GB)"
    );
    for network in NetworkProfile::all() {
        let mut cfg = base(rounds);
        cfg.network = network;
        let (secs, gb) = mean_round_secs(cfg);
        println!("{:>12} {secs:>16.2} {gb:>16.4}", network.name());
    }
    println!(
        "\nexpected shape: edge rounds are transmission-bound; 5G and \
         datacenter rounds are computation-bound (Figure 9)."
    );
}
