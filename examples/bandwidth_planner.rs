//! Sticky-sampling planner: explore S and C choices analytically before
//! running any training (Propositions 1–2 + Theorem 2).
//!
//! ```text
//! cargo run --release --example bandwidth_planner [-- N K S C]
//! ```

use gluefl_core::theory::{convergence_bound, theorem2_learning_rate, variance_constant_a};
use gluefl_sampling::analysis::{
    sticky_advantage_horizon, sticky_resample_prob, uniform_resample_prob,
};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|s| s.parse().ok())
        .collect();
    let (n, k, s, c) = match args.as_slice() {
        [n, k, s, c] => (*n, *k, *s, *c),
        _ => (2800, 30, 120, 24), // the paper's FEMNIST case study
    };
    println!("sticky sampling planner: N = {n}, K = {k}, S = {s}, C = {c}\n");

    println!("re-sampling probability after r rounds (Propositions 1 & 2):");
    println!(
        "{:>3} {:>10} {:>10} {:>10}",
        "r", "sticky", "uniform", "ratio"
    );
    for r in 1..=8u32 {
        let ps = sticky_resample_prob(n, k, s, c, r);
        let pu = uniform_resample_prob(n, k, r);
        println!(
            "{r:>3} {:>9.2}% {:>9.2}% {:>9.1}x",
            ps * 100.0,
            pu * 100.0,
            ps / pu
        );
    }
    match sticky_advantage_horizon(n, k, s, c) {
        Some(h) => println!("\nsticky clients stay advantaged for {h} rounds"),
        None => println!("\nwarning: this (S, C) never beats uniform sampling"),
    }

    // Convergence-side cost of the configuration (Theorem 2).
    let p = vec![1.0 / n as f64; n];
    let a_sticky = variance_constant_a(n, k, s, c, &p);
    let a_uniform = variance_constant_a(n, k, 0, 0, &p);
    println!("\nTheorem 2 variance constant A:");
    println!("  uniform sampling: {a_uniform:.3}");
    println!(
        "  sticky  sampling: {a_sticky:.3}  ({:.1}x)",
        a_sticky / a_uniform
    );
    let (e, sigma2, t) = (10, 1.0, 1000);
    println!(
        "\nsuggested learning rate (E = {e}, σ² = {sigma2}, T = {t}): {:.5}",
        theorem2_learning_rate(e, sigma2, k, t, a_sticky)
    );
    println!(
        "convergence bound at T = {t}: sticky {:.4} vs uniform {:.4}",
        convergence_bound(e, sigma2, k, t, a_sticky),
        convergence_bound(e, sigma2, k, t, a_uniform)
    );
    println!(
        "\ninterpretation: stickiness multiplies short-term re-sampling \
         probability (bandwidth ↓) at a variance cost the evaluation shows \
         is a favourable trade (§4.2)."
    );
}
