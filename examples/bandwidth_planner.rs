//! Sticky-sampling planner: explore S and C choices analytically before
//! running any training (Propositions 1–2 + Theorem 2), then cross-check
//! the analytic per-message byte model against *measured* `gluefl-wire`
//! frames.
//!
//! ```text
//! cargo run --release --example bandwidth_planner [-- N K S C]
//! ```

use gluefl_core::theory::{convergence_bound, theorem2_learning_rate, variance_constant_a};
use gluefl_sampling::analysis::{
    sticky_advantage_horizon, sticky_resample_prob, uniform_resample_prob,
};
use gluefl_tensor::wire::HEADER_BYTES;
use gluefl_tensor::{BitMask, WireCost};
use gluefl_wire::{
    decode_frame_prefix, delta_section_len, rle_section_len, Codec, FrameKind, FrameWriter,
    Rounding, WirePolicy,
};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|s| s.parse().ok())
        .collect();
    let (n, k, s, c) = match args.as_slice() {
        [n, k, s, c] => (*n, *k, *s, *c),
        _ => (2800, 30, 120, 24), // the paper's FEMNIST case study
    };
    println!("sticky sampling planner: N = {n}, K = {k}, S = {s}, C = {c}\n");

    println!("re-sampling probability after r rounds (Propositions 1 & 2):");
    println!(
        "{:>3} {:>10} {:>10} {:>10}",
        "r", "sticky", "uniform", "ratio"
    );
    for r in 1..=8u32 {
        let ps = sticky_resample_prob(n, k, s, c, r);
        let pu = uniform_resample_prob(n, k, r);
        println!(
            "{r:>3} {:>9.2}% {:>9.2}% {:>9.1}x",
            ps * 100.0,
            pu * 100.0,
            ps / pu
        );
    }
    match sticky_advantage_horizon(n, k, s, c) {
        Some(h) => println!("\nsticky clients stay advantaged for {h} rounds"),
        None => println!("\nwarning: this (S, C) never beats uniform sampling"),
    }

    // Convergence-side cost of the configuration (Theorem 2).
    let p = vec![1.0 / n as f64; n];
    let a_sticky = variance_constant_a(n, k, s, c, &p);
    let a_uniform = variance_constant_a(n, k, 0, 0, &p);
    println!("\nTheorem 2 variance constant A:");
    println!("  uniform sampling: {a_uniform:.3}");
    println!(
        "  sticky  sampling: {a_sticky:.3}  ({:.1}x)",
        a_sticky / a_uniform
    );
    let (e, sigma2, t) = (10, 1.0, 1000);
    println!(
        "\nsuggested learning rate (E = {e}, σ² = {sigma2}, T = {t}): {:.5}",
        theorem2_learning_rate(e, sigma2, k, t, a_sticky)
    );
    println!(
        "convergence bound at T = {t}: sticky {:.4} vs uniform {:.4}",
        convergence_bound(e, sigma2, k, t, a_sticky),
        convergence_bound(e, sigma2, k, t, a_uniform)
    );
    println!(
        "\ninterpretation: stickiness multiplies short-term re-sampling \
         probability (bandwidth ↓) at a variance cost the evaluation shows \
         is a favourable trade (§4.2)."
    );

    // --- Per-message bytes: analytic model vs measured wire frames. ---
    // A representative GlueFL round at d = 100k parameters, q = 20%,
    // q_shr = 16%: every message is actually serialized through
    // gluefl-wire and its frame length printed next to the analytic
    // WireCost the simulator's ledger uses. With the default F32 codec
    // the two columns are identical by construction (the property suite
    // pins it); F16/QuantU8 show what update quantization buys.
    let d = 100_000usize;
    let (q, q_shr) = (0.20, 0.16);
    let shared_nnz = (d as f64 * q_shr) as usize;
    let unique_nnz = (d as f64 * (q - q_shr)) as usize;
    let mask = BitMask::from_indices(d, (0..d).step_by(d / shared_nnz));
    let shared_vals: Vec<f32> = (0..mask.count_ones())
        .map(|i| (i as f32 * 0.7).sin())
        .collect();
    let unique_ix: Vec<u32> = (1..=unique_nnz as u32).map(|i| i * 5 - 4).collect();
    let unique_vals: Vec<f32> = unique_ix.iter().map(|&i| (i as f32 * 0.3).cos()).collect();

    println!("\nper-message bytes at d = {d}, q = {q}, q_shr = {q_shr}:");
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>12}",
        "message", "analytic", "wire f32", "wire f16", "wire u8"
    );
    type Emit<'a> = &'a dyn Fn(&mut Vec<u8>, Codec) -> usize;
    let measure = |codec: Codec, emit: Emit| -> usize {
        let mut buf = Vec::new();
        emit(&mut buf, codec)
    };
    let rows: [(&str, u64, Emit); 3] = [
        (
            "mask broadcast (bitmap)",
            (d as u64).div_ceil(8) + HEADER_BYTES,
            &|buf, codec| FrameWriter::new(WirePolicy::legacy(codec)).mask(buf, 0, &mask),
        ),
        (
            "shared upload (aligned)",
            WireCost::known_mask(shared_vals.len()).total_bytes(),
            &|buf, codec| {
                FrameWriter::new(WirePolicy::legacy(codec)).known_mask(
                    buf,
                    0,
                    Rounding::Nearest,
                    d,
                    &shared_vals,
                )
            },
        ),
        (
            "unique upload (sparse)",
            WireCost::sparse(d, unique_ix.len()).total_bytes(),
            &|buf, codec| {
                FrameWriter::new(WirePolicy::legacy(codec)).sparse(
                    buf,
                    0,
                    Rounding::Nearest,
                    d,
                    &unique_ix,
                    &unique_vals,
                )
            },
        ),
    ];
    for (label, analytic, emit) in rows {
        let f32_bytes = measure(Codec::F32, emit);
        assert_eq!(f32_bytes as u64, analytic, "{label}: F32 frame ≠ analytic");
        println!(
            "{label:<26} {analytic:>12} {f32_bytes:>12} {:>12} {:>12}",
            measure(Codec::F16, emit),
            measure(Codec::QuantU8, emit),
        );
    }
    println!(
        "(wire f32 equals the analytic column bit-for-bit; the quantized \
         columns shrink only the value sections — positions and framing \
         are codec-independent.)"
    );

    // --- Position layouts: fixed v1 sections vs v2 entropy sections. ---
    // Same messages, F32 values pinned — now only the *position* encoding
    // changes. `WirePolicy::entropy` prices every applicable section
    // exactly (bitmap, u32 index list, delta-varint list, RLE runs) and
    // emits the cheapest, so the measured frame is header + values +
    // analytic section, byte for byte. Scattered supports keep the
    // bitmap (one-bit runs make RLE *bigger*); layer-clustered supports
    // are where RLE pays; sorted index lists nearly always shrink to
    // delta varints.
    let clustered = BitMask::from_indices(d, (0..d).filter(|i| i % 2048 < 328));
    let legacy = FrameWriter::new(WirePolicy::legacy(Codec::F32));
    let entropy = FrameWriter::new(WirePolicy::entropy(Codec::F32));
    let layout_name = |buf: &[u8]| match decode_frame_prefix(buf).expect("valid frame").0.kind {
        FrameKind::Mask | FrameKind::SparseBitmap => "bitmap",
        FrameKind::SparseIndex => "u32 index",
        FrameKind::SparseDelta => "delta-varint",
        FrameKind::MaskRle | FrameKind::SparseRle => "rle",
        _ => "other",
    };
    println!("\nposition layouts at the same d, F32 values pinned:");
    println!(
        "{:<28} {:>10} {:>10} {:>13} {:>17}",
        "message", "v1 bytes", "v2 bytes", "v2 layout", "analytic section"
    );
    let shoot_out = |label: &str, v1: &[u8], v2: &[u8], section: u64| {
        println!(
            "{label:<28} {:>10} {:>10} {:>13} {:>17}",
            v1.len(),
            v2.len(),
            layout_name(v2),
            section
        );
        assert!(v2.len() <= v1.len(), "{label}: entropy layout regressed");
    };

    let (mut a, mut b) = (Vec::new(), Vec::new());
    legacy.mask(&mut a, 0, &mask);
    entropy.mask(&mut b, 0, &mask);
    shoot_out("mask broadcast (scattered)", &a, &b, (d as u64).div_ceil(8));

    let (mut a, mut b) = (Vec::new(), Vec::new());
    legacy.mask(&mut a, 0, &clustered);
    entropy.mask(&mut b, 0, &clustered);
    let rle = rle_section_len(&clustered);
    assert_eq!(b.len() as u64, HEADER_BYTES + rle, "rle frame ≠ analytic");
    shoot_out("mask broadcast (clustered)", &a, &b, rle);

    let (mut a, mut b) = (Vec::new(), Vec::new());
    legacy.sparse(&mut a, 0, Rounding::Nearest, d, &unique_ix, &unique_vals);
    entropy.sparse(&mut b, 0, Rounding::Nearest, d, &unique_ix, &unique_vals);
    let delta = delta_section_len(&unique_ix);
    assert_eq!(
        b.len() as u64,
        HEADER_BYTES + delta + 4 * unique_ix.len() as u64,
        "delta frame ≠ analytic"
    );
    shoot_out("unique upload (sparse)", &a, &b, delta);
    println!(
        "(v2 frames stay self-describing — the decoder dispatches on the \
         frame kind, so a v2 reader accepts both columns.)"
    );
}
