//! Sticky-sampling planner: explore S and C choices analytically before
//! running any training (Propositions 1–2 + Theorem 2), then cross-check
//! the analytic per-message byte model against *measured* `gluefl-wire`
//! frames.
//!
//! ```text
//! cargo run --release --example bandwidth_planner [-- N K S C]
//! ```

use gluefl_core::theory::{convergence_bound, theorem2_learning_rate, variance_constant_a};
use gluefl_sampling::analysis::{
    sticky_advantage_horizon, sticky_resample_prob, uniform_resample_prob,
};
use gluefl_tensor::wire::HEADER_BYTES;
use gluefl_tensor::{BitMask, WireCost};
use gluefl_wire::{Codec, Rounding};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|s| s.parse().ok())
        .collect();
    let (n, k, s, c) = match args.as_slice() {
        [n, k, s, c] => (*n, *k, *s, *c),
        _ => (2800, 30, 120, 24), // the paper's FEMNIST case study
    };
    println!("sticky sampling planner: N = {n}, K = {k}, S = {s}, C = {c}\n");

    println!("re-sampling probability after r rounds (Propositions 1 & 2):");
    println!(
        "{:>3} {:>10} {:>10} {:>10}",
        "r", "sticky", "uniform", "ratio"
    );
    for r in 1..=8u32 {
        let ps = sticky_resample_prob(n, k, s, c, r);
        let pu = uniform_resample_prob(n, k, r);
        println!(
            "{r:>3} {:>9.2}% {:>9.2}% {:>9.1}x",
            ps * 100.0,
            pu * 100.0,
            ps / pu
        );
    }
    match sticky_advantage_horizon(n, k, s, c) {
        Some(h) => println!("\nsticky clients stay advantaged for {h} rounds"),
        None => println!("\nwarning: this (S, C) never beats uniform sampling"),
    }

    // Convergence-side cost of the configuration (Theorem 2).
    let p = vec![1.0 / n as f64; n];
    let a_sticky = variance_constant_a(n, k, s, c, &p);
    let a_uniform = variance_constant_a(n, k, 0, 0, &p);
    println!("\nTheorem 2 variance constant A:");
    println!("  uniform sampling: {a_uniform:.3}");
    println!(
        "  sticky  sampling: {a_sticky:.3}  ({:.1}x)",
        a_sticky / a_uniform
    );
    let (e, sigma2, t) = (10, 1.0, 1000);
    println!(
        "\nsuggested learning rate (E = {e}, σ² = {sigma2}, T = {t}): {:.5}",
        theorem2_learning_rate(e, sigma2, k, t, a_sticky)
    );
    println!(
        "convergence bound at T = {t}: sticky {:.4} vs uniform {:.4}",
        convergence_bound(e, sigma2, k, t, a_sticky),
        convergence_bound(e, sigma2, k, t, a_uniform)
    );
    println!(
        "\ninterpretation: stickiness multiplies short-term re-sampling \
         probability (bandwidth ↓) at a variance cost the evaluation shows \
         is a favourable trade (§4.2)."
    );

    // --- Per-message bytes: analytic model vs measured wire frames. ---
    // A representative GlueFL round at d = 100k parameters, q = 20%,
    // q_shr = 16%: every message is actually serialized through
    // gluefl-wire and its frame length printed next to the analytic
    // WireCost the simulator's ledger uses. With the default F32 codec
    // the two columns are identical by construction (the property suite
    // pins it); F16/QuantU8 show what update quantization buys.
    let d = 100_000usize;
    let (q, q_shr) = (0.20, 0.16);
    let shared_nnz = (d as f64 * q_shr) as usize;
    let unique_nnz = (d as f64 * (q - q_shr)) as usize;
    let mask = BitMask::from_indices(d, (0..d).step_by(d / shared_nnz));
    let shared_vals: Vec<f32> = (0..mask.count_ones())
        .map(|i| (i as f32 * 0.7).sin())
        .collect();
    let unique_ix: Vec<u32> = (1..=unique_nnz as u32).map(|i| i * 5 - 4).collect();
    let unique_vals: Vec<f32> = unique_ix.iter().map(|&i| (i as f32 * 0.3).cos()).collect();

    println!("\nper-message bytes at d = {d}, q = {q}, q_shr = {q_shr}:");
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>12}",
        "message", "analytic", "wire f32", "wire f16", "wire u8"
    );
    type Emit<'a> = &'a dyn Fn(&mut Vec<u8>, Codec) -> usize;
    let measure = |codec: Codec, emit: Emit| -> usize {
        let mut buf = Vec::new();
        emit(&mut buf, codec)
    };
    let rows: [(&str, u64, Emit); 3] = [
        (
            "mask broadcast (bitmap)",
            (d as u64).div_ceil(8) + HEADER_BYTES,
            &|buf, _| gluefl_wire::encode_mask(buf, 0, &mask),
        ),
        (
            "shared upload (aligned)",
            WireCost::known_mask(shared_vals.len()).total_bytes(),
            &|buf, codec| {
                gluefl_wire::encode_known_mask(buf, 0, codec, Rounding::Nearest, d, &shared_vals)
            },
        ),
        (
            "unique upload (sparse)",
            WireCost::sparse(d, unique_ix.len()).total_bytes(),
            &|buf, codec| {
                gluefl_wire::encode_sparse(
                    buf,
                    0,
                    codec,
                    Rounding::Nearest,
                    d,
                    &unique_ix,
                    &unique_vals,
                )
            },
        ),
    ];
    for (label, analytic, emit) in rows {
        let f32_bytes = measure(Codec::F32, emit);
        assert_eq!(f32_bytes as u64, analytic, "{label}: F32 frame ≠ analytic");
        println!(
            "{label:<26} {analytic:>12} {f32_bytes:>12} {:>12} {:>12}",
            measure(Codec::F16, emit),
            measure(Codec::QuantU8, emit),
        );
    }
    println!(
        "(wire f32 equals the analytic column bit-for-bit; the quantized \
         columns shrink only the value sections — positions and framing \
         are codec-independent.)"
    );
}
