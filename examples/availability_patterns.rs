//! Availability patterns: how client churn interacts with sticky
//! sampling. Compares the steady Markov trace against a diurnal
//! (day/night) pattern and reports how often the sticky group is depleted.
//!
//! ```text
//! cargo run --release --example availability_patterns
//! ```

use gluefl_net::{AvailabilityTraceRef, DiurnalAvailability};
use gluefl_sampling::{DenseOnline, StickySampler};
use gluefl_tensor::rng::seeded_rng;

fn main() {
    let n = 1_000;
    let (s, c, fresh) = (120, 24, 6);
    let rounds = 500;

    println!("sticky sampling under client churn: N = {n}, S = {s}, C = {c}\n");
    println!(
        "{:<10} {:>14} {:>18} {:>20}",
        "pattern", "mean online", "sticky shortfall", "rounds short (of C)"
    );

    // Steady Markov churn (the simulator's default).
    {
        let mut rng = seeded_rng(1, "steady", 0);
        let mut trace = AvailabilityTraceRef::new(n, 0.8, 40.0, 1);
        let mut sampler = StickySampler::new(n, s, &mut rng);
        let (mut online_sum, mut shortfall, mut short_rounds) = (0usize, 0usize, 0usize);
        for _ in 0..rounds {
            trace.advance();
            online_sum += trace.online().iter().filter(|&&b| b).count();
            let draw = sampler.draw(&mut rng, c, fresh, &mut DenseOnline(trace.online()));
            if draw.sticky.len() < c {
                shortfall += c - draw.sticky.len();
                short_rounds += 1;
            }
            sampler.rebalance(&mut rng, &draw.sticky, &draw.fresh);
        }
        println!(
            "{:<10} {:>13.1}% {:>18} {:>20}",
            "steady",
            100.0 * online_sum as f64 / (n * rounds) as f64,
            shortfall,
            short_rounds
        );
    }

    // Diurnal churn: night troughs empty out parts of the sticky group.
    {
        let mut rng = seeded_rng(1, "diurnal", 0);
        let mut trace = DiurnalAvailability::new(n, 0.9, 0.35, 60.0, &mut rng);
        let mut sampler = StickySampler::new(n, s, &mut rng);
        let (mut online_sum, mut shortfall, mut short_rounds) = (0usize, 0usize, 0usize);
        for _ in 0..rounds {
            trace.advance(&mut rng);
            online_sum += trace.online().iter().filter(|&&b| b).count();
            let draw = sampler.draw(&mut rng, c, fresh, &mut DenseOnline(trace.online()));
            if draw.sticky.len() < c {
                shortfall += c - draw.sticky.len();
                short_rounds += 1;
            }
            sampler.rebalance(&mut rng, &draw.sticky, &draw.fresh);
        }
        println!(
            "{:<10} {:>13.1}% {:>18} {:>20}",
            "diurnal",
            100.0 * online_sum as f64 / (n * rounds) as f64,
            shortfall,
            short_rounds
        );
    }

    println!(
        "\ninterpretation: with the paper's S = 4K ≈ 5·C, even a diurnal trough \
         of ~35% online leaves ≈ S·0.35 > C sticky candidates, so rounds are \
         never short — the oversized sticky group doubles as churn slack. \
         Shrink S toward C (Figure 6's S = K arm) and shortfalls appear, \
         forcing fresh top-ups and extra downstream bandwidth."
    );
}
