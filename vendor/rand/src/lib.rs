//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored shim provides exactly the surface the workspace uses:
//! [`rngs::StdRng`], the [`Rng`] / [`SeedableRng`] traits, and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ seeded through
//! splitmix64 — deterministic, fast, and high quality, though its streams
//! are *not* bit-compatible with upstream `rand`'s `StdRng` (ChaCha12).
//! Nothing in the workspace depends on upstream stream values; every test
//! asserts structural properties or self-consistency of seeded streams.

#![forbid(unsafe_code)]

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of the type
    /// (uniform on `[0, 1)` for floats, uniform over all values for
    /// integers and `bool`).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire's multiply-shift bounded sampling (no modulo bias
                // worth caring about at simulation scale).
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let hi = ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}
int_range_impls!(usize, u64, u32, u16, u8);

macro_rules! signed_range_impls {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}
signed_range_impls!(i64 => u64, i32 => u32, i16 => u16, i8 => u8, isize => usize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}
float_range_impls!(f32, f64);

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    ///
    /// Not stream-compatible with upstream `rand`'s ChaCha12-based
    /// `StdRng`; see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(x: &mut u64) -> u64 {
            *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = Self::splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers (subset of `rand::seq`).

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Shuffles the first `amount` elements into place and returns
        /// `(shuffled_prefix, remainder)`; `amount` is clamped to the
        /// slice length.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// Returns a uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            let n = self.len();
            let _ = self.partial_shuffle(rng, n);
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let n = self.len();
            let amount = amount.min(n);
            for i in 0..amount {
                let j = rng.gen_range(i..n);
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = r.gen_range(0usize..=4);
            assert!(j <= 4);
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let s = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn partial_shuffle_returns_prefix() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..100).collect();
        let (head, tail) = v.partial_shuffle(&mut r, 10);
        assert_eq!(head.len(), 10);
        assert_eq!(tail.len(), 90);
        let mut all: Vec<usize> = head.iter().chain(tail.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = StdRng::seed_from_u64(6);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        assert!([7u8].choose(&mut r).is_some());
    }
}
