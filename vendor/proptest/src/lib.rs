//! Offline, API-compatible subset of the `proptest` framework.
//!
//! The build environment has no crates.io access, so this shim implements
//! the surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro (`fn name(arg in strategy, ...) { body }`);
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * range strategies (`0usize..100`, `-1.0f32..=1.0`), [`any`] for
//!   `bool`, and [`collection::vec`] / [`collection::btree_set`] /
//!   [`collection::btree_map`].
//!
//! Differences from upstream: no shrinking (failing inputs are printed by
//! the assertion message only), and the case count defaults to 96 (set
//! `PROPTEST_CASES` to override). Generation is deterministic per test
//! name, so failures reproduce.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Re-exports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// The RNG handed to strategies during generation.
pub type TestRng = StdRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy_impls {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy_impls!(usize, u64, u32, u16, u8, i64, i32, i16, i8, f32, f64);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates arbitrary values of `T` (implemented for the types the
/// workspace needs).
#[must_use]
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Strategy for Any<u8> {
    type Value = u8;
    fn generate(&self, rng: &mut TestRng) -> u8 {
        rng.gen_range(0u8..=u8::MAX)
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.gen()
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.gen()
    }
}

/// A constant strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Range, RangeInclusive};

    /// Accepted size specifications for collection strategies: a fixed
    /// length, a half-open range, or an inclusive range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                min: r.start,
                max: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: (*r.end()).max(*r.start()),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_len(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates ordered sets; like upstream, the set may be smaller than
    /// the drawn size when the element domain yields duplicates.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = sample_len(&self.size, rng);
            let mut out = BTreeSet::new();
            // Bounded retries so tiny domains cannot loop forever.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generates ordered maps; like upstream, the map may be smaller than
    /// the drawn size when the key domain yields duplicates.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = sample_len(&self.size, rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    fn sample_len(size: &SizeRange, rng: &mut TestRng) -> usize {
        if size.min >= size.max {
            size.min
        } else {
            rng.gen_range(size.min..=size.max)
        }
    }
}

/// Number of cases each property runs (override with `PROPTEST_CASES`).
#[must_use]
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(96)
}

/// Runs `body` for [`case_count`] generated cases with a deterministic
/// per-test RNG. Used by the [`proptest!`] macro; not public API upstream.
pub fn run_cases<F: FnMut(&mut TestRng)>(test_name: &str, mut body: F) {
    // FNV-1a over the test name: deterministic, independent of link order.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.as_bytes() {
        seed ^= u64::from(*b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..case_count() as u64 {
        let mut rng = TestRng::seed_from_u64(seed.wrapping_add(case));
        body(&mut rng);
    }
}

/// Asserts a condition inside a property (panics on failure, like a
/// regular `assert!`; this shim performs no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     // (`#[test]` goes here in real test code.)
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -1.0f32..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u32..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn sets_are_deduplicated(s in crate::collection::btree_set(0usize..50, 0..20)) {
            prop_assert!(s.len() < 20);
            prop_assert!(s.iter().all(|&e| e < 50));
        }

        #[test]
        fn maps_have_unique_keys(m in crate::collection::btree_map(0u32..40, -1.0f32..1.0, 0..15)) {
            prop_assert!(m.len() < 15);
        }

        #[test]
        fn any_bool_generates(b in any::<bool>()) {
            let as_int = u8::from(b);
            prop_assert!(as_int <= 1);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut first = Vec::new();
        super::run_cases("determinism", |rng| {
            first.push(Strategy::generate(&(0u32..1000), rng));
        });
        let mut second = Vec::new();
        super::run_cases("determinism", |rng| {
            second.push(Strategy::generate(&(0u32..1000), rng));
        });
        assert_eq!(first, second);
        assert!(first.len() >= 2);
    }
}
