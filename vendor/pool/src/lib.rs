//! Minimal work-stealing thread pool — the offline stand-in for rayon.
//!
//! The build environment cannot fetch crates.io, so this vendored crate
//! implements exactly the parallel-execution surface the workspace uses:
//! [`run`], a scoped parallel-for over an owned job list. Each invocation
//! spawns its workers inside [`std::thread::scope`], so jobs may borrow
//! stack data (the callers all hand out disjoint `&mut` chunks of one
//! buffer), and the pool needs no `unsafe` lifetime laundering — the
//! whole crate is `#![forbid(unsafe_code)]`.
//!
//! # Scheduling
//!
//! Jobs are dealt round-robin into one deque per worker. A worker pops
//! from the *back* of its own deque (LIFO, cache-warm) and, when empty,
//! steals from the *front* of a victim's deque (FIFO, the classic
//! work-stealing split that minimises owner/thief contention). Deques are
//! `Mutex<VecDeque>`s rather than lock-free Chase–Lev arrays: every job
//! this workspace submits is coarse (a GEMM row block, a client's
//! training step, a 64 KiB accumulator shard), so one uncontended lock
//! per job is noise — and it keeps the crate free of `unsafe`.
//!
//! # Determinism
//!
//! The pool makes **no ordering guarantees** between jobs. Callers get
//! bit-exact results the same way they did with scoped threads: every
//! job owns a disjoint output region and is internally serial, so the
//! schedule cannot reassociate any reduction. Jobs cannot submit further
//! jobs (the API has no handle to do so), which is what makes the
//! empty-deques exit condition sound.
//!
//! ```
//! let mut out = vec![0u64; 64];
//! let jobs: Vec<(usize, &mut [u64])> = out.chunks_mut(8).enumerate().collect();
//! gluefl_pool::run(4, jobs, |(i, chunk)| {
//!     for (j, v) in chunk.iter_mut().enumerate() {
//!         *v = (i * 8 + j) as u64;
//!     }
//! });
//! assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static RUNS: AtomicU64 = AtomicU64::new(0);
static JOBS: AtomicU64 = AtomicU64::new(0);
static STEALS: AtomicU64 = AtomicU64::new(0);
static IDLE_NANOS: AtomicU64 = AtomicU64::new(0);

/// Cumulative process-wide scheduling counters (see [`stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Completed [`run`] invocations.
    pub runs: u64,
    /// Jobs executed (every job counts once, stolen or not).
    pub jobs: u64,
    /// Jobs a worker took from another worker's deque.
    pub steals: u64,
    /// Total nanoseconds workers spent looking for work after their own
    /// deque drained (the steal search, successful or not).
    pub idle_nanos: u64,
}

/// A snapshot of the pool's scheduling counters since process start.
///
/// Workers keep the counts in plain per-worker locals and fold them
/// into the process-wide atomics once per worker exit, so the hot loop
/// pays one integer increment per job — nothing per steal probe beyond
/// the clock read that times the idle window. Counters are monotonic
/// and shared by every pool in the process; observers export deltas.
#[must_use]
pub fn stats() -> PoolStats {
    PoolStats {
        runs: RUNS.load(Ordering::Relaxed),
        jobs: JOBS.load(Ordering::Relaxed),
        steals: STEALS.load(Ordering::Relaxed),
        idle_nanos: IDLE_NANOS.load(Ordering::Relaxed),
    }
}

/// Runs every job in `jobs` across at most `threads` workers with
/// work-stealing deques, returning once all jobs have finished.
///
/// The worker count is clamped to the job count (never spawning an idle
/// thread) and to a minimum of one; with a single worker the jobs run
/// inline on the calling thread in submission order, so the serial and
/// `threads = 1` paths are literally the same loop. The calling thread
/// always participates as worker 0.
///
/// # Panics
/// A panic inside `f` propagates to the caller once the scope joins
/// (matching `std::thread::scope` semantics).
pub fn run<J, F>(threads: usize, jobs: Vec<J>, f: F)
where
    J: Send,
    F: Fn(J) + Sync,
{
    let workers = threads.min(jobs.len()).max(1);
    if workers == 1 {
        let n = jobs.len() as u64;
        for job in jobs {
            f(job);
        }
        JOBS.fetch_add(n, Ordering::Relaxed);
        RUNS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // Deal jobs round-robin so every worker starts with a share of the
    // tail (chunked callers submit roughly equal-cost jobs; round-robin
    // also spreads any cost gradient across workers).
    let mut deques: Vec<VecDeque<J>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        deques[i % workers].push_back(job);
    }
    let deques: Vec<Mutex<VecDeque<J>>> = deques.into_iter().map(Mutex::new).collect();
    let deques = &deques;
    let f = &f;
    std::thread::scope(|s| {
        for me in 1..workers {
            s.spawn(move || worker(me, deques, f));
        }
        worker(0, deques, f);
    });
    RUNS.fetch_add(1, Ordering::Relaxed);
}

/// One worker loop: drain the own deque from the back, then steal from
/// the next non-empty victim's front; exit when every deque is empty.
///
/// Scheduling counters (jobs run, steals, idle nanoseconds spent in the
/// steal search) accumulate in plain locals and fold into the global
/// [`stats`] atomics once, on exit.
fn worker<J, F>(me: usize, deques: &[Mutex<VecDeque<J>>], f: &F)
where
    J: Send,
    F: Fn(J) + Sync,
{
    let (mut jobs, mut steals, mut idle_nanos) = (0u64, 0u64, 0u64);
    loop {
        let own = deques[me].lock().expect("pool deque poisoned").pop_back();
        if let Some(job) = own {
            f(job);
            jobs += 1;
            continue;
        }
        let idle_from = Instant::now();
        let mut stolen = None;
        for step in 1..deques.len() {
            let victim = (me + step) % deques.len();
            let job = deques[victim]
                .lock()
                .expect("pool deque poisoned")
                .pop_front();
            if job.is_some() {
                stolen = job;
                break;
            }
        }
        idle_nanos += u64::try_from(idle_from.elapsed().as_nanos()).unwrap_or(u64::MAX);
        match stolen {
            Some(job) => {
                f(job);
                jobs += 1;
                steals += 1;
            }
            // All deques empty: jobs cannot spawn jobs, so no new work
            // can appear — safe to exit.
            None => break,
        }
    }
    JOBS.fetch_add(jobs, Ordering::Relaxed);
    STEALS.fetch_add(steals, Ordering::Relaxed);
    IDLE_NANOS.fetch_add(idle_nanos, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn runs_every_job_exactly_once() {
        let mut out = vec![0u32; 1000];
        let jobs: Vec<(usize, &mut u32)> = out.iter_mut().enumerate().collect();
        super::run(8, jobs, |(i, slot)| *slot += i as u32 + 1);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn single_thread_runs_inline_in_order() {
        let order = Mutex::new(Vec::new());
        super::run(1, (0..16).collect(), |i: usize| {
            order.lock().unwrap().push(i);
        });
        assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn empty_job_list_is_a_no_op() {
        super::run(4, Vec::<usize>::new(), |_| panic!("no jobs to run"));
    }

    #[test]
    fn more_threads_than_jobs_spawns_no_idle_worker() {
        // 64 requested workers, 3 jobs: must still run all three.
        let counter = AtomicUsize::new(0);
        super::run(64, vec![(); 3], |()| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn uneven_job_costs_are_stolen() {
        // One deque gets all the slow jobs (round-robin dealt, so make
        // the slow ones share an index class); the total still completes
        // and every slot is written.
        let mut out = vec![0u8; 256];
        let jobs: Vec<(usize, &mut u8)> = out.iter_mut().enumerate().collect();
        super::run(4, jobs, |(i, slot)| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            *slot = 1;
        });
        assert!(out.iter().all(|&v| v == 1));
    }

    /// Oversubscription stress: far more workers than cores, far more
    /// jobs than workers, with disjoint mutable outputs — the pool must
    /// complete every job exactly once and the scope must join cleanly.
    #[test]
    fn oversubscription_stress() {
        let mut out = vec![0u64; 10_000];
        let jobs: Vec<(usize, &mut u64)> = out.iter_mut().enumerate().collect();
        super::run(128, jobs, |(i, slot)| {
            // A little real work so threads genuinely interleave.
            let mut acc = i as u64;
            for _ in 0..32 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            *slot = acc | 1;
        });
        assert!(out.iter().all(|&v| v != 0));
    }

    #[test]
    fn stats_count_every_job_exactly_once() {
        let before = super::stats();
        super::run(4, (0..777u64).collect(), |_| {});
        super::run(1, (0..23u64).collect(), |_| {});
        let after = super::stats();
        // Deltas, not absolutes: the counters are process-wide and other
        // tests run pools concurrently — so ≥, and exact only for the
        // serial-path contribution we can isolate by the run count.
        assert!(after.jobs - before.jobs >= 800);
        assert!(after.runs - before.runs >= 2);
        assert!(after.steals >= before.steals);
        assert!(after.idle_nanos >= before.idle_nanos);
    }

    // The panic surfaces either directly (worker 0) or as the scope's
    // "a scoped thread panicked" re-panic, so no message is asserted.
    #[test]
    #[should_panic]
    fn job_panic_propagates_to_caller() {
        super::run(4, (0..8).collect(), |i: usize| {
            if i == 5 {
                panic!("job panic propagates");
            }
        });
    }
}
