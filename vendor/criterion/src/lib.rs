//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim implements
//! the surface the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! plain warmup + timed-batch loop reporting ns/iteration; it supports:
//!
//! * `--test` (as passed by `cargo bench -- --test`): run every benchmark
//!   body exactly once as a smoke test, without timing;
//! * a positional substring filter, like upstream criterion;
//! * `GLUEFL_BENCH_JSON=<path>`: append one JSON line per benchmark
//!   (`{"id": ..., "ns_per_iter": ...}`) for machine-readable baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`]: an identity function opaque to
/// the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group, `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher<'a> {
    state: &'a State,
    /// Measured nanoseconds per iteration, if timing ran.
    result_ns: Option<f64>,
}

impl Bencher<'_> {
    /// Runs `f` repeatedly and records the mean wall-clock time per call.
    ///
    /// In `--test` mode the closure runs exactly once and nothing is
    /// recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.state.test_mode {
            black_box(f());
            return;
        }
        // Warmup: run until the clock has advanced a little.
        let warmup_end = Instant::now() + self.state.warmup;
        let mut batch = 1u64;
        while Instant::now() < warmup_end {
            for _ in 0..batch {
                black_box(f());
            }
            batch = (batch * 2).min(1 << 20);
        }
        // Measurement: grow the batch until one batch takes long enough
        // to time reliably, then average over the configured duration.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || batch >= 1 << 24 {
                let mut total = elapsed;
                let mut iters = batch;
                let deadline = Instant::now() + self.state.measurement;
                while Instant::now() < deadline {
                    let start = Instant::now();
                    for _ in 0..batch {
                        black_box(f());
                    }
                    total += start.elapsed();
                    iters += batch;
                }
                self.result_ns = Some(total.as_nanos() as f64 / iters as f64);
                return;
            }
            batch *= 2;
        }
    }
}

#[derive(Debug)]
struct State {
    test_mode: bool,
    filter: Option<String>,
    warmup: Duration,
    measurement: Duration,
    json_path: Option<String>,
}

impl State {
    fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion pass that we accept and ignore.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Self {
            test_mode,
            filter,
            warmup: Duration::from_millis(120),
            measurement: Duration::from_millis(400),
            json_path: std::env::var("GLUEFL_BENCH_JSON").ok(),
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn report(&self, id: &str, ns: Option<f64>) {
        match ns {
            Some(ns) => println!("{id:<48} {ns:>14.1} ns/iter"),
            None => println!("{id:<48} ok (smoke)"),
        }
        if let (Some(path), Some(ns)) = (&self.json_path, ns) {
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(f, "{{\"id\": \"{id}\", \"ns_per_iter\": {ns:.1}}}");
            }
        }
    }
}

/// Entry point: owns CLI options and dispatches benchmark groups.
pub struct Criterion {
    state: State,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            state: State::from_args(),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            state: &self.state,
            name: name.to_string(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&self.state, id, f);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    state: &'a State,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark under `group_name/id`.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(self.state, &full, f);
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher<'_>, &T),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(self.state, &full, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Throughput hints (accepted and ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(state: &State, id: &str, mut f: F) {
    if !state.matches(id) {
        return;
    }
    let mut b = Bencher {
        state,
        result_ns: None,
    };
    f(&mut b);
    state.report(id, b.result_ns);
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn filter_matches_substrings() {
        let st = State {
            test_mode: true,
            filter: Some("topk".into()),
            warmup: Duration::ZERO,
            measurement: Duration::ZERO,
            json_path: None,
        };
        assert!(st.matches("group/topk/100"));
        assert!(!st.matches("group/aggregate"));
    }

    #[test]
    fn test_mode_runs_body_once() {
        let st = State {
            test_mode: true,
            filter: None,
            warmup: Duration::ZERO,
            measurement: Duration::ZERO,
            json_path: None,
        };
        let mut calls = 0usize;
        run_one(&st, "x", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 1);
    }
}
