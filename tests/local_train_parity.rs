//! Local-training parity gates for the allocation-free client path.
//!
//! Two invariants protect the `TrainScratch` refactor:
//!
//! 1. **Pooling parity** — [`gluefl_core::local_train_into`] (pooled
//!    parameter buffer, *reused* scratch, pooled velocity, staged
//!    minibatches) must produce bit-identical deltas to the
//!    clone-per-client shape of the pre-refactor path: deep model clone
//!    plus fresh buffers every step (`sample_batch` + `loss_and_grad` +
//!    a fresh [`Sgd`] per client). Both sides share today's forward/
//!    backward kernels, so this gate pins the *pooling and reuse*
//!    semantics (slot recycling, velocity reset, staging hygiene) across
//!    rounds and clients — an arithmetic regression in the shared
//!    kernels is instead caught by the truly independent verbatim
//!    baseline compiled into `expt kernels`
//!    (`crates/bench/src/experiments/local_train_baseline.rs`, equality-
//!    gated before timing) and by the ml crate's finite-difference
//!    gradchecks.
//! 2. **Serial/parallel parity** — with the `parallel` feature, the
//!    client-sharded training loop (and sharded aggregation, same
//!    runtime toggle) must reproduce the serial rounds bit for bit for
//!    both GlueFL and FedAvg. This is CI's `--features parallel` gate.

use gluefl_core::{local_train_into, SimConfig, Simulation, StrategyConfig, TrainSlot};
use gluefl_data::DatasetProfile;
use gluefl_ml::{DatasetModel, Mlp, Sgd};
use gluefl_tensor::rng::{derive_seed, seeded_rng};
use gluefl_tensor::vecops;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_cfg(strategy: StrategyConfig, rounds: u32) -> SimConfig {
    let mut cfg = SimConfig::paper_setup(
        DatasetProfile::Femnist,
        DatasetModel::ShuffleNet,
        strategy,
        0.01,
        rounds,
        11,
    );
    cfg.model.hidden = vec![20];
    cfg.dataset.feature_dim = 14;
    cfg.dataset.classes = 8;
    cfg.dataset.test_samples = 200;
    cfg.eval_every = 2;
    cfg.availability = None;
    cfg.initial_lr = 0.04;
    cfg
}

/// The pre-refactor client-training path *in structure* (deep model
/// clone, a fresh allocating optimizer, per-step allocating
/// minibatch/gradient calls); the arithmetic kernels underneath are
/// today's — see the module docs for what this does and does not pin.
#[allow(clippy::too_many_arguments)]
fn reference_local_train(
    proto: &Mlp,
    global: &[f32],
    data: &gluefl_data::SyntheticFlDataset,
    id: usize,
    steps: usize,
    batch: usize,
    lr: f32,
    momentum: f32,
    seed: u64,
    out: &mut [f32],
    stats_positions: &[usize],
    stats_out: &mut [f32],
    trainable_mask: &gluefl_tensor::BitMask,
) {
    let mut model = proto.clone();
    model.set_params(global);
    let ds = data.client(id);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut opt = Sgd::new(model.num_params(), lr, momentum);
    for _ in 0..steps {
        let (bx, by) = ds.sample_batch(&mut rng, batch);
        let (_, grad) = model.loss_and_grad(&bx, &by);
        opt.step(model.params_mut(), &grad);
    }
    let trained = model.params();
    for (s, &p) in stats_out.iter_mut().zip(stats_positions) {
        *s = trained[p] - global[p];
    }
    vecops::masked_sub_into(out, trained, global, trainable_mask);
}

/// (1) Pooling parity: pooled scratch path ≡ clone-per-client path,
/// bit for bit, across 4 simulated rounds of evolving global weights and
/// a slot reused by every client.
#[test]
fn scratch_path_matches_clone_reference_bitwise() {
    let cfg = tiny_cfg(StrategyConfig::FedAvg, 1);
    let sim = Simulation::new(cfg.clone());
    let model = sim.model();
    let dim = model.num_params();
    let trainable_mask = model.layout().trainable_mask();
    let stats_positions: Vec<usize> = trainable_mask.not().iter_ones().collect();
    let mut global = model.params().to_vec();
    let mut slot = TrainSlot::default();
    let mut drift = seeded_rng(7, "global-drift", 0);
    for round in 0..4u32 {
        let lr = cfg.lr_at_round(round);
        for id in [0usize, 3, 7, 11, 19] {
            let seed = derive_seed(
                cfg.seed,
                "local-train",
                (u64::from(round) << 32) | id as u64,
            );
            let mut ref_out = vec![0.0f32; dim];
            let mut ref_stats = vec![0.0f32; stats_positions.len()];
            reference_local_train(
                model,
                &global,
                sim.data(),
                id,
                cfg.local_steps,
                cfg.batch_size,
                lr,
                cfg.momentum,
                seed,
                &mut ref_out,
                &stats_positions,
                &mut ref_stats,
                &trainable_mask,
            );
            let mut new_out = vec![0.0f32; dim];
            let mut new_stats = vec![0.0f32; stats_positions.len()];
            local_train_into(
                model.topology(),
                &global,
                sim.data(),
                id,
                cfg.local_steps,
                cfg.batch_size,
                lr,
                cfg.momentum,
                seed,
                &mut new_out,
                &stats_positions,
                &mut new_stats,
                &trainable_mask,
                &mut slot,
            );
            assert!(
                ref_out
                    .iter()
                    .zip(&new_out)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "trainable delta diverged (round {round}, client {id})"
            );
            assert!(
                ref_stats
                    .iter()
                    .zip(&new_stats)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "BN-statistic drift diverged (round {round}, client {id})"
            );
        }
        // Drift the global weights so later rounds exercise fresh state.
        use rand::Rng;
        for w in global.iter_mut() {
            *w += drift.gen_range(-0.01f32..0.01f32);
        }
    }
}

/// (2) Serial vs parallel client sharding: 4+ rounds of GlueFL and
/// FedAvg must be bit-identical under the runtime toggle. Single test fn
/// (the toggle is process-global within this binary).
#[cfg(feature = "parallel")]
#[test]
fn parallel_client_training_matches_serial_rounds_bitwise() {
    use gluefl_core::aggregate::set_parallel_enabled;
    use gluefl_core::{GlueFlParams, RoundRecord};
    let k = tiny_cfg(StrategyConfig::FedAvg, 1).round_size;
    let configs = || {
        vec![
            tiny_cfg(StrategyConfig::FedAvg, 5),
            tiny_cfg(
                StrategyConfig::GlueFl(GlueFlParams::paper_default(k, DatasetModel::ShuffleNet)),
                5,
            ),
        ]
    };
    let run_all = |parallel: bool| -> Vec<RoundRecord> {
        set_parallel_enabled(parallel);
        let mut recs = Vec::new();
        for cfg in configs() {
            let mut sim = Simulation::new(cfg);
            for _ in 0..5 {
                recs.push(sim.step());
            }
        }
        set_parallel_enabled(true);
        recs
    };
    let parallel = run_all(true);
    let serial = run_all(false);
    assert_eq!(parallel.len(), serial.len());
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.down_bytes, s.down_bytes, "round {}", p.round);
        assert_eq!(p.up_bytes, s.up_bytes, "round {}", p.round);
        assert_eq!(
            p.changed_positions, s.changed_positions,
            "round {}",
            p.round
        );
        assert_eq!(
            p.accuracy.map(f64::to_bits),
            s.accuracy.map(f64::to_bits),
            "accuracy bits diverged at round {}",
            p.round
        );
        assert_eq!(p.loss.map(f64::to_bits), s.loss.map(f64::to_bits));
    }
}
