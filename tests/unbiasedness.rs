//! Theorem-1 integration test: the sticky-sampling aggregation pipeline is
//! unbiased end-to-end — Monte Carlo over the *actual* strategy code
//! (plan → compress → aggregate → rebalance), not a re-derivation.

use gluefl_compress::CompensationMode;
use gluefl_core::strategies::{GlueFlStrategy, Strategy};
use gluefl_core::{GlueFlParams, ScratchPool};
use gluefl_sampling::overcommit::OcStrategy;
use gluefl_suite::tensor::BitMask;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs many rounds where client `i`'s delta is the indicator vector
/// `e_i`; the expected aggregate must converge to `p_i` at position `i`
/// (Theorem 1). Uses `q = q_shr = 1` so masking is the identity and the
/// only randomness is the sampler's.
#[test]
fn gluefl_aggregate_is_unbiased_monte_carlo() {
    let n = 24usize;
    let k = 6usize;
    let params = GlueFlParams {
        q: 1.0,
        q_shr: 1.0,
        sticky_group: 12,
        sticky_draw: 4,
        regen_interval: None,
        compensation: CompensationMode::None,
        equal_weights: false,
    };
    // Non-uniform importance weights to make the test sharp.
    let raw: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    let total: f64 = raw.iter().sum();
    let weights: Vec<f64> = raw.iter().map(|w| w / total).collect();

    let mut rng = StdRng::seed_from_u64(99);
    let mut strategy = GlueFlStrategy::new(
        n,
        k,
        1.0,
        OcStrategy::Proportional,
        weights.clone(),
        params,
        n,
        n,
        BitMask::zeros(n),
        &mut rng,
    );

    let trials = 40_000u32;
    let mut acc = vec![0.0f64; n];
    let mut pool = ScratchPool::new();
    for round in 0..trials {
        let plan = strategy.plan_round(round, &mut rng, &mut gluefl_sampling::AllOnline);
        let mut kept = Vec::new();
        for (id, group) in plan.invited() {
            let mut delta = vec![0.0f32; n];
            delta[id] = 1.0;
            let upload = strategy.compress(round, id, group, &mut delta, &mut pool);
            kept.push((id, group, upload));
        }
        let agg = strategy.aggregate(round, &kept, &mut pool);
        agg.for_each_nonzero(|i, g| acc[i] += f64::from(g));
        strategy.finish_round(round, &mut rng, &plan.sticky_invites, &plan.fresh_invites);
    }

    for i in 0..n {
        let mean = acc[i] / f64::from(trials);
        assert!(
            (mean - weights[i]).abs() < 0.15 * weights[i] + 0.002,
            "position {i}: E[Δ_i] = {mean:.5} vs p_i = {:.5}",
            weights[i]
        );
    }
}

/// The biased Equal variant must *fail* the same test: with equal `1/K`
/// weights, sticky clients (selected more often) are over-represented.
#[test]
fn equal_weights_are_biased_toward_sticky_clients() {
    let n = 24usize;
    let k = 6usize;
    let params = GlueFlParams {
        q: 1.0,
        q_shr: 1.0,
        sticky_group: 12,
        sticky_draw: 5, // heavily sticky rounds
        regen_interval: None,
        compensation: CompensationMode::None,
        equal_weights: true,
    };
    let weights = vec![1.0 / n as f64; n];
    let mut pool = ScratchPool::new();
    let mut rng = StdRng::seed_from_u64(5);
    let mut strategy = GlueFlStrategy::new(
        n,
        k,
        1.0,
        OcStrategy::Proportional,
        weights,
        params,
        n,
        n,
        BitMask::zeros(n),
        &mut rng,
    );
    // Track how much aggregate weight lands on currently-sticky clients.
    let trials = 5_000u32;
    let mut sticky_mass = 0.0f64;
    let mut total_mass = 0.0f64;
    for round in 0..trials {
        let was_sticky: Vec<bool> = (0..n).map(|i| strategy.sampler().is_sticky(i)).collect();
        let plan = strategy.plan_round(round, &mut rng, &mut gluefl_sampling::AllOnline);
        let mut kept = Vec::new();
        for (id, group) in plan.invited() {
            let mut delta = vec![0.0f32; n];
            delta[id] = 1.0;
            let upload = strategy.compress(round, id, group, &mut delta, &mut pool);
            kept.push((id, group, upload));
        }
        let agg = strategy.aggregate(round, &kept, &mut pool);
        agg.for_each_nonzero(|i, g| {
            total_mass += f64::from(g);
            if was_sticky[i] {
                sticky_mass += f64::from(g);
            }
        });
        strategy.finish_round(round, &mut rng, &plan.sticky_invites, &plan.fresh_invites);
    }
    let sticky_share = sticky_mass / total_mass;
    // Unbiased share would be S/N = 0.5; equal weights give C/K = 5/6.
    assert!(
        sticky_share > 0.7,
        "expected heavy sticky bias, got share {sticky_share:.3}"
    );
}
