//! Masked-apply equivalence: the `MaskedUpdate` pipeline (compress →
//! aggregate → word-level masked apply, with all buffers recycled through
//! the [`ScratchPool`]) must produce **bit-identical** global parameters
//! to the dense-apply reference (densify the update, dense `add_assign`)
//! over many rounds, for GlueFL, STC, and FedAvg.
//!
//! The test runs under both feature configurations: the plain build
//! exercises the serial sharded aggregation, and
//! `cargo test --features parallel` (CI's parity gate) exercises the
//! threaded shards feeding the same masked layout.

use gluefl_compress::{ApfConfig, CompensationMode};
use gluefl_core::strategies::{
    ApfStrategy, FedAvgStrategy, GlueFlStrategy, StcStrategy, Strategy, Upload,
};
use gluefl_core::{GlueFlParams, ScratchPool};
use gluefl_sampling::overcommit::OcStrategy;
use gluefl_suite::tensor::{vecops, BitMask};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 30;
const K: usize = 6;
const DIM: usize = 300;
const STATS: usize = 20; // last 20 positions mimic BN statistics
const ROUNDS: u32 = 8;

fn stats_excluded() -> BitMask {
    BitMask::from_indices(DIM, DIM - STATS..DIM)
}

/// Drives `rounds` full strategy rounds with deterministic pseudo-random
/// client deltas, maintaining two copies of the global parameters: one
/// updated through the masked pipeline (`MaskedUpdate::add_to`), one
/// through the dense reference (`to_dense` + `add_assign`). Both must
/// stay bit-identical, and the masked changed-position scan must agree
/// with a dense scan.
fn assert_masked_apply_matches_dense_reference(mut strategy: Box<dyn Strategy>, seed: u64) {
    let name = strategy.name();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = ScratchPool::new();
    let mut delta_rng = StdRng::seed_from_u64(seed ^ 0xD17A);
    let mut params_masked: Vec<f32> = (0..DIM)
        .map(|_| delta_rng.gen_range(-1.0f32..1.0))
        .collect();
    let mut params_ref = params_masked.clone();

    for round in 0..ROUNDS {
        let plan = strategy.plan_round(round, &mut rng, &mut gluefl_sampling::AllOnline);
        let mut kept: Vec<(usize, gluefl_core::strategies::Group, Upload)> = Vec::new();
        for (id, group) in plan.invited() {
            // Trainable random delta with BN-statistic positions zeroed,
            // exactly as local training hands deltas to `compress`.
            let mut delta: Vec<f32> = (0..DIM)
                .map(|i| {
                    if i >= DIM - STATS {
                        0.0
                    } else {
                        delta_rng.gen_range(-1.0f32..1.0)
                    }
                })
                .collect();
            let upload = strategy.compress(round, id, group, &mut delta, &mut pool);
            kept.push((id, group, upload));
        }
        kept.sort_by_key(|(id, _, _)| *id);
        let update = strategy.aggregate(round, &kept, &mut pool);

        // Masked pipeline: word-level scatter / masked AXPY.
        update.add_to(&mut params_masked);
        let mut changed_masked = Vec::new();
        update.for_each_nonzero(|i, _| changed_masked.push(i));

        // Dense reference: densify, then a plain dense add.
        let dense = update.to_dense();
        vecops::add_assign(&mut params_ref, &dense);
        let changed_ref: Vec<usize> = dense
            .iter()
            .enumerate()
            .filter_map(|(i, v)| (*v != 0.0).then_some(i))
            .collect();

        assert_eq!(
            changed_masked, changed_ref,
            "{name}: changed-position scans diverged at round {round}"
        );
        for i in 0..DIM {
            assert_eq!(
                params_masked[i].to_bits(),
                params_ref[i].to_bits(),
                "{name}: params diverged at round {round}, position {i}: \
                 masked {} vs dense {}",
                params_masked[i],
                params_ref[i]
            );
        }

        // Recycle everything, as the simulator does — later rounds then
        // run on reused buffers, which must not perturb the results.
        for (_, _, upload) in kept {
            pool.reclaim_upload(upload);
        }
        pool.put_update(update);
        strategy.finish_round(round, &mut rng, &plan.sticky_invites, &plan.fresh_invites);
    }
    assert!(
        pool.idle_buffers() > 0,
        "{name}: pool never saw a recycled buffer"
    );
}

#[test]
fn fedavg_masked_pipeline_is_bit_identical_to_dense_apply() {
    let weights = vec![1.0 / N as f64; N];
    let s = Box::new(FedAvgStrategy::new(N, K, 1.0, weights, DIM));
    assert_masked_apply_matches_dense_reference(s, 11);
}

#[test]
fn apf_masked_pipeline_is_bit_identical_to_dense_apply() {
    // APF is the one strategy whose (warm-up) active mask covers the
    // BN-statistic positions — with exact-zero packed values, per the
    // Strategy contract — and whose aggregation runs entirely in the
    // packed layout; a short warm-up makes freezing shrink the mask
    // within the tested window.
    let weights = vec![1.0 / N as f64; N];
    let config = ApfConfig {
        threshold: 0.1,
        ema_beta: 0.9,
        initial_period: 2,
        max_period: 8,
        warmup_rounds: 3,
    };
    let s = Box::new(ApfStrategy::new(N, K, 1.0, weights, config, DIM));
    assert_masked_apply_matches_dense_reference(s, 44);
}

#[test]
fn stc_masked_pipeline_is_bit_identical_to_dense_apply() {
    let weights = vec![1.0 / N as f64; N];
    let s = Box::new(StcStrategy::new(
        N,
        K,
        1.0,
        weights,
        0.25,
        DIM - STATS,
        DIM,
        stats_excluded(),
    ));
    assert_masked_apply_matches_dense_reference(s, 22);
}

#[test]
fn gluefl_masked_pipeline_is_bit_identical_to_dense_apply() {
    let params = GlueFlParams {
        q: 0.3,
        q_shr: 0.2,
        sticky_group: 12,
        sticky_draw: 4,
        // Interval 3 puts regeneration rounds (empty shared parts, full-q
        // unique top-k) inside the tested window.
        regen_interval: Some(3),
        compensation: CompensationMode::Rescaled,
        equal_weights: false,
    };
    let weights = vec![1.0 / N as f64; N];
    let mut init_rng = StdRng::seed_from_u64(7);
    let s = Box::new(GlueFlStrategy::new(
        N,
        K,
        1.0,
        OcStrategy::Proportional,
        weights,
        params,
        DIM - STATS,
        DIM,
        stats_excluded(),
        &mut init_rng,
    ));
    assert_masked_apply_matches_dense_reference(s, 33);
}
