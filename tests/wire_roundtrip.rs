//! End-to-end wire-codec gates on the full simulator.
//!
//! 1. **F32 measured ≡ analytic** — with the default `F32` codec, the
//!    bytes actually serialized by `gluefl-wire` for every round's
//!    uploads equal the analytic `WireCost` accounting bit-for-bit, for
//!    every strategy (including ternary-quantized STC and GlueFL's
//!    two-frame split upload), and the measured broadcast equals the
//!    dense-model + mask-bitmap model.
//! 2. **Lossy codecs shrink measured bytes** while training still runs
//!    (finite accuracy, support preserved).
//! 3. **QuantU8 serial ≡ parallel** — deterministic stochastic rounding
//!    is seeded from `(seed, round, client)`, so a quantized simulation
//!    is bit-identical between serial execution and the `parallel`
//!    feature's threaded training/aggregation (CI's parallel leg).

use gluefl_compress::ApfConfig;
use gluefl_core::{GlueFlParams, SimConfig, Simulation, StrategyConfig, WireCodec, WirePolicy};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;
use gluefl_tensor::wire::HEADER_BYTES;
use gluefl_tensor::WireCost;

fn cfg(strategy: StrategyConfig, rounds: u32) -> SimConfig {
    let mut cfg = SimConfig::paper_setup(
        DatasetProfile::Femnist,
        DatasetModel::ShuffleNet,
        strategy,
        0.01,
        rounds,
        23,
    );
    cfg.model.hidden = vec![24];
    cfg.dataset.feature_dim = 12;
    cfg.dataset.classes = 8;
    cfg.dataset.test_samples = 100;
    cfg.eval_every = 3;
    cfg.availability = None;
    cfg
}

fn all_strategies(k: usize) -> Vec<StrategyConfig> {
    vec![
        StrategyConfig::FedAvg,
        StrategyConfig::MdFedAvg,
        StrategyConfig::Stc { q: 0.2 },
        StrategyConfig::StcQuantized { q: 0.2 },
        StrategyConfig::Apf {
            config: ApfConfig::default(),
        },
        StrategyConfig::GlueFl(GlueFlParams::paper_default(k, DatasetModel::ShuffleNet)),
    ]
}

/// Whether a strategy broadcasts a mask bitmap each sync (GlueFL's
/// shared mask, APF's active mask).
fn broadcasts_mask(strategy: &StrategyConfig) -> bool {
    matches!(
        strategy,
        StrategyConfig::Apf { .. } | StrategyConfig::GlueFl(_)
    )
}

#[test]
fn f32_measured_bytes_equal_analytic_for_every_strategy() {
    let k = cfg(StrategyConfig::FedAvg, 1).round_size;
    for strategy in all_strategies(k) {
        let mut sim = Simulation::new(cfg(strategy.clone(), 6));
        let dim = sim.model().num_params();
        let mask_bytes = if broadcasts_mask(&strategy) {
            (dim as u64).div_ceil(8) + HEADER_BYTES
        } else {
            0
        };
        for _ in 0..6 {
            let rec = sim.step();
            assert_eq!(
                rec.wire_up_bytes, rec.up_bytes,
                "{strategy:?}: measured upload bytes diverged from analytic at round {}",
                rec.round
            );
            assert_eq!(
                rec.wire_broadcast_bytes,
                WireCost::dense(dim).total_bytes() + mask_bytes,
                "{strategy:?}: measured broadcast diverged at round {}",
                rec.round
            );
            assert!(rec.wire_up_bytes > 0);
        }
    }
}

/// The F32 wire round-trip must not perturb the training trajectory:
/// run-to-run determinism plus a sanity floor on accuracy (the same
/// bound `tests/end_to_end.rs` uses for the no-wire baseline history).
#[test]
fn f32_roundtrip_is_deterministic_and_trains() {
    let run = || {
        let mut c = cfg(StrategyConfig::FedAvg, 20);
        c.initial_lr = 0.05;
        c.eval_every = 20;
        Simulation::new(c).run()
    };
    let (a, b) = (run(), run());
    assert_eq!(
        a.total.accuracy.to_bits(),
        b.total.accuracy.to_bits(),
        "wire round-trip broke determinism"
    );
    assert!(
        a.total.accuracy > 0.3,
        "accuracy {} barely above chance",
        a.total.accuracy
    );
}

#[test]
fn lossy_codecs_shrink_measured_bytes_and_still_train() {
    for codec in [WireCodec::F16, WireCodec::QuantU8] {
        let k = cfg(StrategyConfig::FedAvg, 1).round_size;
        let mut c = cfg(
            StrategyConfig::GlueFl(GlueFlParams::paper_default(k, DatasetModel::ShuffleNet)),
            8,
        );
        c.wire = WirePolicy::legacy(codec);
        let result = Simulation::new(c).run();
        for rec in &result.rounds {
            assert!(
                rec.wire_up_bytes < rec.up_bytes,
                "{codec:?}: measured {} not below analytic {}",
                rec.wire_up_bytes,
                rec.up_bytes
            );
        }
        let acc = result.total.accuracy;
        assert!(acc.is_finite() && acc > 0.0, "{codec:?}: accuracy {acc}");
    }
}

/// The v2 entropy layouts (delta-varint indices, RLE mask sections) are
/// pure re-encodings of the same positions: every decoded value is
/// bit-identical, so the training trajectory — and therefore every
/// accuracy sample — matches legacy F32 exactly, while the measured
/// wire bytes only shrink (the writer keeps a v1 section whenever it is
/// cheaper).
///
/// Over-commitment is pinned off (`oc = 1.0`, keep == invited): measured
/// frame lengths deliberately drive per-client upload times, so under
/// keep-fastest a cheaper encoding can legitimately change *which*
/// stragglers get dropped — a real systems effect, not an encoding bug.
/// With every invited client kept, bytes only reach the metrics, and
/// trajectory invariance is exact rather than seed-lucky.
#[test]
fn entropy_layouts_keep_f32_trajectory_at_fewer_measured_bytes() {
    let k = cfg(StrategyConfig::FedAvg, 1).round_size;
    let run = |wire: WirePolicy| {
        let mut c = cfg(
            StrategyConfig::GlueFl(GlueFlParams::paper_default(k, DatasetModel::ShuffleNet)),
            6,
        );
        c.oc = 1.0;
        c.wire = wire;
        let mut sim = Simulation::new(c);
        (0..6).map(|_| sim.step()).collect::<Vec<_>>()
    };
    let legacy = run(WirePolicy::legacy(WireCodec::F32));
    let entropy = run(WirePolicy::entropy(WireCodec::F32));
    let mut shrunk = false;
    for (l, e) in legacy.iter().zip(&entropy) {
        assert_eq!(
            l.accuracy.map(f64::to_bits),
            e.accuracy.map(f64::to_bits),
            "entropy layout perturbed the F32 trajectory at round {}",
            l.round
        );
        assert_eq!(l.changed_positions, e.changed_positions);
        assert_eq!(l.up_bytes, e.up_bytes, "analytic accounting must not move");
        assert!(
            e.wire_up_bytes <= l.wire_up_bytes,
            "entropy upload grew at round {}: {} > {}",
            l.round,
            e.wire_up_bytes,
            l.wire_up_bytes
        );
        assert!(
            e.wire_broadcast_bytes <= l.wire_broadcast_bytes,
            "entropy broadcast grew at round {}",
            l.round
        );
        shrunk |= e.wire_up_bytes < l.wire_up_bytes;
    }
    assert!(shrunk, "entropy layouts never beat the v1 sections");
}

/// QuantU8's stochastic rounding must be a pure function of
/// `(seed, round, client)`: two runs of the same quantized config agree
/// bit for bit.
#[test]
fn quantized_runs_are_reproducible() {
    let run = || {
        let mut c = cfg(StrategyConfig::Stc { q: 0.2 }, 6);
        c.wire = WirePolicy::legacy(WireCodec::QuantU8);
        let mut sim = Simulation::new(c);
        (0..6).map(|_| sim.step()).collect::<Vec<_>>()
    };
    for (x, y) in run().iter().zip(&run()) {
        assert_eq!(x.wire_up_bytes, y.wire_up_bytes);
        assert_eq!(x.changed_positions, y.changed_positions);
        assert_eq!(
            x.accuracy.map(f64::to_bits),
            y.accuracy.map(f64::to_bits),
            "quantized run not reproducible at round {}",
            x.round
        );
    }
}

/// CI's parallel-leg gate for the codec axis: a QuantU8 simulation is
/// bit-identical between serial execution and threaded
/// training/aggregation — the quantization seed depends on
/// `(seed, round, client)`, never on thread schedule.
#[cfg(feature = "parallel")]
#[test]
fn quantized_run_bit_identical_serial_vs_parallel() {
    use gluefl_core::aggregate::set_parallel_enabled;
    let k = cfg(StrategyConfig::FedAvg, 1).round_size;
    let configs = || {
        vec![
            cfg(StrategyConfig::FedAvg, 4),
            cfg(
                StrategyConfig::GlueFl(GlueFlParams::paper_default(k, DatasetModel::ShuffleNet)),
                4,
            ),
        ]
    };
    let run_all = |parallel: bool| {
        set_parallel_enabled(parallel);
        let mut recs = Vec::new();
        for mut c in configs() {
            c.wire = WirePolicy::legacy(WireCodec::QuantU8);
            let mut sim = Simulation::new(c);
            for _ in 0..4 {
                recs.push(sim.step());
            }
        }
        set_parallel_enabled(true);
        recs
    };
    let parallel = run_all(true);
    let serial = run_all(false);
    assert_eq!(parallel.len(), serial.len());
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.wire_up_bytes, s.wire_up_bytes);
        assert_eq!(p.up_bytes, s.up_bytes);
        assert_eq!(p.changed_positions, s.changed_positions);
        assert_eq!(
            p.accuracy.map(f64::to_bits),
            s.accuracy.map(f64::to_bits),
            "quantized accuracy bits diverged at round {}",
            p.round
        );
    }
}
