//! Bandwidth-behaviour integration tests: the paper's core claims about
//! who downloads/uploads how much, verified on the full simulator.

use gluefl_core::{GlueFlParams, SimConfig, Simulation, StrategyConfig};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;

fn cfg(strategy: StrategyConfig, rounds: u32) -> SimConfig {
    let mut cfg = SimConfig::paper_setup(
        DatasetProfile::Femnist,
        DatasetModel::ShuffleNet,
        strategy,
        0.01,
        rounds,
        77,
    );
    cfg.model.hidden = vec![32];
    cfg.dataset.feature_dim = 16;
    cfg.dataset.classes = 10;
    cfg.dataset.test_samples = 100;
    cfg.eval_every = u32::MAX; // bandwidth tests don't need evaluation
    cfg.availability = None;
    cfg
}

fn mean_down_after_warmup(result: &gluefl_core::RunResult) -> f64 {
    let recs = &result.rounds[result.rounds.len() / 3..];
    recs.iter().map(|r| r.down_bytes as f64).sum::<f64>() / recs.len() as f64
}

fn mean_up_after_warmup(result: &gluefl_core::RunResult) -> f64 {
    let recs = &result.rounds[result.rounds.len() / 3..];
    recs.iter().map(|r| r.up_bytes as f64).sum::<f64>() / recs.len() as f64
}

#[test]
fn gluefl_downloads_less_than_stc_and_fedavg() {
    // The headline claim (§5.2): with client sampling, GlueFL's sticky
    // clients hold nearly-current state and the shifted mask bounds what
    // changes, so per-round downstream volume drops below both STC and
    // FedAvg.
    let rounds = 30;
    let k = cfg(StrategyConfig::FedAvg, 1).round_size;
    let fedavg = Simulation::new(cfg(StrategyConfig::FedAvg, rounds)).run();
    let stc = Simulation::new(cfg(StrategyConfig::Stc { q: 0.2 }, rounds)).run();
    let gluefl = Simulation::new(cfg(
        StrategyConfig::GlueFl(GlueFlParams::paper_default(k, DatasetModel::ShuffleNet)),
        rounds,
    ))
    .run();
    let (d_fed, d_stc, d_glue) = (
        mean_down_after_warmup(&fedavg),
        mean_down_after_warmup(&stc),
        mean_down_after_warmup(&gluefl),
    );
    assert!(
        d_glue < d_stc,
        "GlueFL down {d_glue:.0} not below STC {d_stc:.0}"
    );
    assert!(
        d_glue < d_fed,
        "GlueFL down {d_glue:.0} not below FedAvg {d_fed:.0}"
    );
}

#[test]
fn stc_uploads_less_than_fedavg_but_downloads_similar() {
    // §2.3: masking cuts upstream, but under client sampling the stale
    // re-syncs keep downstream near FedAvg levels.
    let rounds = 30;
    let fedavg = Simulation::new(cfg(StrategyConfig::FedAvg, rounds)).run();
    let stc = Simulation::new(cfg(StrategyConfig::Stc { q: 0.1 }, rounds)).run();
    let up_ratio = mean_up_after_warmup(&stc) / mean_up_after_warmup(&fedavg);
    assert!(up_ratio < 0.5, "STC upstream ratio {up_ratio:.2} not < 0.5");
    // Staleness keeps downloads well above the q = 10% a mask alone would
    // imply. (At this test's participation ratio K/N = 0.2 clients re-sync
    // after ~5 rounds, so the union of ~5 masks ≈ 30% of the model; the
    // paper's K/N ≈ 0.01 pushes the same effect to ~70%.)
    let down_ratio = mean_down_after_warmup(&stc) / mean_down_after_warmup(&fedavg);
    assert!(
        down_ratio > 2.5 * 0.1,
        "STC downstream ratio {down_ratio:.2} unexpectedly small — staleness \
         should keep downloads well above the mask ratio q"
    );
}

#[test]
fn fedavg_client_downloads_scale_with_staleness() {
    // Figure 2b's mechanism on the tracker: a client that skipped more
    // rounds downloads more, saturating at the full model.
    let mut sim = Simulation::new(cfg(StrategyConfig::FedAvg, 1));
    for _ in 0..10 {
        sim.step();
    }
    let st = sim.staleness();
    let mut prev = 0;
    for skip in 1..=9u32 {
        let stale = st.stale_positions(st.version() - skip);
        assert!(stale >= prev, "staleness decreased at skip {skip}");
        prev = stale;
    }
    // FedAvg changes everything every round → one skip = full model.
    assert_eq!(st.stale_positions(st.version() - 1), st.dim());
}

#[test]
fn stc_staleness_grows_gradually() {
    let mut sim = Simulation::new(cfg(StrategyConfig::Stc { q: 0.1 }, 1));
    for _ in 0..20 {
        sim.step();
    }
    let st = sim.staleness();
    let one = st.stale_positions(st.version() - 1);
    let ten = st.stale_positions(st.version() - 10);
    assert!(one < st.dim() / 2, "one-round staleness too large: {one}");
    assert!(ten > one, "staleness must grow with skip length");
}

#[test]
fn upload_volume_scales_with_overcommitment() {
    let rounds = 10;
    let mut low = cfg(StrategyConfig::Stc { q: 0.2 }, rounds);
    low.oc = 1.0;
    let mut high = cfg(StrategyConfig::Stc { q: 0.2 }, rounds);
    high.oc = 1.5;
    let low_up: u64 = Simulation::new(low).run().total.total_bytes;
    let high_up: u64 = Simulation::new(high).run().total.total_bytes;
    assert!(
        high_up as f64 > low_up as f64 * 1.2,
        "OC=1.5 volume {high_up} not clearly above OC=1.0 {low_up}"
    );
}

#[test]
fn gluefl_mask_bitmap_is_charged() {
    // Every synced client downloads the shared-mask bitmap: with d
    // parameters that is ceil(d/8) bytes (+header) per client per round.
    let k = cfg(StrategyConfig::FedAvg, 1).round_size;
    let gl = cfg(
        StrategyConfig::GlueFl(GlueFlParams::paper_default(k, DatasetModel::ShuffleNet)),
        4,
    );
    let mut sim = Simulation::new(gl);
    let dim = sim.model().num_params();
    let rec = sim.step();
    let min_mask_bytes = (dim as u64).div_ceil(8) * rec.invited as u64;
    assert!(
        rec.down_bytes >= min_mask_bytes,
        "round downstream {} cannot even cover the mask bitmaps {min_mask_bytes}",
        rec.down_bytes
    );
}

#[test]
fn lazy_links_match_eager_distribution() {
    // The on-demand `link_for` path must sample the same population as
    // the eager `sample_links` scan: same left tail, same medians, same
    // down/up correlation. (The streams differ — per-client counter-based
    // vs one shared sequence — so the pin is distributional, at n where
    // the statistics are tight.)
    use gluefl_net::NetworkProfile;
    use rand::SeedableRng;
    let n = 20_000usize;
    let profile = NetworkProfile::MlabEdge;
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
    let eager = profile.sample_links(&mut rng, n);
    let lazy: Vec<gluefl_net::ClientLink> = (0..n).map(|i| profile.link_for(99, i)).collect();

    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let e_med = median(eager.iter().map(|l| l.down_mbps).collect());
    let l_med = median(lazy.iter().map(|l| l.down_mbps).collect());
    assert!(
        (l_med / e_med - 1.0).abs() < 0.1,
        "down median diverged: lazy {l_med:.1} vs eager {e_med:.1}"
    );
    let e_up = median(eager.iter().map(|l| l.up_mbps).collect());
    let l_up = median(lazy.iter().map(|l| l.up_mbps).collect());
    assert!(
        (l_up / e_up - 1.0).abs() < 0.1,
        "up median diverged: lazy {l_up:.1} vs eager {e_up:.1}"
    );
    // Left tail (≤ 10 Mbps fraction) — the slice that drives stragglers.
    let tail = |ls: &[gluefl_net::ClientLink]| {
        ls.iter().filter(|l| l.down_mbps <= 10.0).count() as f64 / ls.len() as f64
    };
    let (e_tail, l_tail) = (tail(&eager), tail(&lazy));
    assert!(
        (e_tail - l_tail).abs() < 0.02,
        "left tail diverged: lazy {l_tail:.3} vs eager {e_tail:.3}"
    );
}

#[test]
fn round_time_reflects_network_profile() {
    use gluefl_net::NetworkProfile;
    let mk = |profile| {
        let mut c = cfg(StrategyConfig::FedAvg, 8);
        c.network = profile;
        let r = Simulation::new(c).run();
        r.rounds.iter().map(|x| x.round_secs).sum::<f64>() / r.rounds.len() as f64
    };
    let edge = mk(NetworkProfile::MlabEdge);
    let dc = mk(NetworkProfile::Datacenter);
    assert!(
        edge > dc,
        "edge rounds ({edge:.2}s) should be slower than datacenter ({dc:.2}s)"
    );
}
