//! End-to-end integration tests: every strategy trains, deterministically,
//! on the full stack (data → model → strategy → simulator → metrics).

use gluefl_core::{GlueFlParams, RunResult, SimConfig, Simulation, StrategyConfig};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;
use gluefl_suite::compress::ApfConfig;

/// A small-but-real configuration: 150 clients, K = 30, tiny model.
fn tiny_cfg(strategy: StrategyConfig, rounds: u32, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_setup(
        DatasetProfile::Femnist,
        DatasetModel::ShuffleNet,
        strategy,
        0.01,
        rounds,
        seed,
    );
    cfg.model.hidden = vec![24];
    cfg.dataset.feature_dim = 16;
    cfg.dataset.classes = 10;
    cfg.dataset.test_samples = 300;
    cfg.eval_every = 5;
    cfg.availability = None;
    cfg.initial_lr = 0.03;
    cfg
}

fn all_strategies(k: usize) -> Vec<StrategyConfig> {
    vec![
        StrategyConfig::FedAvg,
        StrategyConfig::Stc { q: 0.2 },
        StrategyConfig::Apf {
            config: ApfConfig::default(),
        },
        StrategyConfig::GlueFl(GlueFlParams::paper_default(k, DatasetModel::ShuffleNet)),
    ]
}

#[test]
fn every_strategy_completes_and_reports() {
    let k = tiny_cfg(StrategyConfig::FedAvg, 1, 0).round_size;
    for strategy in all_strategies(k) {
        let cfg = tiny_cfg(strategy.clone(), 6, 3);
        let result = Simulation::new(cfg).run();
        assert_eq!(result.rounds.len(), 6, "{strategy:?}");
        assert!(
            result.total.down_bytes > 0,
            "{strategy:?} moved no bytes down"
        );
        assert!(
            result.total.total_bytes > result.total.down_bytes,
            "{strategy:?}"
        );
        assert!(result.total.total_secs > 0.0, "{strategy:?} took no time");
        for rec in &result.rounds {
            assert!(rec.kept > 0 && rec.kept <= rec.invited, "{strategy:?}");
            assert!(rec.changed_positions > 0, "{strategy:?} changed nothing");
        }
    }
}

#[test]
fn every_strategy_learns_above_chance() {
    // 10 classes → chance 10%; all strategies must clearly beat it.
    let k = tiny_cfg(StrategyConfig::FedAvg, 1, 0).round_size;
    for strategy in all_strategies(k) {
        let cfg = tiny_cfg(strategy.clone(), 40, 5);
        let result = Simulation::new(cfg).run();
        assert!(
            result.total.accuracy > 0.25,
            "{strategy:?} accuracy {} barely above chance",
            result.total.accuracy
        );
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let k = tiny_cfg(StrategyConfig::FedAvg, 1, 0).round_size;
    for strategy in all_strategies(k) {
        let a = Simulation::new(tiny_cfg(strategy.clone(), 8, 11)).run();
        let b = Simulation::new(tiny_cfg(strategy.clone(), 8, 11)).run();
        for (x, y) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(x.down_bytes, y.down_bytes, "{strategy:?}");
            assert_eq!(x.up_bytes, y.up_bytes, "{strategy:?}");
            assert_eq!(x.changed_positions, y.changed_positions, "{strategy:?}");
            assert_eq!(x.accuracy, y.accuracy, "{strategy:?}");
            assert_eq!(x.kept, y.kept, "{strategy:?}");
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = Simulation::new(tiny_cfg(StrategyConfig::FedAvg, 5, 1)).run();
    let b = Simulation::new(tiny_cfg(StrategyConfig::FedAvg, 5, 2)).run();
    let same = a
        .rounds
        .iter()
        .zip(&b.rounds)
        .all(|(x, y)| x.down_bytes == y.down_bytes && x.accuracy == y.accuracy);
    assert!(!same, "seeds 1 and 2 produced identical runs");
}

#[test]
fn csv_export_is_well_formed() {
    let result = Simulation::new(tiny_cfg(StrategyConfig::Stc { q: 0.2 }, 5, 1)).run();
    let csv = result.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 6); // header + 5 rounds
    let cols = lines[0].split(',').count();
    for line in &lines[1..] {
        assert_eq!(line.split(',').count(), cols, "ragged CSV row: {line}");
    }
}

#[test]
fn loss_decreases_with_training() {
    let cfg = tiny_cfg(StrategyConfig::FedAvg, 40, 9);
    let result = Simulation::new(cfg).run();
    let losses: Vec<f64> = result.rounds.iter().filter_map(|r| r.loss).collect();
    assert!(losses.len() >= 4);
    let first = losses.first().unwrap();
    let last = losses.last().unwrap();
    assert!(
        last < &(first * 0.7),
        "loss barely moved: {first:.3} → {last:.3}"
    );
}

#[test]
fn availability_churn_still_trains() {
    let mut cfg = tiny_cfg(
        StrategyConfig::GlueFl(GlueFlParams::paper_default(30, DatasetModel::ShuffleNet)),
        15,
        13,
    );
    cfg.availability = Some(gluefl_core::AvailabilityConfig {
        online_fraction: 0.6,
        mean_session_rounds: 8.0,
    });
    let result = Simulation::new(cfg).run();
    assert_eq!(result.rounds.len(), 15);
    // Rounds still produce updates despite 40% of clients being offline.
    assert!(result.rounds.iter().all(|r| r.kept > 0));
}

#[test]
fn run_result_target_detection_on_real_run() {
    let mut cfg = tiny_cfg(StrategyConfig::FedAvg, 40, 5);
    cfg.target_accuracy = Some(0.2); // easily reachable
    let result = Simulation::new(cfg).run();
    assert!(result.target_round.is_some(), "never reached 20% accuracy");
    let at = result.at_target;
    let total = result.total;
    assert!(at.rounds <= total.rounds);
    assert!(at.down_bytes <= total.down_bytes);
    let _ = RunResult::from_rounds("x", result.rounds.clone(), None);
}
