//! Integration tests for the extension strategies: MD sampling and
//! quantized STC (paper §6 related work and footnote 1).

use gluefl_core::{SimConfig, Simulation, StrategyConfig};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;

fn cfg(strategy: StrategyConfig, rounds: u32) -> SimConfig {
    let mut cfg = SimConfig::paper_setup(
        DatasetProfile::Femnist,
        DatasetModel::ShuffleNet,
        strategy,
        0.01,
        rounds,
        19,
    );
    cfg.model.hidden = vec![24];
    cfg.dataset.feature_dim = 16;
    cfg.dataset.classes = 10;
    cfg.dataset.test_samples = 200;
    cfg.eval_every = 10;
    cfg.availability = None;
    cfg.initial_lr = 0.03;
    cfg
}

#[test]
fn md_sampling_trains_above_chance() {
    let result = Simulation::new(cfg(StrategyConfig::MdFedAvg, 30)).run();
    assert_eq!(result.strategy, "md-fedavg");
    assert!(
        result.total.accuracy > 0.25,
        "MD-FedAvg accuracy {}",
        result.total.accuracy
    );
}

#[test]
fn md_sampling_is_deterministic() {
    let a = Simulation::new(cfg(StrategyConfig::MdFedAvg, 6)).run();
    let b = Simulation::new(cfg(StrategyConfig::MdFedAvg, 6)).run();
    for (x, y) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(x.down_bytes, y.down_bytes);
        assert_eq!(x.accuracy, y.accuracy);
    }
}

#[test]
fn quantized_stc_uploads_far_less_than_plain_stc() {
    let rounds = 12;
    let plain = Simulation::new(cfg(StrategyConfig::Stc { q: 0.2 }, rounds)).run();
    let quant = Simulation::new(cfg(StrategyConfig::StcQuantized { q: 0.2 }, rounds)).run();
    let up = |r: &gluefl_core::RunResult| r.rounds.iter().map(|x| x.up_bytes).sum::<u64>() as f64;
    let ratio = up(&quant) / up(&plain);
    // Values shrink from 32 bits to ~1 bit; positions dominate what's
    // left, so expect a substantial (not 32×) reduction.
    assert!(
        ratio < 0.7,
        "quantized/plain upstream ratio {ratio:.2} not clearly below 1"
    );
    // Downstream is *not* reduced by quantizing uploads (server updates
    // are still full-precision in the masking-only model).
    let down_ratio = quant.total.down_bytes as f64 / plain.total.down_bytes as f64;
    assert!(
        (0.7..1.4).contains(&down_ratio),
        "down ratio {down_ratio:.2}"
    );
}

#[test]
fn quantized_stc_still_learns() {
    let result = Simulation::new(cfg(StrategyConfig::StcQuantized { q: 0.3 }, 40)).run();
    assert!(
        result.total.accuracy > 0.2,
        "quantized STC accuracy {}",
        result.total.accuracy
    );
}

#[test]
fn strategy_names_flow_through_results() {
    for (strategy, name) in [
        (StrategyConfig::MdFedAvg, "md-fedavg"),
        (StrategyConfig::StcQuantized { q: 0.2 }, "stc-quant"),
    ] {
        assert_eq!(strategy.name(), name);
        let r = Simulation::new(cfg(strategy, 2)).run();
        assert_eq!(r.strategy, name);
    }
}
