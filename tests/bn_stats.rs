//! Appendix-D integration tests: BatchNorm statistics are aggregated with
//! a plain 1/K mean, excluded from masks, and still synchronised.

use gluefl_core::{GlueFlParams, SimConfig, Simulation, StrategyConfig};
use gluefl_data::DatasetProfile;
use gluefl_ml::{DatasetModel, ParamKind};

fn cfg(strategy: StrategyConfig, rounds: u32) -> SimConfig {
    let mut cfg = SimConfig::paper_setup(
        DatasetProfile::Femnist,
        DatasetModel::ShuffleNet,
        strategy,
        0.01,
        rounds,
        31,
    );
    cfg.model.hidden = vec![16];
    cfg.dataset.feature_dim = 12;
    cfg.dataset.classes = 8;
    cfg.dataset.test_samples = 100;
    cfg.eval_every = u32::MAX;
    cfg.availability = None;
    cfg
}

#[test]
fn num_batches_tracked_advances_by_local_steps_per_round() {
    // Each participating client runs E local steps, each bumping
    // num_batches_tracked by 1; the Appendix-D mean therefore adds E per
    // round to the global counter.
    let mut sim = Simulation::new(cfg(StrategyConfig::FedAvg, 1));
    let seg = sim
        .model()
        .layout()
        .segment("bn0.num_batches_tracked")
        .expect("model has BatchNorm")
        .clone();
    let e = sim.config().local_steps as f32;
    assert_eq!(sim.model().params()[seg.start], 0.0);
    sim.step();
    let after_one = sim.model().params()[seg.start];
    assert!((after_one - e).abs() < 1e-3, "after one round: {after_one}");
    sim.step();
    let after_two = sim.model().params()[seg.start];
    assert!(
        (after_two - 2.0 * e).abs() < 1e-3,
        "after two rounds: {after_two}"
    );
}

#[test]
fn bn_statistics_change_every_round_under_masking() {
    // Even for masking strategies, statistics are synchronised outside the
    // mask, so their positions change every round.
    let k = cfg(StrategyConfig::FedAvg, 1).round_size;
    for strategy in [
        StrategyConfig::Stc { q: 0.1 },
        StrategyConfig::GlueFl(GlueFlParams::paper_default(k, DatasetModel::ShuffleNet)),
    ] {
        let mut sim = Simulation::new(cfg(strategy.clone(), 1));
        let layout = sim.model().layout().clone();
        let stats: Vec<usize> = (0..layout.total())
            .filter(|&i| layout.kind_at(i) == ParamKind::BnStatistic)
            .collect();
        let before: Vec<f32> = stats.iter().map(|&i| sim.model().params()[i]).collect();
        sim.step();
        let after: Vec<f32> = stats.iter().map(|&i| sim.model().params()[i]).collect();
        let changed = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        assert!(
            changed > stats.len() / 2,
            "{strategy:?}: only {changed}/{} statistics moved",
            stats.len()
        );
    }
}

#[test]
fn running_variance_stays_positive() {
    // The 1/K mean of client variance deltas must never drive the global
    // running variance negative (it would NaN the eval forward pass).
    let mut sim = Simulation::new(cfg(StrategyConfig::FedAvg, 1));
    let seg = sim
        .model()
        .layout()
        .segment("bn0.running_var")
        .expect("model has BatchNorm")
        .clone();
    for _ in 0..10 {
        sim.step();
        for i in seg.start..seg.end {
            let v = sim.model().params()[i];
            assert!(v > 0.0, "running_var[{i}] = {v}");
        }
    }
}

#[test]
fn masked_strategies_never_mask_statistics() {
    // The trainable-position change count must respect the q bound while
    // statistics change freely: total changed = q·trainable + all stats.
    let mut sim = Simulation::new(cfg(StrategyConfig::Stc { q: 0.2 }, 1));
    let trainable = sim.model().layout().trainable_count();
    let stats = sim.model().layout().statistic_count();
    for _ in 0..5 {
        let rec = sim.step();
        let q_bound = (trainable as f64 * 0.2).round() as usize;
        assert!(
            rec.changed_positions <= q_bound + stats,
            "changed {} > q·trainable {} + stats {}",
            rec.changed_positions,
            q_bound,
            stats
        );
        assert!(
            rec.changed_positions >= stats,
            "statistics should always change"
        );
    }
}

#[test]
fn eval_remains_finite_throughout_training() {
    let mut c = cfg(
        StrategyConfig::GlueFl(GlueFlParams::paper_default(30, DatasetModel::ShuffleNet)),
        20,
    );
    c.eval_every = 1;
    let result = Simulation::new(c).run();
    for rec in &result.rounds {
        if let Some(l) = rec.loss {
            assert!(l.is_finite(), "round {} loss {l}", rec.round);
        }
        if let Some(a) = rec.accuracy {
            assert!((0.0..=1.0).contains(&a), "round {} accuracy {a}", rec.round);
        }
    }
}
