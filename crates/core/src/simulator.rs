//! The round-by-round federated training simulator.
//!
//! One [`Simulation`] owns the global model, the synthetic dataset, the
//! network/device/availability state, the staleness tracker, and a
//! [`Strategy`]. Each round follows the FedScale-style protocol of §5.1:
//!
//! 1. the strategy invites `OC × K` clients (§5.6);
//! 2. every invited client downloads the positions it is stale on
//!    (§2.3's partial synchronisation) plus any strategy mask, trains `E`
//!    local SGD steps, and uploads its compressed delta — all invited
//!    clients' bytes count toward the volume metrics, kept or not;
//! 3. the fastest `C` sticky / `K−C` fresh finishers are kept; the round's
//!    wall-clock time is the slowest kept client;
//! 4. trainable positions are aggregated by the strategy; BatchNorm
//!    statistics are aggregated with a plain `1/K` mean (Appendix D);
//! 5. the staleness tracker records which positions changed.
//!
//! Local training of invited clients runs on a thread pool; results are
//! deterministic because every client's RNG is derived from
//! `(seed, round, client)` rather than thread schedule.

use crate::config::{SimConfig, StrategyConfig};
use crate::metrics::{RoundRecord, RunResult};
use crate::staleness::StalenessTracker;
use crate::strategies::{build_strategy, Group, Strategy, Upload};
use gluefl_data::SyntheticFlDataset;
use gluefl_ml::{Mlp, Sgd};
use gluefl_net::timing::{fastest, seconds_for_bytes, ClientRoundTime};
use gluefl_net::{AvailabilityTrace, ClientLink};
use gluefl_tensor::rng::{derive_seed, seeded_rng};
use gluefl_tensor::wire::HEADER_BYTES;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A configured, running federated-learning simulation.
pub struct Simulation {
    cfg: SimConfig,
    data: SyntheticFlDataset,
    model: Mlp,
    strategy: Box<dyn Strategy>,
    staleness: StalenessTracker,
    links: Vec<ClientLink>,
    speeds: Vec<f64>,
    availability: AvailabilityTrace,
    /// Flat indices of BN-statistic positions.
    stats_positions: Vec<usize>,
    /// Multiplier applied to byte counts when computing transfer *times*
    /// (1.0 unless `cfg.paper_time_model`).
    time_byte_factor: f64,
    /// Parameter count used for compute-time estimation.
    time_params: usize,
    rng: StdRng,
    round: u32,
}

impl Simulation {
    /// Builds a simulation from a config; all state (data, weights, links,
    /// speeds, masks) derives deterministically from `cfg.seed`.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        let data = SyntheticFlDataset::generate(cfg.dataset.clone(), derive_seed(cfg.seed, "data", 0));
        let n = data.num_clients();
        let mut init_rng = seeded_rng(cfg.seed, "model-init", 0);
        let model = cfg
            .model
            .build(data.feature_dim(), data.classes(), &mut init_rng);
        let dim = model.num_params();
        let layout = model.layout();
        let trainable = layout.trainable_count();
        let stats_excluded = layout.trainable_mask().not();
        let stats_positions: Vec<usize> = stats_excluded.iter_ones().collect();

        let mut strat_rng = seeded_rng(cfg.seed, "strategy", 0);
        let strategy = build_strategy(
            &cfg,
            data.client_weights(),
            trainable,
            dim,
            stats_excluded,
            &mut strat_rng,
        );

        let mut net_rng = seeded_rng(cfg.seed, "network", 0);
        let links = cfg.network.sample_links(&mut net_rng, n);
        let mut dev_rng = seeded_rng(cfg.seed, "devices", 0);
        let speeds = cfg.device.sample_speeds(&mut dev_rng, n);
        let mut avail_rng = seeded_rng(cfg.seed, "availability", 0);
        let availability = match cfg.availability {
            Some(a) => AvailabilityTrace::new(
                n,
                a.online_fraction,
                a.mean_session_rounds,
                &mut avail_rng,
            ),
            None => AvailabilityTrace::always_on(n),
        };

        let staleness = StalenessTracker::new(dim, n);
        let rng = seeded_rng(cfg.seed, "simulation", 0);
        let (time_byte_factor, time_params) = if cfg.paper_time_model {
            (
                cfg.model.paper_scale_factor(dim),
                cfg.model.reference_params as usize,
            )
        } else {
            (1.0, dim)
        };
        Self {
            cfg,
            data,
            model,
            strategy,
            staleness,
            links,
            speeds,
            availability,
            stats_positions,
            time_byte_factor,
            time_params,
            rng,
            round: 0,
        }
    }

    /// The simulation config.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The current global model.
    #[must_use]
    pub fn model(&self) -> &Mlp {
        &self.model
    }

    /// The dataset in use.
    #[must_use]
    pub fn data(&self) -> &SyntheticFlDataset {
        &self.data
    }

    /// The strategy's display name.
    #[must_use]
    pub fn strategy_name(&self) -> String {
        self.strategy.name()
    }

    /// The staleness tracker (position change history + client versions).
    ///
    /// Experiments use this to answer "how much would a client that
    /// skipped `r` rounds have to download?" (Figure 2b).
    #[must_use]
    pub fn staleness(&self) -> &StalenessTracker {
        &self.staleness
    }

    /// Runs all configured rounds and returns the collected results.
    pub fn run(&mut self) -> RunResult {
        let mut records = Vec::with_capacity(self.cfg.rounds as usize);
        for _ in 0..self.cfg.rounds {
            records.push(self.step());
        }
        RunResult::from_rounds(self.strategy.name(), records, self.cfg.target_accuracy)
    }

    /// Executes one round and returns its record.
    pub fn step(&mut self) -> RoundRecord {
        let round = self.round;
        self.round += 1;
        if self.cfg.availability.is_some() {
            self.availability.advance(&mut self.rng);
        }
        let plan = self
            .strategy
            .plan_round(round, &mut self.rng, self.availability.online());
        let invited = plan.invited();
        let mut rec = RoundRecord {
            round,
            invited: invited.len(),
            ..Default::default()
        };
        if invited.is_empty() {
            self.maybe_eval(round, &mut rec);
            return rec;
        }

        // --- Download accounting (every invited client syncs). ---
        let mask_bytes = self.strategy.mask_download_bytes(round);
        let download_bytes: Vec<u64> = invited
            .iter()
            .map(|&(id, _)| self.staleness.download_bytes(id) + mask_bytes)
            .collect();
        for &(id, _) in &invited {
            self.staleness.mark_synced(id);
        }

        // --- Local training (parallel, deterministic). ---
        let lr = self.cfg.lr_at_round(round);
        let global = self.model.params().to_vec();
        let deltas = self.train_invited(&invited, &global, lr, round);

        // --- Compression + upload accounting + timing. ---
        let stats_upload_bytes = self.stats_positions.len() as u64 * 4 + HEADER_BYTES;
        let mut uploads: Vec<Upload> = Vec::with_capacity(invited.len());
        let mut times: Vec<ClientRoundTime> = Vec::with_capacity(invited.len());
        let mut up_bytes_total = 0u64;
        for (i, &(id, group)) in invited.iter().enumerate() {
            let mut trainable_delta = deltas[i].clone();
            for &p in &self.stats_positions {
                trainable_delta[p] = 0.0;
            }
            let upload = self
                .strategy
                .compress(round, id, group, &mut trainable_delta);
            let up_bytes = upload.bytes() + stats_upload_bytes;
            up_bytes_total += up_bytes;
            let link = self.links[id];
            let t_down = (download_bytes[i] as f64 * self.time_byte_factor) as u64;
            let t_up = (up_bytes as f64 * self.time_byte_factor) as u64;
            times.push(ClientRoundTime {
                download_secs: seconds_for_bytes(t_down, link.down_mbps),
                compute_secs: self.cfg.local_steps as f64
                    * self.cfg.device.step_seconds(self.time_params, self.speeds[id]),
                upload_secs: seconds_for_bytes(t_up, link.up_mbps),
            });
            uploads.push(upload);
        }
        rec.down_bytes = download_bytes.iter().sum();
        rec.up_bytes = up_bytes_total;

        // --- Keep the fastest per group (over-commitment, §5.6). ---
        let sticky_n = plan.sticky_invites.len();
        let (sticky_times, fresh_times) = times.split_at(sticky_n);
        let kept_sticky_local = fastest(sticky_times, plan.keep_sticky);
        let kept_fresh_local = fastest(fresh_times, plan.keep_fresh);
        let kept_idx: Vec<usize> = kept_sticky_local
            .iter()
            .copied()
            .chain(kept_fresh_local.iter().map(|&i| i + sticky_n))
            .collect();
        rec.kept = kept_idx.len();

        // --- Aggregate trainable positions via the strategy. ---
        let mut kept_uploads: Vec<(usize, Group, Upload)> = kept_idx
            .iter()
            .map(|&i| (invited[i].0, invited[i].1, uploads[i].clone()))
            .collect();
        kept_uploads.sort_by_key(|(id, _, _)| *id);
        let mut update = self.strategy.aggregate(round, &kept_uploads);

        // --- BatchNorm statistics: plain 1/K mean (Appendix D). ---
        if !kept_idx.is_empty() {
            let inv_k = 1.0 / kept_idx.len() as f32;
            for &p in &self.stats_positions {
                let mean: f32 = kept_idx.iter().map(|&i| deltas[i][p]).sum::<f32>() * inv_k;
                update[p] = mean;
            }
        }

        // --- Apply the update and record changed positions. ---
        {
            let params = self.model.params_mut();
            for (w, u) in params.iter_mut().zip(&update) {
                *w += u;
            }
        }
        rec.changed_positions = update.iter().filter(|v| **v != 0.0).count();
        self.staleness
            .record_update(update.iter().enumerate().filter_map(|(j, v)| {
                (*v != 0.0).then_some(j)
            }));

        // --- Post-round bookkeeping (sticky rebalance). ---
        let kept_sticky_ids: Vec<usize> = kept_sticky_local
            .iter()
            .map(|&i| invited[i].0)
            .collect();
        let kept_fresh_ids: Vec<usize> = kept_fresh_local
            .iter()
            .map(|&i| invited[i + sticky_n].0)
            .collect();
        self.strategy
            .finish_round(round, &mut self.rng, &kept_sticky_ids, &kept_fresh_ids);

        // --- Timing metrics over kept clients. ---
        let kept_times: Vec<ClientRoundTime> =
            kept_idx.iter().map(|&i| times[i]).collect();
        rec.round_secs = kept_times
            .iter()
            .map(ClientRoundTime::total_secs)
            .fold(0.0, f64::max);
        rec.slowest_download_secs = kept_times
            .iter()
            .map(|t| t.download_secs)
            .fold(0.0, f64::max);
        rec.slowest_upload_secs = kept_times
            .iter()
            .map(|t| t.upload_secs)
            .fold(0.0, f64::max);
        rec.slowest_compute_secs = kept_times
            .iter()
            .map(|t| t.compute_secs)
            .fold(0.0, f64::max);
        let kn = kept_times.len().max(1) as f64;
        rec.mean_download_secs =
            kept_times.iter().map(|t| t.download_secs).sum::<f64>() / kn;
        rec.mean_upload_secs = kept_times.iter().map(|t| t.upload_secs).sum::<f64>() / kn;
        rec.mean_compute_secs =
            kept_times.iter().map(|t| t.compute_secs).sum::<f64>() / kn;

        self.maybe_eval(round, &mut rec);
        rec
    }

    fn maybe_eval(&self, round: u32, rec: &mut RoundRecord) {
        let every = self.cfg.eval_every.max(1);
        if (round + 1).is_multiple_of(every) || round + 1 == self.cfg.rounds {
            let (tx, ty) = self.data.test_set();
            let m = self.model.evaluate(tx, ty);
            rec.accuracy = Some(if self.cfg.use_top5 { m.top5 } else { m.top1 });
            rec.loss = Some(m.loss);
        }
    }

    /// Trains every invited client locally, in parallel, returning deltas
    /// in invitation order.
    fn train_invited(
        &self,
        invited: &[(usize, Group)],
        global: &[f32],
        lr: f32,
        round: u32,
    ) -> Vec<Vec<f32>> {
        let cfg = &self.cfg;
        let data = &self.data;
        let proto = &self.model;
        let seed = cfg.seed;
        let worker = |&(id, _): &(usize, Group)| -> Vec<f32> {
            let client_seed =
                derive_seed(seed, "local-train", (u64::from(round) << 32) | id as u64);
            local_train(
                proto,
                global,
                data,
                id,
                cfg.local_steps,
                cfg.batch_size,
                lr,
                cfg.momentum,
                client_seed,
            )
        };
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
            .min(invited.len().max(1));
        if threads <= 1 || invited.len() <= 1 {
            return invited.iter().map(worker).collect();
        }
        let mut results: Vec<Option<Vec<f32>>> = vec![None; invited.len()];
        let chunk = invited.len().div_ceil(threads);
        crossbeam::thread::scope(|s| {
            for (slot_chunk, inv_chunk) in
                results.chunks_mut(chunk).zip(invited.chunks(chunk))
            {
                s.spawn(move |_| {
                    for (slot, inv) in slot_chunk.iter_mut().zip(inv_chunk) {
                        *slot = Some(worker(inv));
                    }
                });
            }
        })
        .expect("local-training worker panicked");
        results
            .into_iter()
            .map(|r| r.expect("worker filled every slot"))
            .collect()
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("strategy", &self.strategy.name())
            .field("round", &self.round)
            .field("clients", &self.data.num_clients())
            .field("dim", &self.model.num_params())
            .finish()
    }
}

/// One client's local training: clone the global model, run `steps`
/// minibatch SGD steps on the client's data, return the parameter delta
/// (including BN statistic drift).
#[allow(clippy::too_many_arguments)]
fn local_train(
    proto: &Mlp,
    global: &[f32],
    data: &SyntheticFlDataset,
    id: usize,
    steps: usize,
    batch: usize,
    lr: f32,
    momentum: f32,
    seed: u64,
) -> Vec<f32> {
    let mut model = proto.clone();
    model.set_params(global);
    let ds = data.client(id);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut opt = Sgd::new(model.num_params(), lr, momentum);
    for _ in 0..steps {
        let (bx, by) = ds.sample_batch(&mut rng, batch);
        let (_, grad) = model.loss_and_grad(&bx, &by);
        opt.step(model.params_mut(), &grad);
    }
    model
        .params()
        .iter()
        .zip(global)
        .map(|(a, b)| a - b)
        .collect()
}

/// Convenience: run one strategy under a config, returning its result.
pub fn run_strategy(mut cfg: SimConfig, strategy: StrategyConfig) -> RunResult {
    cfg.strategy = strategy;
    Simulation::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GlueFlParams;
    use gluefl_data::DatasetProfile;
    use gluefl_ml::DatasetModel;

    fn tiny_cfg(strategy: StrategyConfig) -> SimConfig {
        let mut cfg = SimConfig::paper_setup(
            DatasetProfile::Femnist,
            DatasetModel::ShuffleNet,
            strategy,
            0.02, // 56 clients
            12,
            7,
        );
        // Shrink the model for fast tests.
        cfg.model.hidden = vec![16];
        cfg.dataset.feature_dim = 12;
        cfg.dataset.classes = 8;
        cfg.dataset.test_samples = 200;
        cfg.eval_every = 4;
        cfg.availability = None;
        cfg
    }

    fn tiny_gluefl_params(k: usize) -> GlueFlParams {
        GlueFlParams {
            q: 0.2,
            q_shr: 0.16,
            sticky_group: 4 * k,
            sticky_draw: 4 * k / 5,
            regen_interval: Some(5),
            compensation: gluefl_compress::CompensationMode::Rescaled,
            equal_weights: false,
        }
    }

    #[test]
    fn fedavg_round_runs_and_changes_everything() {
        let mut sim = Simulation::new(tiny_cfg(StrategyConfig::FedAvg));
        let rec = sim.step();
        assert!(rec.invited > rec.kept);
        assert!(rec.down_bytes > 0);
        assert!(rec.up_bytes > 0);
        // FedAvg updates (nearly) every trainable position.
        let dim = sim.model().num_params();
        assert!(
            rec.changed_positions as f64 > 0.9 * dim as f64,
            "only {}/{} changed",
            rec.changed_positions,
            dim
        );
    }

    #[test]
    fn stc_changes_at_most_q_trainable_positions() {
        let mut sim = Simulation::new(tiny_cfg(StrategyConfig::Stc { q: 0.2 }));
        let trainable = sim.model().layout().trainable_count();
        let stats = sim.model().layout().statistic_count();
        for _ in 0..3 {
            let rec = sim.step();
            let bound = (trainable as f64 * 0.2).round() as usize + stats;
            assert!(
                rec.changed_positions <= bound,
                "{} changed > bound {bound}",
                rec.changed_positions
            );
        }
    }

    #[test]
    fn gluefl_round_runs_with_sticky_groups() {
        let mut cfg = tiny_cfg(StrategyConfig::FedAvg);
        let k = cfg.round_size;
        cfg.strategy = StrategyConfig::GlueFl(tiny_gluefl_params(k));
        let mut sim = Simulation::new(cfg);
        for _ in 0..6 {
            let rec = sim.step();
            assert!(rec.kept > 0);
        }
    }

    #[test]
    fn deterministic_across_reruns() {
        let run_once = || {
            let mut sim = Simulation::new(tiny_cfg(StrategyConfig::Stc { q: 0.2 }));
            let mut recs = Vec::new();
            for _ in 0..4 {
                recs.push(sim.step());
            }
            recs
        };
        let a = run_once();
        let b = run_once();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.down_bytes, y.down_bytes);
            assert_eq!(x.up_bytes, y.up_bytes);
            assert_eq!(x.changed_positions, y.changed_positions);
            assert_eq!(x.accuracy, y.accuracy);
        }
    }

    #[test]
    fn training_improves_accuracy_over_rounds() {
        let mut cfg = tiny_cfg(StrategyConfig::FedAvg);
        cfg.rounds = 30;
        cfg.eval_every = 30;
        cfg.initial_lr = 0.05;
        let result = Simulation::new(cfg).run();
        let final_acc = result.total.accuracy;
        // 8 classes → chance 12.5%.
        assert!(
            final_acc > 0.3,
            "final accuracy {final_acc} barely above chance"
        );
    }

    #[test]
    fn availability_reduces_candidates() {
        let mut cfg = tiny_cfg(StrategyConfig::FedAvg);
        cfg.availability = Some(crate::config::AvailabilityConfig {
            online_fraction: 0.5,
            mean_session_rounds: 5.0,
        });
        let mut sim = Simulation::new(cfg);
        let rec = sim.step();
        assert!(rec.invited > 0); // still finds clients among the online half
    }

    #[test]
    fn run_produces_expected_round_count() {
        let cfg = tiny_cfg(StrategyConfig::FedAvg);
        let rounds = cfg.rounds;
        let result = Simulation::new(cfg).run();
        assert_eq!(result.rounds.len(), rounds as usize);
        assert_eq!(result.total.rounds, rounds);
    }
}
