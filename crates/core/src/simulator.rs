//! The round-by-round federated training simulator.
//!
//! One [`Simulation`] owns the global model, the synthetic dataset, the
//! network/device/availability state, the staleness tracker, and a
//! [`Strategy`]. Each round follows the FedScale-style protocol of §5.1:
//!
//! 1. the strategy invites `OC × K` clients (§5.6);
//! 2. every invited client downloads the positions it is stale on
//!    (§2.3's partial synchronisation) plus any strategy mask, trains `E`
//!    local SGD steps, and uploads its compressed delta — all invited
//!    clients' bytes count toward the volume metrics, kept or not (the
//!    exact frame lengths are *predicted* from each upload's shape, so
//!    nothing is serialized before the keep decision);
//! 3. the fastest `C` sticky / `K−C` fresh finishers are kept; the round's
//!    wall-clock time is the slowest kept client;
//! 4. kept uploads — and only kept uploads — are serialized, decoded, and
//!    folded one at a time through the [`crate::stream::StreamingAggregator`]
//!    into the round's [`gluefl_tensor::MaskedUpdate`] (support mask +
//!    packed values), which is applied with the word-level scatter /
//!    masked-AXPY kernels — only the covered positions are touched;
//!    BatchNorm statistics are aggregated with a plain `1/K` mean
//!    (Appendix D) and added directly;
//! 5. the staleness tracker records which positions changed (scanned from
//!    the update's mask, not a dense walk).
//!
//! Local training of invited clients is allocation-free in steady state:
//! each worker owns a pooled [`crate::scratch::TrainSlot`] (parameter
//! buffer + [`gluefl_ml::TrainScratch`]), so a client "clone" is a
//! `copy_from_slice` and every minibatch step reuses warm activation,
//! cache, gradient, and velocity buffers (see [`local_train_into`]).
//! Under the `parallel` feature the client loop is sharded across the
//! vendored [`gluefl_pool`] work-stealing pool; results are bit-identical
//! to serial execution because every client's RNG is derived from
//! `(seed, round, client)` rather than thread schedule.

use crate::config::{SimConfig, StrategyConfig};
use crate::metrics::{RoundRecord, RunResult};
use crate::scratch::{ScratchPool, TrainSlot};
use crate::staleness::StalenessTracker;
use crate::strategies::{build_strategy, Group, Strategy, Upload};
use crate::wire_link;
use gluefl_data::SyntheticFlDataset;
use gluefl_ml::{BatchTrainScratch, Mlp, MlpTopology};
use gluefl_net::timing::{fastest, seconds_for_bytes, ClientRoundTime};
use gluefl_net::{LazyAvailability, LinkCache, SpeedCache};
use gluefl_sampling::AllOnline;
use gluefl_telemetry::{EventKind, Phase, Telemetry, PHASE_COUNT};
use gluefl_tensor::rng::{derive_seed, seeded_rng};
use gluefl_tensor::vecops;
use gluefl_tensor::wire::HEADER_BYTES;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The attached recorder plus the instrument handles the round hot
/// path records through — pre-registered at attach time so the per-round
/// loop never touches the recorder's registry lock.
#[derive(Clone)]
struct SimRecorder {
    hub: Arc<Telemetry>,
    /// Per-upload measured wire bytes (upload + BN-statistic frames).
    wire_up_bytes: gluefl_telemetry::Histogram,
    /// Per-client update ℓ2 norm, in thousandths (the per-client
    /// statistic Optimal Client Sampling–style importance sampling
    /// needs each round).
    update_norm_milli: gluefl_telemetry::Histogram,
}

/// Reads the recorder clock, or 0 with no recorder attached — the
/// entire cost of disabled instrumentation is this one untaken branch
/// per phase boundary.
#[inline]
fn tick(tel: &Option<SimRecorder>) -> u64 {
    match tel {
        Some(t) => t.hub.now_nanos(),
        None => 0,
    }
}

/// Commits a finished round's measured phases to the recorder: one
/// span per non-[`Phase::Train`] phase (training spans are emitted by
/// the training paths themselves, block by block) plus a
/// round-done journal event.
fn commit_phases(tel: &Option<SimRecorder>, round: u32, rec: &RoundRecord) {
    if let Some(t) = tel {
        for p in Phase::ALL {
            let n = rec.phase_nanos[p.index()];
            if n > 0 && p != Phase::Train {
                t.hub.record_phase(p, n, round, -1);
            }
        }
        t.hub.event(
            round,
            -1,
            EventKind::RoundDone {
                kept: rec.kept as u32,
            },
        );
    }
}

/// A configured, running federated-learning simulation.
pub struct Simulation {
    cfg: SimConfig,
    data: SyntheticFlDataset,
    model: Mlp,
    strategy: Box<dyn Strategy>,
    staleness: StalenessTracker,
    /// On-demand per-client links; only participants are ever sampled.
    links: LinkCache,
    /// On-demand per-client compute speeds.
    speeds: SpeedCache,
    /// Lazy availability process; `None` means every client is always
    /// online. Clients are materialised on first touch, so the resident
    /// state is O(touched clients), not O(N).
    availability: Option<LazyAvailability>,
    /// Flat indices of BN-statistic positions.
    stats_positions: Vec<usize>,
    /// Mask of trainable positions (complement of the BN statistics).
    trainable_mask: gluefl_tensor::BitMask,
    /// Multiplier applied to byte counts when computing transfer *times*
    /// (1.0 unless `cfg.paper_time_model`).
    time_byte_factor: f64,
    /// Parameter count used for compute-time estimation.
    time_params: usize,
    rng: StdRng,
    round: u32,
    /// Scratch buffers threaded through the strategy seam; makes the
    /// per-round hot path allocation-free in steady state.
    scratch: ScratchPool,
    /// Reused copy of the global parameters handed to local training.
    global_buf: Vec<f32>,
    /// Reused `(client, group)` invitation list.
    invited_buf: Vec<(usize, Group)>,
    /// Recycled client-delta buffers (one per invited client per round).
    delta_bufs: Vec<Vec<f32>>,
    /// Per-round saves of BN-statistic delta entries (invited × stats).
    stats_saved: Vec<f32>,
    /// Reused list of changed positions per round.
    changed_buf: Vec<usize>,
    /// Cached measured length of the reference broadcast frames (dense
    /// model + mask bitmap) — a run constant, measured on first use.
    wire_broadcast_len: Option<u64>,
    /// Attached recorder; `None` (the default) records nothing and
    /// costs one untaken branch per phase boundary.
    tel: Option<SimRecorder>,
}

impl Simulation {
    /// Builds a simulation from a config; all state (data, weights, links,
    /// speeds, masks) derives deterministically from `cfg.seed`.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        let data =
            SyntheticFlDataset::generate(cfg.dataset.clone(), derive_seed(cfg.seed, "data", 0));
        let n = data.num_clients();
        let mut init_rng = seeded_rng(cfg.seed, "model-init", 0);
        let model = cfg
            .model
            .build(data.feature_dim(), data.classes(), &mut init_rng);
        let dim = model.num_params();
        let layout = model.layout();
        let trainable = layout.trainable_count();
        let trainable_mask = layout.trainable_mask();
        let stats_excluded = trainable_mask.not();
        let stats_positions: Vec<usize> = stats_excluded.iter_ones().collect();

        let mut strat_rng = seeded_rng(cfg.seed, "strategy", 0);
        let strategy = build_strategy(
            &cfg,
            data.client_weights(),
            trainable,
            dim,
            stats_excluded,
            &mut strat_rng,
        );

        let links = LinkCache::new(cfg.network, derive_seed(cfg.seed, "network", 0));
        let speeds = SpeedCache::new(cfg.device, derive_seed(cfg.seed, "devices", 0));
        let availability = cfg.availability.map(|a| {
            LazyAvailability::new(
                n,
                a.online_fraction,
                a.mean_session_rounds,
                derive_seed(cfg.seed, "availability", 0),
            )
        });

        let staleness = StalenessTracker::new(dim, n);
        let rng = seeded_rng(cfg.seed, "simulation", 0);
        let (time_byte_factor, time_params) = if cfg.paper_time_model {
            (
                cfg.model.paper_scale_factor(dim),
                cfg.model.reference_params as usize,
            )
        } else {
            (1.0, dim)
        };
        Self {
            cfg,
            data,
            model,
            strategy,
            staleness,
            links,
            speeds,
            availability,
            stats_positions,
            trainable_mask,
            time_byte_factor,
            time_params,
            rng,
            round: 0,
            scratch: ScratchPool::new(),
            global_buf: Vec::new(),
            invited_buf: Vec::new(),
            delta_bufs: Vec::new(),
            stats_saved: Vec::new(),
            changed_buf: Vec::new(),
            wire_broadcast_len: None,
            tel: None,
        }
    }

    /// Attaches a telemetry recorder: every subsequent [`Simulation::step`]
    /// measures its phases into [`RoundRecord::phase_nanos`], records
    /// them on the recorder's per-phase span table, and journals span
    /// and round events. Without a recorder all of that is skipped and
    /// the measured fields stay zero.
    pub fn set_telemetry(&mut self, tel: Arc<Telemetry>) {
        self.tel = Some(SimRecorder {
            wire_up_bytes: tel.histogram("gluefl_wire_up_bytes", &[]),
            update_norm_milli: tel.histogram("gluefl_client_update_norm_milli", &[]),
            hub: tel,
        });
    }

    /// Builder-style [`Simulation::set_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, tel: Arc<Telemetry>) -> Self {
        self.set_telemetry(tel);
        self
    }

    /// The attached recorder, if any.
    #[must_use]
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.tel.as_ref().map(|t| &t.hub)
    }

    /// Serializes the round's reference broadcast — one dense full-model
    /// frame plus the strategy's mask frame — through a pooled arena and
    /// returns the measured byte count. Model weights always travel at
    /// full F32 precision (clients must train on the exact global
    /// weights the download accounting assumes); the mask frame may use
    /// the RLE layout when the configured policy admits it.
    fn measure_broadcast(&mut self, round: u32) -> u64 {
        let writer = gluefl_wire::FrameWriter::new(gluefl_wire::WirePolicy {
            codec: gluefl_wire::Codec::F32,
            ..self.cfg.wire
        });
        let mut bbuf = self.scratch.take_bytes();
        let mut measured = writer.dense(
            &mut bbuf,
            round,
            gluefl_wire::Rounding::Nearest,
            self.model.params(),
        ) as u64;
        if let Some(mask) = self.strategy.round_mask(round) {
            measured += writer.mask(&mut bbuf, round, mask) as u64;
        }
        debug_assert!(gluefl_wire::decode_frame_prefix(&bbuf).is_ok());
        self.scratch.put_bytes(bbuf);
        measured
    }

    /// The simulation config.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The current global model.
    #[must_use]
    pub fn model(&self) -> &Mlp {
        &self.model
    }

    /// The dataset in use.
    #[must_use]
    pub fn data(&self) -> &SyntheticFlDataset {
        &self.data
    }

    /// The strategy's display name.
    #[must_use]
    pub fn strategy_name(&self) -> String {
        self.strategy.name()
    }

    /// The staleness tracker (position change history + client versions).
    ///
    /// Experiments use this to answer "how much would a client that
    /// skipped `r` rounds have to download?" (Figure 2b).
    #[must_use]
    pub fn staleness(&self) -> &StalenessTracker {
        &self.staleness
    }

    /// Runs all configured rounds and returns the collected results.
    pub fn run(&mut self) -> RunResult {
        let mut records = Vec::with_capacity(self.cfg.rounds as usize);
        for _ in 0..self.cfg.rounds {
            records.push(self.step());
        }
        RunResult::from_rounds(self.strategy.name(), records, self.cfg.target_accuracy)
    }

    /// Executes one round and returns its record.
    pub fn step(&mut self) -> RoundRecord {
        let round = self.round;
        self.round += 1;
        // Phase measurement: `tick` reads the recorder clock (or 0 when
        // none is attached), phase boundaries accumulate into a local
        // table, and `commit_phases` publishes the finished round. The
        // recorder handle is cloned out of `self` (three `Arc` bumps)
        // so measurement never fights the `&mut self` borrows below.
        let tel = self.tel.clone();
        let step_start = tick(&tel);
        let mut phase_ns = [0u64; PHASE_COUNT];
        // Plan through the lazy availability process: the strategy asks
        // about exactly the candidates it considers, each answered by
        // advancing that client's private session trajectory to `round`.
        // No per-round O(N) scan happens anywhere.
        let plan = match &mut self.availability {
            Some(av) => {
                let mut query = |id: usize| av.is_online(id, round);
                self.strategy.plan_round(round, &mut self.rng, &mut query)
            }
            None => self
                .strategy
                .plan_round(round, &mut self.rng, &mut AllOnline),
        };
        let mut invited = std::mem::take(&mut self.invited_buf);
        invited.clear();
        invited.extend(plan.invited());
        phase_ns[Phase::Draw.index()] = tick(&tel).saturating_sub(step_start);
        let mut rec = RoundRecord {
            round,
            invited: invited.len(),
            ..Default::default()
        };
        if invited.is_empty() {
            self.invited_buf = invited;
            rec.phase_nanos = phase_ns;
            rec.step_nanos = tick(&tel).saturating_sub(step_start);
            commit_phases(&tel, round, &rec);
            self.maybe_eval(round, &mut rec);
            return rec;
        }

        // --- Download accounting (every invited client syncs). ---
        let broadcast_start = tick(&tel);
        let mask_bytes = self.strategy.mask_download_bytes(round);
        let download_bytes: Vec<u64> = invited
            .iter()
            .map(|&(id, _)| self.staleness.download_bytes(id) + mask_bytes)
            .collect();
        for &(id, _) in &invited {
            self.staleness.mark_synced(id);
        }

        // --- Measured broadcast (wire layer). ---
        // One dense full-model frame plus the round's mask frame (when
        // the strategy ships one), serialized through the real codec at
        // full F32 precision — clients must train on the exact global
        // weights the analytic per-client download accounting assumes.
        // Under the legacy layouts the frame lengths depend only on `dim`
        // and the strategy's mask presence, so the measurement is
        // performed once (and re-checked against the analytic model every
        // round in debug builds) rather than paying an O(4d) serialize
        // per round for a run constant. With the entropy layouts the mask
        // frame's length follows the mask's run structure — which changes
        // every round under GlueFL's mask shifting — so it is measured
        // per round.
        rec.wire_broadcast_bytes = if self.cfg.wire.is_legacy() {
            match self.wire_broadcast_len {
                Some(cached) => {
                    debug_assert_eq!(
                        cached,
                        self.measure_broadcast(round),
                        "broadcast frame length changed mid-run"
                    );
                    cached
                }
                None => {
                    let measured = self.measure_broadcast(round);
                    debug_assert_eq!(
                        measured,
                        gluefl_tensor::WireCost::dense(self.model.num_params()).total_bytes()
                            + mask_bytes,
                        "measured broadcast diverged from the analytic download model"
                    );
                    self.wire_broadcast_len = Some(measured);
                    measured
                }
            }
        } else {
            self.measure_broadcast(round)
        };
        phase_ns[Phase::Broadcast.index()] = tick(&tel).saturating_sub(broadcast_start);

        // --- Local training (parallel, deterministic). ---
        // Training writes two things per client: the trainable delta
        // (BN-statistic positions already zeroed by the fused
        // masked-subtraction kernel) and the BN-statistic drift, saved
        // aside for the Appendix-D mean.
        let lr = self.cfg.lr_at_round(round);
        let dim = self.model.num_params();
        let stats_len = self.stats_positions.len();
        self.stats_saved.clear();
        self.stats_saved.resize(invited.len() * stats_len, 0.0);
        let mut global = std::mem::take(&mut self.global_buf);
        global.clear();
        global.extend_from_slice(self.model.params());
        let mut stats_saved = std::mem::take(&mut self.stats_saved);
        let train_start = tick(&tel);
        let mut deltas = self.train_invited(&invited, &global, lr, round, &mut stats_saved);
        phase_ns[Phase::Train.index()] = tick(&tel).saturating_sub(train_start);
        self.stats_saved = stats_saved;
        self.global_buf = global;

        // --- Compression + predicted wire accounting + timing. ---
        // Deltas are compressed in place (no per-client dense clone), but
        // nothing is serialized yet: every wire frame's length depends
        // only on its shape (kind, codec, dim, nnz), never its values, so
        // each client's exact upload byte count is *predicted* from the
        // compressed upload ([`wire_link::encoded_len`]) plus the round's
        // BN-statistic frame length. The predictions are the round's
        // measured upload volume and drive the transfer times, and the
        // keep selection below runs before a single frame is encoded —
        // the information order of a real server, which learns offered
        // lengths before any upload bytes arrive. Dropped clients are
        // never serialized (let alone decoded); their pooled buffers go
        // straight back. Under the default (legacy F32) policy the
        // predicted bytes equal the analytic model (debug-asserted per
        // client, pinned end-to-end by the `wire_roundtrip` suite); the
        // lossy codecs and entropy layouts shrink the measured bytes —
        // and the prediction stays exact for them too, because
        // `encoded_len` prices the upload's actual index pattern.
        let stats_upload_bytes = stats_len as u64 * 4 + HEADER_BYTES;
        let policy = self.cfg.wire;
        let codec = policy.codec;
        let writer = gluefl_wire::FrameWriter::new(policy);
        // BN-statistic frames are mask-aligned (no position section), so
        // their length is shape-only under every policy.
        let stats_frame_len = writer.known_mask_len(stats_len);
        let mut uploads: Vec<Option<Upload>> = Vec::with_capacity(invited.len());
        let mut wire_lens: Vec<u64> = Vec::with_capacity(invited.len());
        let mut times: Vec<ClientRoundTime> = Vec::with_capacity(invited.len());
        let mut up_bytes_total = 0u64;
        let mut wire_up_total = 0u64;
        let compress_start = tick(&tel);
        for (i, &(id, group)) in invited.iter().enumerate() {
            let delta = &mut deltas[i];
            if let Some(t) = &tel {
                // The per-client update-norm statistic importance
                // sampling needs (Chen et al.) — measured on the raw
                // delta before compression consumes it.
                let norm2: f64 = delta.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
                t.update_norm_milli.observe((norm2.sqrt() * 1e3) as u64);
            }
            let upload = self
                .strategy
                .compress(round, id, group, delta, &mut self.scratch);
            let analytic_up = upload.bytes() + stats_upload_bytes;
            let wire_up = wire_link::encoded_len(&upload, &policy) + stats_frame_len;
            debug_assert!(
                !(policy.is_legacy() && codec == gluefl_wire::Codec::F32) || wire_up == analytic_up,
                "legacy-F32 predicted bytes {wire_up} diverged from analytic {analytic_up}"
            );
            if let Some(t) = &tel {
                t.wire_up_bytes.observe(wire_up);
            }
            uploads.push(Some(upload));
            wire_lens.push(wire_up);

            up_bytes_total += analytic_up;
            wire_up_total += wire_up;
            let link = self.links.get(id);
            let t_down = (download_bytes[i] as f64 * self.time_byte_factor) as u64;
            let t_up = (wire_up as f64 * self.time_byte_factor) as u64;
            times.push(ClientRoundTime {
                download_secs: seconds_for_bytes(t_down, link.down_mbps),
                compute_secs: self.cfg.local_steps as f64
                    * self
                        .cfg
                        .device
                        .step_seconds(self.time_params, self.speeds.get(id)),
                upload_secs: seconds_for_bytes(t_up, link.up_mbps),
            });
        }
        phase_ns[Phase::Encode.index()] += tick(&tel).saturating_sub(compress_start);
        rec.down_bytes = download_bytes.iter().sum();
        rec.up_bytes = up_bytes_total;
        rec.wire_up_bytes = wire_up_total;

        // --- Keep the fastest per group (over-commitment, §5.6). ---
        let sticky_n = plan.sticky_invites.len();
        let (sticky_times, fresh_times) = times.split_at(sticky_n);
        let kept_sticky_local = fastest(sticky_times, plan.keep_sticky);
        let kept_fresh_local = fastest(fresh_times, plan.keep_fresh);
        let kept_idx: Vec<usize> = kept_sticky_local
            .iter()
            .copied()
            .chain(kept_fresh_local.iter().map(|&i| i + sticky_n))
            .collect();
        rec.kept = kept_idx.len();

        // --- Serialize, deserialize, and fold kept uploads as a stream. ---
        // Only kept uploads ever touch the codec. Each one is encoded
        // into a pooled arena (the quantization seed derives from
        // (seed, round, client), so encoding is rerun-stable and
        // independent of processing order), decoded through the same
        // grammar a network server applies to arriving bytes
        // ([`wire_link::decode_upload_with_stats`]), and handed to the
        // [`StreamingAggregator`], which folds it into the round's
        // partial sums the moment its turn comes. The aggregation input
        // is what the wire delivered, not what the clients computed, and
        // each kept client's BN-statistic values are likewise replaced by
        // their decoded frame. Arrivals run in keep-selection order —
        // which is *not* client-id order — so the gate's parking path is
        // exercised every round; there is no collect-then-aggregate
        // staging of decoded uploads, the strategy consumes each on the
        // spot and its buffers go back to the pool.
        let kept_pairs: Vec<(usize, Group)> = kept_idx.iter().map(|&i| invited[i]).collect();
        let mut gate = crate::stream::StreamingAggregator::begin(
            round,
            &kept_pairs,
            &mut *self.strategy,
            &mut self.scratch,
        );
        for &i in &kept_idx {
            let (id, _) = invited[i];
            let upload = uploads[i].take().expect("kept indices are unique");
            let encode_start = tick(&tel);
            let mut wbuf = self.scratch.take_bytes();
            let client_key = (u64::from(round) << 32) | id as u64;
            // Lossy codecs report what each frame actually shipped; the
            // strategy folds the codec residual into the client's
            // error-compensation bank. Only kept uploads — the only ones
            // serialized — feed back, on both this driver and the real
            // transport, so loopback runs stay bit-identical.
            let strategy = &mut self.strategy;
            let ulen = wire_link::encode_upload_with_feedback(
                &upload,
                round,
                &policy,
                derive_seed(self.cfg.seed, "wire-quant", client_key),
                &mut wbuf,
                &mut |ix, sent, shipped| strategy.fold_codec_error(id, ix, sent, shipped),
            );
            let slen = writer.known_mask(
                &mut wbuf,
                round,
                wire_link::rounding_for(
                    codec,
                    derive_seed(self.cfg.seed, "wire-quant-stats", client_key),
                ),
                dim,
                &self.stats_saved[i * stats_len..(i + 1) * stats_len],
            );
            debug_assert_eq!(
                (ulen + slen) as u64,
                wire_lens[i],
                "encoded frame bytes diverged from the predicted length"
            );
            self.scratch.reclaim_upload(upload);
            let decode_start = tick(&tel);
            let (decoded, stats_frame) = wire_link::decode_upload_with_stats(
                &wbuf,
                self.strategy.round_mask(round),
                &mut self.scratch,
            )
            .expect("in-process wire round-trip cannot corrupt");
            let mut stats_back = self.scratch.take_cleared();
            stats_frame.values_into(&mut stats_back);
            self.stats_saved[i * stats_len..(i + 1) * stats_len].copy_from_slice(&stats_back);
            self.scratch.put(stats_back);
            let fold_start = tick(&tel);
            gate.accept(&mut *self.strategy, id, decoded, &mut self.scratch)
                .expect("keep set admits each kept client exactly once");
            let fold_end = tick(&tel);
            phase_ns[Phase::Encode.index()] += decode_start.saturating_sub(encode_start);
            phase_ns[Phase::Decode.index()] += fold_start.saturating_sub(decode_start);
            phase_ns[Phase::Fold.index()] += fold_end.saturating_sub(fold_start);
            self.scratch.put_bytes(wbuf);
        }
        let topk_start = tick(&tel);
        let update = gate.finish(&mut *self.strategy, &mut self.scratch);
        phase_ns[Phase::TopK.index()] = tick(&tel).saturating_sub(topk_start);

        // Dropped clients' uploads were measured (predicted) above but
        // never encoded; recycle their pooled buffers.
        for upload in uploads.into_iter().flatten() {
            self.scratch.reclaim_upload(upload);
        }

        // --- Apply the masked update and record changed positions. ---
        // A masking strategy's update covers O(q·d) positions; the
        // word-level scatter / masked AXPY touches only those, and the
        // changed-position scan walks the mask instead of the dense
        // vector. Per covered position the arithmetic is the same single
        // `+=` as the old dense walk — bit-identical trajectories.
        let apply_start = tick(&tel);
        update.add_to(self.model.params_mut());
        let mut changed = std::mem::take(&mut self.changed_buf);
        changed.clear();
        update.for_each_nonzero(|j, _| {
            // Strategy contract: BN-statistic positions are uncovered or
            // carry exact zeros — a nonzero here would double-apply with
            // the Appendix-D mean below.
            debug_assert!(
                self.stats_positions.binary_search(&j).is_err(),
                "strategy update has a nonzero value at BN-statistic position {j}"
            );
            changed.push(j);
        });

        // --- BatchNorm statistics: plain 1/K mean (Appendix D). ---
        // Stats positions are never covered by a masking strategy's mask
        // (FedAvg's full mask covers them with exact zeros), so the means
        // are added straight into the parameters.
        if !kept_idx.is_empty() {
            let inv_k = 1.0 / kept_idx.len() as f32;
            let params = self.model.params_mut();
            for (j, &p) in self.stats_positions.iter().enumerate() {
                let mean: f32 = kept_idx
                    .iter()
                    .map(|&i| self.stats_saved[i * stats_len + j])
                    .sum::<f32>()
                    * inv_k;
                params[p] += mean;
                if mean != 0.0 {
                    changed.push(p);
                }
            }
        }
        rec.changed_positions = changed.len();
        self.staleness.record_update(changed.iter().copied());
        self.changed_buf = changed;
        self.scratch.put_update(update);
        phase_ns[Phase::Apply.index()] = tick(&tel).saturating_sub(apply_start);

        // --- Post-round bookkeeping (sticky rebalance). ---
        let rebalance_start = tick(&tel);
        let kept_sticky_ids: Vec<usize> = kept_sticky_local.iter().map(|&i| invited[i].0).collect();
        let kept_fresh_ids: Vec<usize> = kept_fresh_local
            .iter()
            .map(|&i| invited[i + sticky_n].0)
            .collect();
        self.strategy
            .finish_round(round, &mut self.rng, &kept_sticky_ids, &kept_fresh_ids);
        phase_ns[Phase::Rebalance.index()] = tick(&tel).saturating_sub(rebalance_start);

        // --- Recycle the per-round buffers. ---
        debug_assert!(deltas.iter().all(|d| d.len() == dim));
        self.delta_bufs.append(&mut deltas);
        self.invited_buf = invited;

        // --- Timing metrics over kept clients. ---
        let kept_times: Vec<ClientRoundTime> = kept_idx.iter().map(|&i| times[i]).collect();
        rec.round_secs = kept_times
            .iter()
            .map(ClientRoundTime::total_secs)
            .fold(0.0, f64::max);
        rec.slowest_download_secs = kept_times
            .iter()
            .map(|t| t.download_secs)
            .fold(0.0, f64::max);
        rec.slowest_upload_secs = kept_times.iter().map(|t| t.upload_secs).fold(0.0, f64::max);
        rec.slowest_compute_secs = kept_times
            .iter()
            .map(|t| t.compute_secs)
            .fold(0.0, f64::max);
        let kn = kept_times.len().max(1) as f64;
        rec.mean_download_secs = kept_times.iter().map(|t| t.download_secs).sum::<f64>() / kn;
        rec.mean_upload_secs = kept_times.iter().map(|t| t.upload_secs).sum::<f64>() / kn;
        rec.mean_compute_secs = kept_times.iter().map(|t| t.compute_secs).sum::<f64>() / kn;

        rec.phase_nanos = phase_ns;
        rec.step_nanos = tick(&tel).saturating_sub(step_start);
        commit_phases(&tel, round, &rec);
        self.maybe_eval(round, &mut rec);
        rec
    }

    fn maybe_eval(&mut self, round: u32, rec: &mut RoundRecord) {
        let every = self.cfg.eval_every.max(1);
        if (round + 1).is_multiple_of(every) || round + 1 == self.cfg.rounds {
            // Evaluate through a pooled slot so eval rounds reuse warm
            // forward buffers instead of building a fresh workspace. The
            // forward pass is the same GEMM-backed kernel path training
            // uses; at test-set batch sizes the `parallel` feature shards
            // GEMM row blocks across threads inside the kernel
            // (bit-identical to serial — rows never share an accumulator).
            let mut slot = self.scratch.take_train_slot();
            let (tx, ty) = self.data.test_set();
            let m = self.model.evaluate_into(tx, ty, &mut slot.scratch);
            self.scratch.put_train_slot(slot);
            rec.accuracy = Some(if self.cfg.use_top5 { m.top5 } else { m.top1 });
            rec.loss = Some(m.loss);
        }
    }

    /// Number of local-training workers for `clients` invited clients:
    /// 1 on serial builds; up to the machine's parallelism when the
    /// `parallel` feature is enabled (and not disabled at runtime via
    /// [`crate::aggregate::set_parallel_enabled`]).
    fn train_threads(&self, clients: usize) -> usize {
        #[cfg(feature = "parallel")]
        if crate::aggregate::parallel_enabled() {
            return std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(clients.max(1));
        }
        let _ = clients;
        1
    }

    /// Trains every invited client locally — client-sharded across worker
    /// threads under the `parallel` feature, in lockstep through the
    /// batched-client GEMM path ([`batch_local_train_into`]) otherwise,
    /// with bit-identical results either way — writing trainable deltas
    /// into recycled buffers (invitation order) and the BN-statistic
    /// drift into `stats_saved` (`invited × stats` flat). Each worker
    /// reuses one pooled [`TrainSlot`] (or the pooled
    /// [`BatchTrainScratch`]), so steady-state training allocates nothing
    /// per minibatch step.
    fn train_invited(
        &mut self,
        invited: &[(usize, Group)],
        global: &[f32],
        lr: f32,
        round: u32,
        stats_saved: &mut [f32],
    ) -> Vec<Vec<f32>> {
        let dim = self.model.num_params();
        let stats_len = self.stats_positions.len();
        assert_eq!(stats_saved.len(), invited.len() * stats_len);
        let tel = self.tel.clone();
        let threads = self.train_threads(invited.len());
        let mut slots: Vec<TrainSlot> = (0..threads)
            .map(|_| self.scratch.take_train_slot())
            .collect();
        let mut results: Vec<Vec<f32>> = (0..invited.len())
            .map(|_| {
                let mut buf = self.delta_bufs.pop().unwrap_or_default();
                buf.clear();
                buf.resize(dim, 0.0);
                buf
            })
            .collect();
        let cfg = &self.cfg;
        let data = &self.data;
        let topo = self.model.topology();
        let stats_positions = &self.stats_positions;
        let trainable_mask = &self.trainable_mask;
        let seed = cfg.seed;
        let worker = |&(id, _): &(usize, Group),
                      out: &mut [f32],
                      stats_out: &mut [f32],
                      slot: &mut TrainSlot| {
            let client_seed =
                derive_seed(seed, "local-train", (u64::from(round) << 32) | id as u64);
            local_train_into(
                topo,
                global,
                data,
                id,
                cfg.local_steps,
                cfg.batch_size,
                lr,
                cfg.momentum,
                client_seed,
                out,
                stats_positions,
                stats_out,
                trainable_mask,
                slot,
            );
        };
        // NOTE: iteration is driven by the invited/result pairing and the
        // stats slices are carved by index — zipping with
        // `stats_saved.chunks_mut(..)` would silently yield zero
        // iterations for models without BN statistics (empty slice).
        if threads <= 1 && invited.len() > 1 {
            // Lockstep batched path: one stacked GEMM per layer across all
            // invited clients (shared weights at step 0, per-client tiles
            // after), bit-identical to the per-client loop below.
            let ids: Vec<usize> = invited.iter().map(|&(id, _)| id).collect();
            let client_seeds: Vec<u64> = ids
                .iter()
                .map(|&id| derive_seed(seed, "local-train", (u64::from(round) << 32) | id as u64))
                .collect();
            let mut batch_scratch = self.scratch.take_batch_train();
            batch_local_train_into(
                topo,
                global,
                data,
                &ids,
                &client_seeds,
                cfg.local_steps,
                cfg.batch_size,
                lr,
                cfg.momentum,
                &mut results,
                stats_positions,
                stats_saved,
                trainable_mask,
                &mut batch_scratch,
                tel.as_ref().map(|t| (&*t.hub, round)),
            );
            self.scratch.put_batch_train(batch_scratch);
        } else if threads <= 1 || invited.len() <= 1 {
            let train_start = tick(&tel);
            let slot = slots.first_mut().expect("at least one train slot");
            for (i, (inv, out)) in invited.iter().zip(&mut results).enumerate() {
                worker(
                    inv,
                    out,
                    &mut stats_saved[i * stats_len..(i + 1) * stats_len],
                    slot,
                );
            }
            if let Some(t) = &tel {
                t.hub.record_phase(
                    Phase::Train,
                    tick(&tel).saturating_sub(train_start),
                    round,
                    -1,
                );
            }
        } else {
            #[cfg(feature = "parallel")]
            {
                let train_start = tick(&tel);
                // One job per (client chunk, train slot): each job owns
                // its slot, so the pool's workers never share mutable
                // training state, and every client is internally serial —
                // bit-identical to the serial loop for any schedule.
                let chunk = invited.len().div_ceil(threads);
                let mut jobs = Vec::with_capacity(threads);
                let mut stats_rest: &mut [f32] = stats_saved;
                for ((res_chunk, inv_chunk), slot) in results
                    .chunks_mut(chunk)
                    .zip(invited.chunks(chunk))
                    .zip(&mut slots)
                {
                    let take = res_chunk.len() * stats_len;
                    let (stats_chunk, rest) = std::mem::take(&mut stats_rest).split_at_mut(take);
                    stats_rest = rest;
                    jobs.push((res_chunk, inv_chunk, stats_chunk, slot));
                }
                gluefl_pool::run(
                    threads,
                    jobs,
                    |(res_chunk, inv_chunk, stats_chunk, slot): (
                        &mut [Vec<f32>],
                        _,
                        &mut [f32],
                        &mut TrainSlot,
                    )| {
                        for (j, (out, inv)) in res_chunk.iter_mut().zip(inv_chunk).enumerate() {
                            worker(
                                inv,
                                out,
                                &mut stats_chunk[j * stats_len..(j + 1) * stats_len],
                                slot,
                            );
                        }
                    },
                );
                if let Some(t) = &tel {
                    t.hub.record_phase(
                        Phase::Train,
                        tick(&tel).saturating_sub(train_start),
                        round,
                        -1,
                    );
                }
            }
            #[cfg(not(feature = "parallel"))]
            unreachable!("train_threads() returns 1 without the parallel feature");
        }
        for slot in slots {
            self.scratch.put_train_slot(slot);
        }
        results
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("strategy", &self.strategy.name())
            .field("round", &self.round)
            .field("clients", &self.data.num_clients())
            .field("dim", &self.model.num_params())
            .finish()
    }
}

/// One client's local training, allocation-free in steady state.
///
/// The global parameters are `copy_from_slice`d into the slot's pooled
/// buffer (replacing the old per-client `Mlp` deep clone), then `steps`
/// minibatch SGD-with-momentum steps run through the slot's
/// [`gluefl_ml::TrainScratch`]: minibatches are staged into recycled
/// buffers, [`MlpTopology::loss_and_grad_into`] writes activations,
/// caches, and the gradient into the scratch, and the pooled velocity
/// (zeroed per client, so momentum spans exactly the `E` local steps as
/// in the paper) drives the update. Finally the parameter delta is split:
/// the trainable part goes into `out` via the fused masked-subtraction
/// kernel (BN-statistic positions land as zeros in a single pass), and
/// the BN-statistic drift goes into `stats_out`.
///
/// Deterministic in the arguments alone — the RNG is seeded per call, so
/// results are independent of which worker thread runs the client and
/// bit-identical to the pre-pooling clone-based implementation.
///
/// # Panics
/// Panics if `lr <= 0`, `momentum` is outside `[0, 1)`, or the buffer
/// shapes disagree with the topology.
#[allow(clippy::too_many_arguments)]
pub fn local_train_into(
    topo: &MlpTopology,
    global: &[f32],
    data: &SyntheticFlDataset,
    id: usize,
    steps: usize,
    batch: usize,
    lr: f32,
    momentum: f32,
    seed: u64,
    out: &mut [f32],
    stats_positions: &[usize],
    stats_out: &mut [f32],
    trainable_mask: &gluefl_tensor::BitMask,
    slot: &mut TrainSlot,
) {
    assert!(lr > 0.0, "learning rate must be positive");
    assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
    assert_eq!(
        stats_out.len(),
        stats_positions.len(),
        "stats buffer/positions length mismatch"
    );
    let TrainSlot { params, scratch } = slot;
    params.clear();
    params.extend_from_slice(global);
    scratch.ensure(topo, batch);
    scratch.reset_velocity();
    let ds = data.client(id);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bx = std::mem::take(&mut scratch.batch_x);
    let mut by = std::mem::take(&mut scratch.batch_y);
    for _ in 0..steps {
        ds.sample_batch_into(&mut rng, batch, &mut bx, &mut by);
        let _ = topo.loss_and_grad_into(params, &bx, &by, scratch);
        scratch.sgd_step(params, lr, momentum);
    }
    scratch.batch_x = bx;
    scratch.batch_y = by;
    for (s, &p) in stats_out.iter_mut().zip(stats_positions) {
        *s = params[p] - global[p];
    }
    vecops::masked_sub_into(out, params, global, trainable_mask);
}

/// Trains `ids.len()` clients in lockstep through the batched-client GEMM
/// kernels, bit-identical to calling [`local_train_into`] once per client.
///
/// All invited clients of a round start from the same `global` parameters
/// and run the same number of local steps, so their per-layer GEMMs can be
/// stacked: step 0 runs one `(K·mb) × in_dim` multiply against the shared
/// weight matrix, later steps read each client's weight tile from the
/// stacked parameter block (see [`gluefl_ml::BatchTrainScratch`]). Each
/// client's minibatch stream comes from its own RNG seeded with
/// `seeds[c]`, so the samples — and therefore the whole trajectory — match
/// the serial path draw for draw. Outputs are written exactly as the
/// serial path writes them: `outs[c]` gets the trainable delta via the
/// fused masked subtraction and `stats_saved` the flat `K × stats`
/// BN-statistic drift.
///
/// Clients run in blocks of eight (`CLIENT_BLOCK`): each block finishes all its
/// steps before the next begins, so one block's stacked
/// parameter/velocity/gradient state stays cache-resident per step
/// instead of the whole cohort's cycling through every step. Blocking
/// cannot change any bits — clients never share an accumulator, and each
/// block replays exactly the per-client work in the same order.
///
/// When `trace` carries a recorder and a round number, every client
/// block emits one [`Phase::Train`] span; `None` (the ledger baseline
/// and the parity tests) measures nothing and costs one untaken branch
/// per block.
///
/// # Panics
/// Panics if `ids`, `seeds`, and `outs` disagree in length, `ids` is
/// empty, `lr <= 0`, `momentum` is outside `[0, 1)`, or
/// `stats_saved.len() != ids.len() * stats_positions.len()`.
#[allow(clippy::too_many_arguments)]
pub fn batch_local_train_into(
    topo: &MlpTopology,
    global: &[f32],
    data: &SyntheticFlDataset,
    ids: &[usize],
    seeds: &[u64],
    steps: usize,
    batch: usize,
    lr: f32,
    momentum: f32,
    outs: &mut [Vec<f32>],
    stats_positions: &[usize],
    stats_saved: &mut [f32],
    trainable_mask: &gluefl_tensor::BitMask,
    scratch: &mut BatchTrainScratch,
    trace: Option<(&Telemetry, u32)>,
) {
    assert!(lr > 0.0, "learning rate must be positive");
    assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
    assert!(!ids.is_empty(), "need at least one client");
    assert_eq!(seeds.len(), ids.len(), "one seed per client");
    assert_eq!(outs.len(), ids.len(), "one delta buffer per client");
    let stats_len = stats_positions.len();
    assert_eq!(
        stats_saved.len(),
        ids.len() * stats_len,
        "stats buffer/positions length mismatch"
    );
    let mut outs = outs;
    let mut stats_saved = stats_saved;
    let mut at = 0;
    while at < ids.len() {
        let bl = (ids.len() - at).min(CLIENT_BLOCK);
        let (out_block, outs_rest) = outs.split_at_mut(bl);
        let (stats_block, stats_rest) = stats_saved.split_at_mut(bl * stats_len);
        let block_start = trace.map(|(t, _)| t.now_nanos());
        batch_train_block(
            topo,
            global,
            data,
            &ids[at..at + bl],
            &seeds[at..at + bl],
            steps,
            batch,
            lr,
            momentum,
            out_block,
            stats_positions,
            stats_block,
            trainable_mask,
            scratch,
        );
        if let (Some((t, round)), Some(start)) = (trace, block_start) {
            t.record_phase(Phase::Train, t.now_nanos().saturating_sub(start), round, -1);
        }
        outs = outs_rest;
        stats_saved = stats_rest;
        at += bl;
    }
}

/// Clients per lockstep block of [`batch_local_train_into`]. Eight keeps
/// a block's stacked parameter, velocity, and gradient state within a
/// per-core cache footprint while still feeding the batched kernels
/// enough rows to stack.
const CLIENT_BLOCK: usize = 8;

#[allow(clippy::too_many_arguments)]
fn batch_train_block(
    topo: &MlpTopology,
    global: &[f32],
    data: &SyntheticFlDataset,
    ids: &[usize],
    seeds: &[u64],
    steps: usize,
    batch: usize,
    lr: f32,
    momentum: f32,
    outs: &mut [Vec<f32>],
    stats_positions: &[usize],
    stats_saved: &mut [f32],
    trainable_mask: &gluefl_tensor::BitMask,
    scratch: &mut BatchTrainScratch,
) {
    let stats_len = stats_positions.len();
    scratch.begin(topo, global, ids.len(), batch);
    let row = batch * topo.config().input_dim;
    let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
    // Materialise every client's local dataset once — `data.client` is a
    // full synthesis pass, so calling it per step would dominate the
    // round.
    let datasets: Vec<_> = ids.iter().map(|&id| data.client(id)).collect();
    // `sample_batch_into` clears its buffers, so each client samples into
    // a reused staging pair that is then copied into the client's block of
    // the stacked minibatch.
    let mut bx: Vec<f32> = Vec::new();
    let mut by: Vec<usize> = Vec::new();
    for s in 0..steps {
        for ((c, rng), ds) in rngs.iter_mut().enumerate().zip(&datasets) {
            ds.sample_batch_into(rng, batch, &mut bx, &mut by);
            scratch.batch_x[c * row..(c + 1) * row].copy_from_slice(&bx);
            scratch.batch_y[c * batch..(c + 1) * batch].copy_from_slice(&by);
        }
        scratch.step(topo, s, lr, momentum);
    }
    for (c, out) in outs.iter_mut().enumerate() {
        let params = scratch.client_params(topo, c);
        let stats_out = &mut stats_saved[c * stats_len..(c + 1) * stats_len];
        for (st, &p) in stats_out.iter_mut().zip(stats_positions) {
            *st = params[p] - global[p];
        }
        vecops::masked_sub_into(out, params, global, trainable_mask);
    }
}

/// Convenience: run one strategy under a config, returning its result.
pub fn run_strategy(mut cfg: SimConfig, strategy: StrategyConfig) -> RunResult {
    cfg.strategy = strategy;
    Simulation::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GlueFlParams;
    use gluefl_data::DatasetProfile;
    use gluefl_ml::DatasetModel;

    fn tiny_cfg(strategy: StrategyConfig) -> SimConfig {
        let mut cfg = SimConfig::paper_setup(
            DatasetProfile::Femnist,
            DatasetModel::ShuffleNet,
            strategy,
            0.02, // 56 clients
            12,
            7,
        );
        // Shrink the model for fast tests.
        cfg.model.hidden = vec![16];
        cfg.dataset.feature_dim = 12;
        cfg.dataset.classes = 8;
        cfg.dataset.test_samples = 200;
        cfg.eval_every = 4;
        cfg.availability = None;
        cfg
    }

    fn tiny_gluefl_params(k: usize) -> GlueFlParams {
        GlueFlParams {
            q: 0.2,
            q_shr: 0.16,
            sticky_group: 4 * k,
            sticky_draw: 4 * k / 5,
            regen_interval: Some(5),
            compensation: gluefl_compress::CompensationMode::Rescaled,
            equal_weights: false,
        }
    }

    #[test]
    fn fedavg_round_runs_and_changes_everything() {
        let mut sim = Simulation::new(tiny_cfg(StrategyConfig::FedAvg));
        let rec = sim.step();
        assert!(rec.invited > rec.kept);
        assert!(rec.down_bytes > 0);
        assert!(rec.up_bytes > 0);
        // FedAvg updates (nearly) every trainable position.
        let dim = sim.model().num_params();
        assert!(
            rec.changed_positions as f64 > 0.9 * dim as f64,
            "only {}/{} changed",
            rec.changed_positions,
            dim
        );
    }

    #[test]
    fn stc_changes_at_most_q_trainable_positions() {
        let mut sim = Simulation::new(tiny_cfg(StrategyConfig::Stc { q: 0.2 }));
        let trainable = sim.model().layout().trainable_count();
        let stats = sim.model().layout().statistic_count();
        for _ in 0..3 {
            let rec = sim.step();
            let bound = (trainable as f64 * 0.2).round() as usize + stats;
            assert!(
                rec.changed_positions <= bound,
                "{} changed > bound {bound}",
                rec.changed_positions
            );
        }
    }

    #[test]
    fn gluefl_round_runs_with_sticky_groups() {
        let mut cfg = tiny_cfg(StrategyConfig::FedAvg);
        let k = cfg.round_size;
        cfg.strategy = StrategyConfig::GlueFl(tiny_gluefl_params(k));
        let mut sim = Simulation::new(cfg);
        for _ in 0..6 {
            let rec = sim.step();
            assert!(rec.kept > 0);
        }
    }

    #[test]
    fn deterministic_across_reruns() {
        let run_once = || {
            let mut sim = Simulation::new(tiny_cfg(StrategyConfig::Stc { q: 0.2 }));
            let mut recs = Vec::new();
            for _ in 0..4 {
                recs.push(sim.step());
            }
            recs
        };
        let a = run_once();
        let b = run_once();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.down_bytes, y.down_bytes);
            assert_eq!(x.up_bytes, y.up_bytes);
            assert_eq!(x.changed_positions, y.changed_positions);
            assert_eq!(x.accuracy, y.accuracy);
        }
    }

    /// With the `parallel` feature, the threaded hot paths — sharded
    /// aggregation *and* client-parallel local training, both gated by
    /// the same runtime toggle — must produce bit-identical results to
    /// the serial execution of the same binary, for every strategy,
    /// including accuracies down to the last bit.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_round_bit_identical_to_serial() {
        let _guard = crate::aggregate::parallel_toggle_lock();
        let configs = || {
            let mut gluefl_cfg = tiny_cfg(StrategyConfig::FedAvg);
            let k = gluefl_cfg.round_size;
            gluefl_cfg.strategy = StrategyConfig::GlueFl(tiny_gluefl_params(k));
            vec![
                tiny_cfg(StrategyConfig::FedAvg),
                tiny_cfg(StrategyConfig::Stc { q: 0.2 }),
                gluefl_cfg,
            ]
        };
        let run_all = |parallel: bool| -> Vec<RoundRecord> {
            crate::aggregate::set_parallel_enabled(parallel);
            let mut recs = Vec::new();
            for cfg in configs() {
                let mut sim = Simulation::new(cfg);
                for _ in 0..4 {
                    recs.push(sim.step());
                }
            }
            crate::aggregate::set_parallel_enabled(true);
            recs
        };
        let parallel = run_all(true);
        let serial = run_all(false);
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.down_bytes, s.down_bytes);
            assert_eq!(p.up_bytes, s.up_bytes);
            assert_eq!(p.changed_positions, s.changed_positions);
            assert_eq!(
                p.accuracy.map(f64::to_bits),
                s.accuracy.map(f64::to_bits),
                "accuracy bits diverged at round {}",
                p.round
            );
            assert_eq!(p.loss.map(f64::to_bits), s.loss.map(f64::to_bits));
        }
    }

    /// Client training through a *shared* slot must not leak state
    /// between clients: training the same client twice through a slot
    /// that served another client in between yields identical deltas.
    #[test]
    fn train_slots_leak_no_state_between_clients() {
        use gluefl_tensor::rng::derive_seed;
        let cfg = tiny_cfg(StrategyConfig::FedAvg);
        let sim = Simulation::new(cfg.clone());
        let topo = sim.model().topology();
        let dim = sim.model().num_params();
        let global = sim.model().params().to_vec();
        let mask = sim.model().layout().trainable_mask();
        let stats: Vec<usize> = mask.not().iter_ones().collect();
        let run = |slot: &mut TrainSlot, id: usize| -> Vec<f32> {
            let mut out = vec![0.0f32; dim];
            let mut stats_out = vec![0.0f32; stats.len()];
            local_train_into(
                topo,
                &global,
                sim.data(),
                id,
                cfg.local_steps,
                cfg.batch_size,
                0.05,
                cfg.momentum,
                derive_seed(cfg.seed, "local-train", id as u64),
                &mut out,
                &stats,
                &mut stats_out,
                &mask,
                slot,
            );
            out
        };
        let mut fresh = TrainSlot::default();
        let first = run(&mut fresh, 0);
        let mut reused = TrainSlot::default();
        let _ = run(&mut reused, 1); // warm the slot with another client
                                     // Steady state: a warm slot's buffers (including the minibatch
                                     // staging, which is mem::take'n around the step loop) must not
                                     // be re-allocated by later clients.
        let params_ptr = reused.params.as_ptr();
        let batch_x_ptr = reused.scratch.batch_x.as_ptr();
        let batch_y_ptr = reused.scratch.batch_y.as_ptr();
        let second = run(&mut reused, 0);
        assert!(
            first
                .iter()
                .zip(&second)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "slot reuse changed a client's delta"
        );
        assert_eq!(reused.params.as_ptr(), params_ptr);
        assert_eq!(reused.scratch.batch_x.as_ptr(), batch_x_ptr);
        assert_eq!(reused.scratch.batch_y.as_ptr(), batch_y_ptr);
    }

    /// The lockstep batched-client driver must be bit-identical to one
    /// [`local_train_into`] call per client — trainable deltas and
    /// BN-statistic drift alike — for BN on and off, one client and many,
    /// and across scratch reuse between rounds of different sizes.
    #[test]
    fn batched_round_driver_matches_per_client_serial_bitwise() {
        use gluefl_tensor::rng::derive_seed;
        let mut batch_scratch = BatchTrainScratch::new(); // reused across all shapes
        for batch_norm in [false, true] {
            let mut cfg = tiny_cfg(StrategyConfig::FedAvg);
            cfg.model.batch_norm = batch_norm;
            let sim = Simulation::new(cfg.clone());
            let topo = sim.model().topology();
            let dim = sim.model().num_params();
            let global = sim.model().params().to_vec();
            let mask = sim.model().layout().trainable_mask();
            let stats: Vec<usize> = mask.not().iter_ones().collect();
            for clients in [1usize, 3, 7] {
                let ids: Vec<usize> = (0..clients).collect();
                let seeds: Vec<u64> = ids
                    .iter()
                    .map(|&id| derive_seed(cfg.seed, "local-train", id as u64))
                    .collect();
                let mut slot = TrainSlot::default();
                let mut want = Vec::new();
                let mut want_stats = vec![0.0f32; clients * stats.len()];
                for (c, (&id, &seed)) in ids.iter().zip(&seeds).enumerate() {
                    let mut out = vec![0.0f32; dim];
                    local_train_into(
                        topo,
                        &global,
                        sim.data(),
                        id,
                        cfg.local_steps,
                        cfg.batch_size,
                        0.05,
                        cfg.momentum,
                        seed,
                        &mut out,
                        &stats,
                        &mut want_stats[c * stats.len()..(c + 1) * stats.len()],
                        &mask,
                        &mut slot,
                    );
                    want.push(out);
                }
                let mut got: Vec<Vec<f32>> = (0..clients).map(|_| vec![0.0f32; dim]).collect();
                let mut got_stats = vec![0.0f32; clients * stats.len()];
                batch_local_train_into(
                    topo,
                    &global,
                    sim.data(),
                    &ids,
                    &seeds,
                    cfg.local_steps,
                    cfg.batch_size,
                    0.05,
                    cfg.momentum,
                    &mut got,
                    &stats,
                    &mut got_stats,
                    &mask,
                    &mut batch_scratch,
                    None,
                );
                for (c, (w, g)) in want.iter().zip(&got).enumerate() {
                    assert!(
                        w.iter()
                            .zip(g.iter())
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "delta diverged for client {c} (bn={batch_norm}, K={clients})"
                    );
                }
                assert!(
                    want_stats
                        .iter()
                        .zip(&got_stats)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "BN statistic drift diverged (bn={batch_norm}, K={clients})"
                );
            }
        }
    }

    #[test]
    fn telemetry_measures_phases_that_cover_the_step() {
        let mut cfg = tiny_cfg(StrategyConfig::GlueFl(tiny_gluefl_params(7)));
        cfg.rounds = 3;
        cfg.eval_every = 100; // keep evaluation out of the measured window
        let tel = Arc::new(Telemetry::new());
        let mut sim = Simulation::new(cfg).with_telemetry(Arc::clone(&tel));
        for round in 0..3 {
            let rec = sim.step();
            assert!(
                rec.step_nanos > 0,
                "round {round}: step wall time not measured"
            );
            let covered = rec.measured_phase_total();
            assert!(covered > 0, "round {round}: no phase wall time recorded");
            assert!(
                covered <= rec.step_nanos,
                "round {round}: phases ({covered} ns) exceed the step ({} ns)",
                rec.step_nanos
            );
            // Phases are disjoint sub-intervals of the step; only
            // bookkeeping between them (keep-fastest selection, cost
            // metrics) is unmeasured. The 5% acceptance bound is pinned
            // on the realistic `expt trace` config; this tiny model
            // leaves more headroom for clock granularity and noise.
            assert!(
                covered as f64 >= rec.step_nanos as f64 * 0.5,
                "round {round}: phases cover only {covered} of {} ns",
                rec.step_nanos
            );
            assert!(
                rec.phase_nanos_of(Phase::Train) > 0,
                "train phase unmeasured"
            );
        }
        // The hub aggregated the same spans (Train is recorded by the
        // training driver itself; the rest by `commit_phases`).
        assert!(tel.phase_nanos(Phase::Train) > 0);
        assert!(tel.phase_nanos(Phase::Encode) > 0);
        let snap = tel.snapshot();
        assert!(
            snap.value("gluefl_phase_spans_total", &[("phase", "train")])
                .unwrap()
                > 0.0
        );
        assert!(snap.value("gluefl_wire_up_bytes_count", &[]).unwrap() > 0.0);
        assert!(
            snap.value("gluefl_client_update_norm_milli_count", &[])
                .unwrap()
                > 0.0
        );
        // Round-trips through the text exposition parser.
        let parsed = gluefl_telemetry::Snapshot::parse_text(&snap.render_text()).unwrap();
        assert_eq!(parsed, snap);
        // The journal saw one RoundDone per round.
        let done = tel
            .journal()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RoundDone { .. }))
            .count();
        assert_eq!(done, 3);
    }

    #[test]
    fn telemetry_off_leaves_measured_fields_zero() {
        let cfg = tiny_cfg(StrategyConfig::FedAvg);
        let mut sim = Simulation::new(cfg);
        let rec = sim.step();
        assert_eq!(rec.step_nanos, 0);
        assert_eq!(rec.phase_nanos, [0; PHASE_COUNT]);
        assert!(sim.telemetry().is_none());
    }

    #[test]
    fn training_improves_accuracy_over_rounds() {
        let mut cfg = tiny_cfg(StrategyConfig::FedAvg);
        cfg.rounds = 30;
        cfg.eval_every = 30;
        cfg.initial_lr = 0.05;
        let result = Simulation::new(cfg).run();
        let final_acc = result.total.accuracy;
        // 8 classes → chance 12.5%.
        assert!(
            final_acc > 0.3,
            "final accuracy {final_acc} barely above chance"
        );
    }

    #[test]
    fn models_without_bn_statistics_still_train() {
        // Regression: with stats_len == 0 the per-client stats slices are
        // empty — training must still run for every invited client.
        let mut cfg = tiny_cfg(StrategyConfig::FedAvg);
        cfg.model.batch_norm = false;
        let mut sim = Simulation::new(cfg);
        assert_eq!(sim.model().layout().statistic_count(), 0);
        let rec = sim.step();
        let dim = sim.model().num_params();
        assert!(
            rec.changed_positions as f64 > 0.9 * dim as f64,
            "only {}/{} changed — clients did not train",
            rec.changed_positions,
            dim
        );
    }

    #[test]
    fn availability_reduces_candidates() {
        let mut cfg = tiny_cfg(StrategyConfig::FedAvg);
        cfg.availability = Some(crate::config::AvailabilityConfig {
            online_fraction: 0.5,
            mean_session_rounds: 5.0,
        });
        let mut sim = Simulation::new(cfg);
        let rec = sim.step();
        assert!(rec.invited > 0); // still finds clients among the online half
    }

    #[test]
    fn run_produces_expected_round_count() {
        let cfg = tiny_cfg(StrategyConfig::FedAvg);
        let rounds = cfg.rounds;
        let result = Simulation::new(cfg).run();
        assert_eq!(result.rounds.len(), rounds as usize);
        assert_eq!(result.total.rounds, rounds);
    }
}
