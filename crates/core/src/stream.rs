//! Streaming aggregation: fold kept uploads as they arrive.
//!
//! [`StreamingAggregator`] is the ordering gate between a transport that
//! receives uploads in *arrival* order (sockets, or the simulator's
//! keep-selection order) and the [`Strategy`] fold seam, whose
//! bit-exactness contract requires folding in ascending client-id order
//! (see [`Strategy::fold_begin`]). The gate folds an upload the moment
//! every lower-id kept upload has been folded, and *parks* early arrivals
//! until their turn. Each folded upload's buffers go straight back to the
//! [`ScratchPool`], so the only staging that ever exists is the
//! out-of-order prefix of arrivals — the collect-then-aggregate
//! `O(K·nnz)` buffer is gone.
//!
//! A kept client that fails mid-round (hostile bytes, disconnect,
//! deadline miss) is [`StreamingAggregator::skip`]ped: its slot is marked
//! dead and later ids keep folding, so one bad client never wedges the
//! round.

use crate::scratch::ScratchPool;
use crate::strategies::{FoldAcc, Group, Strategy, Upload};
use gluefl_sampling::ClientId;
use gluefl_tensor::MaskedUpdate;

/// A protocol-level rejection from the streaming gate — the upload was
/// structurally fine but not one the round can accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The client is not in the round's keep set.
    UnknownClient(ClientId),
    /// The client already delivered (or was skipped) this round.
    DuplicateUpload(ClientId),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownClient(c) => write!(f, "client {c} is not in the keep set"),
            Self::DuplicateUpload(c) => write!(f, "client {c} already delivered"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Per-slot delivery state.
#[derive(Debug)]
enum Slot {
    /// Nothing received yet.
    Waiting,
    /// Received out of order; staged until every lower id folds.
    Parked(Upload),
    /// Folded into the accumulator (or skipped) — resolved either way.
    Done,
    /// Skipped: the client failed and contributes nothing.
    Dead,
}

/// The in-order streaming fold over one round's keep set.
///
/// Construction fixes the keep set; [`accept`](Self::accept) feeds
/// arrivals in any order; [`finish`](Self::finish) yields the round's
/// [`MaskedUpdate`], bit-identical to a batch
/// [`Strategy::aggregate`] over the same uploads sorted by client id.
#[derive(Debug)]
pub struct StreamingAggregator {
    round: u32,
    /// Kept `(client, group)` pairs sorted by client id.
    expected: Vec<(ClientId, Group)>,
    slots: Vec<Slot>,
    /// Index of the lowest unresolved slot — everything before it folded
    /// or died.
    next: usize,
    acc: FoldAcc,
}

impl StreamingAggregator {
    /// Opens the gate for round `round` over the kept `(client, group)`
    /// pairs (any order; sorted internally). Calls
    /// [`Strategy::fold_begin`] to allocate the partial-sum buffers.
    ///
    /// # Panics
    /// Panics if the keep set contains a duplicate client id.
    #[must_use]
    pub fn begin(
        round: u32,
        kept: &[(ClientId, Group)],
        strategy: &mut dyn Strategy,
        scratch: &mut ScratchPool,
    ) -> Self {
        let mut expected = kept.to_vec();
        expected.sort_unstable_by_key(|&(id, _)| id);
        assert!(
            expected.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate client id in keep set"
        );
        let slots = expected.iter().map(|_| Slot::Waiting).collect();
        let acc = strategy.fold_begin(round, scratch);
        Self {
            round,
            expected,
            slots,
            next: 0,
            acc,
        }
    }

    /// Number of kept clients whose uploads have been folded so far.
    #[must_use]
    pub fn folded(&self) -> usize {
        self.acc.folded()
    }

    /// Number of kept clients still unresolved (neither folded, parked,
    /// nor skipped).
    #[must_use]
    pub fn waiting(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Waiting))
            .count()
    }

    /// Whether every kept slot is resolved — [`finish`](Self::finish)
    /// may be called.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.next == self.expected.len()
    }

    fn slot_of(&self, id: ClientId) -> Result<usize, StreamError> {
        self.expected
            .binary_search_by_key(&id, |&(c, _)| c)
            .map_err(|_| StreamError::UnknownClient(id))
    }

    /// Delivers client `id`'s upload. Folds it immediately when `id` is
    /// the lowest unresolved client (then drains any parked successors),
    /// otherwise parks it. Takes ownership: folded uploads' buffers are
    /// returned to `scratch` on the spot.
    ///
    /// # Errors
    /// [`StreamError::UnknownClient`] if `id` is not kept;
    /// [`StreamError::DuplicateUpload`] if the slot is already resolved
    /// or parked. The upload's buffers are reclaimed either way.
    pub fn accept(
        &mut self,
        strategy: &mut dyn Strategy,
        id: ClientId,
        upload: Upload,
        scratch: &mut ScratchPool,
    ) -> Result<(), StreamError> {
        let idx = match self.slot_of(id) {
            Ok(i) => i,
            Err(e) => {
                scratch.reclaim_upload(upload);
                return Err(e);
            }
        };
        if !matches!(self.slots[idx], Slot::Waiting) {
            scratch.reclaim_upload(upload);
            return Err(StreamError::DuplicateUpload(id));
        }
        self.slots[idx] = Slot::Parked(upload);
        self.drain(strategy, scratch);
        Ok(())
    }

    /// Marks kept client `id` as failed: it contributes nothing, later
    /// ids keep folding. A parked upload for the client is discarded.
    ///
    /// # Errors
    /// [`StreamError::UnknownClient`] if `id` is not kept;
    /// [`StreamError::DuplicateUpload`] if the slot already folded or
    /// was already skipped.
    pub fn skip(
        &mut self,
        strategy: &mut dyn Strategy,
        id: ClientId,
        scratch: &mut ScratchPool,
    ) -> Result<(), StreamError> {
        let idx = self.slot_of(id)?;
        match std::mem::replace(&mut self.slots[idx], Slot::Dead) {
            Slot::Waiting => {}
            Slot::Parked(upload) => scratch.reclaim_upload(upload),
            resolved => {
                self.slots[idx] = resolved;
                return Err(StreamError::DuplicateUpload(id));
            }
        }
        self.drain(strategy, scratch);
        Ok(())
    }

    /// Folds every in-order parked upload, advancing past dead slots.
    fn drain(&mut self, strategy: &mut dyn Strategy, scratch: &mut ScratchPool) {
        while self.next < self.expected.len() {
            match &self.slots[self.next] {
                Slot::Dead => {
                    self.next += 1;
                }
                Slot::Parked(_) => {
                    let Slot::Parked(upload) =
                        std::mem::replace(&mut self.slots[self.next], Slot::Done)
                    else {
                        unreachable!("matched Parked above")
                    };
                    let (id, group) = self.expected[self.next];
                    strategy.fold_upload(self.round, &mut self.acc, id, group, &upload, scratch);
                    scratch.reclaim_upload(upload);
                    self.next += 1;
                }
                Slot::Waiting | Slot::Done => break,
            }
        }
    }

    /// Completes the round: runs [`Strategy::fold_finish`] and returns
    /// the aggregate.
    ///
    /// # Panics
    /// Panics unless every kept slot is resolved
    /// ([`complete`](Self::complete)) — the caller decides when to give
    /// up on stragglers via [`skip`](Self::skip), never this type.
    #[must_use]
    pub fn finish(self, strategy: &mut dyn Strategy, scratch: &mut ScratchPool) -> MaskedUpdate {
        assert!(
            self.complete(),
            "streaming aggregation finished with unresolved uploads ({} waiting)",
            self.waiting()
        );
        strategy.fold_finish(self.round, self.acc, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::FedAvgStrategy;

    fn uploads(n: usize, dim: usize) -> Vec<(ClientId, Group, Upload)> {
        (0..n)
            .map(|i| {
                let v: Vec<f32> = (0..dim)
                    .map(|j| (i * dim + j) as f32 * 0.01 - 0.3)
                    .collect();
                (i, Group::Fresh, Upload::Dense(v))
            })
            .collect()
    }

    fn masked_bits(u: &MaskedUpdate) -> Vec<u32> {
        u.values().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn reverse_arrival_matches_batch() {
        let dim = 9;
        let kept = uploads(5, dim);
        let mut batch_s = FedAvgStrategy::new(8, 5, 1.0, vec![0.125; 8], dim);
        let mut pool = ScratchPool::new();
        let want = batch_s.aggregate(0, &kept, &mut pool);

        let mut stream_s = FedAvgStrategy::new(8, 5, 1.0, vec![0.125; 8], dim);
        let ids: Vec<(ClientId, Group)> = kept.iter().map(|&(c, g, _)| (c, g)).collect();
        let mut pool2 = ScratchPool::new();
        let mut gate = StreamingAggregator::begin(0, &ids, &mut stream_s, &mut pool2);
        for (id, _, upload) in kept.into_iter().rev() {
            gate.accept(&mut stream_s, id, upload, &mut pool2).unwrap();
        }
        assert!(gate.complete());
        let got = gate.finish(&mut stream_s, &mut pool2);
        assert_eq!(masked_bits(&want), masked_bits(&got));
    }

    #[test]
    fn unknown_and_duplicate_are_typed_errors() {
        let dim = 4;
        let mut s = FedAvgStrategy::new(8, 2, 1.0, vec![0.125; 8], dim);
        let mut pool = ScratchPool::new();
        let mut gate = StreamingAggregator::begin(
            0,
            &[(1, Group::Fresh), (3, Group::Fresh)],
            &mut s,
            &mut pool,
        );
        assert_eq!(
            gate.accept(&mut s, 2, Upload::Dense(vec![0.0; dim]), &mut pool),
            Err(StreamError::UnknownClient(2))
        );
        gate.accept(&mut s, 1, Upload::Dense(vec![1.0; dim]), &mut pool)
            .unwrap();
        assert_eq!(
            gate.accept(&mut s, 1, Upload::Dense(vec![1.0; dim]), &mut pool),
            Err(StreamError::DuplicateUpload(1))
        );
        assert!(!gate.complete());
        gate.accept(&mut s, 3, Upload::Dense(vec![2.0; dim]), &mut pool)
            .unwrap();
        assert!(gate.complete());
        let _ = gate.finish(&mut s, &mut pool);
    }

    #[test]
    fn skipped_client_unblocks_later_ids() {
        let dim = 4;
        let kept = uploads(3, dim);
        // Batch reference over clients {1, 2} only.
        let mut batch_s = FedAvgStrategy::new(8, 3, 1.0, vec![0.125; 8], dim);
        let mut pool = ScratchPool::new();
        let survivors: Vec<_> = kept.iter().filter(|&&(c, _, _)| c != 0).cloned().collect();
        let want = batch_s.aggregate(0, &survivors, &mut pool);

        let mut s = FedAvgStrategy::new(8, 3, 1.0, vec![0.125; 8], dim);
        let ids: Vec<(ClientId, Group)> = kept.iter().map(|&(c, g, _)| (c, g)).collect();
        let mut pool2 = ScratchPool::new();
        let mut gate = StreamingAggregator::begin(0, &ids, &mut s, &mut pool2);
        // 1 and 2 arrive first and park behind the missing client 0.
        for (id, _, upload) in kept.into_iter().skip(1) {
            gate.accept(&mut s, id, upload, &mut pool2).unwrap();
        }
        assert_eq!(gate.folded(), 0, "parked uploads must not fold early");
        gate.skip(&mut s, 0, &mut pool2).unwrap();
        assert!(gate.complete());
        assert_eq!(gate.folded(), 2);
        let got = gate.finish(&mut s, &mut pool2);
        assert_eq!(masked_bits(&want), masked_bits(&got));
    }
}
