//! The four training strategies of the paper's evaluation.
//!
//! Every strategy implements [`Strategy`], the seam between the generic
//! round simulator ([`crate::Simulation`]) and algorithm-specific
//! behaviour: who is invited, how client deltas are compressed, how
//! uploads are aggregated, and what bookkeeping happens between rounds.
//!
//! Strategies operate on *trainable* positions only — BatchNorm statistics
//! are zeroed in the deltas they see and are aggregated separately by the
//! simulator with the Appendix-D plain-mean rule.

mod apf;
mod fedavg;
mod gluefl;
mod md_fedavg;
mod stc;

pub use apf::ApfStrategy;
pub use fedavg::FedAvgStrategy;
pub use gluefl::GlueFlStrategy;
pub use md_fedavg::MdFedAvgStrategy;
pub use stc::StcStrategy;

use crate::config::{SimConfig, StrategyConfig};
use crate::scratch::ScratchPool;
use gluefl_compress::mask_shift::ClientSplit;
use gluefl_sampling::{ClientId, OnlineQuery};
use gluefl_tensor::wire::HEADER_BYTES;
use gluefl_tensor::{MaskedUpdate, SparseUpdate};
use rand::rngs::StdRng;

/// Which pool a participant was drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// The sticky group `S` (GlueFL only).
    Sticky,
    /// The non-sticky remainder (or the whole population for uniform
    /// strategies).
    Fresh,
}

/// One round's invitation plan.
#[derive(Debug, Clone, Default)]
pub struct RoundPlan {
    /// Invited sticky-group clients (empty for uniform strategies).
    pub sticky_invites: Vec<ClientId>,
    /// Invited non-sticky clients.
    pub fresh_invites: Vec<ClientId>,
    /// How many sticky updates to keep (`C`).
    pub keep_sticky: usize,
    /// How many fresh updates to keep (`K − C`).
    pub keep_fresh: usize,
}

impl RoundPlan {
    /// All invited clients with their group tags, sticky first — an
    /// iterator, so per-round consumers don't allocate.
    pub fn invited(&self) -> impl Iterator<Item = (ClientId, Group)> + '_ {
        self.sticky_invites
            .iter()
            .map(|&c| (c, Group::Sticky))
            .chain(self.fresh_invites.iter().map(|&c| (c, Group::Fresh)))
    }

    /// Total invitations.
    #[must_use]
    pub fn total_invited(&self) -> usize {
        self.sticky_invites.len() + self.fresh_invites.len()
    }
}

/// A compressed client upload.
#[derive(Debug, Clone, PartialEq)]
pub enum Upload {
    /// Full dense delta (FedAvg).
    Dense(Vec<f32>),
    /// Top-`q` sparse delta with explicit positions (STC).
    Sparse(SparseUpdate),
    /// Top-`q` sparse delta, ternary-quantized (STC + footnote-1
    /// quantization: positions + one sign bit per value + one `μ`).
    Ternary(gluefl_compress::stc::TernaryUpdate),
    /// Values aligned to a mask both sides hold (APF's active set).
    KnownMask(SparseUpdate),
    /// GlueFL's two-part shared + unique upload.
    MaskSplit(ClientSplit),
}

impl Upload {
    /// Upload payload bytes including per-message framing.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        match self {
            Upload::Dense(v) => gluefl_tensor::WireCost::dense(v.len()).total_bytes(),
            Upload::Sparse(u) => u.wire_cost().total_bytes(),
            Upload::Ternary(t) => t.wire_cost().total_bytes(),
            Upload::KnownMask(u) => u.wire_cost_known_mask().total_bytes(),
            Upload::MaskSplit(s) => s.upload_bytes(),
        }
    }

    /// Dimension of the underlying parameter vector.
    #[must_use]
    pub fn dim(&self) -> usize {
        match self {
            Upload::Dense(v) => v.len(),
            Upload::Sparse(u) | Upload::KnownMask(u) => u.dim(),
            Upload::Ternary(t) => t.dim(),
            Upload::MaskSplit(s) => s.shared.dim(),
        }
    }

    /// Accumulates `weight ×` this upload into a dense vector.
    ///
    /// # Panics
    /// Panics on dimension mismatch (`acc.len()` must equal the upload's
    /// dimension exactly).
    pub fn add_weighted_into(&self, acc: &mut [f32], weight: f32) {
        assert_eq!(acc.len(), self.dim(), "upload dimension mismatch");
        self.add_weighted_range_into(acc, weight, 0);
    }

    /// Accumulates `weight ×` the upload's entries with positions in
    /// `[lo, lo + out.len())` into `out` (`out[0]` ↔ global position
    /// `lo`). The per-position accumulation order equals
    /// [`Upload::add_weighted_into`]'s, which is what makes dimension-
    /// sharded parallel aggregation bit-identical to the serial path.
    ///
    /// # Panics
    /// Panics if the range exceeds the upload's dimension.
    pub fn add_weighted_range_into(&self, out: &mut [f32], weight: f32, lo: usize) {
        match self {
            Upload::Dense(v) => {
                let hi = lo + out.len();
                assert!(hi <= v.len(), "upload dimension mismatch");
                gluefl_tensor::vecops::axpy(out, weight, &v[lo..hi]);
            }
            Upload::Sparse(u) | Upload::KnownMask(u) => {
                u.add_scaled_range_into(out, weight, lo);
            }
            Upload::Ternary(t) => {
                let hi = lo + out.len();
                assert!(hi <= t.dim(), "upload dimension mismatch");
                let start = t.indices.partition_point(|&i| (i as usize) < lo);
                for idx in start..t.indices.len() {
                    let i = t.indices[idx] as usize;
                    if i >= hi {
                        break;
                    }
                    out[i - lo] += weight * if t.signs[idx] { t.mu } else { -t.mu };
                }
            }
            Upload::MaskSplit(s) => {
                s.shared.add_scaled_range_into(out, weight, lo);
                s.unique.add_scaled_range_into(out, weight, lo);
            }
        }
    }
}

/// In-flight state of an incremental aggregation between
/// [`Strategy::fold_begin`] and [`Strategy::fold_finish`].
///
/// The accumulators are pooled buffers whose meaning is strategy-defined:
/// dense strategies stage a full `dim`-length partial sum in `dense`; APF
/// stages a packed active-mask-aligned sum in `packed`; GlueFL stages the
/// mask-aligned shared sum in `packed` and defers its unique parts as a
/// flat `(position, weighted value)` stream in `indices`/`dense` — the
/// union support and packed sum are built once at `fold_finish`
/// ([`crate::aggregate::scatter_add_packed`]), so no `dim`-length buffer
/// is ever staged. Callers treat the struct as opaque and hand it back to
/// the same strategy that produced it — `fold_finish` returns the buffers
/// to the [`ScratchPool`].
#[derive(Debug, Default)]
pub struct FoldAcc {
    /// Dense position-space partial sum (length = model `dim`) — or, for
    /// strategies that defer, the value half of a sparse entry stream.
    pub(crate) dense: Option<Vec<f32>>,
    /// Packed mask-aligned partial sum, when the strategy stages one.
    pub(crate) packed: Option<Vec<f32>>,
    /// Position half of a deferred sparse entry stream, when the strategy
    /// folds without densifying.
    pub(crate) indices: Option<Vec<u32>>,
    /// Uploads folded so far.
    pub(crate) count: usize,
}

impl FoldAcc {
    /// Number of uploads folded into this accumulator so far.
    #[must_use]
    pub fn folded(&self) -> usize {
        self.count
    }
}

/// The strategy seam used by the round simulator.
///
/// Call order per round `t`:
/// 1. [`Strategy::plan_round`] — invitations (with over-commitment);
/// 2. [`Strategy::compress`] — once per invited client, after local
///    training (may mutate the delta via error compensation);
/// 3. [`Strategy::aggregate`] — once, over the *kept* uploads; returns
///    the round's server update as a [`MaskedUpdate`] over trainable
///    positions. Streaming consumers use the equivalent incremental form
///    instead: [`Strategy::fold_begin`], then [`Strategy::fold_upload`]
///    once per kept upload in ascending client-id order, then
///    [`Strategy::fold_finish`];
/// 4. [`Strategy::finish_round`] — post-round bookkeeping (sticky group
///    rebalancing).
///
/// # The `MaskedUpdate` contract
///
/// Aggregation returns a [`MaskedUpdate`] — a support mask plus values
/// packed in position order — rather than a dense `Vec<f32>`. Masking
/// strategies (GlueFL, STC, APF) cover only the `O(q·d)` positions their
/// algorithm actually changes; dense strategies (FedAvg variants) return
/// their accumulator under a full mask, which makes the packed layout
/// coincide with the dense vector. The simulator applies the update with
/// [`gluefl_tensor::MaskedUpdate::add_to`] (word-level scatter /
/// [`gluefl_tensor::vecops::masked_axpy`]) and scans changed positions
/// with [`gluefl_tensor::MaskedUpdate::for_each_nonzero`], so the apply
/// path never walks the full parameter vector for a sparse round. The
/// per-position arithmetic is a single `+=`, bit-identical to the dense
/// reference (`add_assign` of the densified update).
///
/// BatchNorm statistic positions are either absent from the returned
/// mask (STC and GlueFL exclude them from every top-k scope) or covered
/// with *exact-zero* values (FedAvg's full mask and APF's active mask,
/// since client deltas are zeroed at statistic positions before
/// compression). Either way the masked apply leaves statistics untouched;
/// the simulator aggregates them separately (Appendix-D plain mean) and
/// adds the means straight into the parameters afterwards.
///
/// # Pooling
///
/// `compress` and `aggregate` receive the simulation's [`ScratchPool`];
/// strategies route top-k selections, dense accumulators, sparse
/// index/value arenas, and support masks through it so the per-round hot
/// path is allocation-free in steady state. The mask and values inside
/// the returned [`MaskedUpdate`] come from the pool; the simulator hands
/// them back with [`ScratchPool::put_update`] after applying, and returns
/// every consumed upload's buffers with [`ScratchPool::reclaim_upload`].
pub trait Strategy: Send {
    /// Display name for reports.
    fn name(&self) -> String;

    /// Plans invitations for round `round`, restricted to clients for
    /// which `online` answers `true`. Implementations query `online` only
    /// for the candidates they actually consider — O(participants)
    /// queries, never a population sweep — so a lazy availability process
    /// behind the query stays cheap.
    fn plan_round(
        &mut self,
        round: u32,
        rng: &mut StdRng,
        online: &mut dyn OnlineQuery,
    ) -> RoundPlan;

    /// The aggregation weight applied to client `id` from `group`
    /// (includes the importance weight `p_i`).
    fn client_weight(&self, id: ClientId, group: Group) -> f64;

    /// Extra downstream bytes every synced client receives this round
    /// beyond the model values (e.g. a mask bitmap).
    fn mask_download_bytes(&self, round: u32) -> u64;

    /// The mask both sides hold during round `round`, if any: it is
    /// broadcast to syncing clients at download time (the bytes charged
    /// by [`Strategy::mask_download_bytes`]) and it implicitly positions
    /// any mask-aligned upload this round ([`Upload::KnownMask`] and the
    /// shared part of [`Upload::MaskSplit`]). The simulator encodes it as
    /// a wire mask frame and hands it to the wire decoder to rebuild
    /// mask-aligned payloads. `None` for strategies without a mask
    /// (dense and explicit-position uploads).
    fn round_mask(&self, round: u32) -> Option<&gluefl_tensor::BitMask> {
        let _ = round;
        None
    }

    /// Compresses a trainable delta (stats positions zeroed) into an
    /// upload. May apply/record error compensation.
    fn compress(
        &mut self,
        round: u32,
        id: ClientId,
        group: Group,
        delta: &mut [f32],
        scratch: &mut ScratchPool,
    ) -> Upload;

    /// Reports the wire codec's loss on a client's serialized upload:
    /// `sent` is what [`Strategy::compress`] handed the encoder at
    /// `indices`, `shipped` is what the lossy codec actually delivered
    /// (what the server will reconstruct). Fired by the drivers once per
    /// value-bearing frame of a *kept* upload when the wire policy runs a
    /// lossy codec with `quant_ec` on; never fired under `F32`.
    /// Strategies with error-compensation memory fold `sent − shipped`
    /// into the client's residual bank so codec loss re-enters the next
    /// round; the default keeps the pre-existing behaviour of dropping
    /// it.
    fn fold_codec_error(&mut self, id: ClientId, indices: &[u32], sent: &[f32], shipped: &[f32]) {
        let _ = (id, indices, sent, shipped);
    }

    /// Aggregates the kept uploads into a [`MaskedUpdate`] over trainable
    /// positions and performs mask updates (see the trait-level
    /// `MaskedUpdate` contract).
    ///
    /// Implementations should route accumulation through
    /// [`crate::aggregate`] so the reduction order stays deterministic
    /// under the `parallel` feature, and draw the returned mask/values
    /// from `scratch`.
    fn aggregate(
        &mut self,
        round: u32,
        kept: &[(ClientId, Group, Upload)],
        scratch: &mut ScratchPool,
    ) -> MaskedUpdate;

    /// Begins an incremental aggregation for round `round`: allocates the
    /// strategy's partial-sum accumulator(s) from `scratch`.
    ///
    /// # Bit-exactness contract
    ///
    /// Folding each kept upload with [`Strategy::fold_upload`] in
    /// **ascending client-id order** and then calling
    /// [`Strategy::fold_finish`] produces a [`MaskedUpdate`] (and
    /// performs mask/state updates) bit-identical to a single
    /// [`Strategy::aggregate`] call over the same uploads sorted by
    /// client id. This holds because every strategy's batch accumulation
    /// adds per-position contributions in entry order — exactly the order
    /// the per-upload fold replays — and `f32` addition per position is
    /// then the same sequence of operations. The property suite
    /// (`crates/core/tests/streaming_fold.rs`) pins the identity for all
    /// six strategy configurations × three value codecs.
    fn fold_begin(&mut self, round: u32, scratch: &mut ScratchPool) -> FoldAcc;

    /// Folds one kept upload into the accumulator. Must be called in
    /// ascending client-id order across kept uploads (see
    /// [`Strategy::fold_begin`] for the bit-exactness contract). The
    /// upload is borrowed — the caller keeps ownership and can return its
    /// buffers to the pool immediately afterwards, so a streaming server
    /// never stages more than the out-of-order arrivals.
    ///
    /// # Panics
    /// Panics on an upload variant or alignment the strategy's
    /// [`Strategy::aggregate`] would reject (e.g. a non-split upload
    /// handed to GlueFL, or a known-mask upload misaligned with APF's
    /// active set).
    fn fold_upload(
        &mut self,
        round: u32,
        acc: &mut FoldAcc,
        id: ClientId,
        group: Group,
        upload: &Upload,
        scratch: &mut ScratchPool,
    );

    /// Completes an incremental aggregation: performs the strategy's
    /// finishing work (top-k re-masking, mask shifting, state updates —
    /// whatever [`Strategy::aggregate`] does after accumulation), returns
    /// the accumulator buffers to `scratch`, and yields the round's
    /// [`MaskedUpdate`].
    fn fold_finish(&mut self, round: u32, acc: FoldAcc, scratch: &mut ScratchPool) -> MaskedUpdate;

    /// Post-round bookkeeping with the kept participants.
    fn finish_round(
        &mut self,
        round: u32,
        rng: &mut StdRng,
        kept_sticky: &[ClientId],
        kept_fresh: &[ClientId],
    );
}

/// Builds the configured strategy.
///
/// # Panics
/// Panics if the strategy parameters are inconsistent with the population
/// (e.g. sticky group larger than `N`).
#[must_use]
pub fn build_strategy(
    cfg: &SimConfig,
    weights: &[f64],
    trainable_positions: usize,
    dim: usize,
    stats_excluded: gluefl_tensor::BitMask,
    rng: &mut StdRng,
) -> Box<dyn Strategy> {
    let n = weights.len();
    let k = cfg.round_size;
    match &cfg.strategy {
        StrategyConfig::FedAvg => {
            Box::new(FedAvgStrategy::new(n, k, cfg.oc, weights.to_vec(), dim))
        }
        StrategyConfig::MdFedAvg => Box::new(MdFedAvgStrategy::new(weights.to_vec(), k, dim)),
        StrategyConfig::Stc { q } => Box::new(StcStrategy::new(
            n,
            k,
            cfg.oc,
            weights.to_vec(),
            *q,
            trainable_positions,
            dim,
            stats_excluded,
        )),
        StrategyConfig::StcQuantized { q } => Box::new(
            StcStrategy::new(
                n,
                k,
                cfg.oc,
                weights.to_vec(),
                *q,
                trainable_positions,
                dim,
                stats_excluded,
            )
            .with_quantization(),
        ),
        StrategyConfig::Apf { config } => Box::new(ApfStrategy::new(
            n,
            k,
            cfg.oc,
            weights.to_vec(),
            *config,
            dim,
        )),
        StrategyConfig::GlueFl(params) => Box::new(GlueFlStrategy::new(
            n,
            k,
            cfg.oc,
            cfg.oc_strategy,
            weights.to_vec(),
            params.clone(),
            trainable_positions,
            dim,
            stats_excluded,
            rng,
        )),
    }
}

/// Shared helper: header-inclusive byte count of a mask bitmap download.
#[must_use]
pub(crate) fn bitmap_bytes(dim: usize) -> u64 {
    (dim as u64).div_ceil(8) + HEADER_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_plan_tags_groups() {
        let plan = RoundPlan {
            sticky_invites: vec![1, 2],
            fresh_invites: vec![7],
            keep_sticky: 2,
            keep_fresh: 1,
        };
        let invited: Vec<(ClientId, Group)> = plan.invited().collect();
        assert_eq!(invited.len(), 3);
        assert_eq!(invited[0], (1, Group::Sticky));
        assert_eq!(invited[2], (7, Group::Fresh));
        assert_eq!(plan.total_invited(), 3);
    }

    #[test]
    fn upload_bytes_ordering() {
        // Dense > sparse > known-mask for the same content.
        let dense = Upload::Dense(vec![0.0; 1000]);
        let sparse = Upload::Sparse(SparseUpdate::from_pairs(
            1000,
            (0..100).map(|i| (i as u32, 1.0)).collect(),
        ));
        let known = Upload::KnownMask(SparseUpdate::from_pairs(
            1000,
            (0..100).map(|i| (i as u32, 1.0)).collect(),
        ));
        assert!(dense.bytes() > sparse.bytes());
        assert!(sparse.bytes() > known.bytes());
    }

    #[test]
    fn weighted_accumulation_matches_manual() {
        let u = Upload::Sparse(SparseUpdate::from_pairs(4, vec![(1, 2.0), (3, -1.0)]));
        let mut acc = vec![0.0f32; 4];
        u.add_weighted_into(&mut acc, 0.5);
        assert_eq!(acc, vec![0.0, 1.0, 0.0, -0.5]);
        let d = Upload::Dense(vec![1.0, 1.0, 1.0, 1.0]);
        d.add_weighted_into(&mut acc, 2.0);
        assert_eq!(acc, vec![2.0, 3.0, 2.0, 1.5]);
    }
}
