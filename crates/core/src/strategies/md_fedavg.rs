//! FedAvg with multinomial (MD) client sampling (Li et al. 2020a).

use super::{FoldAcc, Group, RoundPlan, Strategy, Upload};
use crate::aggregate::{accumulate_into, accumulate_uploads};
use crate::scratch::ScratchPool;
use gluefl_sampling::{ClientId, MdSampler, OnlineQuery};
use gluefl_tensor::MaskedUpdate;
use rand::rngs::StdRng;

/// FedAvg where each round's `K` participants are drawn i.i.d. from the
/// multinomial distribution over importance weights `p_i` (§6, "Client
/// sampling"). A client drawn `m` times contributes with weight `m/K`,
/// which keeps the aggregate unbiased: `E[Δ] = Σ p_i Δ_i`.
///
/// Over-commitment is not applied: MD sampling is a statistical baseline
/// and every drawn update is kept (duplicates collapse into one invitation
/// with multiplicity).
#[derive(Debug)]
pub struct MdFedAvgStrategy {
    sampler: MdSampler,
    k: usize,
    dim: usize,
    /// The current round's draws as `(client, multiplicity)`, sorted by
    /// client id — the *only* per-round state, O(K) entries. No O(N)
    /// population-length vector exists anywhere in this strategy, so
    /// construction and planning touch O(K) memory regardless of N.
    drawn: Vec<(ClientId, u32)>,
    /// Raw accepted draws of the round in draw order, reused across
    /// rounds so planning allocates nothing in steady state.
    raw: Vec<ClientId>,
}

impl MdFedAvgStrategy {
    /// Creates the strategy for importance weights `p_i` (need not be
    /// normalised) and model dimension `dim`.
    ///
    /// # Panics
    /// Panics if the weights are not a valid distribution.
    #[must_use]
    pub fn new(weights: Vec<f64>, k: usize, dim: usize) -> Self {
        Self {
            sampler: MdSampler::new(weights).expect("valid client weights"),
            k,
            dim,
            drawn: Vec::new(),
            raw: Vec::new(),
        }
    }

    /// Draw multiplicity of `id` in the current round (0 if not drawn).
    fn multiplicity_of(&self, id: ClientId) -> u32 {
        self.drawn
            .binary_search_by_key(&id, |&(c, _)| c)
            .map_or(0, |i| self.drawn[i].1)
    }
}

impl Strategy for MdFedAvgStrategy {
    fn name(&self) -> String {
        "md-fedavg".into()
    }

    fn plan_round(
        &mut self,
        _round: u32,
        rng: &mut StdRng,
        online: &mut dyn OnlineQuery,
    ) -> RoundPlan {
        self.raw.clear();
        let mut attempts = 0usize;
        // Rejection-sample against availability (equivalent to MD sampling
        // over the online sub-population, re-normalised). Each CDF draw is
        // O(log N) and the accepted draws land in an O(K) scratch list, so
        // a round is O(K log N) memory-touches included — independent of N.
        while self.raw.len() < self.k && attempts < self.k * 200 {
            attempts += 1;
            let id = self.sampler.draw_one(rng);
            if online.is_online(id) {
                self.raw.push(id);
            }
        }
        // Collapse the accepted draws into sorted (client, multiplicity)
        // run-length pairs — duplicates become one invitation with weight.
        self.raw.sort_unstable();
        self.drawn.clear();
        for &id in &self.raw {
            match self.drawn.last_mut() {
                Some((c, m)) if *c == id => *m += 1,
                _ => self.drawn.push((id, 1)),
            }
        }
        let invites: Vec<ClientId> = self.drawn.iter().map(|&(c, _)| c).collect();
        RoundPlan {
            sticky_invites: Vec::new(),
            keep_fresh: invites.len(),
            fresh_invites: invites,
            keep_sticky: 0,
        }
    }

    fn client_weight(&self, id: ClientId, _group: Group) -> f64 {
        f64::from(self.multiplicity_of(id)) / self.k as f64
    }

    fn mask_download_bytes(&self, _round: u32) -> u64 {
        0
    }

    fn compress(
        &mut self,
        _round: u32,
        _id: ClientId,
        _group: Group,
        delta: &mut [f32],
        scratch: &mut ScratchPool,
    ) -> Upload {
        Upload::Dense(scratch.take_copy(delta))
    }

    fn aggregate(
        &mut self,
        _round: u32,
        kept: &[(ClientId, Group, Upload)],
        scratch: &mut ScratchPool,
    ) -> MaskedUpdate {
        let entries: Vec<(f32, &Upload)> = kept
            .iter()
            .map(|(id, group, upload)| (self.client_weight(*id, *group) as f32, upload))
            .collect();
        let acc = accumulate_uploads(&entries, self.dim, scratch);
        // Dense update under a full mask (same layout as FedAvg).
        let mut mask = scratch.take_mask(self.dim);
        mask.fill_ones();
        MaskedUpdate::new(mask, acc)
    }

    fn fold_begin(&mut self, _round: u32, scratch: &mut ScratchPool) -> FoldAcc {
        FoldAcc {
            dense: Some(scratch.take_zeroed(self.dim)),
            packed: None,
            indices: None,
            count: 0,
        }
    }

    fn fold_upload(
        &mut self,
        _round: u32,
        acc: &mut FoldAcc,
        id: ClientId,
        group: Group,
        upload: &Upload,
        _scratch: &mut ScratchPool,
    ) {
        let w = self.client_weight(id, group) as f32;
        let dense = acc
            .dense
            .as_mut()
            .expect("fold_begin allocates the accumulator");
        accumulate_into(&[(w, upload)], dense);
        acc.count += 1;
    }

    fn fold_finish(
        &mut self,
        _round: u32,
        acc: FoldAcc,
        scratch: &mut ScratchPool,
    ) -> MaskedUpdate {
        let values = acc.dense.expect("fold_begin allocates the accumulator");
        let mut mask = scratch.take_mask(self.dim);
        mask.fill_ones();
        MaskedUpdate::new(mask, values)
    }

    fn finish_round(&mut self, _round: u32, _rng: &mut StdRng, _s: &[ClientId], _f: &[ClientId]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn strategy() -> MdFedAvgStrategy {
        // Client 3 has triple the weight of the others.
        let mut w = vec![1.0; 12];
        w[3] = 3.0;
        MdFedAvgStrategy::new(w, 4, 6)
    }

    #[test]
    fn plan_draws_k_with_multiplicity() {
        let mut s = strategy();
        let mut rng = StdRng::seed_from_u64(0);
        let plan = s.plan_round(0, &mut rng, &mut gluefl_sampling::AllOnline);
        let total: u32 = s.drawn.iter().map(|&(_, m)| m).sum();
        assert_eq!(total, 4);
        assert_eq!(plan.keep_fresh, plan.fresh_invites.len());
        assert!(plan.fresh_invites.len() <= 4);
        // Touched-set bound: per-round state is O(K) pairs, never an O(N)
        // population vector.
        assert!(s.drawn.len() <= 4);
        assert!(s.raw.len() <= 4);
    }

    #[test]
    fn weights_sum_to_one_per_round() {
        let mut s = strategy();
        let mut rng = StdRng::seed_from_u64(1);
        for round in 0..50 {
            let plan = s.plan_round(round, &mut rng, &mut gluefl_sampling::AllOnline);
            let total: f64 = plan
                .fresh_invites
                .iter()
                .map(|&id| s.client_weight(id, Group::Fresh))
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "round {round}: {total}");
        }
    }

    #[test]
    fn heavy_clients_drawn_more_often() {
        let mut s = strategy();
        let mut rng = StdRng::seed_from_u64(2);
        let mut hits = [0u32; 12];
        for round in 0..4000 {
            let _ = s.plan_round(round, &mut rng, &mut gluefl_sampling::AllOnline);
            for &(i, m) in &s.drawn {
                hits[i] += m;
            }
        }
        // Client 3 holds 3/14 of the mass; others 1/14 each.
        let f3 = f64::from(hits[3]) / f64::from(hits.iter().sum::<u32>());
        assert!((f3 - 3.0 / 14.0).abs() < 0.02, "client 3 frequency {f3}");
    }

    #[test]
    fn respects_availability() {
        let mut s = strategy();
        let mut rng = StdRng::seed_from_u64(3);
        let mut avail = vec![true; 12];
        avail[3] = false;
        for round in 0..20 {
            let plan = s.plan_round(round, &mut rng, &mut gluefl_sampling::DenseOnline(&avail));
            assert!(!plan.fresh_invites.contains(&3), "round {round}");
        }
    }

    #[test]
    fn aggregate_uses_multiplicity_weights() {
        let mut s = strategy();
        let mut rng = StdRng::seed_from_u64(4);
        let plan = s.plan_round(0, &mut rng, &mut gluefl_sampling::AllOnline);
        let kept: Vec<(ClientId, Group, Upload)> = plan
            .fresh_invites
            .iter()
            .map(|&id| (id, Group::Fresh, Upload::Dense(vec![1.0f32; 6])))
            .collect();
        let mut pool = ScratchPool::new();
        let agg = s.aggregate(0, &kept, &mut pool);
        // Weights sum to 1, every delta is all-ones → aggregate all-ones.
        assert!(agg.is_dense());
        for v in agg.values() {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }
}
