//! GlueFL: sticky sampling + mask shifting (Algorithm 3).

use super::{bitmap_bytes, FoldAcc, Group, RoundPlan, Strategy, Upload};
use crate::aggregate::{
    accumulate_into, accumulate_sparse_packed, accumulate_weighted_values, packed_rank,
    scatter_add_packed,
};
use crate::config::GlueFlParams;
use crate::scratch::ScratchPool;
use gluefl_compress::mask_shift::{shift_mask_packed_into, ClientSplit};
use gluefl_compress::stc::keep_count;
use gluefl_compress::ErrorCompensator;
use gluefl_sampling::overcommit::{plan as oc_plan, OcStrategy};
use gluefl_sampling::{sticky_weights, ClientId, OnlineQuery, StickySampler};
use gluefl_tensor::{
    top_k_abs_masked_into, top_k_abs_packed_into, BitMask, MaskedUpdate, SparseUpdate, TopKScope,
};
use rand::rngs::StdRng;

/// The paper's framework: sticky sampling (§3.1) for client selection,
/// mask shifting (§3.2) for compression, with shared-mask regeneration and
/// re-scaled error compensation (§3.3).
#[derive(Debug)]
pub struct GlueFlStrategy {
    sampler: StickySampler,
    params: GlueFlParams,
    k: usize,
    oc: f64,
    oc_strategy: OcStrategy,
    weights: Vec<f64>,
    /// Current shared mask `M_t` (⊆ trainable positions).
    shared_mask: BitMask,
    /// Cached `|M_t|` (the length of every mask-aligned shared upload).
    shared_nnz: usize,
    /// Cached `M_t ∪ stats`: the scope clients' unique top-k must avoid.
    scope_mask: BitMask,
    /// Positions that may never be masked/selected (BN statistics).
    stats_excluded: BitMask,
    /// Cached `¬stats`: positions eligible for the shared mask.
    eligible: BitMask,
    /// Number of trainable positions (base for `q` ratios).
    trainable: usize,
    dim: usize,
    ec: ErrorCompensator,
}

impl GlueFlStrategy {
    /// Creates the strategy. The initial shared mask is a random
    /// `q_shr`-fraction of trainable positions (before the first round
    /// there is no update signal to select by).
    ///
    /// # Panics
    /// Panics if the sticky configuration is inconsistent
    /// (`C > S`, `S > N`, `C > K`, or `q_shr > q`).
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        n: usize,
        k: usize,
        oc: f64,
        oc_strategy: OcStrategy,
        weights: Vec<f64>,
        params: GlueFlParams,
        trainable: usize,
        dim: usize,
        stats_excluded: BitMask,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(weights.len(), n, "weights length must equal population");
        assert!(
            params.q_shr <= params.q,
            "q_shr {} must not exceed q {}",
            params.q_shr,
            params.q
        );
        assert!(
            params.sticky_draw <= params.sticky_group
                && params.sticky_group <= n
                && params.sticky_draw <= k,
            "invalid sticky configuration"
        );
        let sampler = StickySampler::new(n, params.sticky_group, rng);
        // Random initial mask over trainable positions (word-level
        // complement walk instead of d per-bit tests).
        let k_mask = keep_count(trainable, params.q_shr);
        let mut picked: Vec<usize> = stats_excluded.iter_zeros().collect();
        use rand::seq::SliceRandom;
        let (sel, _) = picked.partial_shuffle(rng, k_mask);
        let shared_mask = BitMask::from_indices(dim, sel.iter().copied());
        let ec = ErrorCompensator::new(params.compensation, dim);
        let shared_nnz = shared_mask.count_ones();
        let scope_mask = shared_mask.or(&stats_excluded);
        let eligible = stats_excluded.not();
        Self {
            sampler,
            params,
            k,
            oc,
            oc_strategy,
            weights,
            shared_mask,
            shared_nnz,
            scope_mask,
            stats_excluded,
            eligible,
            trainable,
            dim,
            ec,
        }
    }

    /// Installs a freshly shifted/regenerated shared mask (swapping the
    /// old one out for the caller to recycle) and refreshes the caches
    /// derived from it in place — no allocation.
    fn set_shared_mask(&mut self, mask: BitMask) -> BitMask {
        self.shared_nnz = mask.count_ones();
        self.scope_mask.copy_from(&mask);
        self.scope_mask.union_with(&self.stats_excluded);
        std::mem::replace(&mut self.shared_mask, mask)
    }

    /// The current shared mask `M_t`.
    #[must_use]
    pub fn shared_mask(&self) -> &BitMask {
        &self.shared_mask
    }

    /// The sticky sampler (for inspection in tests/experiments).
    #[must_use]
    pub fn sampler(&self) -> &StickySampler {
        &self.sampler
    }

    /// Whether `round` is a shared-mask regeneration round (§3.3).
    #[must_use]
    pub fn is_regen_round(&self, round: u32) -> bool {
        match self.params.regen_interval {
            Some(i) => round > 0 && round.is_multiple_of(i),
            None => false,
        }
    }

    /// Per-client unique top-k for this round: `q − q_shr` normally, the
    /// full `q` on regeneration rounds (where the shared mask is unused).
    fn unique_keep(&self, round: u32) -> usize {
        if self.is_regen_round(round) {
            keep_count(self.trainable, self.params.q)
        } else {
            keep_count(self.trainable, self.params.q - self.params.q_shr)
        }
    }

    /// Finishing steps shared by [`Strategy::aggregate`] and
    /// [`Strategy::fold_finish`], entirely in packed space — `O(q·d)`
    /// values touched, no dense `d`-length staging:
    ///
    /// 1. Δ̃_uni = top `q−q_shr` of the packed unique aggregate (line 23),
    ///    selected by the packed top-k (positions off `uni_support` are
    ///    exact zeros, so the selection equals the dense kernel's);
    /// 2. Δ̃ = Δ̃_shr + Δ̃_uni (line 24) emitted directly as
    ///    `(mask, values)`: the shared and unique supports are disjoint by
    ///    construction (clients pick unique coordinates outside
    ///    `M_t ∪ stats`), so each combined value is a plain copy — and a
    ///    zero-fill-up selection (top-k ran out of nonzeros) lands as an
    ///    exact `0.0`, just as the dense staging held. Copying is bitwise
    ///    what the dense path computed: a sum started at `+0.0` is never
    ///    `-0.0`, so the old `0.0 + x·1.0` add reproduced `x` exactly;
    /// 3. the shared mask shifts to the top `q_shr` of the packed combined
    ///    update (line 26), regeneration rounds re-seeding it from the
    ///    unique part alone (§3.3).
    fn finish_packed(
        &mut self,
        round: u32,
        shr_vals: &[f32],
        uni_support: &BitMask,
        uni_offsets: &[u32],
        uni_vals: &[f32],
        scratch: &mut ScratchPool,
    ) -> MaskedUpdate {
        let regen = self.is_regen_round(round);
        let unique_k = self.unique_keep(round);
        let mut mask = scratch.take_mask(self.dim);
        if !regen {
            mask.copy_from(&self.shared_mask);
        }
        {
            let idx = top_k_abs_packed_into(
                uni_support,
                uni_vals,
                unique_k,
                TopKScope::Outside(&self.stats_excluded),
                &mut scratch.topk,
            );
            for &i in idx {
                mask.set(i, true);
            }
        }
        let mut values = scratch.take_cleared();
        let uwords = uni_support.as_words();
        let mut sp = 0usize;
        mask.for_each_one(|i| {
            if !regen && self.shared_mask.get(i) {
                values.push(shr_vals[sp]);
                sp += 1;
            } else if uni_support.get(i) {
                values.push(uni_vals[packed_rank(uwords, uni_offsets, i)]);
            } else {
                values.push(0.0);
            }
        });

        let mut next_mask = scratch.take_mask(self.dim);
        shift_mask_packed_into(
            &mask,
            &values,
            self.params.q_shr,
            Some(&self.eligible),
            &mut scratch.topk,
            &mut next_mask,
        );
        let old = self.set_shared_mask(next_mask);
        scratch.put_mask(old);
        MaskedUpdate::new(mask, values)
    }
}

impl Strategy for GlueFlStrategy {
    fn name(&self) -> String {
        if self.params.equal_weights {
            "gluefl-equal".into()
        } else {
            "gluefl".into()
        }
    }

    fn plan_round(
        &mut self,
        _round: u32,
        rng: &mut StdRng,
        online: &mut dyn OnlineQuery,
    ) -> RoundPlan {
        let plan = oc_plan(self.k, self.params.sticky_draw, self.oc, self.oc_strategy);
        let draw = self
            .sampler
            .draw(rng, plan.sticky_invites, plan.fresh_invites, online);
        RoundPlan {
            sticky_invites: draw.sticky,
            fresh_invites: draw.fresh,
            keep_sticky: plan.keep_sticky,
            keep_fresh: plan.keep_fresh,
        }
    }

    fn client_weight(&self, id: ClientId, group: Group) -> f64 {
        if self.params.equal_weights {
            return 1.0 / self.k as f64;
        }
        let w = sticky_weights(
            self.sampler.population(),
            self.params.sticky_group,
            self.params.sticky_draw,
            self.k,
        );
        let factor = match group {
            Group::Sticky => w.sticky_factor,
            Group::Fresh => w.fresh_factor,
        };
        factor * self.weights[id]
    }

    fn mask_download_bytes(&self, _round: u32) -> u64 {
        // The shared mask M_t travels as a bitmap with each sync
        // (Algorithm 3 line 7).
        bitmap_bytes(self.dim)
    }

    fn round_mask(&self, _round: u32) -> Option<&BitMask> {
        // M_t: broadcast at sync time, and the alignment of every
        // shared-part upload until aggregate() shifts it.
        Some(&self.shared_mask)
    }

    fn compress(
        &mut self,
        round: u32,
        id: ClientId,
        group: Group,
        delta: &mut [f32],
        scratch: &mut ScratchPool,
    ) -> Upload {
        let weight = self.client_weight(id, group);
        // Re-scaled error compensation (Equation 7).
        self.ec.apply(id, delta, weight);

        let regen = self.is_regen_round(round);
        let unique_k = self.unique_keep(round);
        // Shared part: values under M_t (empty on regeneration rounds).
        let shared = if regen {
            SparseUpdate::empty(self.dim)
        } else {
            let (ix, vals) = scratch.take_sparse();
            SparseUpdate::from_dense_masked_in(delta, &self.shared_mask, ix, vals)
        };
        // Unique part: top-(q−q_shr) outside M_t ∪ stats (cached).
        let scope = if regen {
            &self.stats_excluded
        } else {
            &self.scope_mask
        };
        let (ix, vals) = scratch.take_sparse();
        let idx = top_k_abs_masked_into(
            delta,
            unique_k,
            TopKScope::Outside(scope),
            &mut scratch.topk,
        );
        let unique = SparseUpdate::gather_in(delta, idx, ix, vals);

        // Residual: h = Δ − (Δ̃_shr + Δ̃_uni), recorded without
        // materialising the dense `sent` vector.
        self.ec
            .record_sent_parts(id, delta, &[&shared, &unique], weight);

        Upload::MaskSplit(ClientSplit { shared, unique })
    }

    fn fold_codec_error(&mut self, id: ClientId, indices: &[u32], sent: &[f32], shipped: &[f32]) {
        // Codec loss joins the top-k residual h in the client's bank, so
        // the rescaled compensation of Equation 7 re-sends it next time.
        self.ec.fold_shipped_error(id, indices, sent, shipped);
    }

    fn aggregate(
        &mut self,
        round: u32,
        kept: &[(ClientId, Group, Upload)],
        scratch: &mut ScratchPool,
    ) -> MaskedUpdate {
        let regen = self.is_regen_round(round);
        let mut shared_entries: Vec<(f32, &[f32])> = Vec::with_capacity(kept.len());
        let mut unique_entries: Vec<(f32, &SparseUpdate)> = Vec::with_capacity(kept.len());
        for (id, group, upload) in kept {
            let w = self.client_weight(*id, *group) as f32;
            match upload {
                Upload::MaskSplit(split) => {
                    if !regen {
                        assert_eq!(
                            split.shared.nnz(),
                            self.shared_nnz,
                            "shared part not aligned to the current mask"
                        );
                        shared_entries.push((w, split.shared.values()));
                    }
                    unique_entries.push((w, &split.unique));
                }
                other => panic!("GlueFL aggregate received non-split upload {other:?}"),
            }
        }
        // Shared parts all carry the same support M_t, so they are summed
        // as contiguous value arrays (no per-element index indirection) —
        // the shards already emit the masked (packed) layout.
        let shr_vals = accumulate_weighted_values(&shared_entries, self.shared_nnz, scratch);
        // Unique aggregate directly in packed (support, values) form —
        // O(Σ nnz + d/64) work, no dense d-length staging anywhere on the
        // aggregate path.
        let mut uni_support = scratch.take_mask(self.dim);
        let (mut uni_offsets, mut uni_vals) = scratch.take_sparse();
        accumulate_sparse_packed(
            &unique_entries,
            self.dim,
            &mut uni_support,
            &mut uni_offsets,
            &mut uni_vals,
        );
        let update = self.finish_packed(
            round,
            &shr_vals,
            &uni_support,
            &uni_offsets,
            &uni_vals,
            scratch,
        );
        scratch.put(shr_vals);
        scratch.put_mask(uni_support);
        scratch.put_sparse(uni_offsets, uni_vals);
        update
    }

    fn fold_begin(&mut self, _round: u32, scratch: &mut ScratchPool) -> FoldAcc {
        // The packed shared sum (aligned to M_t) plus the deferred unique
        // stream: positions in `indices`, weighted values in `dense` —
        // the union support and packed unique sum are built once at
        // fold_finish, so the streaming path stages no d-length buffer
        // either.
        let (stream_idx, stream_vals) = scratch.take_sparse();
        FoldAcc {
            dense: Some(stream_vals),
            packed: Some(scratch.take_zeroed(self.shared_nnz)),
            indices: Some(stream_idx),
            count: 0,
        }
    }

    fn fold_upload(
        &mut self,
        round: u32,
        acc: &mut FoldAcc,
        id: ClientId,
        group: Group,
        upload: &Upload,
        _scratch: &mut ScratchPool,
    ) {
        let regen = self.is_regen_round(round);
        let w = self.client_weight(id, group) as f32;
        let stream_vals = acc
            .dense
            .as_mut()
            .expect("fold_begin allocates the accumulator");
        let shr_acc = acc
            .packed
            .as_mut()
            .expect("fold_begin allocates the accumulator");
        let stream_idx = acc
            .indices
            .as_mut()
            .expect("fold_begin allocates the accumulator");
        match upload {
            Upload::MaskSplit(split) => {
                if !regen {
                    assert_eq!(
                        split.shared.nnz(),
                        self.shared_nnz,
                        "shared part not aligned to the current mask"
                    );
                    accumulate_into(&[(w, split.shared.values())], shr_acc);
                }
                // Defer the unique part as a flat (position, w·v) stream;
                // the fold_finish scatter replays these adds in exactly
                // this order, so the packed sum is bit-identical to the
                // dense per-upload `acc[i] += w·v` fold.
                stream_idx.extend_from_slice(split.unique.indices());
                stream_vals.extend(split.unique.values().iter().map(|&v| w * v));
            }
            other => panic!("GlueFL aggregate received non-split upload {other:?}"),
        }
        acc.count += 1;
    }

    fn fold_finish(&mut self, round: u32, acc: FoldAcc, scratch: &mut ScratchPool) -> MaskedUpdate {
        let shr_vals = acc.packed.expect("fold_begin allocates the accumulator");
        let stream_vals = acc.dense.expect("fold_begin allocates the accumulator");
        let stream_idx = acc.indices.expect("fold_begin allocates the accumulator");
        let mut uni_support = scratch.take_mask(self.dim);
        let (mut uni_offsets, mut uni_vals) = scratch.take_sparse();
        scatter_add_packed(
            &stream_idx,
            &stream_vals,
            self.dim,
            &mut uni_support,
            &mut uni_offsets,
            &mut uni_vals,
        );
        let update = self.finish_packed(
            round,
            &shr_vals,
            &uni_support,
            &uni_offsets,
            &uni_vals,
            scratch,
        );
        scratch.put(shr_vals);
        scratch.put_mask(uni_support);
        scratch.put_sparse(uni_offsets, uni_vals);
        scratch.put_sparse(stream_idx, stream_vals);
        update
    }

    fn finish_round(
        &mut self,
        _round: u32,
        rng: &mut StdRng,
        kept_sticky: &[ClientId],
        kept_fresh: &[ClientId],
    ) {
        self.sampler.rebalance(rng, kept_sticky, kept_fresh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gluefl_compress::CompensationMode;
    use rand::SeedableRng;

    fn params() -> GlueFlParams {
        GlueFlParams {
            q: 0.3,
            q_shr: 0.2,
            sticky_group: 8,
            sticky_draw: 3,
            regen_interval: Some(5),
            compensation: CompensationMode::Rescaled,
            equal_weights: false,
        }
    }

    fn strategy(seed: u64) -> GlueFlStrategy {
        let mut rng = StdRng::seed_from_u64(seed);
        GlueFlStrategy::new(
            20,
            4,
            1.0,
            OcStrategy::Proportional,
            vec![0.05; 20],
            params(),
            20,
            20,
            BitMask::zeros(20),
            &mut rng,
        )
    }

    #[test]
    fn initial_mask_has_qshr_density() {
        let s = strategy(0);
        assert_eq!(s.shared_mask().count_ones(), 4); // 20% of 20
    }

    #[test]
    fn plan_draws_sticky_and_fresh() {
        let mut s = strategy(1);
        let mut rng = StdRng::seed_from_u64(2);
        let plan = s.plan_round(0, &mut rng, &mut gluefl_sampling::AllOnline);
        assert_eq!(plan.sticky_invites.len(), 3);
        assert_eq!(plan.fresh_invites.len(), 1);
        assert_eq!(plan.keep_sticky, 3);
        assert_eq!(plan.keep_fresh, 1);
        assert!(plan
            .sticky_invites
            .iter()
            .all(|&c| s.sampler().is_sticky(c)));
    }

    #[test]
    fn weights_are_inverse_propensity() {
        let s = strategy(3);
        // ν_s = (S/C)·p = (8/3)·0.05; ν_r = ((N−S)/(K−C))·p = 12·0.05.
        assert!((s.client_weight(0, Group::Sticky) - 8.0 / 3.0 * 0.05).abs() < 1e-12);
        assert!((s.client_weight(0, Group::Fresh) - 12.0 * 0.05).abs() < 1e-12);
    }

    #[test]
    fn equal_weights_variant() {
        let mut p = params();
        p.equal_weights = true;
        let mut rng = StdRng::seed_from_u64(4);
        let s = GlueFlStrategy::new(
            20,
            4,
            1.0,
            OcStrategy::Proportional,
            vec![0.05; 20],
            p,
            20,
            20,
            BitMask::zeros(20),
            &mut rng,
        );
        assert_eq!(s.name(), "gluefl-equal");
        assert_eq!(s.client_weight(0, Group::Sticky), 0.25);
        assert_eq!(s.client_weight(0, Group::Fresh), 0.25);
    }

    #[test]
    fn compress_splits_along_mask() {
        let mut s = strategy(5);
        let mask = s.shared_mask().clone();
        let mut delta: Vec<f32> = (0..20).map(|i| i as f32 - 10.0).collect();
        let mut pool = ScratchPool::new();
        let up = s.compress(1, 0, Group::Sticky, &mut delta, &mut pool);
        match up {
            Upload::MaskSplit(split) => {
                assert_eq!(split.shared.support(), mask);
                assert_eq!(split.unique.support().overlap(&mask), 0);
                // q−q_shr = 10% of 20 = 2 unique coordinates.
                assert_eq!(split.unique.nnz(), 2);
            }
            other => panic!("expected mask split, got {other:?}"),
        }
    }

    #[test]
    fn regen_round_sends_no_shared_part() {
        let mut s = strategy(6);
        assert!(s.is_regen_round(5));
        assert!(!s.is_regen_round(4));
        assert!(!s.is_regen_round(0)); // round 0 never regenerates
        let mut delta: Vec<f32> = (0..20).map(|i| (i as f32) * 0.1).collect();
        let mut pool = ScratchPool::new();
        let up = s.compress(5, 0, Group::Sticky, &mut delta, &mut pool);
        match up {
            Upload::MaskSplit(split) => {
                assert!(split.shared.is_empty());
                // Full q = 30% of 20 = 6 coordinates.
                assert_eq!(split.unique.nnz(), 6);
            }
            other => panic!("expected mask split, got {other:?}"),
        }
    }

    #[test]
    fn aggregate_updates_mask_to_top_qshr_of_combined() {
        let mut s = strategy(7);
        let mut delta: Vec<f32> = (0..20).map(|i| if i < 6 { 10.0 } else { 0.01 }).collect();
        let mut pool = ScratchPool::new();
        let up = s.compress(1, 0, Group::Sticky, &mut delta.clone(), &mut pool);
        let _ = up;
        let up = s.compress(1, 1, Group::Sticky, &mut delta, &mut pool);
        let agg = s.aggregate(1, &[(1, Group::Sticky, up)], &mut pool);
        assert_eq!(agg.dim(), 20);
        // New mask has q_shr density.
        assert_eq!(s.shared_mask().count_ones(), 4);
    }

    #[test]
    fn consecutive_update_overlap_at_least_qshr() {
        let mut pool = ScratchPool::new();
        // The support of round t+1's combined update always contains
        // M_{t+1}, which was chosen from round t's combined update —
        // so consecutive supports overlap in ≥ q_shr·d positions as long
        // as clients keep sending the shared part. (Regeneration rounds
        // intentionally break this, so disable them here.)
        let mut p = params();
        p.regen_interval = None;
        let mut init_rng = StdRng::seed_from_u64(8);
        let mut s = GlueFlStrategy::new(
            20,
            4,
            1.0,
            OcStrategy::Proportional,
            vec![0.05; 20],
            p,
            20,
            20,
            BitMask::zeros(20),
            &mut init_rng,
        );
        let mut rng = StdRng::seed_from_u64(9);
        let mut prev_support: Option<BitMask> = None;
        for round in 1..6u32 {
            // Three sticky clients with pseudo-random deltas.
            let kept: Vec<(ClientId, Group, Upload)> = (0..3)
                .map(|id| {
                    use rand::Rng;
                    let mut delta: Vec<f32> = (0..20).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    let up = s.compress(round, id, Group::Sticky, &mut delta, &mut pool);
                    (id, Group::Sticky, up)
                })
                .collect();
            let agg = s.aggregate(round, &kept, &mut pool);
            let mut nonzero = Vec::new();
            agg.for_each_nonzero(|i, _| nonzero.push(i));
            let support = BitMask::from_indices(20, nonzero);
            if let Some(prev) = &prev_support {
                let overlap = prev.overlap(&support);
                assert!(
                    overlap >= 4,
                    "round {round}: overlap {overlap} below q_shr·d = 4"
                );
            }
            prev_support = Some(support);
        }
    }

    /// The aggregate is O(q·d) in memory as well as time: at d = 100 000
    /// with sparse clients, no pooled staging buffer ever reaches d/2
    /// floats — the dense combined/unique accumulators of the old
    /// implementation are gone. Both the one-shot and the streaming fold
    /// paths are checked, against a pool that has never seen a dense
    /// buffer.
    #[test]
    fn aggregate_stages_no_dense_buffer() {
        let dim = 100_000;
        let mut p = params();
        p.q = 0.01;
        p.q_shr = 0.005;
        let mk = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            GlueFlStrategy::new(
                20,
                4,
                1.0,
                OcStrategy::Proportional,
                vec![0.05; 20],
                p.clone(),
                dim,
                dim,
                BitMask::zeros(dim),
                &mut rng,
            )
        };
        let mut compress_pool = ScratchPool::new();
        let make_kept =
            |s: &mut GlueFlStrategy, pool: &mut ScratchPool| -> Vec<(ClientId, Group, Upload)> {
                (0..3)
                    .map(|id| {
                        let mut delta: Vec<f32> = (0..dim)
                            .map(|i| ((i * 7 + id * 13) % 101) as f32 / 50.0 - 1.0)
                            .collect();
                        let up = s.compress(1, id, Group::Sticky, &mut delta, pool);
                        (id, Group::Sticky, up)
                    })
                    .collect()
            };

        let mut s = mk(21);
        let kept = make_kept(&mut s, &mut compress_pool);
        let mut agg_pool = ScratchPool::new();
        let update = s.aggregate(1, &kept, &mut agg_pool);
        assert!(update.mask().count_ones() > 0);
        assert!(
            agg_pool.max_idle_value_capacity() < dim / 2,
            "aggregate staged a near-dense buffer: {} floats",
            agg_pool.max_idle_value_capacity()
        );

        // Streaming fold path, fresh pool: same bound.
        let mut s2 = mk(21);
        let kept2 = make_kept(&mut s2, &mut compress_pool);
        let mut fold_pool = ScratchPool::new();
        let mut acc = s2.fold_begin(1, &mut fold_pool);
        for (id, group, up) in &kept2 {
            s2.fold_upload(1, &mut acc, *id, *group, up, &mut fold_pool);
        }
        let folded = s2.fold_finish(1, acc, &mut fold_pool);
        assert!(
            fold_pool.max_idle_value_capacity() < dim / 2,
            "fold staged a near-dense buffer: {} floats",
            fold_pool.max_idle_value_capacity()
        );
        // And the two paths agree bitwise, as everywhere else.
        assert_eq!(folded.mask(), update.mask());
        assert!(folded
            .values()
            .iter()
            .zip(update.values())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn rescaled_compensation_survives_group_switch() {
        let mut s = strategy(10);
        // Client 0 participates as Fresh (weight 12·0.05 = 0.6), residual
        // recorded; later participates as Sticky (weight 8/3·0.05 ≈ 0.133).
        // Craft a delta where one coordinate is dropped: make 3 positions
        // outside the mask large, so top-2 keeps the two largest.
        let mask = s.shared_mask().clone();
        let outside: Vec<usize> = (0..20).filter(|&i| !mask.get(i)).collect();
        let mut d = vec![0.0f32; 20];
        d[outside[0]] = 5.0;
        d[outside[1]] = 4.0;
        d[outside[2]] = 3.0; // dropped by top-2 → residual
        let mut pool = ScratchPool::new();
        let _ = s.compress(1, 0, Group::Fresh, &mut d, &mut pool);
        // Next round, zero delta: compensation should re-inject the
        // residual scaled by ν_fresh/ν_sticky = 0.6/0.1333... = 4.5.
        let mut d2 = vec![0.0f32; 20];
        let up = s.compress(2, 0, Group::Sticky, &mut d2, &mut pool);
        match up {
            Upload::MaskSplit(split) => {
                let dense = {
                    let mut v = split.shared.to_dense();
                    split.unique.apply(&mut v);
                    v
                };
                let expected = 3.0 * (0.6 / (8.0 / 3.0 * 0.05));
                assert!(
                    (dense[outside[2]] - expected as f32).abs() < 1e-3,
                    "residual {} vs expected {expected}",
                    dense[outside[2]]
                );
            }
            other => panic!("expected mask split, got {other:?}"),
        }
    }

    #[test]
    fn finish_round_rebalances_sticky_group() {
        let mut s = strategy(11);
        let mut rng = StdRng::seed_from_u64(12);
        let plan = s.plan_round(0, &mut rng, &mut gluefl_sampling::AllOnline);
        s.finish_round(0, &mut rng, &plan.sticky_invites, &plan.fresh_invites);
        assert_eq!(s.sampler().group_size(), 8);
        assert!(plan.fresh_invites.iter().all(|&c| s.sampler().is_sticky(c)));
    }

    #[test]
    #[should_panic(expected = "q_shr")]
    fn rejects_qshr_above_q() {
        let mut p = params();
        p.q_shr = 0.5;
        let mut rng = StdRng::seed_from_u64(0);
        let _ = GlueFlStrategy::new(
            20,
            4,
            1.0,
            OcStrategy::Proportional,
            vec![0.05; 20],
            p,
            20,
            20,
            BitMask::zeros(20),
            &mut rng,
        );
    }
}
