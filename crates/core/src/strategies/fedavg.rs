//! FedAvg with uniform client sampling (McMahan et al. 2017; §2.1).

use super::{FoldAcc, Group, RoundPlan, Strategy, Upload};
use crate::aggregate::{accumulate_into, accumulate_uploads};
use crate::scratch::ScratchPool;
use gluefl_sampling::{ClientId, OnlineQuery, UniformSampler};
use gluefl_tensor::MaskedUpdate;
use rand::rngs::StdRng;

/// The no-compression baseline: uniform sampling, dense uploads, dense
/// aggregation `w ← w + (N/K)·Σ p_i Δ_i` (Equation 2).
#[derive(Debug)]
pub struct FedAvgStrategy {
    sampler: UniformSampler,
    k: usize,
    oc: f64,
    weights: Vec<f64>,
    dim: usize,
}

impl FedAvgStrategy {
    /// Creates the strategy for `n` clients, round size `k`, over-commit
    /// factor `oc`, importance weights `p_i`, and model dimension `dim`.
    #[must_use]
    pub fn new(n: usize, k: usize, oc: f64, weights: Vec<f64>, dim: usize) -> Self {
        assert_eq!(weights.len(), n, "weights length must equal population");
        Self {
            sampler: UniformSampler::new(n),
            k,
            oc,
            weights,
            dim,
        }
    }
}

impl Strategy for FedAvgStrategy {
    fn name(&self) -> String {
        "fedavg".into()
    }

    fn plan_round(
        &mut self,
        _round: u32,
        rng: &mut StdRng,
        online: &mut dyn OnlineQuery,
    ) -> RoundPlan {
        let invites = (self.k as f64 * self.oc).round() as usize;
        RoundPlan {
            sticky_invites: Vec::new(),
            fresh_invites: self.sampler.draw(rng, invites, online),
            keep_sticky: 0,
            keep_fresh: self.k,
        }
    }

    fn client_weight(&self, id: ClientId, _group: Group) -> f64 {
        // Equation 2: (N/K)·p_i.
        self.sampler.population() as f64 / self.k as f64 * self.weights[id]
    }

    fn mask_download_bytes(&self, _round: u32) -> u64 {
        0
    }

    fn compress(
        &mut self,
        _round: u32,
        _id: ClientId,
        _group: Group,
        delta: &mut [f32],
        scratch: &mut ScratchPool,
    ) -> Upload {
        Upload::Dense(scratch.take_copy(delta))
    }

    fn aggregate(
        &mut self,
        _round: u32,
        kept: &[(ClientId, Group, Upload)],
        scratch: &mut ScratchPool,
    ) -> MaskedUpdate {
        let entries: Vec<(f32, &Upload)> = kept
            .iter()
            .map(|(id, group, upload)| (self.client_weight(*id, *group) as f32, upload))
            .collect();
        let acc = accumulate_uploads(&entries, self.dim, scratch);
        // Dense update, expressed as a full mask: the packed layout then
        // *is* the dense accumulator, so no copy happens here and the
        // simulator's masked apply degenerates to the dense AXPY.
        let mut mask = scratch.take_mask(self.dim);
        mask.fill_ones();
        MaskedUpdate::new(mask, acc)
    }

    fn fold_begin(&mut self, _round: u32, scratch: &mut ScratchPool) -> FoldAcc {
        FoldAcc {
            dense: Some(scratch.take_zeroed(self.dim)),
            packed: None,
            indices: None,
            count: 0,
        }
    }

    fn fold_upload(
        &mut self,
        _round: u32,
        acc: &mut FoldAcc,
        id: ClientId,
        group: Group,
        upload: &Upload,
        _scratch: &mut ScratchPool,
    ) {
        let w = self.client_weight(id, group) as f32;
        let dense = acc
            .dense
            .as_mut()
            .expect("fold_begin allocates the accumulator");
        accumulate_into(&[(w, upload)], dense);
        acc.count += 1;
    }

    fn fold_finish(
        &mut self,
        _round: u32,
        acc: FoldAcc,
        scratch: &mut ScratchPool,
    ) -> MaskedUpdate {
        let values = acc.dense.expect("fold_begin allocates the accumulator");
        let mut mask = scratch.take_mask(self.dim);
        mask.fill_ones();
        MaskedUpdate::new(mask, values)
    }

    fn finish_round(&mut self, _round: u32, _rng: &mut StdRng, _s: &[ClientId], _f: &[ClientId]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn strategy() -> FedAvgStrategy {
        FedAvgStrategy::new(20, 4, 1.25, vec![0.05; 20], 8)
    }

    #[test]
    fn plan_invites_oc_times_k() {
        let mut s = strategy();
        let mut rng = StdRng::seed_from_u64(0);
        let plan = s.plan_round(0, &mut rng, &mut gluefl_sampling::AllOnline);
        assert_eq!(plan.fresh_invites.len(), 5);
        assert_eq!(plan.keep_fresh, 4);
        assert!(plan.sticky_invites.is_empty());
    }

    #[test]
    fn weight_is_n_over_k_times_p() {
        let s = strategy();
        assert!((s.client_weight(3, Group::Fresh) - 20.0 / 4.0 * 0.05).abs() < 1e-12);
    }

    #[test]
    fn aggregate_weighted_mean_of_dense() {
        let mut s = strategy();
        // Two clients with opposite unit deltas and equal weights: the
        // aggregate is zero.
        let kept = vec![
            (0usize, Group::Fresh, Upload::Dense(vec![1.0; 8])),
            (1usize, Group::Fresh, Upload::Dense(vec![-1.0; 8])),
        ];
        let mut pool = ScratchPool::new();
        let agg = s.aggregate(0, &kept, &mut pool);
        assert!(agg.is_dense(), "FedAvg must return a full-mask update");
        assert!(agg.values().iter().all(|v| v.abs() < 1e-9));
        // One client: agg = weight · delta.
        let kept = vec![(2usize, Group::Fresh, Upload::Dense(vec![2.0; 8]))];
        let agg = s.aggregate(0, &kept, &mut pool);
        let w = s.client_weight(2, Group::Fresh) as f32;
        assert!(agg.values().iter().all(|v| (*v - 2.0 * w).abs() < 1e-6));
    }

    #[test]
    fn expected_aggregate_is_unbiased_over_sampling() {
        // Monte Carlo check of E[Δ] = Σ p_i Δ_i for uniform sampling with
        // (N/K)p_i weights: client i's delta is e_i (indicator), so the
        // expected aggregate at position i must approach p_i.
        let n = 10;
        let k = 3;
        let weights = vec![1.0 / n as f64; n];
        let mut s = FedAvgStrategy::new(n, k, 1.0, weights.clone(), n);
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 20_000;
        let mut acc = vec![0.0f64; n];
        for _ in 0..trials {
            let plan = s.plan_round(0, &mut rng, &mut gluefl_sampling::AllOnline);
            let kept: Vec<(ClientId, Group, Upload)> = plan
                .fresh_invites
                .iter()
                .map(|&id| {
                    let mut delta = vec![0.0f32; n];
                    delta[id] = 1.0;
                    (id, Group::Fresh, Upload::Dense(delta))
                })
                .collect();
            let mut pool = ScratchPool::new();
            let agg = s.aggregate(0, &kept, &mut pool);
            for (a, g) in acc.iter_mut().zip(agg.values()) {
                *a += f64::from(*g);
            }
        }
        for (i, a) in acc.iter().enumerate() {
            let mean = a / trials as f64;
            assert!(
                (mean - 0.1).abs() < 0.01,
                "position {i}: mean {mean} vs expected 0.1"
            );
        }
    }

    #[test]
    fn dense_upload_and_no_mask_bytes() {
        let mut s = strategy();
        let mut delta = vec![1.0f32; 8];
        let mut pool = ScratchPool::new();
        let up = s.compress(0, 0, Group::Fresh, &mut delta, &mut pool);
        assert_eq!(up.bytes(), 8 * 4 + 16);
        assert_eq!(s.mask_download_bytes(0), 0);
    }
}
