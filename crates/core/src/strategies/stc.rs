//! STC: top-`q` masking on clients and server (Sattler et al. 2019).

use super::{FoldAcc, Group, RoundPlan, Strategy, Upload};
use crate::aggregate::{accumulate_into, accumulate_uploads};
use crate::scratch::ScratchPool;
use gluefl_compress::stc::keep_count;
use gluefl_compress::{CompensationMode, ErrorCompensator};
use gluefl_sampling::{ClientId, OnlineQuery, UniformSampler};
use gluefl_tensor::{top_k_abs_masked_into, BitMask, MaskedUpdate, SparseUpdate, TopKScope};
use rand::rngs::StdRng;

/// The masking-only STC of Algorithm 1: clients upload `top_q(Δ_i)` (with
/// classic error feedback), the server aggregates with `(N/K)p_i` weights
/// and re-masks the aggregate with another `top_q`, so only `q·d`
/// positions change per round.
#[derive(Debug)]
pub struct StcStrategy {
    sampler: UniformSampler,
    k: usize,
    oc: f64,
    weights: Vec<f64>,
    q: f64,
    /// Number of trainable positions (ratio base).
    trainable: usize,
    dim: usize,
    /// Positions strategies must not select (BN statistics).
    stats_excluded: BitMask,
    ec: ErrorCompensator,
    /// Apply STC's ternary quantization to uploads (footnote 1).
    quantize: bool,
}

impl StcStrategy {
    /// Creates the strategy. `stats_excluded` marks positions that may
    /// never enter a mask (BN statistics).
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        n: usize,
        k: usize,
        oc: f64,
        weights: Vec<f64>,
        q: f64,
        trainable: usize,
        dim: usize,
        stats_excluded: BitMask,
    ) -> Self {
        assert_eq!(weights.len(), n, "weights length must equal population");
        assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
        Self {
            sampler: UniformSampler::new(n),
            k,
            oc,
            weights,
            q,
            trainable,
            dim,
            stats_excluded,
            ec: ErrorCompensator::new(CompensationMode::Raw, dim),
            quantize: false,
        }
    }

    /// Enables ternary quantization of uploads: every kept value is sent
    /// as `sign·μ` (one bit each plus one shared magnitude). Error
    /// feedback then also carries the quantization residual.
    #[must_use]
    pub fn with_quantization(mut self) -> Self {
        self.quantize = true;
        self
    }

    /// The configured mask ratio `q`.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }
}

impl Strategy for StcStrategy {
    fn name(&self) -> String {
        if self.quantize {
            "stc-quant".into()
        } else {
            "stc".into()
        }
    }

    fn plan_round(
        &mut self,
        _round: u32,
        rng: &mut StdRng,
        online: &mut dyn OnlineQuery,
    ) -> RoundPlan {
        let invites = (self.k as f64 * self.oc).round() as usize;
        RoundPlan {
            sticky_invites: Vec::new(),
            fresh_invites: self.sampler.draw(rng, invites, online),
            keep_sticky: 0,
            keep_fresh: self.k,
        }
    }

    fn client_weight(&self, id: ClientId, _group: Group) -> f64 {
        self.sampler.population() as f64 / self.k as f64 * self.weights[id]
    }

    fn mask_download_bytes(&self, _round: u32) -> u64 {
        0
    }

    fn compress(
        &mut self,
        _round: u32,
        id: ClientId,
        _group: Group,
        delta: &mut [f32],
        scratch: &mut ScratchPool,
    ) -> Upload {
        // Error feedback: add the residual from the client's previous
        // participation, then sparsify, then remember the new residual.
        self.ec.apply(id, delta, 1.0);
        let k = keep_count(self.trainable, self.q);
        let (ix, vals) = scratch.take_sparse();
        let idx = top_k_abs_masked_into(
            delta,
            k,
            TopKScope::Outside(&self.stats_excluded),
            &mut scratch.topk,
        );
        let sparse = SparseUpdate::gather_in(delta, idx, ix, vals);
        if self.quantize {
            // The residual must reflect what the server actually receives
            // (the dequantized values), so quantization loss is carried
            // into the next round too.
            let ternary = gluefl_compress::stc::TernaryUpdate::quantize(&sparse);
            self.ec
                .record_sent_parts(id, delta, &[&ternary.dequantize()], 1.0);
            Upload::Ternary(ternary)
        } else {
            self.ec.record_sent_parts(id, delta, &[&sparse], 1.0);
            Upload::Sparse(sparse)
        }
    }

    fn fold_codec_error(&mut self, id: ClientId, indices: &[u32], sent: &[f32], shipped: &[f32]) {
        // Only the non-quantized (sparse f32) path ships value-bearing
        // frames; ternary frames are exact given µ and never report.
        self.ec.fold_shipped_error(id, indices, sent, shipped);
    }

    fn aggregate(
        &mut self,
        _round: u32,
        kept: &[(ClientId, Group, Upload)],
        scratch: &mut ScratchPool,
    ) -> MaskedUpdate {
        let entries: Vec<(f32, &Upload)> = kept
            .iter()
            .map(|(id, group, upload)| (self.client_weight(*id, *group) as f32, upload))
            .collect();
        let acc = accumulate_uploads(&entries, self.dim, scratch);
        // Server-side masking (Algorithm 1 line 17): the update *is* the
        // top q of the aggregate, so the mask/packed-values layout is
        // emitted directly — no dense re-materialisation.
        let mut mask = scratch.take_mask(self.dim);
        let mut values = scratch.take_cleared();
        let k = keep_count(self.trainable, self.q);
        let idx = top_k_abs_masked_into(
            &acc,
            k,
            TopKScope::Outside(&self.stats_excluded),
            &mut scratch.topk,
        );
        // `idx` is strictly increasing, so pushes land in mask-bit order.
        for &i in idx {
            mask.set(i, true);
            values.push(acc[i]);
        }
        scratch.put(acc);
        MaskedUpdate::new(mask, values)
    }

    fn fold_begin(&mut self, _round: u32, scratch: &mut ScratchPool) -> FoldAcc {
        FoldAcc {
            dense: Some(scratch.take_zeroed(self.dim)),
            packed: None,
            indices: None,
            count: 0,
        }
    }

    fn fold_upload(
        &mut self,
        _round: u32,
        acc: &mut FoldAcc,
        id: ClientId,
        group: Group,
        upload: &Upload,
        _scratch: &mut ScratchPool,
    ) {
        let w = self.client_weight(id, group) as f32;
        let dense = acc
            .dense
            .as_mut()
            .expect("fold_begin allocates the accumulator");
        accumulate_into(&[(w, upload)], dense);
        acc.count += 1;
    }

    fn fold_finish(
        &mut self,
        _round: u32,
        acc: FoldAcc,
        scratch: &mut ScratchPool,
    ) -> MaskedUpdate {
        let acc = acc.dense.expect("fold_begin allocates the accumulator");
        // Identical finishing step to `aggregate`: server-side top-q
        // re-masking over the streamed partial sum.
        let mut mask = scratch.take_mask(self.dim);
        let mut values = scratch.take_cleared();
        let k = keep_count(self.trainable, self.q);
        let idx = top_k_abs_masked_into(
            &acc,
            k,
            TopKScope::Outside(&self.stats_excluded),
            &mut scratch.topk,
        );
        for &i in idx {
            mask.set(i, true);
            values.push(acc[i]);
        }
        scratch.put(acc);
        MaskedUpdate::new(mask, values)
    }

    fn finish_round(&mut self, _round: u32, _rng: &mut StdRng, _s: &[ClientId], _f: &[ClientId]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn strategy(q: f64) -> StcStrategy {
        StcStrategy::new(10, 3, 1.0, vec![0.1; 10], q, 8, 8, BitMask::zeros(8))
    }

    #[test]
    fn upload_is_top_q_sparse() {
        let mut s = strategy(0.25);
        let mut delta = vec![0.1f32, -9.0, 0.2, 8.0, 0.0, 0.0, 0.0, 0.0];
        let mut pool = ScratchPool::new();
        let up = s.compress(0, 0, Group::Fresh, &mut delta, &mut pool);
        match up {
            Upload::Sparse(u) => {
                assert_eq!(u.indices(), &[1, 3]);
            }
            other => panic!("expected sparse upload, got {other:?}"),
        }
    }

    #[test]
    fn error_feedback_carries_residual() {
        let mut s = strategy(0.25);
        // Round 1: client 5 sends top-2 of [4,3,2,1,...]; residual = rest.
        let mut d1 = vec![4.0f32, 3.0, 2.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        let mut pool = ScratchPool::new();
        let _ = s.compress(0, 5, Group::Fresh, &mut d1, &mut pool);
        // Round 2: zero fresh delta; compensation resurrects the residual,
        // so the upload now contains the previously-dropped coordinates.
        let mut d2 = vec![0.0f32; 8];
        let up = s.compress(1, 5, Group::Fresh, &mut d2, &mut pool);
        match up {
            Upload::Sparse(u) => {
                assert_eq!(u.indices(), &[2, 3]);
                assert_eq!(u.values(), &[2.0, 1.0]);
            }
            other => panic!("expected sparse upload, got {other:?}"),
        }
    }

    #[test]
    fn aggregate_is_server_masked() {
        let mut s = strategy(0.25);
        // Two clients agree on positions 0, 7; noise elsewhere.
        let mk = |vals: Vec<(u32, f32)>| Upload::Sparse(SparseUpdate::from_pairs(8, vals));
        let kept = vec![
            (0usize, Group::Fresh, mk(vec![(0, 5.0), (6, 0.1)])),
            (1usize, Group::Fresh, mk(vec![(0, 5.0), (7, 6.0)])),
        ];
        let mut pool = ScratchPool::new();
        let agg = s.aggregate(0, &kept, &mut pool);
        // top 25% of 8 = 2 positions survive: 0 (sum 10·w) and 7 (6·w).
        let mut nonzero = Vec::new();
        agg.for_each_nonzero(|i, _| nonzero.push(i));
        assert_eq!(nonzero, vec![0, 7]);
    }

    #[test]
    fn changed_positions_bounded_by_q() {
        let mut s = strategy(0.25);
        let kept: Vec<(ClientId, Group, Upload)> = (0..3)
            .map(|i| {
                let vals: Vec<(u32, f32)> = (0..8)
                    .map(|j| (j as u32, (i + 1) as f32 * (j as f32 - 3.5)))
                    .collect();
                (
                    i,
                    Group::Fresh,
                    Upload::Sparse(SparseUpdate::from_pairs(8, vals)),
                )
            })
            .collect();
        let mut pool = ScratchPool::new();
        let agg = s.aggregate(0, &kept, &mut pool);
        assert!(agg.nnz() <= 2, "mask covers {} > q·d = 2", agg.nnz());
        let mut changed = 0usize;
        agg.for_each_nonzero(|_, _| changed += 1);
        assert!(changed <= 2, "changed {changed} exceeds q·d = 2");
    }

    #[test]
    fn stats_positions_never_selected() {
        let mut excluded = BitMask::zeros(8);
        excluded.set(0, true); // pretend position 0 is a BN statistic
        let mut s = StcStrategy::new(10, 3, 1.0, vec![0.1; 10], 0.25, 7, 8, excluded);
        let mut delta = vec![100.0f32, 1.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0.0];
        let mut pool = ScratchPool::new();
        let up = s.compress(0, 0, Group::Fresh, &mut delta, &mut pool);
        match up {
            Upload::Sparse(u) => {
                assert!(!u.indices().contains(&0), "selected excluded position");
            }
            other => panic!("expected sparse upload, got {other:?}"),
        }
    }

    #[test]
    fn quantized_upload_costs_fewer_bytes() {
        let mut plain = strategy(0.5);
        let mut quant = StcStrategy::new(10, 3, 1.0, vec![0.1; 10], 0.5, 8, 8, BitMask::zeros(8))
            .with_quantization();
        let delta = vec![4.0f32, -3.0, 2.0, -1.0, 0.5, 0.25, 0.1, 0.05];
        let mut pool = ScratchPool::new();
        let up_plain = plain.compress(0, 0, Group::Fresh, &mut delta.clone(), &mut pool);
        let up_quant = quant.compress(0, 0, Group::Fresh, &mut delta.clone(), &mut pool);
        assert!(up_quant.bytes() < up_plain.bytes());
    }

    #[test]
    fn quantized_upload_preserves_signs_and_support() {
        let mut s = StcStrategy::new(10, 3, 1.0, vec![0.1; 10], 0.5, 8, 8, BitMask::zeros(8))
            .with_quantization();
        let mut delta = vec![4.0f32, -3.0, 2.0, -1.0, 0.0, 0.0, 0.0, 0.0];
        let mut pool = ScratchPool::new();
        let up = s.compress(0, 0, Group::Fresh, &mut delta, &mut pool);
        match up {
            Upload::Ternary(t) => {
                let back = t.dequantize();
                assert_eq!(back.indices(), &[0, 1, 2, 3]);
                assert!(back.values()[0] > 0.0 && back.values()[1] < 0.0);
                // μ = mean(4, 3, 2, 1) = 2.5.
                assert!((t.mu - 2.5).abs() < 1e-6);
            }
            other => panic!("expected ternary upload, got {other:?}"),
        }
    }

    #[test]
    fn quantization_error_is_carried_by_feedback() {
        let mut s = StcStrategy::new(10, 3, 1.0, vec![0.1; 10], 1.0, 4, 4, BitMask::zeros(4))
            .with_quantization();
        // q = 1: everything is kept, only quantization loses information.
        let mut d1 = vec![4.0f32, 2.0, 0.0, 0.0];
        let mut pool = ScratchPool::new();
        let _ = s.compress(0, 7, Group::Fresh, &mut d1, &mut pool);
        // Sent sign·μ = ±3: residuals are (1, −1, 0, 0).
        let mut d2 = vec![0.0f32; 4];
        let up = s.compress(1, 7, Group::Fresh, &mut d2, &mut pool);
        match up {
            Upload::Ternary(t) => {
                let back = t.dequantize();
                // Residual (1, −1) quantizes to signs (+, −) with μ ≈ ...
                assert!(back.values().iter().any(|v| *v > 0.0));
                assert!(back.values().iter().any(|v| *v < 0.0));
            }
            other => panic!("expected ternary upload, got {other:?}"),
        }
    }

    #[test]
    fn plan_is_uniform_without_stickiness() {
        let mut s = strategy(0.2);
        let mut rng = StdRng::seed_from_u64(1);
        let plan = s.plan_round(0, &mut rng, &mut gluefl_sampling::AllOnline);
        assert!(plan.sticky_invites.is_empty());
        assert_eq!(plan.fresh_invites.len(), 3);
    }
}
