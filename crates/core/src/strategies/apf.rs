//! APF: Adaptive Parameter Freezing as a server masking strategy
//! (Chen et al. 2021; the paper's parameter-freezing baseline).

use super::{bitmap_bytes, FoldAcc, Group, RoundPlan, Strategy, Upload};
use crate::aggregate::{accumulate_into, accumulate_weighted_values};
use crate::scratch::ScratchPool;
use gluefl_compress::{Apf, ApfConfig};
use gluefl_sampling::{ClientId, OnlineQuery, UniformSampler};
use gluefl_tensor::{BitMask, MaskedUpdate, SparseUpdate};
use rand::rngs::StdRng;

/// APF with uniform sampling: the server maintains a per-parameter freeze
/// state; each round only *active* (unfrozen) parameters are trained,
/// uploaded (values aligned to the known active mask), aggregated, and
/// synchronised. The active mask itself is broadcast as a bitmap.
///
/// Because every upload of a round is aligned to the same active mask,
/// aggregation runs entirely in the packed layout: the clients' value
/// arrays are summed contiguously and the result *is* the round's
/// [`MaskedUpdate`] — no dense `d`-sized accumulator is ever built.
#[derive(Debug)]
pub struct ApfStrategy {
    sampler: UniformSampler,
    k: usize,
    oc: f64,
    weights: Vec<f64>,
    apf: Apf,
    /// Cached copy of [`Apf::active_mask`] for the current round
    /// (refreshed after each observe, so `compress` never allocates).
    active: BitMask,
    dim: usize,
}

impl ApfStrategy {
    /// Creates the strategy over `dim` flat parameters.
    ///
    /// BN statistics need no special casing here: they receive zero
    /// "update" signal from the strategy's viewpoint and [`Apf`] never
    /// freezes a zero-signal parameter.
    #[must_use]
    pub fn new(
        n: usize,
        k: usize,
        oc: f64,
        weights: Vec<f64>,
        config: ApfConfig,
        dim: usize,
    ) -> Self {
        assert_eq!(weights.len(), n, "weights length must equal population");
        let apf = Apf::new(dim, config);
        let active = apf.active_mask();
        Self {
            sampler: UniformSampler::new(n),
            k,
            oc,
            weights,
            apf,
            active,
            dim,
        }
    }

    /// Fraction of parameters currently frozen (observability hook).
    #[must_use]
    pub fn frozen_fraction(&self) -> f64 {
        self.apf.frozen_fraction()
    }
}

impl Strategy for ApfStrategy {
    fn name(&self) -> String {
        "apf".into()
    }

    fn plan_round(
        &mut self,
        _round: u32,
        rng: &mut StdRng,
        online: &mut dyn OnlineQuery,
    ) -> RoundPlan {
        let invites = (self.k as f64 * self.oc).round() as usize;
        RoundPlan {
            sticky_invites: Vec::new(),
            fresh_invites: self.sampler.draw(rng, invites, online),
            keep_sticky: 0,
            keep_fresh: self.k,
        }
    }

    fn client_weight(&self, id: ClientId, _group: Group) -> f64 {
        self.sampler.population() as f64 / self.k as f64 * self.weights[id]
    }

    fn mask_download_bytes(&self, _round: u32) -> u64 {
        // The active mask is shipped as a bitmap with each sync.
        bitmap_bytes(self.dim)
    }

    fn round_mask(&self, _round: u32) -> Option<&BitMask> {
        // The active mask: broadcast at sync time and the alignment of
        // every known-mask upload this round (aggregate() refreshes it
        // only after consuming the round's uploads).
        Some(&self.active)
    }

    fn compress(
        &mut self,
        _round: u32,
        _id: ClientId,
        _group: Group,
        delta: &mut [f32],
        scratch: &mut ScratchPool,
    ) -> Upload {
        // Clients freeze the frozen parameters locally, so their deltas
        // are zero there; the upload carries only active positions, whose
        // identities the server already knows (known-mask encoding).
        let (ix, vals) = scratch.take_sparse();
        let sparse = SparseUpdate::from_dense_masked_in(delta, &self.active, ix, vals);
        Upload::KnownMask(sparse)
    }

    fn aggregate(
        &mut self,
        _round: u32,
        kept: &[(ClientId, Group, Upload)],
        scratch: &mut ScratchPool,
    ) -> MaskedUpdate {
        // Every upload is aligned to the round's active mask, so the
        // shards accumulate straight into the packed layout (frozen
        // positions are structurally absent — nothing to re-zero).
        let active_nnz = self.active.count_ones();
        let entries: Vec<(f32, &[f32])> = kept
            .iter()
            .map(|(id, group, upload)| {
                let w = self.client_weight(*id, *group) as f32;
                match upload {
                    Upload::KnownMask(u) => {
                        assert_eq!(u.nnz(), active_nnz, "upload not aligned to the active mask");
                        (w, u.values())
                    }
                    other => panic!("APF aggregate received non-known-mask upload {other:?}"),
                }
            })
            .collect();
        let values = accumulate_weighted_values(&entries, active_nnz, scratch);
        self.apf.observe_masked(&values, &self.active);
        let mut mask = scratch.take_mask(self.dim);
        mask.copy_from(&self.active);
        // The observe above may have frozen/thawed parameters: refresh
        // the cached mask for the next round's compress calls.
        self.apf.fill_active_mask(&mut self.active);
        MaskedUpdate::new(mask, values)
    }

    fn fold_begin(&mut self, _round: u32, scratch: &mut ScratchPool) -> FoldAcc {
        // APF folds straight into the packed active-mask layout — no
        // dense d-sized accumulator exists on the streaming path either.
        FoldAcc {
            dense: None,
            packed: Some(scratch.take_zeroed(self.active.count_ones())),
            indices: None,
            count: 0,
        }
    }

    fn fold_upload(
        &mut self,
        _round: u32,
        acc: &mut FoldAcc,
        id: ClientId,
        group: Group,
        upload: &Upload,
        _scratch: &mut ScratchPool,
    ) {
        let w = self.client_weight(id, group) as f32;
        let packed = acc
            .packed
            .as_mut()
            .expect("fold_begin allocates the accumulator");
        match upload {
            Upload::KnownMask(u) => {
                assert_eq!(
                    u.nnz(),
                    packed.len(),
                    "upload not aligned to the active mask"
                );
                accumulate_into(&[(w, u.values())], packed);
            }
            other => panic!("APF aggregate received non-known-mask upload {other:?}"),
        }
        acc.count += 1;
    }

    fn fold_finish(
        &mut self,
        _round: u32,
        acc: FoldAcc,
        scratch: &mut ScratchPool,
    ) -> MaskedUpdate {
        let values = acc.packed.expect("fold_begin allocates the accumulator");
        self.apf.observe_masked(&values, &self.active);
        let mut mask = scratch.take_mask(self.dim);
        mask.copy_from(&self.active);
        self.apf.fill_active_mask(&mut self.active);
        MaskedUpdate::new(mask, values)
    }

    fn finish_round(&mut self, _round: u32, _rng: &mut StdRng, _s: &[ClientId], _f: &[ClientId]) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ApfConfig {
        ApfConfig {
            threshold: 0.1,
            ema_beta: 0.9,
            initial_period: 2,
            max_period: 8,
            warmup_rounds: 3,
        }
    }

    fn strategy() -> ApfStrategy {
        ApfStrategy::new(10, 3, 1.0, vec![0.1; 10], cfg(), 6)
    }

    #[test]
    fn everything_active_initially() {
        let mut s = strategy();
        let mut delta = vec![1.0f32; 6];
        let mut pool = ScratchPool::new();
        let up = s.compress(0, 0, Group::Fresh, &mut delta, &mut pool);
        match up {
            Upload::KnownMask(u) => assert_eq!(u.nnz(), 6),
            other => panic!("expected known-mask upload, got {other:?}"),
        }
    }

    #[test]
    fn oscillating_positions_get_frozen_and_uploads_shrink() {
        let mut pool = ScratchPool::new();
        let mut s = strategy();
        // Positions 0..3 oscillate; 3..6 move steadily.
        for r in 0..20 {
            let sign = if r % 2 == 0 { 1.0 } else { -1.0 };
            let kept: Vec<(ClientId, Group, Upload)> = (0..3)
                .map(|id| {
                    let mut delta = vec![0.0f32; 6];
                    for (j, d) in delta.iter_mut().enumerate() {
                        *d = if j < 3 { sign * 0.5 } else { 0.5 };
                    }
                    let up = s.compress(r, id, Group::Fresh, &mut delta, &mut pool);
                    (id, Group::Fresh, up)
                })
                .collect();
            let _ = s.aggregate(r, &kept, &mut pool);
        }
        assert!(s.frozen_fraction() > 0.0, "nothing froze");
        // Steady positions must still be active.
        let mut probe = vec![1.0f32; 6];
        let up = s.compress(99, 0, Group::Fresh, &mut probe, &mut pool);
        match up {
            Upload::KnownMask(u) => {
                assert!(u.indices().contains(&4) && u.indices().contains(&5));
                assert!(u.nnz() < 6, "no position was dropped");
            }
            other => panic!("expected known-mask upload, got {other:?}"),
        }
    }

    #[test]
    fn frozen_positions_do_not_change_in_aggregate() {
        let mut pool = ScratchPool::new();
        let mut s = strategy();
        // Freeze positions 0..3 as above. The mask relevant to round r is
        // the one in force *before* aggregation advances the APF state.
        for r in 0..20 {
            let sign = if r % 2 == 0 { 1.0 } else { -1.0 };
            let active_before = s.apf.active_mask();
            let kept: Vec<(ClientId, Group, Upload)> = (0..3)
                .map(|id| {
                    let mut delta = vec![sign * 0.5, sign * 0.5, sign * 0.5, 0.5, 0.5, 0.5];
                    let up = s.compress(r, id, Group::Fresh, &mut delta, &mut pool);
                    (id, Group::Fresh, up)
                })
                .collect();
            let agg = s.aggregate(r, &kept, &mut pool);
            // The update's support is exactly the round's active mask, so
            // frozen positions are structurally excluded from the apply.
            assert_eq!(agg.mask(), &active_before, "round {r}");
            agg.for_each_nonzero(|j, _| {
                assert!(active_before.get(j), "frozen position {j} changed");
            });
        }
    }

    #[test]
    fn mask_bitmap_is_charged_per_sync() {
        let s = strategy();
        assert_eq!(s.mask_download_bytes(0), 1 + 16); // ceil(6/8) + header
    }

    #[test]
    fn weight_matches_fedavg_rule() {
        let s = strategy();
        assert!((s.client_weight(2, Group::Fresh) - 10.0 / 3.0 * 0.1).abs() < 1e-12);
    }
}
