//! The GlueFL federated-learning framework.
//!
//! A pure-Rust reproduction of *GlueFL: Reconciling Client Sampling and
//! Model Masking for Bandwidth Efficient Federated Learning* (He et al.,
//! MLSys 2023). This crate ties the workspace's substrates — synthetic
//! non-IID datasets ([`gluefl_data`]), a flat-parameter neural net
//! ([`gluefl_ml`]), compression/masking ([`gluefl_compress`]), client
//! sampling ([`gluefl_sampling`]), and network simulation
//! ([`gluefl_net`]) — into a deterministic round-by-round simulator with
//! four strategies:
//!
//! | Strategy | Sampling | Compression |
//! |---|---|---|
//! | [`strategies::FedAvgStrategy`] | uniform | none (dense) |
//! | [`strategies::StcStrategy`] | uniform | top-`q` both sides + error feedback |
//! | [`strategies::ApfStrategy`] | uniform | adaptive parameter freezing |
//! | [`strategies::GlueFlStrategy`] | sticky (§3.1) | mask shifting (§3.2) + regeneration + REC (§3.3) |
//!
//! Each round's aggregate crosses the strategy seam as a [`MaskedUpdate`]
//! (support mask + packed values; see the [`strategies::Strategy`] docs
//! for the contract), which the simulator applies with word-level masked
//! kernels — sparse rounds never walk the dense parameter vector.
//!
//! # Quickstart
//!
//! ```
//! use gluefl_core::{SimConfig, Simulation, StrategyConfig};
//! use gluefl_data::DatasetProfile;
//! use gluefl_ml::DatasetModel;
//!
//! // A miniature FEMNIST/ShuffleNet run (2% of paper scale, 3 rounds).
//! let mut cfg = SimConfig::paper_setup(
//!     DatasetProfile::Femnist,
//!     DatasetModel::ShuffleNet,
//!     StrategyConfig::Stc { q: 0.2 },
//!     0.02,
//!     3,
//!     42,
//! );
//! cfg.model.hidden = vec![8];           // shrink for the doctest
//! cfg.dataset.feature_dim = 8;
//! cfg.dataset.classes = 4;
//! cfg.dataset.test_samples = 40;
//! let result = Simulation::new(cfg).run();
//! assert_eq!(result.rounds.len(), 3);
//! assert!(result.total.down_bytes > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
mod config;
mod metrics;
pub mod scratch;
mod simulator;
mod staleness;
pub mod strategies;
pub mod stream;
pub mod theory;
pub mod wire_link;

pub use config::{AvailabilityConfig, GlueFlParams, SimConfig, StrategyConfig};
pub use gluefl_tensor::MaskedUpdate;
pub use gluefl_wire::Codec as WireCodec;
pub use gluefl_wire::{IndexLayout, WirePolicy};
pub use metrics::{CumulativeMetrics, RoundRecord, RunResult};
pub use scratch::{ScratchPool, TrainSlot};
pub use simulator::{batch_local_train_into, local_train_into, run_strategy, Simulation};
pub use staleness::StalenessTracker;
