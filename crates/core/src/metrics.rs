//! Per-round and per-run metrics, mirroring the paper's Table 2 columns.

use gluefl_telemetry::{Phase, PHASE_COUNT};

/// One round's measurements.
///
/// # Equality
///
/// `PartialEq` compares the *modelled* round — bytes, analytic times,
/// accuracy, counts — and deliberately ignores the measured wall-time
/// fields ([`RoundRecord::phase_nanos`], [`RoundRecord::step_nanos`]):
/// the loopback suite pins socket rounds bit-exact against simulator
/// rounds by record equality, and wall-clock nanoseconds are the one
/// thing two bit-identical executions legitimately disagree on.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: u32,
    /// Downstream bytes this round (all invited clients), from the
    /// analytic [`gluefl_tensor::WireCost`] model.
    pub down_bytes: u64,
    /// Upstream bytes this round (all invited clients), from the analytic
    /// [`gluefl_tensor::WireCost`] model.
    pub up_bytes: u64,
    /// *Measured* upstream bytes this round: every invited client's
    /// upload and BN-statistic frames as actually serialized by the
    /// configured [`crate::WireCodec`]. Equals [`RoundRecord::up_bytes`]
    /// bit-for-bit under the default `F32` codec; smaller under the
    /// quantized codecs.
    pub wire_up_bytes: u64,
    /// *Measured* bytes of this round's reference broadcast: one dense
    /// full-model frame plus the strategy's mask frame (when it ships
    /// one), as serialized by the wire layer. The per-client download
    /// accounting stays analytic (it depends on each client's staleness);
    /// this measures what one fully-stale sync would transfer.
    pub wire_broadcast_bytes: u64,
    /// Wall-clock seconds of the round (slowest kept client).
    pub round_secs: f64,
    /// Download seconds of the slowest kept client (the paper's DT
    /// contribution: "we pick the slowest client in each round and sum up
    /// their download time", §5.1).
    pub slowest_download_secs: f64,
    /// Upload seconds of the slowest kept client.
    pub slowest_upload_secs: f64,
    /// Compute seconds of the slowest kept client.
    pub slowest_compute_secs: f64,
    /// Mean download seconds over kept clients.
    pub mean_download_secs: f64,
    /// Mean upload seconds over kept clients.
    pub mean_upload_secs: f64,
    /// Mean compute seconds over kept clients.
    pub mean_compute_secs: f64,
    /// Test accuracy (top-1 or top-5 per config), if evaluated this round.
    pub accuracy: Option<f64>,
    /// Test loss, if evaluated this round.
    pub loss: Option<f64>,
    /// Number of clients invited (incl. over-commitment).
    pub invited: usize,
    /// Number of client updates kept.
    pub kept: usize,
    /// Positions changed by this round's aggregate update.
    pub changed_positions: usize,
    /// *Measured* wall-clock nanoseconds spent in each [`Phase`]
    /// (indexed by [`Phase::index`]), recorded only when a
    /// [`gluefl_telemetry::Telemetry`] recorder is attached to the
    /// simulation — all zeros otherwise. Unlike the analytic
    /// `*_secs` columns (which model the *clients'* network/compute
    /// time), these measure where this process actually spent the
    /// round.
    pub phase_nanos: [u64; PHASE_COUNT],
    /// *Measured* wall-clock nanoseconds of the whole round step,
    /// excluding evaluation; zero without an attached recorder. The
    /// per-phase spans above account for within 5% of this (pinned by
    /// `expt trace` and the simulator tests).
    pub step_nanos: u64,
}

impl RoundRecord {
    /// Measured nanoseconds of one phase this round.
    #[must_use]
    pub fn phase_nanos_of(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase.index()]
    }

    /// Sum of all measured per-phase nanoseconds this round.
    #[must_use]
    pub fn measured_phase_total(&self) -> u64 {
        self.phase_nanos.iter().sum()
    }
}

impl PartialEq for RoundRecord {
    fn eq(&self, other: &Self) -> bool {
        // Destructure so adding a field forces a decision here; the two
        // measured wall-time fields are the only ones ignored (see the
        // struct docs).
        let Self {
            round,
            down_bytes,
            up_bytes,
            wire_up_bytes,
            wire_broadcast_bytes,
            round_secs,
            slowest_download_secs,
            slowest_upload_secs,
            slowest_compute_secs,
            mean_download_secs,
            mean_upload_secs,
            mean_compute_secs,
            accuracy,
            loss,
            invited,
            kept,
            changed_positions,
            phase_nanos: _,
            step_nanos: _,
        } = self;
        *round == other.round
            && *down_bytes == other.down_bytes
            && *up_bytes == other.up_bytes
            && *wire_up_bytes == other.wire_up_bytes
            && *wire_broadcast_bytes == other.wire_broadcast_bytes
            && *round_secs == other.round_secs
            && *slowest_download_secs == other.slowest_download_secs
            && *slowest_upload_secs == other.slowest_upload_secs
            && *slowest_compute_secs == other.slowest_compute_secs
            && *mean_download_secs == other.mean_download_secs
            && *mean_upload_secs == other.mean_upload_secs
            && *mean_compute_secs == other.mean_compute_secs
            && *accuracy == other.accuracy
            && *loss == other.loss
            && *invited == other.invited
            && *kept == other.kept
            && *changed_positions == other.changed_positions
    }
}

/// Accumulated results of one training run.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Strategy name.
    pub strategy: String,
    /// Per-round records.
    pub rounds: Vec<RoundRecord>,
    /// Round at which the 5-eval rolling-mean accuracy first reached the
    /// target (paper §5.1 reporting rule), if it did.
    pub target_round: Option<u32>,
    /// Cumulative metrics *at the target round* (or at the end if the
    /// target was not reached).
    pub at_target: CumulativeMetrics,
    /// Cumulative metrics over the full run.
    pub total: CumulativeMetrics,
}

/// The DV / TV / DT / TT numbers of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CumulativeMetrics {
    /// Downstream volume in bytes (Table 2's DV).
    pub down_bytes: u64,
    /// Total volume in bytes (Table 2's TV = DV + upstream).
    pub total_bytes: u64,
    /// Download time in seconds (Table 2's DT: sum of slowest download).
    pub download_secs: f64,
    /// Total training time in seconds (Table 2's TT).
    pub total_secs: f64,
    /// Rounds included.
    pub rounds: u32,
    /// Final (rolling-mean) accuracy at this point.
    pub accuracy: f64,
}

impl RunResult {
    /// Builds a result from round records, computing target-time metrics
    /// with the paper's 5-evaluation rolling mean rule.
    #[must_use]
    pub fn from_rounds(
        strategy: impl Into<String>,
        rounds: Vec<RoundRecord>,
        target_accuracy: Option<f64>,
    ) -> Self {
        let mut rolling: Vec<f64> = Vec::new();
        let mut target_round: Option<u32> = None;
        if let Some(target) = target_accuracy {
            for r in &rounds {
                if let Some(acc) = r.accuracy {
                    rolling.push(acc);
                    let window = &rolling[rolling.len().saturating_sub(5)..];
                    let mean = window.iter().sum::<f64>() / window.len() as f64;
                    if rolling.len() >= 5 && mean >= target && target_round.is_none() {
                        target_round = Some(r.round);
                    }
                }
            }
        }
        let total = Self::accumulate(&rounds, u32::MAX);
        let at_target = match target_round {
            Some(t) => Self::accumulate(&rounds, t),
            None => total,
        };
        Self {
            strategy: strategy.into(),
            rounds,
            target_round,
            at_target,
            total,
        }
    }

    fn accumulate(rounds: &[RoundRecord], up_to_round: u32) -> CumulativeMetrics {
        let mut m = CumulativeMetrics::default();
        let mut recent: Vec<f64> = Vec::new();
        for r in rounds {
            if r.round > up_to_round {
                break;
            }
            m.down_bytes += r.down_bytes;
            m.total_bytes += r.down_bytes + r.up_bytes;
            m.download_secs += r.slowest_download_secs;
            m.total_secs += r.round_secs;
            m.rounds += 1;
            if let Some(acc) = r.accuracy {
                recent.push(acc);
            }
        }
        let window = &recent[recent.len().saturating_sub(5)..];
        if !window.is_empty() {
            m.accuracy = window.iter().sum::<f64>() / window.len() as f64;
        }
        m
    }

    /// Cumulative downstream bytes after each round — the x-axis of the
    /// paper's Figures 5–8, 10, 11.
    #[must_use]
    pub fn cumulative_down_bytes(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.rounds
            .iter()
            .map(|r| {
                acc += r.down_bytes;
                acc
            })
            .collect()
    }

    /// `(cumulative_down_bytes, accuracy)` pairs at evaluation rounds —
    /// one series of the accuracy-vs-bandwidth plots.
    #[must_use]
    pub fn accuracy_curve(&self) -> Vec<(u64, f64)> {
        let mut acc_bytes = 0u64;
        let mut out = Vec::new();
        for r in &self.rounds {
            acc_bytes += r.down_bytes;
            if let Some(a) = r.accuracy {
                out.push((acc_bytes, a));
            }
        }
        out
    }

    /// Writes the per-round records as CSV (header + one line per
    /// round). The analytic columns come first; the measured per-phase
    /// wall-time columns (`step_ns` plus one `<phase>_ns` per
    /// [`Phase`], all zeros without an attached recorder) follow them.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "round,down_bytes,up_bytes,wire_up_bytes,wire_broadcast_bytes,round_secs,\
             slowest_download_secs,slowest_upload_secs,slowest_compute_secs,accuracy,loss,\
             invited,kept,changed,step_ns",
        );
        for p in Phase::ALL {
            s.push_str(&format!(",{}_ns", p.name()));
        }
        s.push('\n');
        for r in &self.rounds {
            s.push_str(&format!(
                "{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{},{},{},{},{},{}",
                r.round,
                r.down_bytes,
                r.up_bytes,
                r.wire_up_bytes,
                r.wire_broadcast_bytes,
                r.round_secs,
                r.slowest_download_secs,
                r.slowest_upload_secs,
                r.slowest_compute_secs,
                r.accuracy.map_or(String::new(), |a| format!("{a:.4}")),
                r.loss.map_or(String::new(), |l| format!("{l:.4}")),
                r.invited,
                r.kept,
                r.changed_positions,
                r.step_nanos,
            ));
            for n in r.phase_nanos {
                s.push_str(&format!(",{n}"));
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: u32, down: u64, up: u64, acc: Option<f64>) -> RoundRecord {
        RoundRecord {
            round,
            down_bytes: down,
            up_bytes: up,
            round_secs: 1.0,
            slowest_download_secs: 0.5,
            accuracy: acc,
            ..Default::default()
        }
    }

    #[test]
    fn totals_accumulate() {
        let r = RunResult::from_rounds(
            "test",
            vec![record(0, 100, 50, None), record(1, 200, 70, None)],
            None,
        );
        assert_eq!(r.total.down_bytes, 300);
        assert_eq!(r.total.total_bytes, 420);
        assert_eq!(r.total.rounds, 2);
        assert!((r.total.download_secs - 1.0).abs() < 1e-12);
        assert!((r.total.total_secs - 2.0).abs() < 1e-12);
    }

    #[test]
    fn target_uses_five_eval_rolling_mean() {
        // Single high spike must NOT trigger the target; a sustained
        // plateau must.
        let mut rounds = Vec::new();
        let accs = [0.1, 0.9, 0.1, 0.1, 0.1, 0.8, 0.8, 0.8, 0.8, 0.8];
        for (i, &a) in accs.iter().enumerate() {
            rounds.push(record(i as u32, 10, 5, Some(a)));
        }
        let r = RunResult::from_rounds("t", rounds, Some(0.75));
        // Rolling means over the trailing 5 evals: idx4: 0.26, idx5: 0.4,
        // idx6: 0.52, idx7: 0.66, idx8: 0.66, idx9: 0.8 ← first ≥ 0.75.
        assert_eq!(r.target_round, Some(9));
        assert_eq!(r.at_target.rounds, 10);
        assert_eq!(r.at_target.down_bytes, 100);
    }

    #[test]
    fn target_not_reached_falls_back_to_total() {
        let rounds = vec![record(0, 10, 5, Some(0.2)); 6]
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                r.round = i as u32;
                r
            })
            .collect();
        let r = RunResult::from_rounds("t", rounds, Some(0.99));
        assert_eq!(r.target_round, None);
        assert_eq!(r.at_target, r.total);
    }

    #[test]
    fn cumulative_series_is_monotone() {
        let r = RunResult::from_rounds(
            "t",
            vec![
                record(0, 5, 0, None),
                record(1, 7, 0, None),
                record(2, 1, 0, None),
            ],
            None,
        );
        assert_eq!(r.cumulative_down_bytes(), vec![5, 12, 13]);
    }

    #[test]
    fn accuracy_curve_pairs_bytes_with_evals() {
        let r = RunResult::from_rounds(
            "t",
            vec![
                record(0, 5, 0, None),
                record(1, 7, 0, Some(0.3)),
                record(2, 2, 0, Some(0.5)),
            ],
            None,
        );
        assert_eq!(r.accuracy_curve(), vec![(12, 0.3), (14, 0.5)]);
    }

    #[test]
    fn equality_ignores_measured_wall_time() {
        let a = record(0, 1, 2, None);
        let mut b = a;
        b.phase_nanos[Phase::Train.index()] = 99;
        b.step_nanos = 1_234;
        assert_eq!(a, b, "wall-time fields must not affect equality");
        assert_eq!(b.measured_phase_total(), 99);
        assert_eq!(b.phase_nanos_of(Phase::Train), 99);
        b.kept = 5;
        assert_ne!(a, b, "modelled fields must still affect equality");
    }

    #[test]
    fn csv_includes_measured_phase_columns() {
        let mut r0 = record(0, 1, 2, None);
        r0.step_nanos = 10;
        r0.phase_nanos[Phase::Draw.index()] = 4;
        let r = RunResult::from_rounds("t", vec![r0], None);
        let csv = r.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(header.ends_with(
            "step_ns,draw_ns,broadcast_ns,train_ns,encode_ns,decode_ns,\
             fold_ns,topk_ns,apply_ns,rebalance_ns"
        ));
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .ends_with(",10,4,0,0,0,0,0,0,0,0"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let r = RunResult::from_rounds("t", vec![record(0, 1, 2, Some(0.5))], None);
        let csv = r.to_csv();
        assert!(csv.starts_with("round,"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().nth(1).unwrap().contains("0.5000"));
    }
}
