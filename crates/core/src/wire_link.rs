//! The bridge between the strategy seam's [`Upload`] type and the
//! [`gluefl_wire`] frame protocol.
//!
//! [`encode_upload`] serializes an upload into the wire frames a real
//! client would transmit — one frame for dense/sparse/known-mask/ternary
//! uploads, two (shared known-mask + unique sparse) for GlueFL's
//! [`Upload::MaskSplit`] — and [`decode_upload`] parses the bytes back
//! into an `Upload`, drawing index/value storage from the
//! [`ScratchPool`] so the receive path is allocation-free in steady
//! state. Mask-aligned payloads carry no position bytes, so decoding
//! them requires the round's mask
//! ([`crate::strategies::Strategy::round_mask`]).
//!
//! What travels is shaped by a [`WirePolicy`] (carried in
//! `SimConfig::wire`): the value codec, and whether the entropy position
//! layouts — delta-coded varint index lists and run-length sections —
//! compete with the v1 bitmap/index pair on exact byte cost. Decoding is
//! policy-free; frames self-describe their layout.
//!
//! With [`Codec::F32`] the round trip is bit-exact, and under the
//! default (legacy) policy every frame's length equals the analytic
//! [`gluefl_tensor::WireCost`] total that [`Upload::bytes`] reports —
//! the simulator debug-asserts this identity every round, and the
//! `wire_roundtrip` integration suite pins it end-to-end. With the lossy
//! codecs ([`Codec::F16`], [`Codec::QuantU8`]) the decoded values differ
//! within the codec's error envelope; when [`WirePolicy::quant_ec`] is
//! on, [`encode_upload_with_feedback`] reports the *dequantized* values
//! each frame actually shipped back to the sender, so strategies with
//! error-compensation memory fold the codec residual into the next
//! round alongside the top-k residual.

use crate::scratch::ScratchPool;
use crate::strategies::Upload;
use gluefl_compress::mask_shift::ClientSplit;
use gluefl_compress::stc::TernaryUpdate;
use gluefl_tensor::{BitMask, SparseUpdate};
use gluefl_wire::{
    decode_frame_prefix, Codec, Frame, FrameKind, FrameWriter, Rounding, WireError, WirePolicy,
};

/// The rounding mode a codec uses on the simulator's paths: quantization
/// rounds stochastically with the given seed (derive it from
/// `(master seed, round, client)` so serial ≡ parallel holds); the other
/// codecs round deterministically.
#[must_use]
pub fn rounding_for(codec: Codec, quant_seed: u64) -> Rounding {
    match codec {
        Codec::QuantU8 => Rounding::Stochastic { seed: quant_seed },
        Codec::F32 | Codec::F16 => Rounding::Nearest,
    }
}

/// The exact byte count [`encode_upload`] will produce for `upload`
/// under `policy`, computed without encoding anything.
///
/// Under the legacy menu frame lengths depend only on the upload's
/// *shape* `(kind, codec, dim, nnz)`; the entropy layouts price the
/// actual index pattern — but the upload carries its indices, so the
/// prediction stays exact either way. This is the seam that lets a
/// scheduler (the simulator's keep selection, the server's deadline
/// policy) price every invited client's upload *before* deciding whose
/// bytes to encode, decode, or even receive: the over-committed
/// remainder is never serialized at all. The simulator debug-asserts
/// `encoded_len == encode_upload(..)` for every kept upload each round.
#[must_use]
pub fn encoded_len(upload: &Upload, policy: &WirePolicy) -> u64 {
    let w = FrameWriter::new(*policy);
    match upload {
        Upload::Dense(values) => w.dense_len(values.len()),
        Upload::Sparse(u) => w.sparse_len(u.dim(), u.indices()),
        Upload::KnownMask(u) => w.known_mask_len(u.nnz()),
        Upload::Ternary(t) => w.ternary_len(t.dim(), &t.indices),
        Upload::MaskSplit(split) => {
            w.known_mask_len(split.shared.nnz())
                + w.sparse_len(split.unique.dim(), split.unique.indices())
        }
    }
}

/// Callback receiving `(indices, sent, shipped)` for each lossy
/// value-bearing frame: the frame's coordinate indices, the values handed
/// to the encoder, and the dequantized values a receiver reconstructs.
pub type ShippedFeedback<'a> = dyn FnMut(&[u32], &[f32], &[f32]) + 'a;

/// Serializes `upload` into wire frames appended to `out`, returning the
/// encoded byte count. Ternary uploads are already 1-bit quantized and
/// use their fixed sign/µ layout regardless of the policy's codec.
pub fn encode_upload(
    upload: &Upload,
    round: u32,
    policy: &WirePolicy,
    quant_seed: u64,
    out: &mut Vec<u8>,
) -> usize {
    encode_upload_with_feedback(upload, round, policy, quant_seed, out, &mut |_, _, _| {})
}

/// Like [`encode_upload`], additionally reporting what each lossy
/// value-bearing frame *actually shipped*: after writing a sparse or
/// mask-aligned frame under a lossy codec (with [`WirePolicy::quant_ec`]
/// on), `feedback(indices, sent, shipped)` receives the frame's
/// coordinate indices, the values handed to the encoder, and the
/// dequantized values a receiver will reconstruct. Strategies with
/// error-compensation memory fold `sent − shipped` into their residual
/// bank ([`crate::strategies::Strategy::fold_codec_error`]), so codec
/// loss is carried into the next round instead of silently dropped.
///
/// The callback never fires under [`Codec::F32`] (shipped ≡ sent), for
/// ternary frames (their fixed sign/µ layout is exact given `µ`), or
/// for dense uploads (the dense strategies keep no residual bank).
pub fn encode_upload_with_feedback(
    upload: &Upload,
    round: u32,
    policy: &WirePolicy,
    quant_seed: u64,
    out: &mut Vec<u8>,
    feedback: &mut ShippedFeedback<'_>,
) -> usize {
    let w = FrameWriter::new(*policy);
    let rounding = rounding_for(policy.codec, quant_seed);
    let lossy = policy.quant_ec && policy.codec != Codec::F32;
    match upload {
        Upload::Dense(values) => w.dense(out, round, rounding, values),
        Upload::Sparse(u) => {
            let start = out.len();
            let n = w.sparse(out, round, rounding, u.dim(), u.indices(), u.values());
            if lossy {
                report_shipped(out, start, u.indices(), u.values(), feedback);
            }
            n
        }
        Upload::KnownMask(u) => {
            let start = out.len();
            let n = w.known_mask(out, round, rounding, u.dim(), u.values());
            if lossy {
                report_shipped(out, start, u.indices(), u.values(), feedback);
            }
            n
        }
        Upload::Ternary(t) => w.ternary(out, round, t.dim(), t.mu, &t.indices, &t.signs),
        Upload::MaskSplit(split) => {
            let start = out.len();
            let shared = w.known_mask(
                out,
                round,
                rounding,
                split.shared.dim(),
                split.shared.values(),
            );
            if lossy {
                report_shipped(
                    out,
                    start,
                    split.shared.indices(),
                    split.shared.values(),
                    feedback,
                );
            }
            let start = out.len();
            let unique = w.sparse(
                out,
                round,
                rounding,
                split.unique.dim(),
                split.unique.indices(),
                split.unique.values(),
            );
            if lossy {
                report_shipped(
                    out,
                    start,
                    split.unique.indices(),
                    split.unique.values(),
                    feedback,
                );
            }
            shared + unique
        }
    }
}

/// Decodes the frame just appended at `out[start..]` and hands its
/// reconstructed (dequantized) values to `feedback` alongside the exact
/// values the sender meant to ship.
fn report_shipped(
    out: &[u8],
    start: usize,
    indices: &[u32],
    sent: &[f32],
    feedback: &mut ShippedFeedback<'_>,
) {
    if sent.is_empty() {
        return; // e.g. the empty shared part of a regeneration round
    }
    let (frame, _) = decode_frame_prefix(&out[start..]).expect("a just-encoded frame decodes");
    let mut shipped = Vec::with_capacity(sent.len());
    frame.values_into(&mut shipped);
    feedback(indices, sent, &shipped);
}

/// Parses the wire frames in `buf` back into an [`Upload`], pooling all
/// rebuilt storage through `scratch`. `round_mask` supplies the mask that
/// positions mask-aligned payloads (required unless such a frame is
/// empty).
///
/// # Errors
/// Propagates any [`WireError`] from frame decoding, and reports
/// upload-grammar violations as typed errors too — a mask broadcast
/// arriving as an upload or a split upload not led by its known-mask
/// part ([`WireError::UnexpectedKind`]), a mask-aligned frame whose
/// `dim` disagrees with the round mask ([`WireError::DimMismatch`]), or
/// one whose `nnz` disagrees with the mask's popcount
/// ([`WireError::NnzMismatch`]). Checksum-valid but hostile bytes never
/// panic the receiver.
pub fn decode_upload(
    buf: &[u8],
    round_mask: Option<&BitMask>,
    scratch: &mut ScratchPool,
) -> Result<Upload, WireError> {
    let (first, rest) = decode_frame_prefix(buf)?;
    if rest.is_empty() {
        return Ok(match first.kind {
            FrameKind::Dense => {
                let mut values = scratch.take_cleared();
                first.values_into(&mut values);
                Upload::Dense(values)
            }
            k if is_sparse_kind(k) => Upload::Sparse(decode_sparse_frame(&first, scratch)),
            FrameKind::KnownMask => {
                Upload::KnownMask(decode_known_mask_frame(&first, round_mask, scratch)?)
            }
            k if is_ternary_kind(k) => {
                let (mut indices, spare_values) = scratch.take_sparse();
                scratch.put(spare_values);
                first.indices_into(&mut indices);
                let mut signs = scratch.take_signs();
                first.ternary_signs_into(&mut signs);
                Upload::Ternary(TernaryUpdate::from_parts(
                    first.dim,
                    first.ternary_mu(),
                    indices,
                    signs,
                ))
            }
            // A mask broadcast is a download-direction message; as an
            // upload it is a protocol violation, not corruption.
            other => return Err(WireError::UnexpectedKind(other.id())),
        });
    }
    // Two concatenated frames: GlueFL's shared (known-mask) + unique
    // (sparse) split upload.
    let (second, tail) = decode_frame_prefix(rest)?;
    if !tail.is_empty() {
        return Err(WireError::TrailingBytes { extra: tail.len() });
    }
    if first.kind != FrameKind::KnownMask {
        // A split upload must lead with the shared known-mask part.
        return Err(WireError::UnexpectedKind(first.kind.id()));
    }
    if !is_sparse_kind(second.kind) {
        return Err(WireError::UnexpectedKind(second.kind.id()));
    }
    let shared = decode_known_mask_frame(&first, round_mask, scratch)?;
    let unique = decode_sparse_frame(&second, scratch);
    Ok(Upload::MaskSplit(ClientSplit { shared, unique }))
}

/// Parses a round upload payload — the upload's frame(s) followed by the
/// BN-statistics known-mask frame — as transmitted by a real client (and
/// staged by the simulator): `upload := dense | sparse | ternary |
/// known-mask | known-mask sparse`, then exactly one known-mask stats
/// frame. The grammar is prefix-decidable with [`decode_frame_prefix`]
/// alone (a known-mask first frame is a split upload iff a sparse frame
/// follows it), so a streaming receiver needs no out-of-band length
/// split between the upload and stats sections. The returned stats
/// [`Frame`] borrows `buf`; the caller decodes its values (the frame's
/// `dim`/`nnz` are validated against the model layout by the caller,
/// which knows both).
///
/// # Errors
/// Propagates every [`WireError`] from [`decode_upload`]'s grammar, plus
/// [`WireError::UnexpectedKind`] when the stats slot holds anything but
/// a known-mask frame and [`WireError::TrailingBytes`] for bytes past
/// the stats frame.
pub fn decode_upload_with_stats<'a>(
    buf: &'a [u8],
    round_mask: Option<&BitMask>,
    scratch: &mut ScratchPool,
) -> Result<(Upload, Frame<'a>), WireError> {
    let (first, rest) = decode_frame_prefix(buf)?;
    let (upload, rest) = match first.kind {
        FrameKind::Dense => {
            let mut values = scratch.take_cleared();
            first.values_into(&mut values);
            (Upload::Dense(values), rest)
        }
        k if is_sparse_kind(k) => (Upload::Sparse(decode_sparse_frame(&first, scratch)), rest),
        k if is_ternary_kind(k) => {
            let (mut indices, spare_values) = scratch.take_sparse();
            scratch.put(spare_values);
            first.indices_into(&mut indices);
            let mut signs = scratch.take_signs();
            first.ternary_signs_into(&mut signs);
            (
                Upload::Ternary(TernaryUpdate::from_parts(
                    first.dim,
                    first.ternary_mu(),
                    indices,
                    signs,
                )),
                rest,
            )
        }
        FrameKind::KnownMask => {
            // Peek the successor: a sparse frame makes this a split
            // upload; anything else means the known-mask frame *is* the
            // upload and the successor is the stats frame.
            let (second, tail) = decode_frame_prefix(rest)?;
            if is_sparse_kind(second.kind) {
                let shared = decode_known_mask_frame(&first, round_mask, scratch)?;
                let unique = decode_sparse_frame(&second, scratch);
                (Upload::MaskSplit(ClientSplit { shared, unique }), tail)
            } else {
                (
                    Upload::KnownMask(decode_known_mask_frame(&first, round_mask, scratch)?),
                    rest,
                )
            }
        }
        // A mask broadcast is a download-direction message; as an upload
        // it is a protocol violation, not corruption.
        other => return Err(WireError::UnexpectedKind(other.id())),
    };
    let (stats, tail) = decode_frame_prefix(rest)?;
    if stats.kind != FrameKind::KnownMask {
        return Err(WireError::UnexpectedKind(stats.kind.id()));
    }
    if !tail.is_empty() {
        return Err(WireError::TrailingBytes { extra: tail.len() });
    }
    Ok((upload, stats))
}

/// Every layout an explicit-position sparse upload may arrive in.
fn is_sparse_kind(kind: FrameKind) -> bool {
    matches!(
        kind,
        FrameKind::SparseBitmap
            | FrameKind::SparseIndex
            | FrameKind::SparseDelta
            | FrameKind::SparseRle
    )
}

/// Every layout a ternary upload may arrive in.
fn is_ternary_kind(kind: FrameKind) -> bool {
    matches!(
        kind,
        FrameKind::TernaryBitmap
            | FrameKind::TernaryIndex
            | FrameKind::TernaryDelta
            | FrameKind::TernaryRle
    )
}

/// Rebuilds a [`SparseUpdate`] from an explicit-position sparse frame.
fn decode_sparse_frame(frame: &Frame<'_>, scratch: &mut ScratchPool) -> SparseUpdate {
    let (mut indices, mut values) = scratch.take_sparse();
    frame.indices_into(&mut indices);
    frame.values_into(&mut values);
    SparseUpdate::from_sorted_buffers(frame.dim, indices, values)
}

/// Rebuilds a [`SparseUpdate`] from a known-mask frame: the values are in
/// the frame, the positions come from the mask both sides hold. A frame
/// that disagrees with the receiver's mask (or arrives when the receiver
/// holds none) is a typed error — such bytes can be checksum-valid.
fn decode_known_mask_frame(
    frame: &Frame<'_>,
    round_mask: Option<&BitMask>,
    scratch: &mut ScratchPool,
) -> Result<SparseUpdate, WireError> {
    let (mut indices, mut values) = scratch.take_sparse();
    if frame.nnz > 0 {
        let Some(mask) = round_mask else {
            // Mask-aligned values sent to a receiver that holds no mask.
            return Err(WireError::UnexpectedKind(FrameKind::KnownMask.id()));
        };
        if mask.len() != frame.dim {
            return Err(WireError::DimMismatch {
                declared: frame.dim,
                expected: mask.len(),
            });
        }
        if mask.count_ones() != frame.nnz {
            return Err(WireError::NnzMismatch {
                declared: frame.nnz,
                actual: mask.count_ones(),
            });
        }
        indices.reserve(frame.nnz);
        mask.for_each_one(|i| indices.push(u32::try_from(i).expect("dim fits u32")));
        frame.values_into(&mut values);
    }
    Ok(SparseUpdate::from_sorted_buffers(
        frame.dim, indices, values,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gluefl_compress::stc::sparsify;
    use gluefl_wire::IndexLayout;

    fn roundtrip(upload: &Upload, mask: Option<&BitMask>) -> (Upload, usize) {
        let mut scratch = ScratchPool::new();
        let mut buf = Vec::new();
        let n = encode_upload(upload, 3, &WirePolicy::default(), 0, &mut buf);
        assert_eq!(n, buf.len());
        let decoded = decode_upload(&buf, mask, &mut scratch).expect("valid frames");
        (decoded, n)
    }

    #[test]
    fn dense_round_trip_bit_exact_and_cost_parity() {
        let upload = Upload::Dense((0..130).map(|i| (i as f32).sin()).collect());
        let (decoded, n) = roundtrip(&upload, None);
        assert_eq!(decoded, upload);
        assert_eq!(n as u64, upload.bytes());
    }

    #[test]
    fn sparse_round_trip_bit_exact_and_cost_parity() {
        let dense: Vec<f32> = (0..400).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let upload = Upload::Sparse(sparsify(&dense, 0.05));
        let (decoded, n) = roundtrip(&upload, None);
        assert_eq!(decoded, upload);
        assert_eq!(n as u64, upload.bytes());
    }

    #[test]
    fn known_mask_round_trip_uses_the_round_mask() {
        let mask = BitMask::from_indices(50, [3usize, 17, 40]);
        let dense: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let upload = Upload::KnownMask(SparseUpdate::from_dense_masked(&dense, &mask));
        let (decoded, n) = roundtrip(&upload, Some(&mask));
        assert_eq!(decoded, upload);
        assert_eq!(n as u64, upload.bytes());
    }

    #[test]
    fn ternary_round_trip_bit_exact_and_cost_parity() {
        let dense: Vec<f32> = (0..4000).map(|i| ((i * 31) % 7) as f32 - 3.0).collect();
        let upload = Upload::Ternary(TernaryUpdate::quantize(&sparsify(&dense, 0.01)));
        let (decoded, n) = roundtrip(&upload, None);
        assert_eq!(decoded, upload);
        assert_eq!(n as u64, upload.bytes());
    }

    #[test]
    fn mask_split_round_trip_bit_exact_and_cost_parity() {
        let dense: Vec<f32> = (0..600).map(|i| ((i * 13) % 29) as f32 - 14.0).collect();
        let mask = BitMask::from_indices(600, (0..600).step_by(4));
        let upload =
            Upload::MaskSplit(gluefl_compress::mask_shift::client_split(&dense, &mask, 30));
        let (decoded, n) = roundtrip(&upload, Some(&mask));
        assert_eq!(decoded, upload);
        assert_eq!(n as u64, upload.bytes());
    }

    #[test]
    fn empty_shared_part_decodes_without_a_mask() {
        // GlueFL regeneration rounds ship an empty shared frame; decoding
        // must not require the mask then.
        let upload = Upload::MaskSplit(ClientSplit {
            shared: SparseUpdate::empty(100),
            unique: SparseUpdate::from_pairs(100, vec![(5, 1.0)]),
        });
        let (decoded, n) = roundtrip(&upload, None);
        assert_eq!(decoded, upload);
        assert_eq!(n as u64, upload.bytes());
    }

    #[test]
    fn lossy_codec_changes_bytes_but_preserves_support() {
        let dense: Vec<f32> = (0..500).map(|i| (i as f32 * 0.37).sin()).collect();
        let upload = Upload::Sparse(sparsify(&dense, 0.1));
        let mut scratch = ScratchPool::new();
        let mut buf = Vec::new();
        let n = encode_upload(
            &upload,
            0,
            &WirePolicy::legacy(Codec::QuantU8),
            42,
            &mut buf,
        );
        assert!((n as u64) < upload.bytes());
        let decoded = decode_upload(&buf, None, &mut scratch).unwrap();
        match (&upload, &decoded) {
            (Upload::Sparse(a), Upload::Sparse(b)) => {
                assert_eq!(a.indices(), b.indices());
                assert_ne!(a.values(), b.values());
            }
            other => panic!("unexpected shapes {other:?}"),
        }
    }

    #[test]
    fn entropy_policy_round_trips_bit_exact_and_shrinks_bytes() {
        // 4% density, scattered support: the entropy menu picks the
        // delta-varint layout and F32 reconstruction stays bit-exact.
        let dim = 100_000;
        let pairs: Vec<(u32, f32)> = (0..4000u32)
            .map(|i| (i * 25, (i as f32 * 0.13).sin()))
            .collect();
        let upload = Upload::Sparse(SparseUpdate::from_pairs(dim, pairs));
        let legacy = encoded_len(&upload, &WirePolicy::default());
        let entropy_policy = WirePolicy::entropy(Codec::F32);
        let mut buf = Vec::new();
        let n = encode_upload(&upload, 9, &entropy_policy, 0, &mut buf);
        assert_eq!(n as u64, encoded_len(&upload, &entropy_policy));
        assert!(
            (n as u64) * 4 <= legacy * 3,
            "entropy {n} not ≥25% below legacy {legacy}"
        );
        let mut scratch = ScratchPool::new();
        let decoded = decode_upload(&buf, None, &mut scratch).unwrap();
        assert_eq!(decoded, upload);
    }

    #[test]
    fn feedback_reports_exact_codec_residual() {
        // QuantU8 loss must be surfaced as sent − shipped per coordinate;
        // F32 and ternary must stay silent.
        let dense: Vec<f32> = (0..600).map(|i| ((i as f32) * 0.73).sin()).collect();
        let mask = BitMask::from_indices(600, (0..600).step_by(5));
        let split = Upload::MaskSplit(gluefl_compress::mask_shift::client_split(&dense, &mask, 20));
        for layout in [IndexLayout::Legacy, IndexLayout::Entropy] {
            let policy = WirePolicy {
                codec: Codec::QuantU8,
                index_layout: layout,
                rle: layout == IndexLayout::Entropy,
                quant_ec: true,
            };
            let mut calls: Vec<(Vec<u32>, Vec<f32>, Vec<f32>)> = Vec::new();
            let mut buf = Vec::new();
            let _ = encode_upload_with_feedback(
                &split,
                1,
                &policy,
                7,
                &mut buf,
                &mut |ix, sent, shipped| calls.push((ix.to_vec(), sent.to_vec(), shipped.to_vec())),
            );
            // Shared + unique parts both report.
            assert_eq!(calls.len(), 2);
            // What the callback says shipped is exactly what a receiver
            // decodes.
            let mut scratch = ScratchPool::new();
            let decoded = decode_upload(&buf, Some(&mask), &mut scratch).unwrap();
            let Upload::MaskSplit(back) = decoded else {
                panic!("expected split")
            };
            assert_eq!(calls[0].2, back.shared.values());
            assert_eq!(calls[1].2, back.unique.values());
            assert!(calls
                .iter()
                .any(|(_, sent, shipped)| sent.iter().zip(shipped).any(|(a, b)| a != b)));
        }
        // F32: never fires.
        let mut fired = false;
        let mut buf = Vec::new();
        let _ = encode_upload_with_feedback(
            &split,
            1,
            &WirePolicy::default(),
            7,
            &mut buf,
            &mut |_, _, _| fired = true,
        );
        assert!(!fired);
        // quant_ec=false: never fires either.
        let mut policy = WirePolicy::legacy(Codec::QuantU8);
        policy.quant_ec = false;
        let mut buf = Vec::new();
        let _ = encode_upload_with_feedback(&split, 1, &policy, 7, &mut buf, &mut |_, _, _| {
            fired = true
        });
        assert!(!fired);
        // Ternary: fixed layout, no codec residual to report.
        let ternary = Upload::Ternary(TernaryUpdate::quantize(&sparsify(&dense, 0.05)));
        let mut buf = Vec::new();
        let _ = encode_upload_with_feedback(
            &ternary,
            1,
            &WirePolicy::legacy(Codec::QuantU8),
            7,
            &mut buf,
            &mut |_, _, _| fired = true,
        );
        assert!(!fired);
    }

    #[test]
    fn encoded_len_predicts_every_variant_codec_and_layout() {
        let mask = BitMask::from_indices(600, (0..600).step_by(4));
        let dense: Vec<f32> = (0..600).map(|i| ((i * 13) % 29) as f32 - 14.0).collect();
        let uploads = vec![
            Upload::Dense(dense[..130].to_vec()),
            Upload::Sparse(sparsify(&dense, 0.05)),
            Upload::Sparse(sparsify(&dense, 0.4)), // bitmap-position regime
            Upload::KnownMask(SparseUpdate::from_dense_masked(&dense, &mask)),
            Upload::Ternary(TernaryUpdate::quantize(&sparsify(&dense, 0.02))),
            Upload::MaskSplit(gluefl_compress::mask_shift::client_split(&dense, &mask, 30)),
            Upload::MaskSplit(ClientSplit {
                shared: SparseUpdate::empty(600),
                unique: SparseUpdate::from_pairs(600, vec![(5, 1.0)]),
            }),
        ];
        for codec in [Codec::F32, Codec::F16, Codec::QuantU8] {
            for policy in [WirePolicy::legacy(codec), WirePolicy::entropy(codec)] {
                for upload in &uploads {
                    let mut buf = Vec::new();
                    let n = encode_upload(upload, 7, &policy, 99, &mut buf);
                    assert_eq!(
                        encoded_len(upload, &policy),
                        n as u64,
                        "{upload:?} under {policy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn upload_with_stats_grammar_round_trips() {
        let mut scratch = ScratchPool::new();
        let mask = BitMask::from_indices(50, [3usize, 17, 40]);
        let dense: Vec<f32> = (0..50).map(|i| i as f32 - 25.0).collect();
        let stats = [0.25f32, -0.5, 1.5];
        let writer = FrameWriter::new(WirePolicy::default());
        let cases: Vec<(Upload, Option<&BitMask>)> = vec![
            (Upload::Dense(dense.clone()), None),
            (Upload::Sparse(sparsify(&dense, 0.1)), None),
            (
                Upload::KnownMask(SparseUpdate::from_dense_masked(&dense, &mask)),
                Some(&mask),
            ),
            (
                Upload::MaskSplit(gluefl_compress::mask_shift::client_split(&dense, &mask, 4)),
                Some(&mask),
            ),
            (
                Upload::Ternary(TernaryUpdate::quantize(&sparsify(&dense, 0.1))),
                None,
            ),
        ];
        for (upload, round_mask) in cases {
            let mut buf = Vec::new();
            let n = encode_upload(&upload, 2, &WirePolicy::default(), 0, &mut buf);
            let _ = writer.known_mask(&mut buf, 2, Rounding::Nearest, 50, &stats);
            assert_eq!(n as u64, encoded_len(&upload, &WirePolicy::default()));
            let (decoded, stats_frame) =
                decode_upload_with_stats(&buf, round_mask, &mut scratch).expect("valid payload");
            assert_eq!(decoded, upload);
            assert_eq!(stats_frame.nnz, stats.len());
            let mut got = Vec::new();
            stats_frame.values_into(&mut got);
            assert_eq!(got, stats);
        }

        // The split-upload grammar holds under the entropy layouts too:
        // a delta/RLE-positioned unique part still parses as the split's
        // second frame.
        let entropy = WirePolicy::entropy(Codec::F32);
        let split = Upload::MaskSplit(gluefl_compress::mask_shift::client_split(&dense, &mask, 4));
        let mut buf = Vec::new();
        let _ = encode_upload(&split, 2, &entropy, 0, &mut buf);
        let _ = FrameWriter::new(entropy).known_mask(&mut buf, 2, Rounding::Nearest, 50, &stats);
        let (decoded, _) =
            decode_upload_with_stats(&buf, Some(&mask), &mut scratch).expect("valid payload");
        assert_eq!(decoded, split);

        // Hostile grammar: a mask broadcast in the upload slot, a stats
        // slot that is not known-mask, and trailing bytes — all typed.
        let mut buf = Vec::new();
        let _ = writer.mask(&mut buf, 2, &mask);
        let _ = writer.known_mask(&mut buf, 2, Rounding::Nearest, 50, &stats);
        assert!(matches!(
            decode_upload_with_stats(&buf, Some(&mask), &mut scratch),
            Err(WireError::UnexpectedKind(_))
        ));

        let mut buf = Vec::new();
        let _ = encode_upload(
            &Upload::Dense(dense.clone()),
            2,
            &WirePolicy::default(),
            0,
            &mut buf,
        );
        let _ = writer.mask(&mut buf, 2, &mask);
        assert!(matches!(
            decode_upload_with_stats(&buf, Some(&mask), &mut scratch),
            Err(WireError::UnexpectedKind(_))
        ));

        let mut buf = Vec::new();
        let _ = encode_upload(
            &Upload::Dense(dense),
            2,
            &WirePolicy::default(),
            0,
            &mut buf,
        );
        let _ = writer.known_mask(&mut buf, 2, Rounding::Nearest, 50, &stats);
        buf.push(0xEE);
        assert!(matches!(
            decode_upload_with_stats(&buf, Some(&mask), &mut scratch),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn corrupt_upload_bytes_yield_typed_errors() {
        let upload = Upload::Dense(vec![1.0; 32]);
        let mut buf = Vec::new();
        let _ = encode_upload(&upload, 0, &WirePolicy::default(), 0, &mut buf);
        buf[20] ^= 0x40;
        let mut scratch = ScratchPool::new();
        assert!(matches!(
            decode_upload(&buf, None, &mut scratch),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    /// Checksum-valid but grammatically hostile uploads must be typed
    /// errors, never panics: a mask broadcast posing as an upload, a
    /// split upload with the wrong leading/trailing kinds, and
    /// known-mask frames that disagree with the receiver's mask.
    #[test]
    fn hostile_but_valid_frames_yield_typed_errors() {
        let mut scratch = ScratchPool::new();
        let mask = BitMask::from_indices(50, [3usize, 17, 40]);
        let writer = FrameWriter::new(WirePolicy::default());

        // Mask broadcast as an upload.
        let mut buf = Vec::new();
        let _ = writer.mask(&mut buf, 0, &mask);
        assert!(matches!(
            decode_upload(&buf, Some(&mask), &mut scratch),
            Err(WireError::UnexpectedKind(_))
        ));

        // An RLE mask broadcast as an upload is equally inadmissible.
        let blocky = BitMask::from_indices(4096, 0..2048usize);
        let mut buf = Vec::new();
        let _ = FrameWriter::new(WirePolicy::entropy(Codec::F32)).mask(&mut buf, 0, &blocky);
        assert!(matches!(
            decode_upload(&buf, Some(&blocky), &mut scratch),
            Err(WireError::UnexpectedKind(_))
        ));

        // Split upload led by a dense frame instead of known-mask.
        let mut buf = Vec::new();
        let _ = encode_upload(
            &Upload::Dense(vec![1.0; 8]),
            0,
            &WirePolicy::default(),
            0,
            &mut buf,
        );
        let _ = encode_upload(
            &Upload::Sparse(SparseUpdate::from_pairs(1000, vec![(5, 1.0)])),
            0,
            &WirePolicy::default(),
            0,
            &mut buf,
        );
        assert!(matches!(
            decode_upload(&buf, Some(&mask), &mut scratch),
            Err(WireError::UnexpectedKind(_))
        ));

        // Known-mask values sent to a receiver holding no mask.
        let dense: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let km = Upload::KnownMask(SparseUpdate::from_dense_masked(&dense, &mask));
        let mut buf = Vec::new();
        let _ = encode_upload(&km, 0, &WirePolicy::default(), 0, &mut buf);
        assert!(matches!(
            decode_upload(&buf, None, &mut scratch),
            Err(WireError::UnexpectedKind(_))
        ));

        // Known-mask nnz disagreeing with the receiver's mask popcount.
        let wrong_mask = BitMask::from_indices(50, [1usize, 2]);
        assert!(matches!(
            decode_upload(&buf, Some(&wrong_mask), &mut scratch),
            Err(WireError::NnzMismatch { .. })
        ));

        // Known-mask dim disagreeing with the receiver's mask length.
        let long_mask = BitMask::from_indices(64, [0usize, 1, 2]);
        assert!(matches!(
            decode_upload(&buf, Some(&long_mask), &mut scratch),
            Err(WireError::DimMismatch { .. })
        ));
    }
}
