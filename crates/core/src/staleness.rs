//! Client staleness tracking: how much must a client download to re-sync?
//!
//! The central observation of the paper's §2.3 is that a client that
//! skipped rounds `v+1..t` must download *every position that changed in
//! any of those rounds*. The server tracks, per position, the model
//! version at which it last changed; a client holding version `v` then
//! needs `|{j : last_changed[j] > v}|` values.
//!
//! To answer that count in O(1) per query we additionally maintain a
//! histogram `hist[r] = #positions whose last_changed == r` and its prefix
//! sums, rebuilt once per version bump (O(rounds) per round, O(changed)
//! for the histogram maintenance).

use gluefl_tensor::wire::{WireCost, HEADER_BYTES};

/// Tracks per-position change versions and per-client sync versions.
///
/// Versions: the global model starts at version 0; applying round `t`'s
/// update bumps the version to `t+1` and stamps the changed positions.
///
/// # Example
///
/// ```
/// use gluefl_core::StalenessTracker;
/// let mut st = StalenessTracker::new(10, 3);
/// // Round 0: positions 0..5 change.
/// st.record_update((0..5).collect::<Vec<_>>().into_iter());
/// // A client still at version 0 must download those 5 positions.
/// assert_eq!(st.stale_positions(0), 5);
/// // Client 1 syncs to the current version and is up to date.
/// st.mark_synced(1);
/// assert_eq!(st.stale_positions(st.client_version(1)), 0);
/// ```
#[derive(Debug, Clone)]
pub struct StalenessTracker {
    /// Version at which each position last changed (0 = never).
    last_changed: Vec<u32>,
    /// Current global model version (= number of updates applied).
    version: u32,
    /// hist[r] = number of positions with last_changed == r.
    hist: Vec<usize>,
    /// prefix[r] = Σ_{r' <= r} hist[r'] (rebuilt lazily per version).
    prefix: Vec<usize>,
    /// Per-client model version.
    client_version: Vec<u32>,
}

impl StalenessTracker {
    /// Creates a tracker for `dim` positions and `clients` clients, all at
    /// version 0 (everyone holds the initial broadcast model).
    #[must_use]
    pub fn new(dim: usize, clients: usize) -> Self {
        let mut hist = vec![0usize; 1];
        hist[0] = dim;
        Self {
            last_changed: vec![0; dim],
            version: 0,
            hist,
            prefix: vec![dim],
            client_version: vec![0; clients],
        }
    }

    /// Model dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.last_changed.len()
    }

    /// Current global model version.
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The version client `id` last synchronised to.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn client_version(&self, id: usize) -> u32 {
        self.client_version[id]
    }

    /// Marks client `id` as holding the *current* version (they downloaded
    /// the model at the start of this round).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn mark_synced(&mut self, id: usize) {
        self.client_version[id] = self.version;
    }

    /// Records the positions changed by this round's aggregated update and
    /// bumps the global version.
    pub fn record_update<I: IntoIterator<Item = usize>>(&mut self, changed: I) {
        let new_version = self.version + 1;
        self.hist.push(0);
        for j in changed {
            let old = self.last_changed[j] as usize;
            self.hist[old] -= 1;
            self.last_changed[j] = new_version;
            *self.hist.last_mut().expect("hist non-empty") += 1;
        }
        self.version = new_version;
        // Rebuild prefix sums once per version.
        self.prefix.resize(self.hist.len(), 0);
        let mut acc = 0usize;
        for (p, h) in self.prefix.iter_mut().zip(&self.hist) {
            acc += h;
            *p = acc;
        }
    }

    /// Number of positions that changed after version `v` — the size of
    /// the partial-model download for a client holding version `v`.
    #[must_use]
    pub fn stale_positions(&self, v: u32) -> usize {
        let dim = self.dim();
        if v >= self.version {
            return 0;
        }
        dim - self.prefix[v as usize]
    }

    /// Download cost for client `id` to re-sync now: `stale_positions`
    /// values plus the cheaper of bitmap/index position encoding.
    /// Returns a zero-value cost (header only) when already current.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn download_cost(&self, id: usize) -> WireCost {
        let stale = self.stale_positions(self.client_version[id]);
        if stale == 0 {
            WireCost::zero()
        } else if stale == self.dim() {
            WireCost::dense(self.dim())
        } else {
            WireCost::sparse(self.dim(), stale)
        }
    }

    /// Download bytes (including header) for client `id` to re-sync.
    #[must_use]
    pub fn download_bytes(&self, id: usize) -> u64 {
        let c = self.download_cost(id);
        debug_assert!(c.total_bytes() >= HEADER_BYTES);
        c.total_bytes()
    }

    /// Brute-force recomputation of [`StalenessTracker::stale_positions`]
    /// straight from `last_changed` — used by tests to validate the
    /// histogram fast path.
    #[must_use]
    pub fn stale_positions_bruteforce(&self, v: u32) -> usize {
        self.last_changed.iter().filter(|&&r| r > v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fresh_tracker_has_no_staleness() {
        let st = StalenessTracker::new(100, 5);
        assert_eq!(st.stale_positions(0), 0);
        assert_eq!(st.download_bytes(0), HEADER_BYTES);
    }

    #[test]
    fn single_round_staleness() {
        let mut st = StalenessTracker::new(10, 2);
        st.record_update(vec![1, 3, 5]);
        assert_eq!(st.version(), 1);
        assert_eq!(st.stale_positions(0), 3);
        assert_eq!(st.stale_positions(1), 0);
    }

    #[test]
    fn staleness_accumulates_as_union_not_sum() {
        let mut st = StalenessTracker::new(10, 1);
        st.record_update(vec![0, 1, 2]);
        st.record_update(vec![2, 3]); // overlap at 2
                                      // Client at version 0 needs union {0,1,2,3} = 4, not 5.
        assert_eq!(st.stale_positions(0), 4);
        // Client at version 1 needs only round 2's change set.
        assert_eq!(st.stale_positions(1), 2);
    }

    #[test]
    fn skipping_more_rounds_costs_monotonically_more() {
        // Figure 2b: the more rounds skipped, the larger the download.
        let mut st = StalenessTracker::new(1000, 1);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let changed: Vec<usize> = (0..1000).filter(|_| rng.gen::<f64>() < 0.1).collect();
            st.record_update(changed);
        }
        let mut prev = 0;
        for v in (0..30u32).rev() {
            let s = st.stale_positions(v);
            assert!(s >= prev, "staleness not monotone at version {v}");
            prev = s;
        }
    }

    #[test]
    fn histogram_matches_bruteforce_under_random_updates() {
        let mut st = StalenessTracker::new(500, 3);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let changed: Vec<usize> = (0..500).filter(|_| rng.gen::<f64>() < 0.2).collect();
            st.record_update(changed);
            for v in 0..=st.version() {
                assert_eq!(
                    st.stale_positions(v),
                    st.stale_positions_bruteforce(v),
                    "version {v}"
                );
            }
        }
    }

    #[test]
    fn sync_resets_download() {
        let mut st = StalenessTracker::new(50, 2);
        st.record_update(0..50);
        assert!(st.download_bytes(0) > HEADER_BYTES);
        st.mark_synced(0);
        assert_eq!(st.download_bytes(0), HEADER_BYTES);
        // The other client is still stale.
        assert!(st.download_bytes(1) > HEADER_BYTES);
    }

    #[test]
    fn full_model_download_is_dense_encoded() {
        let mut st = StalenessTracker::new(64, 1);
        st.record_update(0..64);
        let c = st.download_cost(0);
        assert_eq!(c.value_bytes, 64 * 4);
        assert_eq!(c.position_bytes, 0); // dense: no positions needed
    }

    #[test]
    fn partial_download_uses_cheapest_encoding() {
        let mut st = StalenessTracker::new(3200, 1);
        st.record_update(0..10);
        let c = st.download_cost(0);
        // 10 of 3200: index list (40 B) < bitmap (400 B).
        assert_eq!(c.position_bytes, 40);
    }

    #[test]
    fn version_after_sync_tracks_current() {
        let mut st = StalenessTracker::new(10, 1);
        st.record_update(vec![0]);
        st.record_update(vec![1]);
        st.mark_synced(0);
        assert_eq!(st.client_version(0), 2);
        st.record_update(vec![2, 3]);
        assert_eq!(st.stale_positions(st.client_version(0)), 2);
    }
}
