//! Convergence-analysis constants (§4, Theorem 2).
//!
//! Theorem 2 bounds sticky sampling's convergence on smooth non-convex
//! objectives at rate `O(√((1 + σ²/E)·A/(KT)) + K/(TA))`, where the
//! variance constant
//!
//! ```text
//! A = (K/N) · (S²/C + (N−S)²/(K−C)) · Σᵢ pᵢ²
//! ```
//!
//! captures the cost of staying unbiased under non-uniform sampling.
//! These closed forms let experiments pick the theorem's learning rate
//! (Equation 8) and let tests verify the FedAvg reduction (`A = 1` when
//! `S = 0` and `pᵢ = 1/N`).

/// The variance constant `A` of Theorem 2.
///
/// `s = 0` (no sticky group, `c` must then be 0) reduces to uniform
/// sampling: `A = (K/N)·(N²/K)·Σp²`, which equals 1 for uniform weights.
///
/// # Panics
/// Panics unless `c <= s`, `s < n` (or `s == 0 && c == 0`), `c < k`, and
/// `weights.len() == n`.
///
/// # Example
/// ```
/// // FedAvg reduction: equal weights, no sticky group → A = 1.
/// let p = vec![1.0 / 100.0; 100];
/// let a = gluefl_core::theory::variance_constant_a(100, 10, 0, 0, &p);
/// assert!((a - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn variance_constant_a(n: usize, k: usize, s: usize, c: usize, weights: &[f64]) -> f64 {
    assert_eq!(weights.len(), n, "weights length must equal population");
    assert!(k > 0 && k <= n, "need 0 < k <= n");
    assert!(
        c <= s && c < k || (s == 0 && c == 0),
        "invalid sticky configuration"
    );
    assert!(s < n, "sticky group must leave non-sticky clients");
    let sum_p2: f64 = weights.iter().map(|p| p * p).sum();
    let (nf, kf, sf, cf) = (n as f64, k as f64, s as f64, c as f64);
    let sticky_term = if s == 0 { 0.0 } else { sf * sf / cf };
    let fresh_term = (nf - sf) * (nf - sf) / (kf - cf);
    (kf / nf) * (sticky_term + fresh_term) * sum_p2
}

/// The learning rate of Equation 8:
/// `γ = sqrt( 1/(E(σ² + E)) · K/(T·A) )`.
///
/// # Panics
/// Panics if any argument is non-positive.
#[must_use]
pub fn theorem2_learning_rate(e: usize, sigma2: f64, k: usize, t: u32, a: f64) -> f64 {
    assert!(e > 0 && k > 0 && t > 0, "E, K, T must be positive");
    assert!(sigma2 >= 0.0 && a > 0.0, "σ² must be ≥ 0 and A > 0");
    let ef = e as f64;
    (1.0 / (ef * (sigma2 + ef)) * k as f64 / (f64::from(t) * a)).sqrt()
}

/// The leading terms of the convergence bound (Equation 9):
/// `sqrt((1 + σ²/E) · A/(K·T)) + K/(T·A)`.
///
/// Useful for comparing parameter choices (e.g. how growing `S` inflates
/// the bound) without running training.
///
/// # Panics
/// Panics if any argument is non-positive.
#[must_use]
pub fn convergence_bound(e: usize, sigma2: f64, k: usize, t: u32, a: f64) -> f64 {
    assert!(e > 0 && k > 0 && t > 0, "E, K, T must be positive");
    assert!(sigma2 >= 0.0 && a > 0.0, "σ² must be ≥ 0 and A > 0");
    let term1 = ((1.0 + sigma2 / e as f64) * a / (k as f64 * f64::from(t))).sqrt();
    let term2 = k as f64 / (f64::from(t) * a);
    term1 + term2
}

/// Estimates the local gradient-variance bound σ² of Assumption 1 from
/// repeated stochastic gradients at a fixed parameter point.
///
/// Given `m` minibatch gradients `g_1..g_m` computed at the same weights,
/// the unbiased estimator is the mean squared deviation from their mean:
/// `σ̂² = 1/(m−1) · Σ ‖g_j − ḡ‖²`. Feed the result into
/// [`theorem2_learning_rate`] to pick the theorem's step size without
/// hand-tuning.
///
/// # Panics
/// Panics if fewer than two gradients are provided or their lengths
/// differ.
///
/// # Example
/// ```
/// // Two antipodal gradients around zero mean: σ̂² = ‖g‖² · 2/(2−1) / ...
/// let g1 = vec![1.0f32, 0.0];
/// let g2 = vec![-1.0f32, 0.0];
/// let s2 = gluefl_core::theory::estimate_sigma2(&[g1, g2]);
/// assert!((s2 - 2.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn estimate_sigma2(gradients: &[Vec<f32>]) -> f64 {
    assert!(gradients.len() >= 2, "need at least two gradient samples");
    let dim = gradients[0].len();
    for g in gradients {
        assert_eq!(g.len(), dim, "gradient dimension mismatch");
    }
    let m = gradients.len() as f64;
    let mut mean = vec![0.0f64; dim];
    for g in gradients {
        for (mu, &v) in mean.iter_mut().zip(g) {
            *mu += f64::from(v) / m;
        }
    }
    let mut total = 0.0f64;
    for g in gradients {
        for (mu, &v) in mean.iter().zip(g) {
            let d = f64::from(v) - mu;
            total += d * d;
        }
    }
    total / (m - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedavg_reduction_is_one() {
        let p = vec![1.0 / 50.0; 50];
        let a = variance_constant_a(50, 5, 0, 0, &p);
        assert!((a - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sticky_sampling_increases_variance_constant() {
        // Stickiness trades variance for bandwidth: A > 1 for S > 0.
        let p = vec![1.0 / 2800.0; 2800];
        let a_sticky = variance_constant_a(2800, 30, 120, 24, &p);
        let a_uniform = variance_constant_a(2800, 30, 0, 0, &p);
        assert!(a_sticky > a_uniform);
    }

    #[test]
    fn paper_default_constant_value() {
        // N=2800, K=30, S=120, C=24, uniform p:
        // A = (30/2800)·(120²/24 + 2680²/6)·(2800·(1/2800²))
        let p = vec![1.0 / 2800.0; 2800];
        let a = variance_constant_a(2800, 30, 120, 24, &p);
        let expected = (30.0 / 2800.0) * (600.0 + 2680.0f64.powi(2) / 6.0) * (1.0 / 2800.0);
        assert!((a - expected).abs() < 1e-9);
    }

    #[test]
    fn learning_rate_decreases_with_t_and_a() {
        let lr1 = theorem2_learning_rate(10, 1.0, 30, 100, 1.0);
        let lr2 = theorem2_learning_rate(10, 1.0, 30, 400, 1.0);
        let lr3 = theorem2_learning_rate(10, 1.0, 30, 100, 4.0);
        assert!((lr1 / lr2 - 2.0).abs() < 1e-9); // γ ∝ 1/√T
        assert!((lr1 / lr3 - 2.0).abs() < 1e-9); // γ ∝ 1/√A
    }

    #[test]
    fn bound_shrinks_with_more_rounds() {
        let b1 = convergence_bound(10, 1.0, 30, 100, 2.0);
        let b2 = convergence_bound(10, 1.0, 30, 10_000, 2.0);
        assert!(b2 < b1);
    }

    #[test]
    fn bound_reflects_variance_tradeoff() {
        // Larger A hurts the √ term; the bound grows for large T where
        // that term dominates.
        let small_a = convergence_bound(10, 1.0, 30, 100_000, 1.0);
        let big_a = convergence_bound(10, 1.0, 30, 100_000, 16.0);
        assert!(big_a > small_a);
    }

    #[test]
    #[should_panic(expected = "invalid sticky configuration")]
    fn rejects_c_above_s() {
        let p = vec![0.5, 0.5];
        let _ = variance_constant_a(2, 1, 0, 1, &p);
    }

    #[test]
    fn sigma2_of_identical_gradients_is_zero() {
        let g = vec![vec![0.5f32; 8]; 5];
        assert!(estimate_sigma2(&g) < 1e-12);
    }

    #[test]
    fn sigma2_matches_known_variance() {
        // Gradients ±v around zero mean in one coordinate:
        // Σ‖g−ḡ‖² = m·v², estimator divides by m−1.
        let m = 10usize;
        let v = 2.0f32;
        let grads: Vec<Vec<f32>> = (0..m)
            .map(|j| vec![if j % 2 == 0 { v } else { -v }])
            .collect();
        let s2 = estimate_sigma2(&grads);
        let expected = (m as f64) * f64::from(v) * f64::from(v) / (m as f64 - 1.0);
        assert!((s2 - expected).abs() < 1e-9, "{s2} vs {expected}");
    }

    #[test]
    fn sigma2_on_real_model_gradients_is_positive_and_finite() {
        use gluefl_ml::{Mlp, MlpConfig};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = Mlp::new(
            MlpConfig {
                input_dim: 6,
                hidden: vec![8],
                classes: 3,
                batch_norm: false,
            },
            &mut rng,
        );
        let grads: Vec<Vec<f32>> = (0..6)
            .map(|_| {
                let x: Vec<f32> = (0..6 * 4).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let y: Vec<usize> = (0..4).map(|_| rng.gen_range(0..3)).collect();
                model.loss_and_grad_frozen_stats(&x, &y).1
            })
            .collect();
        let s2 = estimate_sigma2(&grads);
        assert!(s2.is_finite() && s2 > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn sigma2_rejects_single_sample() {
        let _ = estimate_sigma2(&[vec![1.0]]);
    }
}
