//! Per-simulation scratch buffers for the round hot path.
//!
//! One [`ScratchPool`] is owned by each [`crate::Simulation`] and threaded
//! through [`crate::strategies::Strategy::compress`] and
//! [`crate::strategies::Strategy::aggregate`], so the per-round kernels
//! (top-k selection, dense accumulation, sparse extraction, mask algebra,
//! residual bookkeeping) reuse the same allocations round after round.
//! After the first round the hot path performs no steady-state heap
//! allocation:
//!
//! * dense `f32` buffers ([`ScratchPool::take_zeroed`] /
//!   [`ScratchPool::take_cleared`] / [`ScratchPool::take_copy`]) back
//!   accumulators, packed value arrays, and dense upload clones;
//! * sparse `(u32, f32)` arenas ([`ScratchPool::take_sparse`]) back the
//!   [`gluefl_tensor::SparseUpdate`]s built during compression;
//! * pooled [`gluefl_tensor::BitMask`]s ([`ScratchPool::take_mask`]) back
//!   the per-round support masks of [`gluefl_tensor::MaskedUpdate`]s and
//!   GlueFL's shifted shared mask;
//! * pooled [`TrainSlot`]s ([`ScratchPool::take_train_slot`]) back local
//!   training: each holds a client parameter buffer and a
//!   [`gluefl_ml::TrainScratch`], so a client "clone" is a
//!   `copy_from_slice` and every minibatch step reuses warm activation,
//!   cache, gradient, and velocity buffers.
//!
//! The simulator closes the loop: after aggregation it hands every
//! consumed [`crate::strategies::Upload`] back via
//! [`ScratchPool::reclaim_upload`] and the applied
//! [`gluefl_tensor::MaskedUpdate`] back via [`ScratchPool::put_update`].
//!
//! Ownership contract: buffers handed out by the `take_*` methods belong
//! to the caller until returned with the matching `put_*`; the pool never
//! aliases them. The pool itself must not be shared across threads —
//! parallel sections take the buffers they need up front.

use crate::strategies::Upload;
use gluefl_ml::{BatchTrainScratch, TrainScratch};
use gluefl_tensor::{BitMask, MaskedUpdate, TopKScratch};

/// Upper bound on idle buffers kept per arena (the round working set is
/// far below this; the cap only guards against pathological churn).
const MAX_IDLE: usize = 64;

/// A pooled per-worker local-training workspace: the client parameter
/// buffer (the `copy_from_slice` target that replaces the old per-client
/// model deep clone) plus the [`TrainScratch`] holding activations,
/// backward caches, gradient, SGD velocity, and minibatch staging.
///
/// The simulator takes one slot per training worker up front
/// ([`ScratchPool::take_train_slot`]) — serial training reuses a single
/// slot for every client; `parallel` builds hand one slot to each
/// `std::thread::scope` worker — and returns them after the round, so
/// steady-state local training performs no per-minibatch heap allocation.
#[derive(Debug, Default)]
pub struct TrainSlot {
    /// The worker's flat model parameters (one client at a time).
    pub params: Vec<f32>,
    /// The worker's reusable training buffers.
    pub scratch: TrainScratch,
}

/// Reusable buffers threaded through the strategy seam.
#[derive(Debug, Default)]
pub struct ScratchPool {
    /// Shared top-k selection arena (one selection at a time).
    pub topk: TopKScratch,
    free: Vec<Vec<f32>>,
    free_indices: Vec<Vec<u32>>,
    free_masks: Vec<BitMask>,
    free_train: Vec<TrainSlot>,
    free_batch_train: Vec<BatchTrainScratch>,
    free_bytes: Vec<Vec<u8>>,
    free_signs: Vec<Vec<bool>>,
}

impl ScratchPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a zero-filled buffer of length `len`, reusing a returned
    /// buffer when one is available.
    #[must_use]
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_cleared();
        buf.resize(len, 0.0);
        buf
    }

    /// Hands out an empty (`len == 0`) buffer with recycled capacity —
    /// for callers that `push`/`extend` exactly the values they need
    /// (e.g. packing a [`MaskedUpdate`]'s values).
    #[must_use]
    pub fn take_cleared(&mut self) -> Vec<f32> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Hands out a recycled buffer holding a copy of `src` (the pooled
    /// replacement for `src.to_vec()` on the compress path).
    #[must_use]
    pub fn take_copy(&mut self, src: &[f32]) -> Vec<f32> {
        let mut buf = self.take_cleared();
        buf.extend_from_slice(src);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<f32>) {
        // Keep the pool bounded; tiny buffers are not worth recycling.
        if self.free.len() < MAX_IDLE && buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Hands out a cleared `(indices, values)` buffer pair for the
    /// `SparseUpdate::*_in` constructors.
    #[must_use]
    pub fn take_sparse(&mut self) -> (Vec<u32>, Vec<f32>) {
        let mut ix = self.free_indices.pop().unwrap_or_default();
        ix.clear();
        (ix, self.take_cleared())
    }

    /// Returns a sparse buffer pair (e.g. from
    /// [`gluefl_tensor::SparseUpdate::into_buffers`]) to the pool.
    pub fn put_sparse(&mut self, indices: Vec<u32>, values: Vec<f32>) {
        if self.free_indices.len() < MAX_IDLE && indices.capacity() > 0 {
            self.free_indices.push(indices);
        }
        self.put(values);
    }

    /// Hands out an all-zero mask over `len` positions, reusing a
    /// returned mask's word storage when one is available.
    #[must_use]
    pub fn take_mask(&mut self, len: usize) -> BitMask {
        match self.free_masks.pop() {
            Some(mut m) => {
                m.reset(len);
                m
            }
            None => BitMask::zeros(len),
        }
    }

    /// Returns a mask to the pool for reuse.
    pub fn put_mask(&mut self, mask: BitMask) {
        if self.free_masks.len() < MAX_IDLE {
            self.free_masks.push(mask);
        }
    }

    /// Recycles an applied [`MaskedUpdate`]'s mask and value storage.
    pub fn put_update(&mut self, update: MaskedUpdate) {
        let (mask, values) = update.into_parts();
        self.put_mask(mask);
        self.put(values);
    }

    /// Recycles the buffers inside a consumed upload (called by the
    /// simulator once the round's aggregation is done, for kept and
    /// dropped uploads alike).
    pub fn reclaim_upload(&mut self, upload: Upload) {
        match upload {
            Upload::Dense(values) => self.put(values),
            Upload::Sparse(u) | Upload::KnownMask(u) => {
                let (ix, vals) = u.into_buffers();
                self.put_sparse(ix, vals);
            }
            Upload::Ternary(t) => {
                if self.free_indices.len() < MAX_IDLE && t.indices.capacity() > 0 {
                    self.free_indices.push({
                        let mut ix = t.indices;
                        ix.clear();
                        ix
                    });
                }
                if self.free_signs.len() < MAX_IDLE && t.signs.capacity() > 0 {
                    self.free_signs.push(t.signs);
                }
            }
            Upload::MaskSplit(s) => {
                let (ix, vals) = s.shared.into_buffers();
                self.put_sparse(ix, vals);
                let (ix, vals) = s.unique.into_buffers();
                self.put_sparse(ix, vals);
            }
        }
    }

    /// Hands out an empty byte arena with recycled capacity — the encode
    /// target for wire frames ([`gluefl_wire`]): the simulator serializes
    /// every round message into pooled arenas, so steady-state encoding
    /// performs no heap allocation.
    #[must_use]
    pub fn take_bytes(&mut self) -> Vec<u8> {
        match self.free_bytes.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns a byte arena to the pool for reuse.
    pub fn put_bytes(&mut self, buf: Vec<u8>) {
        if self.free_bytes.len() < MAX_IDLE && buf.capacity() > 0 {
            self.free_bytes.push(buf);
        }
    }

    /// Hands out an empty sign buffer with recycled capacity (ternary
    /// uploads rebuilt from wire frames; recycled by
    /// [`ScratchPool::reclaim_upload`]).
    #[must_use]
    pub fn take_signs(&mut self) -> Vec<bool> {
        match self.free_signs.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Hands out a local-training slot (warm parameter buffer + training
    /// scratch) for one worker, recycling a returned slot when available.
    #[must_use]
    pub fn take_train_slot(&mut self) -> TrainSlot {
        self.free_train.pop().unwrap_or_default()
    }

    /// Returns a training slot to the pool for reuse.
    pub fn put_train_slot(&mut self, slot: TrainSlot) {
        if self.free_train.len() < MAX_IDLE {
            self.free_train.push(slot);
        }
    }

    /// Hands out the lockstep batched-training workspace (stacked
    /// per-client parameter/velocity/gradient blocks and activations; see
    /// [`gluefl_ml::BatchTrainScratch`]), recycling a returned one when
    /// available.
    #[must_use]
    pub fn take_batch_train(&mut self) -> BatchTrainScratch {
        self.free_batch_train.pop().unwrap_or_default()
    }

    /// Returns a batched-training workspace to the pool for reuse.
    pub fn put_batch_train(&mut self, scratch: BatchTrainScratch) {
        if self.free_batch_train.len() < MAX_IDLE {
            self.free_batch_train.push(scratch);
        }
    }

    /// Largest capacity among the pooled idle `f32` value buffers. Lets
    /// tests assert an aggregation path returned only `O(q·d)` staging to
    /// the pool — i.e. never materialised a dense `d`-length buffer.
    #[must_use]
    pub fn max_idle_value_capacity(&self) -> usize {
        self.free.iter().map(Vec::capacity).max().unwrap_or(0)
    }

    /// Number of idle training slots currently pooled.
    #[must_use]
    pub fn idle_train_slots(&self) -> usize {
        self.free_train.len()
    }

    /// Number of idle dense buffers currently pooled.
    #[must_use]
    pub fn idle_buffers(&self) -> usize {
        self.free.len()
    }

    /// Number of idle masks currently pooled.
    #[must_use]
    pub fn idle_masks(&self) -> usize {
        self.free_masks.len()
    }

    /// Number of idle index buffers currently pooled.
    #[must_use]
    pub fn idle_indices(&self) -> usize {
        self.free_indices.len()
    }

    /// Number of idle byte arenas currently pooled.
    #[must_use]
    pub fn idle_byte_buffers(&self) -> usize {
        self.free_bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gluefl_tensor::SparseUpdate;

    #[test]
    fn take_is_zeroed_after_reuse() {
        let mut pool = ScratchPool::new();
        let mut a = pool.take_zeroed(8);
        a.iter_mut().for_each(|v| *v = 7.0);
        pool.put(a);
        assert_eq!(pool.idle_buffers(), 1);
        let b = pool.take_zeroed(16);
        assert_eq!(b, vec![0.0; 16]);
        assert_eq!(pool.idle_buffers(), 0);
    }

    #[test]
    fn shrinking_take_truncates() {
        let mut pool = ScratchPool::new();
        let a = pool.take_zeroed(100);
        pool.put(a);
        let b = pool.take_zeroed(3);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn take_copy_clones_through_recycled_storage() {
        let mut pool = ScratchPool::new();
        pool.put(vec![9.0; 32]);
        let c = pool.take_copy(&[1.0, 2.0]);
        assert_eq!(c, vec![1.0, 2.0]);
    }

    #[test]
    fn masks_are_recycled_zeroed() {
        let mut pool = ScratchPool::new();
        let mut m = pool.take_mask(70);
        m.set(3, true);
        pool.put_mask(m);
        assert_eq!(pool.idle_masks(), 1);
        let m = pool.take_mask(130);
        assert_eq!(m.len(), 130);
        assert_eq!(m.count_ones(), 0);
    }

    #[test]
    fn reclaim_upload_feeds_the_arenas() {
        let mut pool = ScratchPool::new();
        pool.reclaim_upload(Upload::Dense(vec![1.0; 4]));
        pool.reclaim_upload(Upload::Sparse(SparseUpdate::from_pairs(
            8,
            vec![(1, 1.0), (3, 2.0)],
        )));
        assert_eq!(pool.idle_buffers(), 2);
        assert_eq!(pool.idle_indices(), 1);
        let (ix, vals) = pool.take_sparse();
        assert!(ix.is_empty() && vals.is_empty());
        assert!(ix.capacity() >= 2);
    }

    #[test]
    fn byte_arenas_recycle_their_storage() {
        let mut pool = ScratchPool::new();
        let mut buf = pool.take_bytes();
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let ptr = buf.as_ptr();
        pool.put_bytes(buf);
        assert_eq!(pool.idle_byte_buffers(), 1);
        let buf = pool.take_bytes();
        assert!(buf.is_empty());
        assert_eq!(buf.as_ptr(), ptr);
    }

    #[test]
    fn train_slots_recycle_their_buffers() {
        let mut pool = ScratchPool::new();
        let mut slot = pool.take_train_slot();
        slot.params.resize(16, 1.0);
        let ptr = slot.params.as_ptr();
        pool.put_train_slot(slot);
        assert_eq!(pool.idle_train_slots(), 1);
        let slot = pool.take_train_slot();
        assert_eq!(slot.params.as_ptr(), ptr);
        assert_eq!(pool.idle_train_slots(), 0);
    }

    #[test]
    fn put_update_recycles_mask_and_values() {
        let mut pool = ScratchPool::new();
        let mask = BitMask::from_indices(10, [0usize, 9]);
        pool.put_update(MaskedUpdate::new(mask, vec![1.0, 2.0]));
        assert_eq!(pool.idle_masks(), 1);
        assert_eq!(pool.idle_buffers(), 1);
    }
}
