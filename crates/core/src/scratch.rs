//! Per-simulation scratch buffers for the round hot path.
//!
//! One [`ScratchPool`] is owned by each [`crate::Simulation`] and threaded
//! through [`crate::strategies::Strategy::compress`] and
//! [`crate::strategies::Strategy::aggregate`], so the per-round kernels
//! (top-k selection, dense accumulation, residual bookkeeping) reuse the
//! same allocations round after round. After the first round the hot path
//! performs no steady-state heap allocation.
//!
//! Ownership contract: buffers handed out by [`ScratchPool::take_zeroed`]
//! belong to the caller until returned with [`ScratchPool::put`]; the pool
//! never aliases them. The pool itself must not be shared across threads —
//! parallel sections take the buffers they need up front.

use gluefl_tensor::TopKScratch;

/// Reusable buffers threaded through the strategy seam.
#[derive(Debug, Default)]
pub struct ScratchPool {
    /// Shared top-k selection arena (one selection at a time).
    pub topk: TopKScratch,
    free: Vec<Vec<f32>>,
}

impl ScratchPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a zero-filled buffer of length `len`, reusing a returned
    /// buffer when one is available.
    #[must_use]
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<f32>) {
        // Keep the pool bounded; tiny buffers are not worth recycling.
        if self.free.len() < 64 && buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Number of idle buffers currently pooled.
    #[must_use]
    pub fn idle_buffers(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_after_reuse() {
        let mut pool = ScratchPool::new();
        let mut a = pool.take_zeroed(8);
        a.iter_mut().for_each(|v| *v = 7.0);
        pool.put(a);
        assert_eq!(pool.idle_buffers(), 1);
        let b = pool.take_zeroed(16);
        assert_eq!(b, vec![0.0; 16]);
        assert_eq!(pool.idle_buffers(), 0);
    }

    #[test]
    fn shrinking_take_truncates() {
        let mut pool = ScratchPool::new();
        let a = pool.take_zeroed(100);
        pool.put(a);
        let b = pool.take_zeroed(3);
        assert_eq!(b.len(), 3);
    }
}
