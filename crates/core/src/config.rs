//! Simulation configuration.

use gluefl_compress::{ApfConfig, CompensationMode};
use gluefl_data::{DatasetConfig, DatasetProfile};
use gluefl_ml::{DatasetModel, ModelProfile};
use gluefl_net::{DeviceProfile, NetworkProfile};
use gluefl_sampling::overcommit::OcStrategy;

/// GlueFL-specific parameters (§5.1 defaults via
/// [`GlueFlParams::paper_default`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GlueFlParams {
    /// Total mask ratio `q`.
    pub q: f64,
    /// Shared mask ratio `q_shr < q`.
    pub q_shr: f64,
    /// Sticky group size `S`.
    pub sticky_group: usize,
    /// Sticky participants per round `C`.
    pub sticky_draw: usize,
    /// Shared-mask regeneration interval `I` (`None` = never, the paper's
    /// `I = ∞` ablation arm).
    pub regen_interval: Option<u32>,
    /// Error-compensation mode (None / EC / REC, Figure 11).
    pub compensation: CompensationMode,
    /// Use biased equal weights `1/K` instead of the unbiased
    /// inverse-propensity weights (the "GlueFL (Equal)" arm of Figure 5).
    pub equal_weights: bool,
}

impl GlueFlParams {
    /// The paper's §5.1 defaults for round size `k` and model `model`:
    /// `S = 4K`, `C = 4K/5`, `I = 10`, REC compensation, and
    /// `q`/`q_shr` of 20%/16% for ShuffleNet or 30%/24% for
    /// MobileNet & ResNet-34.
    #[must_use]
    pub fn paper_default(k: usize, model: DatasetModel) -> Self {
        let (q, q_shr) = match model {
            DatasetModel::ShuffleNet => (0.20, 0.16),
            DatasetModel::MobileNet | DatasetModel::ResNet34 => (0.30, 0.24),
        };
        Self {
            q,
            q_shr,
            sticky_group: 4 * k,
            sticky_draw: 4 * k / 5,
            regen_interval: Some(10),
            compensation: CompensationMode::Rescaled,
            equal_weights: false,
        }
    }
}

/// Which training strategy a simulation runs.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyConfig {
    /// FedAvg with uniform sampling, no compression (McMahan et al. 2017).
    FedAvg,
    /// FedAvg with multinomial (MD) client sampling proportional to the
    /// importance weights `p_i` (Li et al. 2020a; §6 "Client sampling").
    /// Each of the `K` draws is i.i.d., so duplicates are possible; every
    /// draw is aggregated with weight `1/K`, which is unbiased.
    MdFedAvg,
    /// STC-style top-`q` sparsification on clients and server
    /// (Sattler et al. 2019; masking-only variant, Algorithm 1).
    Stc {
        /// Total mask ratio `q`.
        q: f64,
    },
    /// STC with its ternary quantization enabled (the component the
    /// paper factors out in footnote 1): kept values are sent as
    /// `sign·μ`, one bit per value plus one shared magnitude.
    StcQuantized {
        /// Total mask ratio `q`.
        q: f64,
    },
    /// Adaptive Parameter Freezing (Chen et al. 2021).
    Apf {
        /// APF hyper-parameters (threshold 0.1 per §5.1).
        config: ApfConfig,
    },
    /// GlueFL: sticky sampling + mask shifting (this paper).
    GlueFl(GlueFlParams),
}

impl StrategyConfig {
    /// Short name used in tables ("fedavg", "stc", "apf", "gluefl",
    /// "gluefl-equal").
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            StrategyConfig::FedAvg => "fedavg".into(),
            StrategyConfig::MdFedAvg => "md-fedavg".into(),
            StrategyConfig::Stc { .. } => "stc".into(),
            StrategyConfig::StcQuantized { .. } => "stc-quant".into(),
            StrategyConfig::Apf { .. } => "apf".into(),
            StrategyConfig::GlueFl(p) if p.equal_weights => "gluefl-equal".into(),
            StrategyConfig::GlueFl(_) => "gluefl".into(),
        }
    }
}

/// Client availability modelling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityConfig {
    /// Stationary online fraction.
    pub online_fraction: f64,
    /// Mean online session length in rounds.
    pub mean_session_rounds: f64,
}

/// Full configuration of one simulated training run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Dataset generation parameters.
    pub dataset: DatasetConfig,
    /// Model architecture stand-in.
    pub model: ModelProfile,
    /// Strategy under test.
    pub strategy: StrategyConfig,
    /// Number of communication rounds `T`.
    pub rounds: u32,
    /// Clients kept per round `K`.
    pub round_size: usize,
    /// Local SGD steps per round `E` (paper: 10).
    pub local_steps: usize,
    /// Minibatch size (paper/FedScale default: 16 approximately).
    pub batch_size: usize,
    /// Initial client learning rate.
    pub initial_lr: f32,
    /// Learning-rate decay factor (paper: 0.98).
    pub lr_decay: f32,
    /// Decay interval in rounds (paper: 10).
    pub lr_decay_every: u32,
    /// SGD momentum (paper: 0.9).
    pub momentum: f32,
    /// Over-commitment factor (paper: 1.3).
    pub oc: f64,
    /// How over-commitment splits across sticky / non-sticky groups.
    pub oc_strategy: OcStrategy,
    /// Network environment.
    pub network: NetworkProfile,
    /// Device speed heterogeneity.
    pub device: DeviceProfile,
    /// Client availability churn (`None` = always online).
    pub availability: Option<AvailabilityConfig>,
    /// Model the round *timing* at the reference architecture's scale:
    /// transfer times use bytes multiplied by
    /// `reference_params / simulated_params` and compute times use the
    /// reference parameter count. Byte *metrics* stay at simulated scale
    /// (rescale at display time with the harness's `--paper-scale`).
    /// This keeps the time-domain results (DT/TT, Figure 9, Table 3)
    /// comparable to the paper even when the stand-in model is small.
    pub paper_time_model: bool,
    /// Wire encoding policy for round messages: the value codec for
    /// client uploads (and their BN-statistic frames), whether the
    /// entropy position layouts (delta-coded varint index lists,
    /// run-length mask sections) may compete with the v1 bitmap/index
    /// pair on exact byte cost, and whether lossy-codec residual feeds
    /// back into error compensation. The default
    /// ([`gluefl_wire::WirePolicy::default`]) reproduces the original
    /// behaviour byte for byte: `F32` values, legacy layouts, measured
    /// wire bytes equal to the analytic `WireCost` model. `F16`/`QuantU8`
    /// trade accuracy for upload bytes (quantization uses deterministic
    /// stochastic rounding seeded per `(round, client)`, so runs stay
    /// reproducible and serial ≡ parallel); with `quant_ec` on, the codec
    /// residual of every kept upload is folded into the strategy's
    /// error-compensation bank. Model weights in the broadcast are always
    /// serialized at full `F32` precision — clients must train on the
    /// exact global weights the analytic download model assumes — but the
    /// mask broadcast may use the RLE layout when the policy admits it.
    pub wire: gluefl_wire::WirePolicy,
    /// Evaluate the global model every this many rounds.
    pub eval_every: u32,
    /// Report top-5 instead of top-1 accuracy (OpenImage).
    pub use_top5: bool,
    /// Target accuracy for time-to-target reporting.
    pub target_accuracy: Option<f64>,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's §5.1 experimental setup for `(dataset, model,
    /// strategy)` at population `scale ∈ (0,1]`, running `rounds` rounds.
    ///
    /// The round size `K` is kept at the **paper's value** even when the
    /// population is scaled down: GlueFL's aggregation variance is
    /// governed by `C` and `K − C` (Theorem 2's `A` constant), so
    /// shrinking `K` proportionally would concentrate each round's update
    /// on one or two fresh clients and change the algorithm's behaviour
    /// qualitatively. Scaling only `N` (and the number of rounds)
    /// preserves the per-round dynamics while compressing the staleness
    /// timescale `N/K` by the same factor as the training length.
    /// The population is floored at `5K` so the sticky group (`S = 4K`)
    /// always leaves a non-sticky pool.
    #[must_use]
    pub fn paper_setup(
        dataset: DatasetProfile,
        model: DatasetModel,
        strategy: StrategyConfig,
        scale: f64,
        rounds: u32,
        seed: u64,
    ) -> Self {
        let k = dataset.paper_round_size();
        let mut data_cfg = dataset.config(scale);
        data_cfg.clients = data_cfg.clients.max(5 * k);
        Self {
            dataset: data_cfg,
            model: model.profile(),
            strategy,
            rounds,
            round_size: k,
            local_steps: 10,
            batch_size: 16,
            initial_lr: dataset.initial_lr(),
            lr_decay: 0.98,
            lr_decay_every: 10,
            momentum: 0.9,
            oc: 1.3,
            oc_strategy: OcStrategy::Proportional,
            network: NetworkProfile::MlabEdge,
            device: DeviceProfile::mobile(),
            availability: Some(AvailabilityConfig {
                online_fraction: 0.8,
                mean_session_rounds: 40.0,
            }),
            paper_time_model: true,
            wire: gluefl_wire::WirePolicy::default(),
            eval_every: 5,
            use_top5: dataset.uses_top5(),
            target_accuracy: Some(dataset.target_accuracy()),
            seed,
        }
    }

    /// The per-round client learning rate under the decay schedule.
    #[must_use]
    pub fn lr_at_round(&self, round: u32) -> f32 {
        gluefl_ml::step_decay_lr(self.initial_lr, self.lr_decay, self.lr_decay_every, round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_1() {
        let p = GlueFlParams::paper_default(30, DatasetModel::ShuffleNet);
        assert_eq!(p.sticky_group, 120);
        assert_eq!(p.sticky_draw, 24);
        assert_eq!(p.regen_interval, Some(10));
        assert!((p.q - 0.20).abs() < 1e-12);
        assert!((p.q_shr - 0.16).abs() < 1e-12);
        let p = GlueFlParams::paper_default(30, DatasetModel::ResNet34);
        assert!((p.q - 0.30).abs() < 1e-12);
        assert!((p.q_shr - 0.24).abs() < 1e-12);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(StrategyConfig::FedAvg.name(), "fedavg");
        assert_eq!(StrategyConfig::Stc { q: 0.2 }.name(), "stc");
        let mut p = GlueFlParams::paper_default(30, DatasetModel::ShuffleNet);
        assert_eq!(StrategyConfig::GlueFl(p.clone()).name(), "gluefl");
        p.equal_weights = true;
        assert_eq!(StrategyConfig::GlueFl(p).name(), "gluefl-equal");
    }

    #[test]
    fn paper_setup_keeps_paper_round_size() {
        let cfg = SimConfig::paper_setup(
            DatasetProfile::Femnist,
            DatasetModel::ShuffleNet,
            StrategyConfig::FedAvg,
            0.1,
            100,
            1,
        );
        assert_eq!(cfg.dataset.clients, 280);
        // K stays at the paper's 30 so C and K−C match §5.1 exactly.
        assert_eq!(cfg.round_size, 30);
        assert!((cfg.initial_lr - 0.01).abs() < 1e-9);
        assert!(cfg.target_accuracy.is_some());
    }

    #[test]
    fn paper_setup_floors_population_at_5k() {
        let cfg = SimConfig::paper_setup(
            DatasetProfile::Femnist,
            DatasetModel::ShuffleNet,
            StrategyConfig::FedAvg,
            0.01, // would be 28 clients, far below 5K = 150
            100,
            1,
        );
        assert!(cfg.dataset.clients >= 5 * cfg.round_size);
    }

    #[test]
    fn lr_schedule() {
        let cfg = SimConfig::paper_setup(
            DatasetProfile::Femnist,
            DatasetModel::ShuffleNet,
            StrategyConfig::FedAvg,
            0.1,
            100,
            1,
        );
        assert_eq!(cfg.lr_at_round(0), 0.01);
        assert!(cfg.lr_at_round(50) < cfg.lr_at_round(0));
    }
}
