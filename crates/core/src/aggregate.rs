//! Deterministic (optionally parallel) aggregation of client uploads.
//!
//! Floating-point addition is not associative, so a naive "one thread per
//! client, merge at the end" reduction would make results depend on the
//! merge tree (and a per-client tree costs extra dense partial buffers —
//! real memory traffic at `d ≈ 10⁶`). The kernels here shard by
//! **dimension** instead: each worker owns a contiguous range of the
//! accumulator and replays *every* client's entries that fall inside its
//! range, in client order. Consequences:
//!
//! * every accumulator position receives its contributions in exactly the
//!   serial order, so the result is bit-identical to the serial loop for
//!   any worker count — there is no merge step at all;
//! * no partial buffers: the only writes are to the final accumulator;
//! * sparse uploads locate their in-range entries with one binary search
//!   per (client, shard) pair — cheap next to the adds themselves.
//!
//! The serial path is the plain per-client loop; with the `parallel`
//! feature (alias: `rayon`) shards run on `std::thread` workers. Parity is
//! verified bitwise by the tests here and end-to-end by the simulator's
//! `parallel_aggregation_bit_identical_to_serial` test.
//!
//! # Emitting the masked layout
//!
//! Strategies return a [`gluefl_tensor::MaskedUpdate`] (mask + packed
//! values), and where the uploads are mask-aligned the shards accumulate
//! *directly into that packed layout*: [`accumulate_weighted_values`]
//! treats each client's value array as contiguous — GlueFL's shared parts
//! and APF's known-mask uploads aggregate without ever materialising a
//! dense `d`-sized buffer. Only reductions that need a subsequent
//! position-space top-k (STC's server mask, GlueFL's unique part) stage
//! through a dense accumulator, and that buffer stays inside the
//! strategy; the simulator only ever sees the packed update.

use crate::scratch::ScratchPool;
use crate::strategies::Upload;
use gluefl_tensor::{vecops, BitMask, SparseUpdate};

/// Entry payloads the aggregation kernels can replay over a position
/// range. Implementations must make `add_scaled_range(out, s, lo)`
/// touch exactly the positions of `add_scaled_range(full, s, 0)` that
/// fall in `[lo, lo + out.len())`, in the same per-position order.
pub trait RangeAddable: Sync {
    /// Adds `scale ×` the entries with positions in
    /// `[lo, lo + out.len())` into `out` (`out[0]` ↔ position `lo`).
    fn add_scaled_range(&self, out: &mut [f32], scale: f32, lo: usize);
}

impl RangeAddable for &Upload {
    fn add_scaled_range(&self, out: &mut [f32], scale: f32, lo: usize) {
        self.add_weighted_range_into(out, scale, lo);
    }
}

impl RangeAddable for &SparseUpdate {
    fn add_scaled_range(&self, out: &mut [f32], scale: f32, lo: usize) {
        self.add_scaled_range_into(out, scale, lo);
    }
}

impl RangeAddable for &[f32] {
    fn add_scaled_range(&self, out: &mut [f32], scale: f32, lo: usize) {
        vecops::axpy(out, scale, &self[lo..lo + out.len()]);
    }
}

/// Accumulates `Σ wᵢ · uploadᵢ` over `dim`-dimensional uploads into a
/// pooled buffer. Pass `(weight, upload)` pairs in the canonical kept
/// order (sorted by client id); the result is bit-identical with and
/// without the `parallel` feature.
///
/// # Panics
/// Panics if an upload's dimension is smaller than `dim`.
#[must_use]
pub fn accumulate_uploads(
    entries: &[(f32, &Upload)],
    dim: usize,
    pool: &mut ScratchPool,
) -> Vec<f32> {
    let mut acc = pool.take_zeroed(dim);
    accumulate_into(entries, &mut acc);
    acc
}

/// Accumulates `Σ wᵢ · sparseᵢ` (e.g. the unique parts of GlueFL uploads).
///
/// # Panics
/// Panics if an update's dimension is smaller than `dim`.
#[must_use]
pub fn accumulate_sparse(
    entries: &[(f32, &SparseUpdate)],
    dim: usize,
    pool: &mut ScratchPool,
) -> Vec<f32> {
    let mut acc = pool.take_zeroed(dim);
    accumulate_into(entries, &mut acc);
    acc
}

/// Accumulates `Σ wᵢ · valuesᵢ` over equal-length contiguous value arrays
/// (the mask-aligned shared parts of GlueFL uploads).
///
/// # Panics
/// Panics if any values slice is shorter than `len`.
#[must_use]
pub fn accumulate_weighted_values(
    entries: &[(f32, &[f32])],
    len: usize,
    pool: &mut ScratchPool,
) -> Vec<f32> {
    let mut acc = pool.take_zeroed(len);
    accumulate_into(entries, &mut acc);
    acc
}

/// Rebuilds `offsets` as the per-word packed-rank prefix of `support`
/// (`offsets[w]` = number of set bits strictly before word `w`) and
/// returns the total popcount. With it, [`packed_rank`] locates any set
/// position's packed rank in O(1).
fn build_rank_offsets(support: &BitMask, offsets: &mut Vec<u32>) -> usize {
    let words = support.as_words();
    offsets.clear();
    offsets.reserve(words.len());
    let mut rank = 0u32;
    for &w in words {
        offsets.push(rank);
        rank += w.count_ones();
    }
    rank as usize
}

/// Packed rank of set position `i`: set bits before it in earlier words
/// (the prefix) plus set bits below it inside its own word.
#[inline]
pub(crate) fn packed_rank(words: &[u64], offsets: &[u32], i: usize) -> usize {
    (offsets[i >> 6] + (words[i >> 6] & ((1u64 << (i & 63)) - 1)).count_ones()) as usize
}

/// Accumulates `Σ wᵢ · sparseᵢ` directly in packed `(support, values)`
/// form — `O(Σ nnzᵢ + d/64)` instead of the `O(d)` of staging through a
/// dense buffer. `support` becomes the union of the entries' supports,
/// `out[r]` the sum at the `r`-th set position, and `offsets` is left
/// holding the support's rank prefix (callers can reuse it with
/// [`BitMask::as_words`] for further O(1) rank lookups).
///
/// Bit-identical to densifying: every packed position receives its
/// contributions as `+= w·v` in entry order starting from `+0.0`, exactly
/// the adds [`accumulate_sparse`] performs at that position.
///
/// # Panics
/// Panics if an entry holds a position at or above `dim`.
pub fn accumulate_sparse_packed(
    entries: &[(f32, &SparseUpdate)],
    dim: usize,
    support: &mut BitMask,
    offsets: &mut Vec<u32>,
    out: &mut Vec<f32>,
) {
    support.reset(dim);
    for (_, u) in entries {
        for &i in u.indices() {
            support.set(i as usize, true);
        }
    }
    let total = build_rank_offsets(support, offsets);
    out.clear();
    out.resize(total, 0.0);
    let words = support.as_words();
    if dim <= SHARD || entries.len() <= 1 {
        for (w, u) in entries {
            for (&i, &v) in u.indices().iter().zip(u.values()) {
                out[packed_rank(words, offsets, i as usize)] += *w * v;
            }
        }
        return;
    }
    // Shard by position range, like the dense driver below: each shard's
    // accumulator window, mask words, and rank prefix stay cache-resident
    // while every entry's in-range coordinates stream through — instead
    // of each entry walking the whole packed accumulator in turn. An
    // entry's indices are sorted, so one cursor per entry advances
    // monotonically across shards. A position lives in exactly one shard
    // and shards replay entries in order, so per position the adds still
    // land in entry order: bit-identical to the plain loop.
    let mut cursors = vec![0usize; entries.len()];
    let mut lo = 0;
    while lo < dim {
        let hi = (lo + SHARD).min(dim);
        for ((w, u), cur) in entries.iter().zip(&mut cursors) {
            let idx = u.indices();
            let vals = u.values();
            while *cur < idx.len() && (idx[*cur] as usize) < hi {
                out[packed_rank(words, offsets, idx[*cur] as usize)] += *w * vals[*cur];
                *cur += 1;
            }
        }
        lo = hi;
    }
}

/// Streaming twin of [`accumulate_sparse_packed`]: scatters pre-weighted
/// addends recorded as flat `(position, addend)` streams (entries
/// concatenated in fold order) into packed form. Per packed position the
/// adds replay in stream order from `+0.0`, so folding `w·v` pairs here is
/// bit-identical to the dense `acc[i] += w·v` loop.
///
/// # Panics
/// Panics if the streams' lengths differ or a position is at or above
/// `dim`.
pub fn scatter_add_packed(
    indices: &[u32],
    addends: &[f32],
    dim: usize,
    support: &mut BitMask,
    offsets: &mut Vec<u32>,
    out: &mut Vec<f32>,
) {
    assert_eq!(
        indices.len(),
        addends.len(),
        "position/addend stream mismatch"
    );
    support.reset(dim);
    for &i in indices {
        support.set(i as usize, true);
    }
    let total = build_rank_offsets(support, offsets);
    out.clear();
    out.resize(total, 0.0);
    let words = support.as_words();
    if dim <= SHARD {
        for (&i, &t) in indices.iter().zip(addends) {
            out[packed_rank(words, offsets, i as usize)] += t;
        }
        return;
    }
    // The stream is a concatenation of strictly ascending runs (one per
    // folded entry). Split it at the descents, then shard by position
    // range exactly as in [`accumulate_sparse_packed`]: per shard the
    // runs replay in stream order and a position occurs at most once per
    // run, so every position's adds keep their stream order bit-for-bit.
    // Two adjacent runs that happen to stay ascending across the seam
    // merge harmlessly — the merged run is still strictly ascending.
    let mut runs = vec![0usize];
    for k in 1..indices.len() {
        if indices[k] <= indices[k - 1] {
            runs.push(k);
        }
    }
    let mut cursors = runs.clone();
    runs.push(indices.len());
    let mut lo = 0;
    while lo < dim {
        let hi = (lo + SHARD).min(dim);
        for (cur, &end) in cursors.iter_mut().zip(&runs[1..]) {
            while *cur < end && (indices[*cur] as usize) < hi {
                out[packed_rank(words, offsets, indices[*cur] as usize)] += addends[*cur];
                *cur += 1;
            }
        }
        lo = hi;
    }
}

/// Positions per cache shard (16Ki × 4B = 64KiB of accumulator): small
/// enough to stay cache-resident while every client's in-range entries
/// are replayed over it.
const SHARD: usize = 1 << 14;

/// Core driver: replays every entry over the accumulator, shard by shard.
///
/// Sharding serves two purposes with one structure: **cache blocking**
/// (each 64KiB accumulator shard stays hot while all clients' entries in
/// range stream through it — the sparse scatter stops missing on every
/// add) and **parallelism** (shards are disjoint, so `parallel` builds
/// hand them to worker threads). Per accumulator position the
/// contribution order is the entry order in every configuration, so all
/// paths are bit-identical.
pub fn accumulate_into<T: RangeAddable>(entries: &[(f32, T)], acc: &mut [f32]) {
    if entries.is_empty() || acc.is_empty() {
        return;
    }
    if acc.len() <= SHARD || entries.len() == 1 {
        for (w, entry) in entries {
            entry.add_scaled_range(acc, *w, 0);
        }
        return;
    }
    #[cfg(feature = "parallel")]
    {
        // The early return above already filtered accumulators of at most
        // one shard, so anything here is large enough to thread. Each
        // 64KiB shard is one pool job: the work-stealing deques balance
        // shards whose sparse entry density differs, and since shards are
        // disjoint and each replays entries in order, the schedule cannot
        // change any position's contribution order.
        if parallel_enabled() {
            let threads = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                // At least two workers so the sharded path is really
                // exercised even on single-core machines; the result
                // cannot depend on the worker count by construction.
                .max(2);
            let jobs: Vec<(usize, &mut [f32])> = acc.chunks_mut(SHARD).enumerate().collect();
            gluefl_pool::run(threads, jobs, |(t, out): (usize, &mut [f32])| {
                let lo = t * SHARD;
                for (w, entry) in entries {
                    entry.add_scaled_range(out, *w, lo);
                }
            });
            return;
        }
    }
    for (t, out) in acc.chunks_mut(SHARD).enumerate() {
        let lo = t * SHARD;
        for (w, entry) in entries {
            entry.add_scaled_range(out, *w, lo);
        }
    }
}

/// Runtime switch for the sharded path (`parallel` builds only): lets
/// tests compare the threaded and serial executions of the *same* binary
/// bit-for-bit. Defaults to enabled.
#[cfg(feature = "parallel")]
static PARALLEL_ENABLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Enables or disables the threaded hot paths at runtime (`parallel`
/// builds only): both the sharded aggregation here and the simulator's
/// client-parallel local training consult the flag. Intended for tests
/// and benchmarks that need both executions in one process; results are
/// bit-identical either way.
#[cfg(feature = "parallel")]
pub fn set_parallel_enabled(enabled: bool) {
    PARALLEL_ENABLED.store(enabled, std::sync::atomic::Ordering::SeqCst);
}

#[cfg(feature = "parallel")]
pub(crate) fn parallel_enabled() -> bool {
    PARALLEL_ENABLED.load(std::sync::atomic::Ordering::SeqCst)
}

/// Serializes tests that toggle [`set_parallel_enabled`]: the flag is
/// process-global, so two concurrently running parity tests could put
/// each other's "serial" arm back on the threaded path and make the
/// comparison vacuous. Every such test must hold this lock.
#[cfg(all(test, feature = "parallel"))]
pub(crate) fn parallel_toggle_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_uploads(n: usize, dim: usize, seed: u64) -> Vec<Upload> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut pairs: Vec<(u32, f32)> = Vec::new();
                for i in 0..dim as u32 {
                    if rng.gen::<f64>() < 0.3 {
                        pairs.push((i, rng.gen_range(-1.0..1.0)));
                    }
                }
                Upload::Sparse(SparseUpdate::from_pairs(dim, pairs))
            })
            .collect()
    }

    /// The exact reference: the plain sequential per-client loop.
    fn sequential_reference(entries: &[(f32, &Upload)], dim: usize) -> Vec<f32> {
        let mut acc = vec![0.0f32; dim];
        for (w, u) in entries {
            u.add_weighted_into(&mut acc, *w);
        }
        acc
    }

    #[test]
    fn matches_sequential_reference_bitwise() {
        // Dimensions straddle the parallel threshold so both paths run
        // under the `parallel` feature.
        for dim in [257usize, 1 << 15] {
            for n in [0usize, 1, 7, 8, 9, 31] {
                let uploads = random_uploads(n, dim, 42 + n as u64);
                let entries: Vec<(f32, &Upload)> = uploads
                    .iter()
                    .enumerate()
                    .map(|(i, u)| (1.0 / (i + 1) as f32, u))
                    .collect();
                let mut pool = ScratchPool::new();
                let got = accumulate_uploads(&entries, dim, &mut pool);
                assert_eq!(got, sequential_reference(&entries, dim), "dim={dim} n={n}");
            }
        }
    }

    #[test]
    fn values_accumulation_matches_axpy_loop() {
        let len = 1 << 15;
        let mut rng = StdRng::seed_from_u64(3);
        let arrays: Vec<Vec<f32>> = (0..20)
            .map(|_| (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let entries: Vec<(f32, &[f32])> = arrays
            .iter()
            .enumerate()
            .map(|(i, a)| (0.1 * (i + 1) as f32, a.as_slice()))
            .collect();
        let mut pool = ScratchPool::new();
        let got = accumulate_weighted_values(&entries, len, &mut pool);

        let mut expected = vec![0.0f32; len];
        for (w, a) in &entries {
            vecops::axpy(&mut expected, *w, a);
        }
        assert_eq!(got, expected);
    }

    /// With the `parallel` feature enabled this exercises the sharded
    /// path against the serial loop of the same binary — bit-for-bit.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_matches_serial_bitwise() {
        let _guard = parallel_toggle_lock();
        let dim = 1 << 16;
        let uploads = random_uploads(24, dim, 7);
        let entries: Vec<(f32, &Upload)> = uploads
            .iter()
            .enumerate()
            .map(|(i, u)| ((i as f32).sin(), u))
            .collect();
        let mut pool = ScratchPool::new();
        set_parallel_enabled(true);
        let threaded = accumulate_uploads(&entries, dim, &mut pool);
        set_parallel_enabled(false);
        let serial = accumulate_uploads(&entries, dim, &mut pool);
        set_parallel_enabled(true);
        assert_eq!(threaded, serial);
    }

    /// The packed accumulation must equal the dense accumulation exactly:
    /// same union support, and at every set position the same bits as the
    /// dense accumulator (including cancellations to ±0.0).
    #[test]
    fn packed_accumulation_matches_dense_bitwise() {
        let dim = 5000;
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 9] {
            let updates: Vec<SparseUpdate> = (0..n)
                .map(|_| {
                    let mut pairs: Vec<(u32, f32)> = Vec::new();
                    for i in 0..dim as u32 {
                        if rng.gen::<f64>() < 0.05 {
                            pairs.push((i, rng.gen_range(-1.0..1.0)));
                        }
                    }
                    SparseUpdate::from_pairs(dim, pairs)
                })
                .collect();
            let entries: Vec<(f32, &SparseUpdate)> = updates
                .iter()
                .enumerate()
                .map(|(i, u)| (((i + 1) as f32).sin(), u))
                .collect();
            let mut pool = ScratchPool::new();
            let dense = accumulate_sparse(&entries, dim, &mut pool);

            let mut support = BitMask::zeros(dim);
            let mut offsets = Vec::new();
            let mut packed = Vec::new();
            accumulate_sparse_packed(&entries, dim, &mut support, &mut offsets, &mut packed);
            assert_eq!(support.count_ones(), packed.len());
            let mut r = 0;
            for (i, &dv) in dense.iter().enumerate() {
                if support.get(i) {
                    assert_eq!(
                        dv.to_bits(),
                        packed[r].to_bits(),
                        "bit mismatch at position {i} (n={n})"
                    );
                    r += 1;
                } else {
                    assert_eq!(dv.to_bits(), 0.0f32.to_bits(), "dense nonzero off-support");
                }
            }

            // The streaming form over the concatenated (index, w·v) pairs
            // must land on exactly the same packed sum.
            let mut idx_stream: Vec<u32> = Vec::new();
            let mut val_stream: Vec<f32> = Vec::new();
            for (w, u) in &entries {
                idx_stream.extend_from_slice(u.indices());
                for &v in u.values() {
                    val_stream.push(*w * v);
                }
            }
            let mut support2 = BitMask::zeros(dim);
            let mut packed2 = Vec::new();
            scatter_add_packed(
                &idx_stream,
                &val_stream,
                dim,
                &mut support2,
                &mut offsets,
                &mut packed2,
            );
            assert_eq!(support2, support);
            assert!(packed
                .iter()
                .zip(&packed2)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn sparse_range_shards_partition_the_update() {
        let dim = 1000;
        let uploads = random_uploads(1, dim, 9);
        let Upload::Sparse(u) = &uploads[0] else {
            unreachable!()
        };
        let mut full = vec![0.0f32; dim];
        u.add_scaled_into(&mut full, 2.0);
        let mut sharded = vec![0.0f32; dim];
        for (t, chunk) in sharded.chunks_mut(97).enumerate() {
            u.add_scaled_range_into(chunk, 2.0, t * 97);
        }
        assert_eq!(full, sharded);
    }
}
