//! Packed-aggregate twins, pinned bit-exact against their dense
//! counterparts.
//!
//! GlueFL's O(q·d) aggregate never stages a dense `d`-length buffer: the
//! unique parts accumulate straight into `(support, packed values)` form,
//! the streaming fold scatters deferred `(position, w·v)` pairs the same
//! way, and the mask shift's top-k runs over the packed pair. Each of
//! those packed kernels promises *bit identity* with the dense code it
//! replaced — per position, the same `+= w·v` adds replay in the same
//! order from `+0.0`. These properties pin that promise across
//! adversarial supports (empty, overlapping, single-client, full-width)
//! and weights, so the packed rewrite can never drift the simulated
//! trajectory.

use gluefl_compress::mask_shift::{shift_mask_into, shift_mask_packed_into};
use gluefl_core::aggregate::{accumulate_sparse, accumulate_sparse_packed, scatter_add_packed};
use gluefl_core::ScratchPool;
use gluefl_tensor::{BitMask, SparseUpdate, TopKScratch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random per-client sparse updates over `dim`, with overlapping
/// supports (each position is picked independently per client).
fn random_updates(rng: &mut StdRng, dim: usize, clients: usize) -> Vec<(f32, SparseUpdate)> {
    (0..clients)
        .map(|_| {
            let w = rng.gen_range(0.05f32..3.0);
            let density = rng.gen_range(0.0f64..0.4);
            let mut pairs: Vec<(u32, f32)> = Vec::new();
            for i in 0..dim as u32 {
                if rng.gen_bool(density) {
                    pairs.push((i, rng.gen_range(-4.0f32..4.0)));
                }
            }
            (w, SparseUpdate::from_pairs(dim, pairs))
        })
        .collect()
}

/// Densifies a `(support, packed)` pair for comparison.
fn densify(support: &BitMask, packed: &[f32]) -> Vec<f32> {
    let mut dense = vec![0.0f32; support.len()];
    let mut r = 0;
    support.for_each_one(|i| {
        dense[i] = packed[r];
        r += 1;
    });
    assert_eq!(r, packed.len());
    dense
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    /// Packed accumulation ≡ dense accumulation, to the bit — including
    /// the exact `+0.0` at union-support positions whose contributions
    /// cancel, and untouched positions staying exactly `0.0`.
    #[test]
    fn packed_accumulation_is_bit_exact(
        dim in 1usize..800,
        clients in 1usize..7,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let updates = random_updates(&mut rng, dim, clients);
        let entries: Vec<(f32, &SparseUpdate)> =
            updates.iter().map(|(w, u)| (*w, u)).collect();

        let mut pool = ScratchPool::new();
        let dense = accumulate_sparse(&entries, dim, &mut pool);

        let mut support = BitMask::zeros(1);
        let mut offsets = Vec::new();
        let mut packed = Vec::new();
        accumulate_sparse_packed(&entries, dim, &mut support, &mut offsets, &mut packed);

        let nnz: usize = entries.iter().map(|(_, u)| u.nnz()).sum();
        prop_assert!(packed.len() <= nnz, "support exceeds the union");
        prop_assert_eq!(bits(&densify(&support, &packed)), bits(&dense));
    }

    /// The streaming scatter twin — entries flattened to `(position, w·v)`
    /// pairs in fold order — lands on the same bits as both the dense and
    /// the batch-packed accumulation.
    #[test]
    fn packed_scatter_is_bit_exact(
        dim in 1usize..800,
        clients in 1usize..7,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let updates = random_updates(&mut rng, dim, clients);
        let entries: Vec<(f32, &SparseUpdate)> =
            updates.iter().map(|(w, u)| (*w, u)).collect();

        let mut pool = ScratchPool::new();
        let dense = accumulate_sparse(&entries, dim, &mut pool);

        let mut stream_idx = Vec::new();
        let mut stream_vals = Vec::new();
        for (w, u) in &entries {
            stream_idx.extend_from_slice(u.indices());
            stream_vals.extend(u.values().iter().map(|&v| *w * v));
        }
        let mut support = BitMask::zeros(1);
        let mut offsets = Vec::new();
        let mut packed = Vec::new();
        scatter_add_packed(
            &stream_idx,
            &stream_vals,
            dim,
            &mut support,
            &mut offsets,
            &mut packed,
        );
        prop_assert_eq!(bits(&densify(&support, &packed)), bits(&dense));
    }

    /// Packed mask shift selects the same next shared mask as densifying
    /// the combined update first, for every `q_shr` and eligibility
    /// scope — ties included (values are quantized to force collisions).
    #[test]
    fn packed_mask_shift_matches_dense(
        dim in 1usize..500,
        q_shr in 0.0f64..1.0,
        with_eligible in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let density = rng.gen_range(0.0f64..0.5);
        let mut support = BitMask::zeros(dim);
        let mut packed = Vec::new();
        for i in 0..dim {
            if rng.gen_bool(density) {
                support.set(i, true);
                // Quantized magnitudes → abundant ties.
                packed.push((rng.gen_range(-4i32..5) as f32) * 0.25);
            }
        }
        let eligible = with_eligible
            .then(|| BitMask::from_indices(dim, (0..dim).filter(|i| i % 3 != 0)));
        let dense = densify(&support, &packed);

        let mut scratch = TopKScratch::new();
        let mut want = BitMask::zeros(1);
        shift_mask_into(&dense, q_shr, eligible.as_ref(), &mut scratch, &mut want);
        let mut got = BitMask::zeros(1);
        shift_mask_packed_into(
            &support,
            &packed,
            q_shr,
            eligible.as_ref(),
            &mut scratch,
            &mut got,
        );
        prop_assert_eq!(got, want);
    }
}
