//! Property-based tests for the staleness tracker: the histogram fast
//! path must agree with brute force under arbitrary update histories, and
//! the monotonicity facts the evaluation relies on must always hold.

use gluefl_core::StalenessTracker;
use proptest::prelude::*;

proptest! {
    /// Fast path == brute force for every version, under random updates.
    #[test]
    fn histogram_matches_bruteforce(
        dim in 1usize..400,
        rounds in proptest::collection::vec(
            proptest::collection::btree_set(0usize..400, 0..80), 0..30)) {
        let mut st = StalenessTracker::new(dim, 2);
        for changed in &rounds {
            st.record_update(changed.iter().copied().filter(|&j| j < dim));
            for v in 0..=st.version() {
                prop_assert_eq!(
                    st.stale_positions(v),
                    st.stale_positions_bruteforce(v),
                    "version {}", v
                );
            }
        }
    }

    /// Staleness is monotone in skip length and bounded by the union of
    /// change sets.
    #[test]
    fn staleness_monotone_and_bounded(
        dim in 1usize..300,
        rounds in proptest::collection::vec(
            proptest::collection::btree_set(0usize..300, 1..50), 1..25)) {
        let mut st = StalenessTracker::new(dim, 1);
        let mut union: std::collections::BTreeSet<usize> =
            std::collections::BTreeSet::new();
        for changed in &rounds {
            let filtered: Vec<usize> =
                changed.iter().copied().filter(|&j| j < dim).collect();
            union.extend(filtered.iter().copied());
            st.record_update(filtered);
        }
        // Monotone in skip length.
        let mut prev = 0;
        for skip in 1..=st.version() {
            let s = st.stale_positions(st.version() - skip);
            prop_assert!(s >= prev);
            prev = s;
        }
        // From version 0, staleness equals the union of all change sets.
        prop_assert_eq!(st.stale_positions(0), union.len());
        // Download of the latest version is always zero.
        prop_assert_eq!(st.stale_positions(st.version()), 0);
    }

    /// Syncing a client then querying is equivalent to querying the
    /// current version.
    #[test]
    fn sync_then_query_is_current(
        dim in 1usize..200,
        pre in proptest::collection::vec(
            proptest::collection::btree_set(0usize..200, 1..40), 1..10),
        post in proptest::collection::vec(
            proptest::collection::btree_set(0usize..200, 1..40), 0..10)) {
        let mut st = StalenessTracker::new(dim, 1);
        for changed in &pre {
            st.record_update(changed.iter().copied().filter(|&j| j < dim));
        }
        st.mark_synced(0);
        let mut expected: std::collections::BTreeSet<usize> =
            std::collections::BTreeSet::new();
        for changed in &post {
            let filtered: Vec<usize> =
                changed.iter().copied().filter(|&j| j < dim).collect();
            expected.extend(filtered.iter().copied());
            st.record_update(filtered);
        }
        prop_assert_eq!(
            st.stale_positions(st.client_version(0)),
            expected.len()
        );
    }
}
