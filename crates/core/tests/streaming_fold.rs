//! Streaming fold ≡ batch aggregate, bit-exact, for every strategy.
//!
//! The [`gluefl_core::stream::StreamingAggregator`] promises that folding
//! kept uploads one at a time — in whatever order they arrive — produces
//! the same `MaskedUpdate`, to the bit, as the batch
//! [`Strategy::aggregate`] over the id-sorted keep set. These properties
//! drive all six strategy configurations × all three wire codecs through
//! real encode/decode round-trips for several rounds, deliver the kept
//! uploads in proptest-shuffled arrival orders, and compare the two
//! aggregation paths round by round (state evolution included: a
//! divergence in round `r`'s fold would shift every later round's masks).
//! The entropy wire policy (delta-varint indices, RLE mask sections)
//! rides through the same properties: the position layout changes the
//! bytes, never the decoded uploads.
//!
//! The keep-K cutoff identity rides along: the over-committed remainder
//! of each round's invites is dropped without ever being decoded or
//! folded, and the fold still matches the batch aggregate over exactly
//! the kept set.

use gluefl_compress::{ApfConfig, CompensationMode};
use gluefl_core::strategies::{build_strategy, Group, Upload};
use gluefl_core::stream::StreamingAggregator;
use gluefl_core::{wire_link, GlueFlParams, ScratchPool, SimConfig, StrategyConfig};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;
use gluefl_sampling::AllOnline;
use gluefl_tensor::rng::derive_seed;
use gluefl_tensor::{BitMask, MaskedUpdate};
use gluefl_wire::{Codec, WirePolicy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 24;
const K: usize = 5;
const DIM: usize = 48;
/// Positions `STATS_FROM..DIM` play the BN-statistic role: excluded from
/// every strategy's masks and zero in every delta.
const STATS_FROM: usize = 44;
const ROUNDS: u32 = 3;

fn all_strategy_configs() -> Vec<StrategyConfig> {
    vec![
        StrategyConfig::FedAvg,
        StrategyConfig::MdFedAvg,
        StrategyConfig::Stc { q: 0.25 },
        StrategyConfig::StcQuantized { q: 0.25 },
        StrategyConfig::Apf {
            config: ApfConfig {
                threshold: 0.1,
                ema_beta: 0.9,
                initial_period: 2,
                max_period: 8,
                warmup_rounds: 1,
            },
        },
        StrategyConfig::GlueFl(GlueFlParams {
            q: 0.25,
            q_shr: 0.2,
            sticky_group: 4 * K,
            sticky_draw: 4 * K / 5,
            regen_interval: Some(2), // rounds 0 and 2 regenerate
            compensation: CompensationMode::Rescaled,
            equal_weights: false,
        }),
    ]
}

fn stats_excluded() -> BitMask {
    let mut m = BitMask::zeros(DIM);
    for i in STATS_FROM..DIM {
        m.set(i, true);
    }
    m
}

fn cfg_for(strategy: StrategyConfig, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_setup(
        DatasetProfile::Femnist,
        DatasetModel::ShuffleNet,
        strategy,
        0.02,
        ROUNDS,
        seed,
    );
    cfg.round_size = K;
    cfg.oc = 1.6;
    cfg
}

/// A deterministic pseudo-random trainable delta for `(seed, round, id)`;
/// BN-statistic positions are exact zeros, as the simulator guarantees.
fn delta_for(seed: u64, round: u32, id: usize) -> Vec<f32> {
    (0..DIM)
        .map(|j| {
            if j >= STATS_FROM {
                return 0.0;
            }
            let mut h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (id as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
                ^ (u64::from(round) << 17)
                ^ (j as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
            h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
            (h % 2001) as f32 / 1000.0 - 1.0
        })
        .collect()
}

fn bits(u: &MaskedUpdate) -> Vec<u32> {
    u.values().iter().map(|v| v.to_bits()).collect()
}

/// Runs `ROUNDS` rounds of one strategy under one wire policy twice —
/// batch aggregate vs streaming fold with `order` as the arrival shuffle
/// — and asserts bit-identical updates every round.
fn check_strategy(strategy_cfg: StrategyConfig, policy: WirePolicy, seed: u64, order: &[u64]) {
    let cfg = cfg_for(strategy_cfg, seed);
    let weights = vec![1.0 / N as f64; N];
    let trainable = STATS_FROM;
    let mut rng_a = StdRng::seed_from_u64(derive_seed(seed, "fold-prop", 0));
    let mut rng_b = rng_a.clone();
    let mut strat_a = build_strategy(&cfg, &weights, trainable, DIM, stats_excluded(), &mut rng_a);
    let mut strat_b = build_strategy(&cfg, &weights, trainable, DIM, stats_excluded(), &mut rng_b);
    let mut pool_a = ScratchPool::new();
    let mut pool_b = ScratchPool::new();

    for round in 0..ROUNDS {
        // Plan identically on both sides.
        let mut plan_rng_a = StdRng::seed_from_u64(derive_seed(seed, "fold-plan", round.into()));
        let mut plan_rng_b = plan_rng_a.clone();
        let plan_a = strat_a.plan_round(round, &mut plan_rng_a, &mut AllOnline);
        let plan_b = strat_b.plan_round(round, &mut plan_rng_b, &mut AllOnline);
        let invited: Vec<(usize, Group)> = plan_a.invited().collect();
        assert_eq!(invited, plan_b.invited().collect::<Vec<_>>());

        // Compress on both sides (error-compensation state must evolve
        // identically for every *invited* client, kept or dropped).
        let mut uploads: Vec<(usize, Group, Upload)> = Vec::new();
        for &(id, group) in &invited {
            let mut da = delta_for(seed, round, id);
            let mut db = da.clone();
            let ua = strat_a.compress(round, id, group, &mut da, &mut pool_a);
            let ub = strat_b.compress(round, id, group, &mut db, &mut pool_b);
            assert_eq!(ua, ub, "compress diverged for client {id}");
            pool_b.reclaim_upload(ub);
            uploads.push((id, group, ua));
        }

        // Keep-K cutoff: first `keep_sticky` sticky + `keep_fresh` fresh
        // invites survive; the over-committed remainder is dropped
        // without ever being encoded, decoded, or folded.
        let sticky_n = plan_a.sticky_invites.len();
        let keep_s = plan_a.keep_sticky.min(sticky_n);
        let keep_f = plan_a.keep_fresh.min(uploads.len() - sticky_n);
        let mut kept: Vec<(usize, Group, Upload)> = Vec::new();
        for (i, entry) in uploads.into_iter().enumerate() {
            if (i < sticky_n && i < keep_s) || (i >= sticky_n && i < sticky_n + keep_f) {
                kept.push(entry);
            } else {
                pool_a.reclaim_upload(entry.2);
            }
        }

        // Wire round-trip each kept upload once; both aggregation paths
        // consume the same decoded bytes, exactly like a server would.
        let decoded: Vec<(usize, Group, Upload)> = {
            let mask = strat_a.round_mask(round);
            kept.iter()
                .map(|(id, group, upload)| {
                    let key = (u64::from(round) << 32) | *id as u64;
                    let mut buf = Vec::new();
                    let ulen = wire_link::encode_upload(
                        upload,
                        round,
                        &policy,
                        derive_seed(seed, "wire-quant", key),
                        &mut buf,
                    );
                    assert_eq!(ulen as u64, wire_link::encoded_len(upload, &policy));
                    let dec = wire_link::decode_upload(&buf[..ulen], mask, &mut pool_a)
                        .expect("clean round-trip");
                    (*id, *group, dec)
                })
                .collect()
        };
        for (_, _, upload) in kept {
            pool_a.reclaim_upload(upload);
        }

        // Batch reference: id-sorted aggregate on side A.
        let mut batch_input = decoded.clone();
        batch_input.sort_by_key(|(id, _, _)| *id);
        let want = strat_a.aggregate(round, &batch_input, &mut pool_a);
        for (_, _, upload) in batch_input {
            pool_a.reclaim_upload(upload);
        }

        // Streaming fold on side B, arrivals shuffled by the proptest
        // sort keys (stable sort, so equal keys stay deterministic).
        let ids: Vec<(usize, Group)> = decoded.iter().map(|&(id, g, _)| (id, g)).collect();
        let mut arrival = decoded;
        arrival.sort_by_key(|(id, _, _)| order[*id % order.len()]);
        let mut gate = StreamingAggregator::begin(round, &ids, &mut *strat_b, &mut pool_b);
        for (id, _, upload) in arrival {
            gate.accept(&mut *strat_b, id, upload, &mut pool_b).unwrap();
        }
        assert!(gate.complete());
        assert_eq!(gate.folded(), ids.len());
        let got = gate.finish(&mut *strat_b, &mut pool_b);

        assert_eq!(
            want.mask(),
            got.mask(),
            "round {round}: fold mask diverged from batch aggregate"
        );
        assert_eq!(
            bits(&want),
            bits(&got),
            "round {round}: fold values diverged from batch aggregate"
        );
        pool_a.put_update(want);
        pool_b.put_update(got);

        // Evolve sticky state identically on both sides.
        let kept_sticky: Vec<usize> = ids
            .iter()
            .filter(|(_, g)| *g == Group::Sticky)
            .map(|&(id, _)| id)
            .collect();
        let kept_fresh: Vec<usize> = ids
            .iter()
            .filter(|(_, g)| *g == Group::Fresh)
            .map(|&(id, _)| id)
            .collect();
        let mut fin_rng_a = StdRng::seed_from_u64(derive_seed(seed, "fold-fin", round.into()));
        let mut fin_rng_b = fin_rng_a.clone();
        strat_a.finish_round(round, &mut fin_rng_a, &kept_sticky, &kept_fresh);
        strat_b.finish_round(round, &mut fin_rng_b, &kept_sticky, &kept_fresh);
    }
}

proptest! {
    /// Every strategy × F32: shuffled streaming fold ≡ batch aggregate.
    #[test]
    fn fold_matches_batch_f32(
        seed in 0u64..100_000,
        order in proptest::collection::vec(any::<u64>(), 16),
    ) {
        for strategy in all_strategy_configs() {
            check_strategy(strategy, WirePolicy::legacy(Codec::F32), seed, &order);
        }
    }

    /// Every strategy × the lossy F16 codec: both paths see the same
    /// decoded (precision-reduced) values, so they still agree bit-exactly.
    #[test]
    fn fold_matches_batch_f16(
        seed in 0u64..100_000,
        order in proptest::collection::vec(any::<u64>(), 16),
    ) {
        for strategy in all_strategy_configs() {
            check_strategy(strategy, WirePolicy::legacy(Codec::F16), seed, &order);
        }
    }

    /// Every strategy × the stochastically-rounded QuantU8 codec.
    #[test]
    fn fold_matches_batch_quant_u8(
        seed in 0u64..100_000,
        order in proptest::collection::vec(any::<u64>(), 16),
    ) {
        for strategy in all_strategy_configs() {
            check_strategy(strategy, WirePolicy::legacy(Codec::QuantU8), seed, &order);
        }
    }

    /// Every strategy × the entropy layouts (delta-varint indices, RLE
    /// sections), bit-exact F32 values: the position layout changes the
    /// bytes, never the decoded uploads.
    #[test]
    fn fold_matches_batch_entropy_f32(
        seed in 0u64..100_000,
        order in proptest::collection::vec(any::<u64>(), 16),
    ) {
        for strategy in all_strategy_configs() {
            check_strategy(strategy, WirePolicy::entropy(Codec::F32), seed, &order);
        }
    }

    /// Every strategy × entropy layouts on top of QuantU8.
    #[test]
    fn fold_matches_batch_entropy_quant_u8(
        seed in 0u64..100_000,
        order in proptest::collection::vec(any::<u64>(), 16),
    ) {
        for strategy in all_strategy_configs() {
            check_strategy(strategy, WirePolicy::entropy(Codec::QuantU8), seed, &order);
        }
    }
}
