//! The client side of the round loop: a [`ClientNode`] that trains and
//! compresses exactly like one simulated client, plus [`run_client`],
//! the blocking socket loop that speaks the envelope protocol.
//!
//! # Bit-exactness
//!
//! A real client must reproduce, to the bit, what the in-process
//! [`gluefl_core::Simulation`] computes for the same `(seed, round, id)`:
//! the same synthetic shard, the same local-SGD delta
//! ([`gluefl_core::local_train_into`] with the `"local-train"` derived
//! seed), and the same compressed upload. Compression is mirrored here
//! per strategy (the private `ClientCompressor`) rather than through a
//! [`gluefl_core::strategies::Strategy`] instance, because the strategy
//! object holds *server* state (samplers, masks) a client does not have —
//! but the client-visible parts (error-compensation residuals keyed by
//! client id, top-k scopes, propensity weights) depend only on the
//! client's own history and the round's broadcast mask, which arrives in
//! every `INVITE`. The loopback suite pins the mirror against the
//! simulator for every strategy.

use crate::proto::{read_msg_blocking, write_msg, MsgKind, ProtoError, PROTO_VERSION};
use crate::TransportError;
use gluefl_compress::stc::keep_count;
use gluefl_compress::{CompensationMode, ErrorCompensator};
use gluefl_core::strategies::{Group, Upload};
use gluefl_core::{local_train_into, wire_link, ScratchPool, SimConfig, StrategyConfig, TrainSlot};
use gluefl_data::SyntheticFlDataset;
use gluefl_ml::Mlp;
use gluefl_sampling::sticky_weights;
use gluefl_telemetry::{Counter, Phase, Telemetry};
use gluefl_tensor::rng::{derive_seed, seeded_rng};
use gluefl_tensor::wire::HEADER_BYTES;
use gluefl_tensor::{top_k_abs_masked_into, BitMask, SparseUpdate, TopKScope};
use gluefl_wire::{decode_frame_prefix, FrameKind, FrameWriter};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;

/// The client-side mirror of one strategy's `compress` path.
///
/// Each variant holds exactly the state the corresponding
/// [`gluefl_core::strategies::Strategy`] keeps *per client*: the error
/// compensator's residual map is keyed by client id and only ever touched
/// inside `compress`, so a client carrying its own compensator stays
/// bit-identical to the server-side strategy carrying everyone's.
enum ClientCompressor {
    /// FedAvg / MD-FedAvg: the dense delta is the upload.
    Dense,
    /// STC: error feedback, top-`q` outside the BN statistics, optional
    /// ternary quantization.
    Stc {
        q: f64,
        quantize: bool,
        ec: ErrorCompensator,
    },
    /// APF: values under the broadcast active mask.
    Apf,
    /// GlueFL: re-scaled error compensation, shared part under the
    /// broadcast mask `M_t`, unique top-`(q−q_shr)` outside `M_t ∪ stats`.
    GlueFl {
        params: gluefl_core::GlueFlParams,
        /// This client's importance weight `p_i`.
        own_weight: f64,
        /// Population size (for the propensity factors).
        n: usize,
        /// Round size `K`.
        k: usize,
        ec: ErrorCompensator,
        /// Reused `broadcast mask ∪ stats` scope.
        scope: BitMask,
    },
}

impl ClientCompressor {
    /// Whether `round` regenerates GlueFL's shared mask (mirror of
    /// `GlueFlStrategy::is_regen_round`).
    fn is_regen_round(params: &gluefl_core::GlueFlParams, round: u32) -> bool {
        match params.regen_interval {
            Some(i) => round > 0 && round.is_multiple_of(i),
            None => false,
        }
    }

    /// This client's aggregation weight (mirror of
    /// `Strategy::client_weight` for the strategies whose compress path
    /// consumes it).
    fn gluefl_weight(
        params: &gluefl_core::GlueFlParams,
        own_weight: f64,
        n: usize,
        k: usize,
        group: Group,
    ) -> f64 {
        if params.equal_weights {
            return 1.0 / k as f64;
        }
        let w = sticky_weights(n, params.sticky_group, params.sticky_draw, k);
        let factor = match group {
            Group::Sticky => w.sticky_factor,
            Group::Fresh => w.fresh_factor,
        };
        factor * own_weight
    }

    /// Compresses this client's trained delta exactly as the server-side
    /// strategy would. `broadcast_mask` is the round mask decoded from
    /// the `INVITE` (`None` for dense/sparse strategies).
    #[allow(clippy::too_many_arguments)]
    fn compress(
        &mut self,
        round: u32,
        id: usize,
        group: Group,
        delta: &mut [f32],
        broadcast_mask: Option<&BitMask>,
        trainable: usize,
        dim: usize,
        stats_excluded: &BitMask,
        scratch: &mut ScratchPool,
    ) -> Result<Upload, TransportError> {
        match self {
            ClientCompressor::Dense => Ok(Upload::Dense(scratch.take_copy(delta))),
            ClientCompressor::Stc { q, quantize, ec } => {
                ec.apply(id, delta, 1.0);
                let k = keep_count(trainable, *q);
                let (ix, vals) = scratch.take_sparse();
                let idx = top_k_abs_masked_into(
                    delta,
                    k,
                    TopKScope::Outside(stats_excluded),
                    &mut scratch.topk,
                );
                let sparse = SparseUpdate::gather_in(delta, idx, ix, vals);
                if *quantize {
                    let ternary = gluefl_compress::stc::TernaryUpdate::quantize(&sparse);
                    ec.record_sent_parts(id, delta, &[&ternary.dequantize()], 1.0);
                    Ok(Upload::Ternary(ternary))
                } else {
                    ec.record_sent_parts(id, delta, &[&sparse], 1.0);
                    Ok(Upload::Sparse(sparse))
                }
            }
            ClientCompressor::Apf => {
                let mask = broadcast_mask.ok_or(TransportError::MissingBroadcastMask)?;
                let (ix, vals) = scratch.take_sparse();
                Ok(Upload::KnownMask(SparseUpdate::from_dense_masked_in(
                    delta, mask, ix, vals,
                )))
            }
            ClientCompressor::GlueFl {
                params,
                own_weight,
                n,
                k,
                ec,
                scope,
            } => {
                let mask = broadcast_mask.ok_or(TransportError::MissingBroadcastMask)?;
                let weight = Self::gluefl_weight(params, *own_weight, *n, *k, group);
                ec.apply(id, delta, weight);

                let regen = Self::is_regen_round(params, round);
                let unique_k = if regen {
                    keep_count(trainable, params.q)
                } else {
                    keep_count(trainable, params.q - params.q_shr)
                };
                let shared = if regen {
                    SparseUpdate::empty(dim)
                } else {
                    let (ix, vals) = scratch.take_sparse();
                    SparseUpdate::from_dense_masked_in(delta, mask, ix, vals)
                };
                let top_scope: &BitMask = if regen {
                    stats_excluded
                } else {
                    scope.copy_from(mask);
                    scope.union_with(stats_excluded);
                    scope
                };
                let (ix, vals) = scratch.take_sparse();
                let idx = top_k_abs_masked_into(
                    delta,
                    unique_k,
                    TopKScope::Outside(top_scope),
                    &mut scratch.topk,
                );
                let unique = SparseUpdate::gather_in(delta, idx, ix, vals);
                ec.record_sent_parts(id, delta, &[&shared, &unique], weight);
                Ok(Upload::MaskSplit(
                    gluefl_compress::mask_shift::ClientSplit { shared, unique },
                ))
            }
        }
    }

    /// Mirror of [`gluefl_core::strategies::Strategy::fold_codec_error`]:
    /// folds the wire codec's loss on a *granted* upload into the
    /// client's own residual bank. Fired from `encode_granted` — the
    /// moment the bytes are serialized, matching the simulator, which
    /// only ever encodes kept uploads — so loopback runs stay
    /// bit-identical.
    fn fold_codec_error(&mut self, id: usize, indices: &[u32], sent: &[f32], shipped: &[f32]) {
        match self {
            ClientCompressor::Stc { ec, .. } | ClientCompressor::GlueFl { ec, .. } => {
                ec.fold_shipped_error(id, indices, sent, shipped);
            }
            ClientCompressor::Dense | ClientCompressor::Apf => {}
        }
    }
}

/// One real client: its data shard, model topology, training slot, and
/// compression state, all derived from the shared [`SimConfig`].
///
/// Public so the hostile test battery can drive an honest node and then
/// corrupt the bytes it produces.
pub struct ClientNode {
    cfg: SimConfig,
    id: usize,
    data: SyntheticFlDataset,
    /// Built only for its layout/topology; the trained parameters come
    /// from the server's broadcast every round.
    model: Mlp,
    stats_positions: Vec<usize>,
    trainable_mask: BitMask,
    stats_excluded: BitMask,
    trainable: usize,
    dim: usize,
    compressor: ClientCompressor,
    slot: TrainSlot,
    scratch: ScratchPool,
    /// The round's decoded global parameters.
    global: Vec<f32>,
    /// The round's decoded broadcast mask, if the strategy ships one.
    round_mask: Option<BitMask>,
    /// Reused trained-delta buffer.
    delta: Vec<f32>,
    /// Reused BN-statistic drift buffer.
    stats_out: Vec<f32>,
    /// The compressed upload awaiting a `GRANT` decision.
    pending: Option<(u32, Upload)>,
}

impl ClientNode {
    /// Builds the client for `id` from the run config. Dataset and model
    /// layout derive from `cfg.seed` exactly as in
    /// [`gluefl_core::Simulation::new`], so both sides agree on shards,
    /// shapes, and BN-statistic positions.
    ///
    /// # Panics
    /// Panics if `id` is outside the configured population.
    #[must_use]
    pub fn new(cfg: SimConfig, id: usize) -> Self {
        let data =
            SyntheticFlDataset::generate(cfg.dataset.clone(), derive_seed(cfg.seed, "data", 0));
        assert!(id < data.num_clients(), "client id outside population");
        let mut init_rng = seeded_rng(cfg.seed, "model-init", 0);
        let model = cfg
            .model
            .build(data.feature_dim(), data.classes(), &mut init_rng);
        let dim = model.num_params();
        let layout = model.layout();
        let trainable = layout.trainable_count();
        let trainable_mask = layout.trainable_mask();
        let stats_excluded = trainable_mask.not();
        let stats_positions: Vec<usize> = stats_excluded.iter_ones().collect();
        let n = data.num_clients();
        let k = cfg.round_size;
        let compressor = match &cfg.strategy {
            StrategyConfig::FedAvg | StrategyConfig::MdFedAvg => ClientCompressor::Dense,
            StrategyConfig::Stc { q } => ClientCompressor::Stc {
                q: *q,
                quantize: false,
                ec: ErrorCompensator::new(CompensationMode::Raw, dim),
            },
            StrategyConfig::StcQuantized { q } => ClientCompressor::Stc {
                q: *q,
                quantize: true,
                ec: ErrorCompensator::new(CompensationMode::Raw, dim),
            },
            StrategyConfig::Apf { .. } => ClientCompressor::Apf,
            StrategyConfig::GlueFl(params) => ClientCompressor::GlueFl {
                params: params.clone(),
                own_weight: data.client_weights()[id],
                n,
                k,
                ec: ErrorCompensator::new(params.compensation, dim),
                scope: BitMask::zeros(dim),
            },
        };
        Self {
            cfg,
            id,
            data,
            model,
            stats_positions,
            trainable_mask,
            stats_excluded,
            trainable,
            dim,
            compressor,
            slot: TrainSlot::default(),
            scratch: ScratchPool::new(),
            global: Vec::new(),
            round_mask: None,
            delta: Vec::new(),
            stats_out: Vec::new(),
            pending: None,
        }
    }

    /// This client's id.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Decodes an `INVITE` payload (`[group u8]` + broadcast frames),
    /// trains locally, compresses, and stages the upload. Returns the
    /// offer pair `(analytic_bytes, wire_bytes)` — the exact values the
    /// simulator predicts for this upload.
    ///
    /// # Errors
    /// Typed errors on malformed broadcast frames.
    pub fn handle_invite(
        &mut self,
        round: u32,
        payload: &[u8],
    ) -> Result<(u64, u64), TransportError> {
        let (&group_byte, frames) = payload.split_first().ok_or(TransportError::EmptyInvite)?;
        let group = match group_byte {
            0 => Group::Fresh,
            1 => Group::Sticky,
            other => return Err(TransportError::BadGroup(other)),
        };
        // Broadcast frame 1: the dense F32 global model.
        let (model_frame, rest) = decode_frame_prefix(frames)?;
        if model_frame.kind != FrameKind::Dense || model_frame.dim != self.dim {
            return Err(TransportError::BadBroadcast);
        }
        self.global.clear();
        model_frame.values_into(&mut self.global);
        // Broadcast frame 2 (optional): the strategy's round mask.
        self.round_mask = if rest.is_empty() {
            None
        } else {
            let (mask_frame, tail) = decode_frame_prefix(rest)?;
            if !matches!(mask_frame.kind, FrameKind::Mask | FrameKind::MaskRle)
                || mask_frame.dim != self.dim
                || !tail.is_empty()
            {
                return Err(TransportError::BadBroadcast);
            }
            let mut mask = self.round_mask.take().unwrap_or_else(|| BitMask::zeros(0));
            mask_frame.mask_into(&mut mask);
            Some(mask)
        };

        // Local training — identical inputs to the simulator's worker.
        let lr = self.cfg.lr_at_round(round);
        self.delta.clear();
        self.delta.resize(self.dim, 0.0);
        self.stats_out.clear();
        self.stats_out.resize(self.stats_positions.len(), 0.0);
        let client_seed = derive_seed(
            self.cfg.seed,
            "local-train",
            (u64::from(round) << 32) | self.id as u64,
        );
        local_train_into(
            self.model.topology(),
            &self.global,
            &self.data,
            self.id,
            self.cfg.local_steps,
            self.cfg.batch_size,
            lr,
            self.cfg.momentum,
            client_seed,
            &mut self.delta,
            &self.stats_positions,
            &mut self.stats_out,
            &self.trainable_mask,
            &mut self.slot,
        );

        // Compress and price the upload (discarding any stale pending
        // upload from a round whose grant never arrived).
        if let Some((_, stale)) = self.pending.take() {
            self.scratch.reclaim_upload(stale);
        }
        let upload = self.compressor.compress(
            round,
            self.id,
            group,
            &mut self.delta,
            self.round_mask.as_ref(),
            self.trainable,
            self.dim,
            &self.stats_excluded,
            &mut self.scratch,
        )?;
        let stats_len = self.stats_positions.len();
        let policy = self.cfg.wire;
        let analytic = upload.bytes() + stats_len as u64 * 4 + HEADER_BYTES;
        let wire = wire_link::encoded_len(&upload, &policy)
            + FrameWriter::new(policy).known_mask_len(stats_len);
        self.pending = Some((round, upload));
        Ok((analytic, wire))
    }

    /// Serializes the staged upload (frames + BN-statistics frame) into
    /// `out` — the byte-exact payload the simulator stages in-process.
    /// Consumes the pending upload.
    ///
    /// # Errors
    /// [`TransportError::NoPendingUpload`] when no upload is staged for
    /// `round`.
    pub fn encode_granted(&mut self, round: u32, out: &mut Vec<u8>) -> Result<(), TransportError> {
        match self.pending.take() {
            Some((r, upload)) if r == round => {
                let policy = self.cfg.wire;
                let key = (u64::from(round) << 32) | self.id as u64;
                // A grant means this upload is kept: serialize it and
                // fold any lossy-codec residual into the client's own
                // error-compensation bank, exactly as the simulator's
                // driver does for kept uploads.
                let id = self.id;
                let compressor = &mut self.compressor;
                let _ = wire_link::encode_upload_with_feedback(
                    &upload,
                    round,
                    &policy,
                    derive_seed(self.cfg.seed, "wire-quant", key),
                    out,
                    &mut |ix, sent, shipped| compressor.fold_codec_error(id, ix, sent, shipped),
                );
                let _ = FrameWriter::new(policy).known_mask(
                    out,
                    round,
                    wire_link::rounding_for(
                        policy.codec,
                        derive_seed(self.cfg.seed, "wire-quant-stats", key),
                    ),
                    self.dim,
                    &self.stats_out,
                );
                self.scratch.reclaim_upload(upload);
                Ok(())
            }
            Some((_, stale)) => {
                self.scratch.reclaim_upload(stale);
                Err(TransportError::NoPendingUpload)
            }
            None => Err(TransportError::NoPendingUpload),
        }
    }

    /// Discards the staged upload after a negative grant (the client was
    /// over-committed out of the keep set).
    pub fn discard_pending(&mut self) {
        if let Some((_, upload)) = self.pending.take() {
            self.scratch.reclaim_upload(upload);
        }
    }
}

/// The client's pre-registered telemetry handles: per-kind byte
/// counters plus the hub for the Train/Encode phase spans.
struct ClientRecorder {
    hub: Arc<Telemetry>,
    /// Bytes sent to / received from the server, indexed by
    /// `MsgKind::id() - 1`.
    bytes_up: Vec<Counter>,
    bytes_down: Vec<Counter>,
}

impl ClientRecorder {
    fn new(hub: Arc<Telemetry>) -> Self {
        let dir_counters = |dir: &'static str| -> Vec<Counter> {
            MsgKind::ALL
                .iter()
                .map(|k| {
                    hub.counter(
                        "gluefl_client_bytes_total",
                        &[("dir", dir), ("frame", k.name())],
                    )
                })
                .collect()
        };
        Self {
            bytes_up: dir_counters("up"),
            bytes_down: dir_counters("down"),
            hub,
        }
    }

    fn sent(&self, kind: MsgKind, payload_len: usize) {
        self.bytes_up[kind.id() as usize - 1]
            .add((crate::proto::ENVELOPE_BYTES + payload_len) as u64);
    }

    fn received(&self, kind: MsgKind, payload_len: usize) {
        self.bytes_down[kind.id() as usize - 1]
            .add((crate::proto::ENVELOPE_BYTES + payload_len) as u64);
    }
}

/// Connects to `addr` and runs the full client protocol until the server
/// sends `FIN`: `HELLO` → `WELCOME`, then per round `INVITE` → `OFFER`,
/// and on a positive `GRANT` the upload bytes.
///
/// # Errors
/// Any socket or protocol failure; a clean `FIN` returns `Ok(())`.
pub fn run_client(addr: &str, cfg: SimConfig, id: usize) -> Result<(), TransportError> {
    run_client_traced(addr, cfg, id, None)
}

/// [`run_client`] with an optional telemetry hub: per-kind byte
/// counters (`gluefl_client_bytes_total{dir,frame}`), a
/// [`Phase::Train`] span around each invite's local training and
/// compression, and a [`Phase::Encode`] span around each granted
/// upload's serialization. `tel: None` is the zero-overhead path
/// [`run_client`] takes.
///
/// # Errors
/// Any socket or protocol failure; a clean `FIN` returns `Ok(())`.
pub fn run_client_traced(
    addr: &str,
    cfg: SimConfig,
    id: usize,
    tel: Option<Arc<Telemetry>>,
) -> Result<(), TransportError> {
    let tel = tel.map(ClientRecorder::new);
    let mut node = ClientNode::new(cfg, id);
    let mut stream = TcpStream::connect(addr).map_err(ProtoError::Io)?;
    stream.set_nodelay(true).map_err(ProtoError::Io)?;

    let mut hello = [0u8; 8];
    hello[..4].copy_from_slice(&PROTO_VERSION.to_le_bytes());
    hello[4..].copy_from_slice(&(u32::try_from(id).expect("id fits u32")).to_le_bytes());
    write_msg(&mut stream, MsgKind::Hello, 0, &hello)?;
    if let Some(t) = &tel {
        t.sent(MsgKind::Hello, hello.len());
    }

    let mut payload = Vec::new();
    let env = read_msg_blocking(&mut stream, &mut payload)?;
    if env.kind != MsgKind::Welcome {
        return Err(TransportError::UnexpectedMessage(env.kind));
    }
    if let Some(t) = &tel {
        t.received(MsgKind::Welcome, payload.len());
    }

    let mut out = Vec::new();
    loop {
        let env = read_msg_blocking(&mut stream, &mut payload)?;
        if let Some(t) = &tel {
            t.received(env.kind, payload.len());
        }
        match env.kind {
            MsgKind::Invite => {
                let span = tel.as_ref().map(|t| t.hub.span(Phase::Train, env.round));
                let (analytic, wire) = node.handle_invite(env.round, &payload)?;
                drop(span);
                let mut offer = [0u8; 16];
                offer[..8].copy_from_slice(&analytic.to_le_bytes());
                offer[8..].copy_from_slice(&wire.to_le_bytes());
                write_msg(&mut stream, MsgKind::Offer, env.round, &offer)?;
                if let Some(t) = &tel {
                    t.sent(MsgKind::Offer, offer.len());
                }
            }
            MsgKind::Grant => {
                if payload.first() == Some(&1) {
                    out.clear();
                    let span = tel.as_ref().map(|t| t.hub.span(Phase::Encode, env.round));
                    node.encode_granted(env.round, &mut out)?;
                    drop(span);
                    write_msg(&mut stream, MsgKind::Upload, env.round, &out)?;
                    if let Some(t) = &tel {
                        t.sent(MsgKind::Upload, out.len());
                    }
                } else {
                    node.discard_pending();
                }
            }
            MsgKind::Fin => {
                let _ = stream.flush();
                return Ok(());
            }
            other => return Err(TransportError::UnexpectedMessage(other)),
        }
    }
}
