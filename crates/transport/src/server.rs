//! The orchestrating server: a real-socket round loop that reproduces
//! [`gluefl_core::Simulation`] bit-exactly when every client behaves,
//! and completes every round (skipping the offender) when one does not.
//!
//! # Round protocol
//!
//! Per round the server:
//!
//! 1. plans invitations through the strategy's `OnlineQuery` seam
//!    (availability ∧ connection-alive);
//! 2. serializes the broadcast once (dense F32 model frame + the
//!    strategy's mask frame) and sends each invited client an `INVITE`
//!    carrying its group tag plus that cached frame pair;
//! 3. collects `OFFER`s — each client's predicted upload byte counts —
//!    under per-client deadlines derived from the *modeled* download and
//!    compute times ([`wall_deadline`]);
//! 4. keeps the fastest offers per group (the modeled times use the same
//!    [`fastest`] rule as the simulator) and `GRANT`s exactly the keep
//!    set — the over-committed remainder is told to discard, so its
//!    upload bytes never reach the decoder; a remainder client that
//!    uploads anyway has its payload drained and dropped unread;
//! 5. decodes each granted upload **as it arrives**
//!    ([`wire_link::decode_upload_with_stats`]) and folds it immediately
//!    through the [`StreamingAggregator`] — there is no
//!    collect-then-aggregate staging; a hostile or dead client is
//!    skipped (`gate.skip`) and the round completes without it;
//! 6. applies the masked update, averages BN statistics (Appendix D),
//!    evolves sticky state, and evaluates on schedule — all in the
//!    simulator's exact order, so the per-round [`RoundRecord`]s match
//!    the in-process run field for field.

use crate::proto::{read_msg, stall_ticks_for, write_msg, MsgKind, ProtoError, PROTO_VERSION};
use crate::TransportError;
use gluefl_core::strategies::{build_strategy, Group, Strategy, Upload};
use gluefl_core::stream::StreamingAggregator;
use gluefl_core::{
    wire_link, RoundRecord, ScratchPool, SimConfig, StalenessTracker, StrategyConfig,
};
use gluefl_data::SyntheticFlDataset;
use gluefl_net::timing::{fastest, seconds_for_bytes, wall_deadline, ClientRoundTime};
use gluefl_net::{LazyAvailability, LinkCache, SpeedCache};
use gluefl_telemetry::{Counter, Dir, EventKind, Telemetry};
use gluefl_tensor::rng::{derive_seed, seeded_rng};
use gluefl_wire::{Codec, Rounding};
use std::io;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Modeled upload time assigned to an invited client that never offered:
/// large enough to lose every [`fastest`] comparison, finite so the sort
/// never sees a NaN/∞ ordering panic.
const MISSING_OFFER_SECS: f64 = 1e30;

/// Transport-level knobs of the server (the training run itself is fully
/// described by the [`SimConfig`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Expected number of connecting clients; `HELLO` ids must be unique
    /// and below this.
    pub clients: usize,
    /// How long to wait for all clients to say `HELLO`.
    pub hello_timeout: Duration,
    /// Flat floor of every offer deadline.
    pub offer_timeout: Duration,
    /// Flat floor of every upload deadline.
    pub upload_timeout: Duration,
    /// Wall seconds of extra patience per *modeled* second
    /// ([`wall_deadline`]'s `scale`); 0 keeps deadlines flat — right for
    /// loopback, where modeled hours must not become real ones.
    pub secs_per_modeled_sec: f64,
    /// Grace budget for a connection that started a message and stopped
    /// making progress (slow-loris kill threshold).
    pub stall_grace: Duration,
    /// Socket read-timeout tick of the per-connection reader threads.
    pub read_tick: Duration,
    /// Telemetry hub the run reports into: per-round / per-connection
    /// journal events (offers granted, expired deadlines, mid-message
    /// stalls, skips and kills) and counters, including measured bytes
    /// up and down by envelope message kind. `None` (the default) skips
    /// every recording branch.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl ServerConfig {
    /// Defaults for a local run with `clients` participants.
    #[must_use]
    pub fn local(clients: usize) -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            clients,
            hello_timeout: Duration::from_secs(30),
            offer_timeout: Duration::from_secs(30),
            upload_timeout: Duration::from_secs(30),
            secs_per_modeled_sec: 0.0,
            stall_grace: Duration::from_secs(2),
            read_tick: Duration::from_millis(50),
            telemetry: None,
        }
    }
}

/// The server's pre-registered counter handles plus the hub, so the hot
/// round loop records through plain atomics — the registry mutex is
/// only touched at construction and on the rare decode-error path.
struct NetRecorder {
    hub: Arc<Telemetry>,
    offers_granted: Counter,
    offer_deadlines: Counter,
    upload_deadlines: Counter,
    stalls: Counter,
    skips: Counter,
    kills: Counter,
    /// Bytes received / sent, indexed by `MsgKind::id() - 1`.
    bytes_up: Vec<Counter>,
    bytes_down: Vec<Counter>,
}

impl NetRecorder {
    fn new(hub: Arc<Telemetry>) -> Self {
        let dir_counters = |dir: &'static str| -> Vec<Counter> {
            MsgKind::ALL
                .iter()
                .map(|k| {
                    hub.counter(
                        "gluefl_server_bytes_total",
                        &[("dir", dir), ("frame", k.name())],
                    )
                })
                .collect()
        };
        Self {
            offers_granted: hub.counter("gluefl_server_offers_granted_total", &[]),
            offer_deadlines: hub.counter(
                "gluefl_server_deadlines_expired_total",
                &[("phase", "offer")],
            ),
            upload_deadlines: hub.counter(
                "gluefl_server_deadlines_expired_total",
                &[("phase", "upload")],
            ),
            stalls: hub.counter("gluefl_server_stalls_total", &[]),
            skips: hub.counter("gluefl_server_uploads_skipped_total", &[]),
            kills: hub.counter("gluefl_server_clients_killed_total", &[]),
            bytes_up: dir_counters("up"),
            bytes_down: dir_counters("down"),
            hub,
        }
    }

    /// Records one sent message's measured bytes (envelope + payload).
    fn sent(&self, kind: MsgKind, payload_len: usize) {
        self.bytes_down[kind.id() as usize - 1]
            .add((crate::proto::ENVELOPE_BYTES + payload_len) as u64);
    }

    /// Records one received message's measured bytes, journaling the
    /// big ones (uploads) per client.
    fn received(&self, round: u32, id: usize, kind: MsgKind, payload_len: usize) {
        let bytes = (crate::proto::ENVELOPE_BYTES + payload_len) as u64;
        self.bytes_up[kind.id() as usize - 1].add(bytes);
        if kind == MsgKind::Upload {
            self.hub.event(
                round,
                id as i64,
                EventKind::Bytes {
                    dir: Dir::Up,
                    frame: kind.name(),
                    bytes,
                },
            );
        }
    }

    /// Inspects every reader event once, on receipt: byte accounting
    /// for complete messages, the stall counter for mid-message stalls.
    fn reader_event(&self, round: u32, id: usize, event: &ReaderEvent) {
        match event {
            ReaderEvent::Msg(env, payload) => self.received(round, id, env.kind, payload.len()),
            ReaderEvent::Failed(ProtoError::Stalled { .. }) => {
                self.stalls.inc();
                self.hub.event(round, id as i64, EventKind::Stall);
            }
            ReaderEvent::Closed | ReaderEvent::Failed(_) => {}
        }
    }

    fn skip(&self, round: u32, id: usize) {
        self.skips.inc();
        self.hub.event(round, id as i64, EventKind::UploadSkipped);
    }

    fn decode_error(&self, round: u32, id: usize, err: &gluefl_wire::WireError) {
        let kind = err.stat_name();
        self.hub
            .counter("gluefl_server_decode_errors_total", &[("kind", kind)])
            .inc();
        self.hub
            .event(round, id as i64, EventKind::DecodeError { kind });
    }
}

/// What a run produced: the per-round records (comparable with
/// `PartialEq` against a [`gluefl_core::Simulation`] run), plus
/// robustness counters.
#[derive(Debug)]
pub struct ServerReport {
    /// One record per round, field-for-field what the simulator emits.
    pub records: Vec<RoundRecord>,
    /// The strategy's display name.
    pub strategy: String,
    /// FNV-1a over the final global parameters' bit patterns
    /// ([`crate::fnv1a_f32_bits`]).
    pub final_params_fnv: u64,
    /// Kept uploads that were skipped (deadline, disconnect, or hostile
    /// bytes). 0 in a failure-free run.
    pub skipped_uploads: usize,
    /// Connections declared dead during the run.
    pub dead_clients: usize,
}

/// What a reader thread reports about its connection.
enum ReaderEvent {
    /// A complete message arrived.
    Msg(crate::proto::Envelope, Vec<u8>),
    /// The peer closed cleanly between messages.
    Closed,
    /// The connection failed (truncation, stall, garbage, socket error).
    /// The round loop treats every failure the same way (kill + skip);
    /// telemetry distinguishes mid-message stalls for the stall counter.
    Failed(ProtoError),
}

/// One registered client connection.
struct Conn {
    writer: TcpStream,
    reader: Option<JoinHandle<()>>,
}

/// Marks a connection dead: no further events are honored and the socket
/// is shut down so its reader thread unblocks and exits. The kill
/// counter and journal event fire on the same `alive` transition the
/// [`ServerReport::dead_clients`] count uses, so the two always agree.
fn kill(
    id: usize,
    alive: &mut [bool],
    conns: &[Option<Conn>],
    dead: &mut usize,
    tel: &Option<NetRecorder>,
    round: u32,
) {
    if alive[id] {
        alive[id] = false;
        *dead += 1;
        if let Some(t) = tel {
            t.kills.inc();
            t.hub.event(round, id as i64, EventKind::ClientKilled);
        }
        if let Some(conn) = &conns[id] {
            let _ = conn.writer.shutdown(Shutdown::Both);
        }
    }
}

/// A bound, not-yet-running server. [`Server::run`] executes the full
/// round loop and consumes it.
pub struct Server {
    listener: TcpListener,
    sim: SimConfig,
    net: ServerConfig,
}

impl Server {
    /// Binds the listen socket.
    ///
    /// # Errors
    /// Socket errors from bind.
    pub fn bind(sim: SimConfig, net: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&net.addr)?;
        Ok(Self { listener, sim, net })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Panics
    /// Panics if the socket cannot report its own address.
    #[must_use]
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.listener
            .local_addr()
            .expect("bound socket has an address")
    }

    /// Accepts all clients, runs every configured round, and reports.
    ///
    /// # Errors
    /// [`TransportError::HandshakeTimeout`] when fewer than the expected
    /// clients complete `HELLO` in time; socket errors from the
    /// listener. Per-connection failures after the handshake are *not*
    /// errors — the offender is skipped and the run completes.
    ///
    /// # Panics
    /// Panics only on internal invariant violations (a kept slot left
    /// unresolved), never on hostile input.
    #[allow(clippy::too_many_lines)]
    pub fn run(self) -> Result<ServerReport, TransportError> {
        let Server {
            listener,
            sim: cfg,
            net,
        } = self;
        let stall_ticks = stall_ticks_for(net.stall_grace, net.read_tick);
        let tel = net.telemetry.clone().map(NetRecorder::new);

        // --- Training state, mirroring Simulation::new exactly. ---
        let data =
            SyntheticFlDataset::generate(cfg.dataset.clone(), derive_seed(cfg.seed, "data", 0));
        let n = data.num_clients();
        let mut init_rng = seeded_rng(cfg.seed, "model-init", 0);
        let mut model = cfg
            .model
            .build(data.feature_dim(), data.classes(), &mut init_rng);
        let dim = model.num_params();
        let layout = model.layout();
        let trainable = layout.trainable_count();
        let trainable_mask = layout.trainable_mask();
        let stats_excluded = trainable_mask.not();
        let stats_positions: Vec<usize> = stats_excluded.iter_ones().collect();
        let stats_len = stats_positions.len();
        let mut strat_rng = seeded_rng(cfg.seed, "strategy", 0);
        let mut strategy = build_strategy(
            &cfg,
            data.client_weights(),
            trainable,
            dim,
            stats_excluded,
            &mut strat_rng,
        );
        let mut links = LinkCache::new(cfg.network, derive_seed(cfg.seed, "network", 0));
        let mut speeds = SpeedCache::new(cfg.device, derive_seed(cfg.seed, "devices", 0));
        let mut availability = cfg.availability.map(|a| {
            LazyAvailability::new(
                n,
                a.online_fraction,
                a.mean_session_rounds,
                derive_seed(cfg.seed, "availability", 0),
            )
        });
        let mut staleness = StalenessTracker::new(dim, n);
        let mut rng = seeded_rng(cfg.seed, "simulation", 0);
        let (time_byte_factor, time_params) = if cfg.paper_time_model {
            (
                cfg.model.paper_scale_factor(dim),
                cfg.model.reference_params as usize,
            )
        } else {
            (1.0, dim)
        };
        let mut scratch = ScratchPool::new();

        // --- Handshake phase. ---
        let (tx, rx) = mpsc::channel::<(usize, ReaderEvent)>();
        let mut conns: Vec<Option<Conn>> = (0..net.clients).map(|_| None).collect();
        let mut alive = vec![false; net.clients.max(n)];
        listener.set_nonblocking(true).map_err(ProtoError::Io)?;
        let hello_deadline = Instant::now() + net.hello_timeout;
        let mut connected = 0usize;
        while connected < net.clients && Instant::now() < hello_deadline {
            match listener.accept() {
                Ok((stream, _)) => {
                    if let Some(id) = handshake(
                        stream,
                        &net,
                        &alive,
                        u32::try_from(n).unwrap_or(u32::MAX),
                        cfg.rounds,
                        stall_ticks,
                        &tx,
                        &mut conns,
                        &tel,
                    ) {
                        alive[id] = true;
                        connected += 1;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(ProtoError::Io(e).into()),
            }
        }
        if connected < net.clients {
            return Err(TransportError::HandshakeTimeout {
                connected,
                expected: net.clients,
            });
        }

        let mut dead_clients = 0usize;
        let mut skipped_uploads = 0usize;

        // Round-scoped buffers.
        let mut records = Vec::with_capacity(cfg.rounds as usize);
        let mut invited: Vec<(usize, Group)> = Vec::new();
        let mut invited_ix = vec![usize::MAX; n];
        let mut bbuf: Vec<u8> = Vec::new();
        let mut invite_buf: Vec<u8> = Vec::new();
        let mut stats_saved: Vec<f32> = Vec::new();
        let mut changed: Vec<usize> = Vec::new();

        for round in 0..cfg.rounds {
            // --- Plan (strategy RNG + availability, alive-gated). ---
            let plan = {
                let alive = &alive;
                match &mut availability {
                    Some(av) => {
                        let mut query = |id: usize| alive[id] && av.is_online(id, round);
                        strategy.plan_round(round, &mut rng, &mut query)
                    }
                    None => {
                        let mut query = |id: usize| alive[id];
                        strategy.plan_round(round, &mut rng, &mut query)
                    }
                }
            };
            invited.clear();
            invited.extend(plan.invited());
            let mut rec = RoundRecord {
                round,
                invited: invited.len(),
                ..Default::default()
            };
            if invited.is_empty() {
                maybe_eval(&cfg, &data, &model, &mut scratch, round, &mut rec);
                records.push(rec);
                continue;
            }
            for (i, &(id, _)) in invited.iter().enumerate() {
                invited_ix[id] = i;
            }

            // --- Download accounting (every invited client syncs). ---
            let mask_bytes = strategy.mask_download_bytes(round);
            let download_bytes: Vec<u64> = invited
                .iter()
                .map(|&(id, _)| staleness.download_bytes(id) + mask_bytes)
                .collect();
            for &(id, _) in &invited {
                staleness.mark_synced(id);
            }
            rec.down_bytes = download_bytes.iter().sum();

            // --- Serialize the broadcast once; INVITE every client. ---
            // Model weights always travel at full F32 precision; the mask
            // frame may take the RLE layout when the policy admits it —
            // mirroring the simulator's `measure_broadcast`.
            let broadcast_writer = gluefl_wire::FrameWriter::new(gluefl_wire::WirePolicy {
                codec: Codec::F32,
                ..cfg.wire
            });
            bbuf.clear();
            let _ = broadcast_writer.dense(&mut bbuf, round, Rounding::Nearest, model.params());
            if let Some(mask) = strategy.round_mask(round) {
                let _ = broadcast_writer.mask(&mut bbuf, round, mask);
            }
            rec.wire_broadcast_bytes = bbuf.len() as u64;
            for &(id, group) in &invited {
                if !alive[id] {
                    continue;
                }
                invite_buf.clear();
                invite_buf.push(u8::from(group == Group::Sticky));
                invite_buf.extend_from_slice(&bbuf);
                let conn = conns[id].as_mut().expect("alive client has a connection");
                if write_msg(&mut conn.writer, MsgKind::Invite, round, &invite_buf).is_err() {
                    kill(id, &mut alive, &conns, &mut dead_clients, &tel, round);
                } else if let Some(t) = &tel {
                    t.sent(MsgKind::Invite, invite_buf.len());
                }
            }

            // --- Offer phase: per-client deadlines from modeled times. ---
            let phase_start = Instant::now();
            let mut times: Vec<ClientRoundTime> = Vec::with_capacity(invited.len());
            let mut deadlines: Vec<Instant> = Vec::with_capacity(invited.len());
            for (i, &(id, _)) in invited.iter().enumerate() {
                let link = links.get(id);
                let t_down = (download_bytes[i] as f64 * time_byte_factor) as u64;
                let download_secs = seconds_for_bytes(t_down, link.down_mbps);
                let compute_secs =
                    cfg.local_steps as f64 * cfg.device.step_seconds(time_params, speeds.get(id));
                times.push(ClientRoundTime {
                    download_secs,
                    compute_secs,
                    upload_secs: MISSING_OFFER_SECS,
                });
                deadlines.push(
                    phase_start
                        + wall_deadline(
                            download_secs + compute_secs,
                            net.offer_timeout,
                            net.secs_per_modeled_sec,
                        ),
                );
            }
            let mut offers: Vec<Option<(u64, u64)>> = vec![None; invited.len()];
            let mut resolved: Vec<bool> = invited.iter().map(|&(id, _)| !alive[id]).collect();
            let mut pending = resolved.iter().filter(|&&r| !r).count();
            while pending > 0 {
                let now = Instant::now();
                for i in 0..invited.len() {
                    if !resolved[i] && now >= deadlines[i] {
                        resolved[i] = true;
                        pending -= 1;
                        if let Some(t) = &tel {
                            t.offer_deadlines.inc();
                            t.hub.event(
                                round,
                                invited[i].0 as i64,
                                EventKind::DeadlineExpired { which: "offer" },
                            );
                        }
                        kill(
                            invited[i].0,
                            &mut alive,
                            &conns,
                            &mut dead_clients,
                            &tel,
                            round,
                        );
                    }
                }
                if pending == 0 {
                    break;
                }
                let next = deadlines
                    .iter()
                    .zip(resolved.iter())
                    .filter(|&(_, &r)| !r)
                    .map(|(d, _)| *d)
                    .min()
                    .expect("pending > 0 implies an unresolved deadline");
                let timeout = next
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1));
                let (id, event) = match rx.recv_timeout(timeout) {
                    Ok(pair) => pair,
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                };
                if let Some(t) = &tel {
                    t.reader_event(round, id, &event);
                }
                if !alive[id] {
                    continue;
                }
                let ix = if id < n { invited_ix[id] } else { usize::MAX };
                match event {
                    ReaderEvent::Msg(env, payload)
                        if env.kind == MsgKind::Offer
                            && env.round == round
                            && ix != usize::MAX
                            && !resolved[ix]
                            && payload.len() == 16 =>
                    {
                        let analytic = u64::from_le_bytes(payload[..8].try_into().expect("8 B"));
                        let wire = u64::from_le_bytes(payload[8..16].try_into().expect("8 B"));
                        offers[ix] = Some((analytic, wire));
                        resolved[ix] = true;
                        pending -= 1;
                    }
                    _ => {
                        // Closed, failed, or a protocol violation.
                        kill(id, &mut alive, &conns, &mut dead_clients, &tel, round);
                        if ix != usize::MAX && !resolved[ix] {
                            resolved[ix] = true;
                            pending -= 1;
                        }
                    }
                }
            }

            // --- Price offers; account volume; finish modeled times. ---
            for (i, &(id, _)) in invited.iter().enumerate() {
                if let Some((analytic, wire)) = offers[i] {
                    rec.up_bytes += analytic;
                    rec.wire_up_bytes += wire;
                    let link = links.get(id);
                    let t_up = (wire as f64 * time_byte_factor) as u64;
                    times[i].upload_secs = seconds_for_bytes(t_up, link.up_mbps);
                }
            }

            // --- Keep the fastest per group (over-commitment, §5.6). ---
            let sticky_n = plan.sticky_invites.len();
            let (sticky_times, fresh_times) = times.split_at(sticky_n);
            let kept_sticky_local = fastest(sticky_times, plan.keep_sticky);
            let kept_fresh_local = fastest(fresh_times, plan.keep_fresh);
            let kept_idx: Vec<usize> = kept_sticky_local
                .iter()
                .copied()
                .chain(kept_fresh_local.iter().map(|&i| i + sticky_n))
                .collect();
            rec.kept = kept_idx.len();
            let mut kept_slot = vec![usize::MAX; invited.len()];
            for (j, &i) in kept_idx.iter().enumerate() {
                kept_slot[i] = j;
            }

            // --- GRANT the keep set; dismiss the remainder. ---
            for (i, &(id, _)) in invited.iter().enumerate() {
                if !alive[id] || offers[i].is_none() {
                    continue;
                }
                let conn = conns[id].as_mut().expect("alive client has a connection");
                let granted = [u8::from(kept_slot[i] != usize::MAX)];
                if write_msg(&mut conn.writer, MsgKind::Grant, round, &granted).is_err() {
                    kill(id, &mut alive, &conns, &mut dead_clients, &tel, round);
                } else if let Some(t) = &tel {
                    t.sent(MsgKind::Grant, granted.len());
                    if granted[0] == 1 {
                        t.offers_granted.inc();
                        t.hub.event(round, id as i64, EventKind::OfferGranted);
                    }
                }
            }

            // --- Upload phase: decode + fold each arrival immediately. ---
            let kept_pairs: Vec<(usize, Group)> = kept_idx.iter().map(|&i| invited[i]).collect();
            let mut gate =
                StreamingAggregator::begin(round, &kept_pairs, &mut *strategy, &mut scratch);
            stats_saved.clear();
            stats_saved.resize(kept_idx.len() * stats_len, 0.0);
            let mut delivered = vec![false; kept_idx.len()];
            let mut up_resolved = vec![false; kept_idx.len()];
            let phase_start = Instant::now();
            let mut up_deadlines: Vec<Instant> = Vec::with_capacity(kept_idx.len());
            let mut pending = 0usize;
            for (j, &i) in kept_idx.iter().enumerate() {
                let (id, _) = invited[i];
                up_deadlines.push(
                    phase_start
                        + wall_deadline(
                            times[i].upload_secs,
                            net.upload_timeout,
                            net.secs_per_modeled_sec,
                        ),
                );
                if alive[id] && offers[i].is_some() {
                    pending += 1;
                } else {
                    let _ = gate.skip(&mut *strategy, id, &mut scratch);
                    skipped_uploads += 1;
                    if let Some(t) = &tel {
                        t.skip(round, id);
                    }
                    up_resolved[j] = true;
                }
            }
            while pending > 0 {
                let now = Instant::now();
                for j in 0..kept_idx.len() {
                    if !up_resolved[j] && now >= up_deadlines[j] {
                        up_resolved[j] = true;
                        pending -= 1;
                        let id = invited[kept_idx[j]].0;
                        let _ = gate.skip(&mut *strategy, id, &mut scratch);
                        skipped_uploads += 1;
                        if let Some(t) = &tel {
                            t.upload_deadlines.inc();
                            t.hub.event(
                                round,
                                id as i64,
                                EventKind::DeadlineExpired { which: "upload" },
                            );
                            t.skip(round, id);
                        }
                        kill(id, &mut alive, &conns, &mut dead_clients, &tel, round);
                    }
                }
                if pending == 0 {
                    break;
                }
                let next = up_deadlines
                    .iter()
                    .zip(up_resolved.iter())
                    .filter(|&(_, &r)| !r)
                    .map(|(d, _)| *d)
                    .min()
                    .expect("pending > 0 implies an unresolved deadline");
                let timeout = next
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1));
                let (id, event) = match rx.recv_timeout(timeout) {
                    Ok(pair) => pair,
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                };
                if let Some(t) = &tel {
                    t.reader_event(round, id, &event);
                }
                if !alive[id] {
                    continue;
                }
                let ix = if id < n { invited_ix[id] } else { usize::MAX };
                let slot = if ix == usize::MAX {
                    usize::MAX
                } else {
                    kept_slot[ix]
                };
                match event {
                    ReaderEvent::Msg(env, payload)
                        if env.kind == MsgKind::Upload && env.round == round =>
                    {
                        if slot == usize::MAX {
                            // The over-committed remainder (or an
                            // uninvited peer) sent bytes anyway: the
                            // reader already drained them off the socket;
                            // drop the payload without decoding a byte.
                            drop(payload);
                            continue;
                        }
                        if up_resolved[slot] {
                            // Duplicate upload: protocol violation.
                            kill(id, &mut alive, &conns, &mut dead_clients, &tel, round);
                            continue;
                        }
                        let ok = accept_upload(
                            &payload,
                            round,
                            &cfg.strategy,
                            &mut *strategy,
                            &mut gate,
                            &mut scratch,
                            id,
                            dim,
                            stats_len,
                            &mut stats_saved[slot * stats_len..(slot + 1) * stats_len],
                            &tel,
                        );
                        if ok {
                            delivered[slot] = true;
                        } else {
                            let _ = gate.skip(&mut *strategy, id, &mut scratch);
                            skipped_uploads += 1;
                            if let Some(t) = &tel {
                                t.skip(round, id);
                            }
                            kill(id, &mut alive, &conns, &mut dead_clients, &tel, round);
                        }
                        up_resolved[slot] = true;
                        pending -= 1;
                    }
                    _ => {
                        kill(id, &mut alive, &conns, &mut dead_clients, &tel, round);
                        if slot != usize::MAX && !up_resolved[slot] {
                            let _ = gate.skip(&mut *strategy, id, &mut scratch);
                            skipped_uploads += 1;
                            if let Some(t) = &tel {
                                t.skip(round, id);
                            }
                            up_resolved[slot] = true;
                            pending -= 1;
                        }
                    }
                }
            }
            assert!(gate.complete(), "every kept slot must be resolved");
            let update = gate.finish(&mut *strategy, &mut scratch);

            // --- Apply the masked update; scan changed positions. ---
            update.add_to(model.params_mut());
            changed.clear();
            update.for_each_nonzero(|j, _| {
                debug_assert!(
                    stats_positions.binary_search(&j).is_err(),
                    "strategy update has a nonzero value at BN-statistic position {j}"
                );
                changed.push(j);
            });

            // --- BN statistics: plain mean over delivered stats frames
            // (identical to the simulator's 1/K mean when none skipped). ---
            let delivered_count = delivered.iter().filter(|&&d| d).count();
            if delivered_count > 0 {
                let inv_k = 1.0 / delivered_count as f32;
                let params = model.params_mut();
                for (j, &p) in stats_positions.iter().enumerate() {
                    let mean: f32 = (0..kept_idx.len())
                        .filter(|&kj| delivered[kj])
                        .map(|kj| stats_saved[kj * stats_len + j])
                        .sum::<f32>()
                        * inv_k;
                    params[p] += mean;
                    if mean != 0.0 {
                        changed.push(p);
                    }
                }
            }
            rec.changed_positions = changed.len();
            staleness.record_update(changed.iter().copied());
            scratch.put_update(update);

            // --- Post-round bookkeeping (sticky rebalance). ---
            let kept_sticky_ids: Vec<usize> =
                kept_sticky_local.iter().map(|&i| invited[i].0).collect();
            let kept_fresh_ids: Vec<usize> = kept_fresh_local
                .iter()
                .map(|&i| invited[i + sticky_n].0)
                .collect();
            strategy.finish_round(round, &mut rng, &kept_sticky_ids, &kept_fresh_ids);

            // --- Timing metrics over kept clients. ---
            let kept_times: Vec<ClientRoundTime> = kept_idx.iter().map(|&i| times[i]).collect();
            rec.round_secs = kept_times
                .iter()
                .map(ClientRoundTime::total_secs)
                .fold(0.0, f64::max);
            rec.slowest_download_secs = kept_times
                .iter()
                .map(|t| t.download_secs)
                .fold(0.0, f64::max);
            rec.slowest_upload_secs = kept_times.iter().map(|t| t.upload_secs).fold(0.0, f64::max);
            rec.slowest_compute_secs = kept_times
                .iter()
                .map(|t| t.compute_secs)
                .fold(0.0, f64::max);
            let kn = kept_times.len().max(1) as f64;
            rec.mean_download_secs = kept_times.iter().map(|t| t.download_secs).sum::<f64>() / kn;
            rec.mean_upload_secs = kept_times.iter().map(|t| t.upload_secs).sum::<f64>() / kn;
            rec.mean_compute_secs = kept_times.iter().map(|t| t.compute_secs).sum::<f64>() / kn;

            maybe_eval(&cfg, &data, &model, &mut scratch, round, &mut rec);
            records.push(rec);
            if let Some(t) = &tel {
                t.hub.event(
                    round,
                    -1,
                    EventKind::RoundDone {
                        kept: u32::try_from(delivered_count).unwrap_or(u32::MAX),
                    },
                );
            }

            // Reset the invited-index map for the next round.
            for &(id, _) in &invited {
                invited_ix[id] = usize::MAX;
            }
        }

        // --- FIN + teardown. ---
        for (id, conn) in conns.iter_mut().enumerate() {
            if let Some(conn) = conn {
                if alive[id] && write_msg(&mut conn.writer, MsgKind::Fin, cfg.rounds, &[]).is_ok() {
                    if let Some(t) = &tel {
                        t.sent(MsgKind::Fin, 0);
                    }
                }
                let _ = conn.writer.shutdown(Shutdown::Both);
            }
        }
        drop(rx);
        for conn in conns.iter_mut().flatten() {
            if let Some(handle) = conn.reader.take() {
                let _ = handle.join();
            }
        }

        Ok(ServerReport {
            records,
            strategy: strategy.name(),
            final_params_fnv: crate::fnv1a_f32_bits(model.params()),
            skipped_uploads,
            dead_clients,
        })
    }
}

/// Validates and completes one `HELLO` handshake; returns the client id
/// on success, `None` (connection dropped) otherwise.
#[allow(clippy::too_many_arguments)]
fn handshake(
    mut stream: TcpStream,
    net: &ServerConfig,
    alive: &[bool],
    population: u32,
    rounds: u32,
    stall_ticks: u32,
    tx: &mpsc::Sender<(usize, ReaderEvent)>,
    conns: &mut [Option<Conn>],
    tel: &Option<NetRecorder>,
) -> Option<usize> {
    stream.set_nodelay(true).ok()?;
    stream.set_read_timeout(Some(net.read_tick)).ok()?;
    let mut payload = Vec::new();
    let env = read_msg(&mut stream, &mut payload, false, stall_ticks).ok()??;
    if env.kind != MsgKind::Hello || payload.len() != 8 {
        return None;
    }
    let version = u32::from_le_bytes(payload[..4].try_into().expect("4 B"));
    let id = u32::from_le_bytes(payload[4..].try_into().expect("4 B")) as usize;
    if version != PROTO_VERSION || id >= net.clients || alive[id] {
        return None;
    }
    if let Some(t) = tel {
        t.received(0, id, MsgKind::Hello, payload.len());
    }
    let mut welcome = [0u8; 8];
    welcome[..4].copy_from_slice(&population.to_le_bytes());
    welcome[4..].copy_from_slice(&rounds.to_le_bytes());
    write_msg(&mut stream, MsgKind::Welcome, 0, &welcome).ok()?;
    if let Some(t) = tel {
        t.sent(MsgKind::Welcome, welcome.len());
    }
    let mut reader_stream = stream.try_clone().ok()?;
    let reader_tx = tx.clone();
    let reader = std::thread::spawn(move || {
        let mut payload = Vec::new();
        loop {
            match read_msg(&mut reader_stream, &mut payload, true, stall_ticks) {
                Ok(Some(env)) => {
                    let body = std::mem::take(&mut payload);
                    if reader_tx.send((id, ReaderEvent::Msg(env, body))).is_err() {
                        return; // server gone
                    }
                }
                Ok(None) => {
                    let _ = reader_tx.send((id, ReaderEvent::Closed));
                    return;
                }
                Err(e) => {
                    let _ = reader_tx.send((id, ReaderEvent::Failed(e)));
                    return;
                }
            }
        }
    });
    conns[id] = Some(Conn {
        writer: stream,
        reader: Some(reader),
    });
    Some(id)
}

/// Decodes, validates, and folds one upload payload. Returns `false`
/// (without panicking) for anything hostile: wire errors, a variant the
/// strategy would reject, misaligned dimensions, unsorted or
/// out-of-range indices, or a stats frame that disagrees with the model
/// layout.
#[allow(clippy::too_many_arguments)]
fn accept_upload(
    payload: &[u8],
    round: u32,
    strategy_cfg: &StrategyConfig,
    strategy: &mut dyn Strategy,
    gate: &mut StreamingAggregator,
    scratch: &mut ScratchPool,
    id: usize,
    dim: usize,
    stats_len: usize,
    stats_out: &mut [f32],
    tel: &Option<NetRecorder>,
) -> bool {
    let decoded = wire_link::decode_upload_with_stats(payload, strategy.round_mask(round), scratch);
    let (upload, stats_frame) = match decoded {
        Ok(pair) => pair,
        Err(e) => {
            if let Some(t) = tel {
                t.decode_error(round, id, &e);
            }
            return false;
        }
    };
    let sane = upload_matches(strategy_cfg, &upload)
        && upload.dim() == dim
        && upload_indices_ok(&upload, dim)
        && stats_frame.dim == dim
        && stats_frame.nnz == stats_len;
    if !sane {
        // The frames decoded but the receiver can't use them: fold the
        // rejection into the same typed-error table the wire layer uses.
        if let Some(t) = tel {
            let e = if upload.dim() != dim || stats_frame.dim != dim {
                gluefl_wire::WireError::DimMismatch {
                    declared: if upload.dim() != dim {
                        upload.dim()
                    } else {
                        stats_frame.dim
                    },
                    expected: dim,
                }
            } else {
                gluefl_wire::WireError::UnexpectedKind(0)
            };
            gluefl_wire::stats::record_decode_error(&e);
            t.decode_error(round, id, &e);
        }
        scratch.reclaim_upload(upload);
        return false;
    }
    let mut stats_back = scratch.take_cleared();
    stats_frame.values_into(&mut stats_back);
    stats_out.copy_from_slice(&stats_back);
    scratch.put(stats_back);
    gate.accept(strategy, id, upload, scratch).is_ok()
}

/// Whether the upload variant is the one the configured strategy's fold
/// path accepts (anything else would panic inside the fold).
fn upload_matches(strategy_cfg: &StrategyConfig, upload: &Upload) -> bool {
    matches!(
        (strategy_cfg, upload),
        (
            StrategyConfig::FedAvg | StrategyConfig::MdFedAvg,
            Upload::Dense(_)
        ) | (StrategyConfig::Stc { .. }, Upload::Sparse(_))
            | (StrategyConfig::StcQuantized { .. }, Upload::Ternary(_))
            | (StrategyConfig::Apf { .. }, Upload::KnownMask(_))
            | (StrategyConfig::GlueFl(_), Upload::MaskSplit(_))
    )
}

/// Explicit-position index lists must be strictly increasing and within
/// the model dimension (the accumulation kernels index with them).
fn indices_ok(indices: &[u32], dim: usize) -> bool {
    indices.windows(2).all(|w| w[0] < w[1])
        && indices.last().is_none_or(|&last| (last as usize) < dim)
}

/// Validates every explicit index list inside an upload.
fn upload_indices_ok(upload: &Upload, dim: usize) -> bool {
    match upload {
        Upload::Dense(_) | Upload::KnownMask(_) => true,
        Upload::Sparse(u) => indices_ok(u.indices(), dim),
        Upload::Ternary(t) => indices_ok(&t.indices, dim),
        Upload::MaskSplit(s) => indices_ok(s.unique.indices(), dim),
    }
}

/// Shared tail of the round loop: evaluate on schedule, exactly like the
/// simulator.
fn maybe_eval(
    cfg: &SimConfig,
    data: &SyntheticFlDataset,
    model: &gluefl_ml::Mlp,
    scratch: &mut ScratchPool,
    round: u32,
    rec: &mut RoundRecord,
) {
    let every = cfg.eval_every.max(1);
    if (round + 1).is_multiple_of(every) || round + 1 == cfg.rounds {
        let mut slot = scratch.take_train_slot();
        let (tx, ty) = data.test_set();
        let m = model.evaluate_into(tx, ty, &mut slot.scratch);
        scratch.put_train_slot(slot);
        rec.accuracy = Some(if cfg.use_top5 { m.top5 } else { m.top1 });
        rec.loss = Some(m.loss);
    }
}
