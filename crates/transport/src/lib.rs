//! Real-socket federated rounds: a TCP server/client pair speaking
//! `gluefl-wire` frames, reproducing the in-process simulator bit-exactly.
//!
//! # Framing
//!
//! Every message on the wire is a 10-byte [`proto`] envelope —
//! `[magic][kind][round u32][len u32]`, all little-endian — followed by
//! `len` payload bytes. Model, mask, upload, and BN-statistic payloads
//! are standard checksummed `gluefl-wire` frames, so corruption anywhere
//! in a payload surfaces as a typed [`gluefl_wire::WireError`], never as
//! a panic. The message sequence per connection is
//!
//! ```text
//! client:  HELLO ─────────────► server
//! client:  ◄───────────WELCOME  server
//! repeat per round (only when invited):
//! client:  ◄──────────── INVITE server   group tag + model/mask frames
//! client:  OFFER ─────────────► server   predicted upload byte counts
//! client:  ◄───────────── GRANT server   1 = send, 0 = discard
//! client:  UPLOAD ────────────► server   only when granted
//! finally: ◄─────────────── FIN server
//! ```
//!
//! # Deadline state machine
//!
//! The server never blocks indefinitely on a client. Each phase arms a
//! per-client wall-clock deadline via [`gluefl_net::timing::wall_deadline`]:
//! a flat floor plus the client's *modeled* phase time scaled by
//! `secs_per_modeled_sec`. Within a message, a connection that stops
//! making byte progress for longer than the stall grace is cut off
//! (slow-loris defense); between messages a connection may idle forever.
//! A client that misses a deadline, disconnects, or sends hostile bytes
//! is skipped — the streaming aggregator folds whoever remains and the
//! round always completes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{run_client, run_client_traced, ClientNode};
pub use proto::{MsgKind, ProtoError, ENVELOPE_BYTES, PROTO_MAGIC, PROTO_VERSION};
pub use server::{Server, ServerConfig, ServerReport};

use gluefl_core::SimConfig;
use gluefl_wire::WireError;

/// Everything that can go wrong on a transport endpoint.
#[derive(Debug)]
pub enum TransportError {
    /// Envelope-level failure (socket error, bad magic, truncation, stall).
    Proto(ProtoError),
    /// A payload's wire frames failed to decode.
    Wire(WireError),
    /// A message kind arrived that the state machine does not expect here.
    UnexpectedMessage(MsgKind),
    /// An `INVITE` payload was empty (missing its group tag).
    EmptyInvite,
    /// An `INVITE` group tag was neither 0 (fresh) nor 1 (sticky).
    BadGroup(u8),
    /// The broadcast frames were not the dense model (+ optional mask)
    /// this client expects.
    BadBroadcast,
    /// The strategy requires a broadcast mask but the `INVITE` carried none.
    MissingBroadcastMask,
    /// A `GRANT` arrived for a round with no staged upload.
    NoPendingUpload,
    /// Fewer clients than expected completed `HELLO` in time.
    HandshakeTimeout {
        /// Clients that finished the handshake.
        connected: usize,
        /// Clients the server was configured to wait for.
        expected: usize,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Proto(e) => write!(f, "protocol error: {e}"),
            Self::Wire(e) => write!(f, "wire error: {e}"),
            Self::UnexpectedMessage(kind) => write!(f, "unexpected message kind {kind:?}"),
            Self::EmptyInvite => write!(f, "INVITE payload is empty"),
            Self::BadGroup(g) => write!(f, "INVITE group tag {g} is neither fresh nor sticky"),
            Self::BadBroadcast => write!(f, "broadcast frames do not match the model"),
            Self::MissingBroadcastMask => write!(f, "strategy requires a mask frame; none sent"),
            Self::NoPendingUpload => write!(f, "GRANT for a round with no staged upload"),
            Self::HandshakeTimeout {
                connected,
                expected,
            } => {
                write!(f, "only {connected}/{expected} clients completed HELLO")
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Proto(e) => Some(e),
            Self::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtoError> for TransportError {
    fn from(e: ProtoError) -> Self {
        Self::Proto(e)
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// FNV-1a over the little-endian bit patterns of a parameter vector —
/// a compact fingerprint for "same model, bit for bit" assertions
/// across processes.
#[must_use]
pub fn fnv1a_f32_bits(values: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// A small, fast [`SimConfig`] for transport smoke tests and the CLI
/// binaries: `clients` participants, keep-4 rounds with 1.25×
/// over-commitment, tiny model/dataset, no availability churn (every
/// configured client must actually connect), eval on the final round.
///
/// `strategy_name` is one of `fedavg`, `md`, `stc`, `stc-quant`, `apf`,
/// `gluefl`.
///
/// # Panics
/// Panics on an unknown strategy name.
#[must_use]
pub fn smoke_config(strategy_name: &str, clients: usize, rounds: u32, seed: u64) -> SimConfig {
    use gluefl_core::{GlueFlParams, StrategyConfig};
    let strategy = match strategy_name {
        "fedavg" => StrategyConfig::FedAvg,
        "md" => StrategyConfig::MdFedAvg,
        "stc" => StrategyConfig::Stc { q: 0.25 },
        "stc-quant" => StrategyConfig::StcQuantized { q: 0.25 },
        "apf" => StrategyConfig::Apf {
            config: gluefl_compress::ApfConfig::default(),
        },
        "gluefl" => StrategyConfig::GlueFl(GlueFlParams {
            q: 0.25,
            q_shr: 0.2,
            sticky_group: 6,
            sticky_draw: 3,
            regen_interval: Some(3),
            compensation: gluefl_compress::CompensationMode::Rescaled,
            equal_weights: false,
        }),
        other => panic!("unknown strategy {other:?}"),
    };
    let mut cfg = SimConfig::paper_setup(
        gluefl_data::DatasetProfile::Femnist,
        gluefl_ml::DatasetModel::ShuffleNet,
        strategy,
        0.02,
        rounds,
        seed,
    );
    cfg.dataset.clients = clients;
    cfg.dataset.feature_dim = 12;
    cfg.dataset.classes = 8;
    cfg.dataset.test_samples = 128;
    cfg.model.hidden = vec![16];
    cfg.round_size = 4;
    cfg.oc = 1.25;
    cfg.local_steps = 2;
    cfg.batch_size = 8;
    cfg.availability = None;
    cfg.eval_every = rounds;
    cfg
}
