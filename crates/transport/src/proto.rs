//! The transport envelope: message framing on top of TCP.
//!
//! Every message is a 10-byte envelope header followed by `len` payload
//! bytes:
//!
//! ```text
//! [magic 0x9B] [kind u8] [round u32 LE] [len u32 LE] [payload ...]
//! ```
//!
//! Payloads are opaque to this layer. `INVITE` and `UPLOAD` payloads are
//! [`gluefl_wire`] frames (which carry their own checksums); the small
//! control payloads (`HELLO`, `OFFER`, `GRANT`, `WELCOME`) are fixed-size
//! little-endian structs documented on [`MsgKind`].
//!
//! # Reading under hostility
//!
//! [`read_exact_classified`] distinguishes the three ways a read can fail
//! to complete, because a server must react differently to each:
//!
//! - **idle** — a quiet connection that has sent *no* byte of the next
//!   envelope. Legitimate: an un-invited client says nothing for whole
//!   rounds. The reader keeps waiting.
//! - **stalled** — bytes of a message arrived and then progress stopped
//!   for longer than the grace budget (a slow-loris partial header, a
//!   disconnect-without-FIN mid-payload). The connection is declared
//!   failed; the round completes without it.
//! - **EOF** — the peer closed. Clean between messages, a truncation
//!   error inside one.

use std::io::{self, Read, Write};
use std::time::Duration;

/// Envelope magic byte (distinct from the wire-frame magic).
pub const PROTO_MAGIC: u8 = 0x9B;
/// Protocol version carried in `HELLO`.
pub const PROTO_VERSION: u32 = 1;
/// Envelope header length in bytes.
pub const ENVELOPE_BYTES: usize = 10;
/// Upper bound on a payload length; larger declared lengths are rejected
/// before any allocation, so a hostile header cannot balloon memory.
pub const MAX_PAYLOAD: u32 = 1 << 28;

/// Message kinds, with their payload layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// Client → server, once per connection:
    /// `[proto_version u32 LE][client_id u32 LE]`.
    Hello,
    /// Server → client, accepting a `HELLO`:
    /// `[population u32 LE][rounds u32 LE]`.
    Welcome,
    /// Server → client, inviting the client into the envelope's round:
    /// `[group u8]` (0 = fresh, 1 = sticky) followed by the broadcast —
    /// one dense F32 model frame plus the strategy's mask frame, if any.
    Invite,
    /// Client → server, pricing the trained upload before sending it:
    /// `[analytic_bytes u64 LE][wire_bytes u64 LE]`.
    Offer,
    /// Server → client, the keep decision: `[granted u8]` (1 = send the
    /// upload, 0 = discard it — the over-committed remainder).
    Grant,
    /// Client → server: the upload frames followed by the BN-statistics
    /// known-mask frame — exactly the payload
    /// [`gluefl_core::wire_link::decode_upload_with_stats`] parses.
    Upload,
    /// Server → client: the run is over; close the connection.
    Fin,
}

impl MsgKind {
    /// Every kind, in wire-id order — iterated when pre-registering one
    /// byte counter per message kind.
    pub const ALL: [MsgKind; 7] = [
        MsgKind::Hello,
        MsgKind::Welcome,
        MsgKind::Invite,
        MsgKind::Offer,
        MsgKind::Grant,
        MsgKind::Upload,
        MsgKind::Fin,
    ];

    /// A stable snake_case name, used as the metric label value in
    /// exported per-message byte counters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::Hello => "hello",
            MsgKind::Welcome => "welcome",
            MsgKind::Invite => "invite",
            MsgKind::Offer => "offer",
            MsgKind::Grant => "grant",
            MsgKind::Upload => "upload",
            MsgKind::Fin => "fin",
        }
    }

    /// Wire id of the kind.
    #[must_use]
    pub fn id(self) -> u8 {
        match self {
            MsgKind::Hello => 1,
            MsgKind::Welcome => 2,
            MsgKind::Invite => 3,
            MsgKind::Offer => 4,
            MsgKind::Grant => 5,
            MsgKind::Upload => 6,
            MsgKind::Fin => 7,
        }
    }

    /// Parses a wire id.
    #[must_use]
    pub fn from_id(id: u8) -> Option<Self> {
        Some(match id {
            1 => MsgKind::Hello,
            2 => MsgKind::Welcome,
            3 => MsgKind::Invite,
            4 => MsgKind::Offer,
            5 => MsgKind::Grant,
            6 => MsgKind::Upload,
            7 => MsgKind::Fin,
            _ => return None,
        })
    }
}

/// A parsed envelope header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Message kind.
    pub kind: MsgKind,
    /// Round the message belongs to (0 for connection-setup messages).
    pub round: u32,
    /// Payload length in bytes.
    pub len: u32,
}

/// A typed envelope-layer failure.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying socket error (other than timeouts, which are
    /// classified into [`ProtoError::Stalled`] or an idle outcome).
    Io(io::Error),
    /// First envelope byte was not [`PROTO_MAGIC`].
    BadMagic(u8),
    /// Unknown message-kind id.
    BadKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Declared length.
        len: u32,
    },
    /// The peer closed mid-message.
    Truncated {
        /// Bytes received of the current unit.
        got: usize,
        /// Bytes the unit needed.
        needed: usize,
    },
    /// Bytes of a message arrived, then progress stopped past the grace
    /// budget (slow-loris / silent death mid-message).
    Stalled {
        /// Bytes received of the current unit.
        got: usize,
        /// Bytes the unit needed.
        needed: usize,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::BadMagic(b) => write!(f, "bad envelope magic 0x{b:02X}"),
            Self::BadKind(k) => write!(f, "unknown message kind {k}"),
            Self::Oversized { len } => {
                write!(f, "declared payload {len} exceeds cap {MAX_PAYLOAD}")
            }
            Self::Truncated { got, needed } => {
                write!(f, "peer closed mid-message ({got}/{needed} bytes)")
            }
            Self::Stalled { got, needed } => {
                write!(f, "peer stalled mid-message ({got}/{needed} bytes)")
            }
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// How a classified exact-read ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// Clean EOF before any byte of the unit (only when `allow_idle`).
    Eof,
}

/// Writes one message (envelope + payload) and flushes.
///
/// # Errors
/// [`ProtoError::Oversized`] if the payload exceeds [`MAX_PAYLOAD`];
/// otherwise any socket error.
pub fn write_msg(
    w: &mut impl Write,
    kind: MsgKind,
    round: u32,
    payload: &[u8],
) -> Result<(), ProtoError> {
    let len = u32::try_from(payload.len()).map_err(|_| ProtoError::Oversized { len: u32::MAX })?;
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized { len });
    }
    let mut header = [0u8; ENVELOPE_BYTES];
    header[0] = PROTO_MAGIC;
    header[1] = kind.id();
    header[2..6].copy_from_slice(&round.to_le_bytes());
    header[6..10].copy_from_slice(&len.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Parses an envelope header from its 10 raw bytes.
///
/// # Errors
/// [`ProtoError::BadMagic`], [`ProtoError::BadKind`], or
/// [`ProtoError::Oversized`] on a malformed header.
pub fn parse_envelope(header: &[u8; ENVELOPE_BYTES]) -> Result<Envelope, ProtoError> {
    if header[0] != PROTO_MAGIC {
        return Err(ProtoError::BadMagic(header[0]));
    }
    let kind = MsgKind::from_id(header[1]).ok_or(ProtoError::BadKind(header[1]))?;
    let round = u32::from_le_bytes(header[2..6].try_into().expect("4 bytes"));
    let len = u32::from_le_bytes(header[6..10].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized { len });
    }
    Ok(Envelope { kind, round, len })
}

/// Reads exactly `buf.len()` bytes, classifying the failure modes a
/// hostile or dying peer can produce (see the module docs).
///
/// The stream's read timeout (if set) defines one *tick*. A tick that
/// makes no progress while the unit is untouched and `allow_idle` holds
/// is ignored — quiet connections wait forever. Once the first byte of
/// the unit has arrived (or when `allow_idle` is false), each
/// zero-progress tick spends one of `stall_ticks`; exhausting the budget
/// is [`ProtoError::Stalled`].
///
/// # Errors
/// [`ProtoError::Truncated`] on EOF inside the unit (or at its start
/// when `allow_idle` is false), [`ProtoError::Stalled`] as above, and
/// [`ProtoError::Io`] for any other socket error.
pub fn read_exact_classified(
    r: &mut impl Read,
    buf: &mut [u8],
    allow_idle: bool,
    stall_ticks: u32,
) -> Result<ReadOutcome, ProtoError> {
    let needed = buf.len();
    let mut got = 0usize;
    let mut stalls = 0u32;
    while got < needed {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 && allow_idle {
                    Ok(ReadOutcome::Eof)
                } else {
                    Err(ProtoError::Truncated { got, needed })
                };
            }
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if got == 0 && allow_idle {
                    continue;
                }
                stalls += 1;
                if stalls >= stall_ticks.max(1) {
                    return Err(ProtoError::Stalled { got, needed });
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Reads one full message: envelope, then payload into `payload`
/// (cleared and resized). `Ok(None)` is a clean close between messages.
///
/// `allow_idle`/`stall_ticks` follow [`read_exact_classified`]; the
/// payload section never allows idling (its bytes were promised by the
/// header).
///
/// # Errors
/// Every [`ProtoError`]; a malformed header fails before any payload
/// allocation.
pub fn read_msg(
    r: &mut impl Read,
    payload: &mut Vec<u8>,
    allow_idle: bool,
    stall_ticks: u32,
) -> Result<Option<Envelope>, ProtoError> {
    let mut header = [0u8; ENVELOPE_BYTES];
    match read_exact_classified(r, &mut header, allow_idle, stall_ticks)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Full => {}
    }
    let env = parse_envelope(&header)?;
    payload.clear();
    payload.resize(env.len as usize, 0);
    read_exact_classified(r, payload, false, stall_ticks)?;
    Ok(Some(env))
}

/// Convenience: a simple blocking read of one message with no timeout
/// classification (client side, where the socket has no read timeout).
///
/// # Errors
/// Every [`ProtoError`]; an EOF between messages is
/// [`ProtoError::Truncated`] with `got == 0` (clients are always owed a
/// next message until `FIN`).
pub fn read_msg_blocking(r: &mut impl Read, payload: &mut Vec<u8>) -> Result<Envelope, ProtoError> {
    let mut header = [0u8; ENVELOPE_BYTES];
    let mut got = 0usize;
    while got < ENVELOPE_BYTES {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return Err(ProtoError::Truncated {
                    got,
                    needed: ENVELOPE_BYTES,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    let env = parse_envelope(&header)?;
    payload.clear();
    payload.resize(env.len as usize, 0);
    let mut got = 0usize;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(ProtoError::Truncated {
                    got,
                    needed: env.len as usize,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(env)
}

/// Derives the per-tick stall budget from a grace duration and the
/// socket's read-timeout tick.
#[must_use]
pub fn stall_ticks_for(grace: Duration, tick: Duration) -> u32 {
    let t = tick.as_millis().max(1);
    u32::try_from(grace.as_millis().div_ceil(t))
        .unwrap_or(u32::MAX)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let mut buf = Vec::new();
        write_msg(&mut buf, MsgKind::Offer, 42, &[1, 2, 3]).unwrap();
        assert_eq!(buf.len(), ENVELOPE_BYTES + 3);
        let mut r = &buf[..];
        let mut payload = Vec::new();
        let env = read_msg_blocking(&mut r, &mut payload).unwrap();
        assert_eq!(
            env,
            Envelope {
                kind: MsgKind::Offer,
                round: 42,
                len: 3
            }
        );
        assert_eq!(payload, vec![1, 2, 3]);
    }

    #[test]
    fn malformed_headers_are_typed() {
        let mut h = [0u8; ENVELOPE_BYTES];
        assert!(matches!(parse_envelope(&h), Err(ProtoError::BadMagic(0))));
        h[0] = PROTO_MAGIC;
        h[1] = 99;
        assert!(matches!(parse_envelope(&h), Err(ProtoError::BadKind(99))));
        h[1] = MsgKind::Upload.id();
        h[6..10].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            parse_envelope(&h),
            Err(ProtoError::Oversized { .. })
        ));
    }

    #[test]
    fn truncated_message_is_typed() {
        let mut buf = Vec::new();
        write_msg(&mut buf, MsgKind::Upload, 0, &[0xAB; 32]).unwrap();
        for cut in [3usize, ENVELOPE_BYTES, ENVELOPE_BYTES + 10] {
            let mut r = &buf[..cut];
            let mut payload = Vec::new();
            assert!(
                matches!(
                    read_msg_blocking(&mut r, &mut payload),
                    Err(ProtoError::Truncated { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn every_kind_round_trips_its_id() {
        for kind in [
            MsgKind::Hello,
            MsgKind::Welcome,
            MsgKind::Invite,
            MsgKind::Offer,
            MsgKind::Grant,
            MsgKind::Upload,
            MsgKind::Fin,
        ] {
            assert_eq!(MsgKind::from_id(kind.id()), Some(kind));
        }
        assert_eq!(MsgKind::from_id(0), None);
        assert_eq!(MsgKind::from_id(8), None);
    }

    #[test]
    fn stall_budget_is_at_least_one_tick() {
        assert_eq!(
            stall_ticks_for(Duration::from_millis(0), Duration::from_millis(200)),
            1
        );
        assert_eq!(
            stall_ticks_for(Duration::from_millis(1000), Duration::from_millis(200)),
            5
        );
    }
}
