//! Adversarial battery for the transport layer.
//!
//! Two fronts:
//!
//! 1. **Decoder fuzz** (no sockets): ≥4096 mutations of valid upload
//!    payloads — truncation at *every* byte offset (which subsumes every
//!    frame cut) and deterministic bit flips — must come back as typed
//!    `Result`s, never a panic. Every strict prefix of a valid payload
//!    must be an error (the grammar requires a complete stats frame).
//! 2. **Socket adversaries**: a real server run where rogue clients
//!    truncate mid-frame, flip checksummed bytes, slow-loris the
//!    envelope, disconnect mid-upload, or send a mask frame as an
//!    upload. The server must finish every round, the honest clients
//!    must finish cleanly, and each rogue must show up as a skipped
//!    upload or dead connection — never a panic or a stalled round.

use gluefl_compress::mask_shift::client_split;
use gluefl_compress::stc::{sparsify, TernaryUpdate};
use gluefl_core::strategies::Upload;
use gluefl_core::wire_link::{decode_upload_with_stats, encode_upload};
use gluefl_core::ScratchPool;
use gluefl_telemetry::Telemetry;
use gluefl_tensor::{BitMask, SparseUpdate};
use gluefl_transport::proto::{write_msg, MsgKind, ENVELOPE_BYTES, PROTO_MAGIC, PROTO_VERSION};
use gluefl_transport::{
    run_client, smoke_config, ClientNode, Server, ServerConfig, TransportError,
};
use gluefl_wire::{frame_len_from_header, Codec, FrameWriter, Rounding, WirePolicy};
use std::io::Write as _;
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// One valid wire payload (upload frames + stats frame) and the round
/// mask its decode requires.
struct Corpus {
    payload: Vec<u8>,
    mask: Option<BitMask>,
}

fn encode_entry(upload: &Upload, mask: Option<BitMask>, stats: &[f32], dim: usize) -> Corpus {
    encode_entry_with(upload, mask, stats, dim, WirePolicy::legacy(Codec::F32))
}

fn encode_entry_with(
    upload: &Upload,
    mask: Option<BitMask>,
    stats: &[f32],
    dim: usize,
    policy: WirePolicy,
) -> Corpus {
    let mut payload = Vec::new();
    let _ = encode_upload(upload, 3, &policy, 0, &mut payload);
    let _ = FrameWriter::new(policy).known_mask(&mut payload, 3, Rounding::Nearest, dim, stats);
    Corpus { payload, mask }
}

fn corpus() -> Vec<Corpus> {
    let stats = [0.25f32, -1.0, 3.5, 0.0, 7.25, -0.125];
    let dense: Vec<f32> = (0..400).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
    let wide: Vec<f32> = (0..4000).map(|i| ((i * 31) % 7) as f32 - 3.0).collect();
    let split_dense: Vec<f32> = (0..600).map(|i| ((i * 13) % 29) as f32 - 14.0).collect();
    let km_mask = BitMask::from_indices(50, [3usize, 17, 40]);
    let split_mask = BitMask::from_indices(600, (0..600).step_by(4));
    vec![
        encode_entry(
            &Upload::Dense((0..130).map(|i| (i as f32).sin()).collect()),
            None,
            &stats,
            130,
        ),
        encode_entry(&Upload::Sparse(sparsify(&dense, 0.05)), None, &stats, 400),
        encode_entry(
            &Upload::Ternary(TernaryUpdate::quantize(&sparsify(&wide, 0.01))),
            None,
            &stats,
            4000,
        ),
        encode_entry(
            &Upload::KnownMask(SparseUpdate::from_dense_masked(
                &(0..50).map(|i| i as f32).collect::<Vec<_>>(),
                &km_mask,
            )),
            Some(km_mask),
            &stats,
            50,
        ),
        encode_entry(
            &Upload::MaskSplit(client_split(&split_dense, &split_mask, 30)),
            Some(split_mask.clone()),
            &stats,
            600,
        ),
        // The entropy layouts (delta-varint indices, RLE sections) face
        // the same mutation battery: their self-delimiting sections are
        // exactly where truncation and bit flips bite differently.
        encode_entry_with(
            &Upload::Sparse(sparsify(&wide, 0.04)),
            None,
            &stats,
            4000,
            WirePolicy::entropy(Codec::F32),
        ),
        encode_entry_with(
            &Upload::MaskSplit(client_split(&split_dense, &split_mask, 30)),
            Some(split_mask),
            &stats,
            600,
            WirePolicy::entropy(Codec::QuantU8),
        ),
    ]
}

#[test]
fn fuzz_mutated_payloads_yield_typed_errors_never_panics() {
    let entries = corpus();
    let mut scratch = ScratchPool::new();
    let mut cases = 0usize;

    for entry in &entries {
        let full = &entry.payload;
        let mask = entry.mask.as_ref();

        // The untouched payload must decode (sanity for the corpus).
        let (upload, _) = decode_upload_with_stats(full, mask, &mut scratch)
            .expect("unmutated corpus entry decodes");
        scratch.reclaim_upload(upload);

        // Truncation at every offset — including every frame cut.
        for cut in 0..full.len() {
            match decode_upload_with_stats(&full[..cut], mask, &mut scratch) {
                Ok(_) => panic!("strict prefix of length {cut} decoded as complete"),
                Err(_) => cases += 1,
            }
        }

        // Deterministic bit flips all over the checksummed frames.
        let mut mutated = full.clone();
        for i in 0..512usize {
            let pos = (i * 7919) % full.len();
            let bit = 1u8 << (i % 8);
            mutated[pos] ^= bit;
            // Typed result either way; a panic fails the test.
            let _ = decode_upload_with_stats(&mutated, mask, &mut scratch).map(|(u, _)| {
                scratch.reclaim_upload(u);
            });
            mutated[pos] ^= bit;
            cases += 1;
        }
    }

    // A mask frame arriving where an upload belongs is a typed error.
    let mut mask_payload = Vec::new();
    let _ = FrameWriter::new(WirePolicy::default()).mask(
        &mut mask_payload,
        3,
        &BitMask::from_indices(64, [1usize, 5, 9]),
    );
    for cut in 0..=mask_payload.len() {
        assert!(
            decode_upload_with_stats(&mask_payload[..cut], None, &mut scratch).is_err(),
            "mask frame (or a prefix) must never decode as an upload"
        );
        cases += 1;
    }

    assert!(cases >= 4096, "fuzz loop ran only {cases} cases");
}

/// How a rogue client misbehaves once granted its upload slot.
#[derive(Clone, Copy, Debug)]
enum Rogue {
    /// Sends the envelope plus the payload only up to the first frame
    /// cut, then closes: mid-stream truncation at a frame boundary.
    TruncateAtFrameCut,
    /// Flips one byte inside a checksummed frame and sends the rest
    /// faithfully.
    FlipByte,
    /// Sends 4 bytes of the envelope header and goes silent past the
    /// stall grace.
    SlowLoris,
    /// Disconnects abruptly halfway through the payload.
    DisconnectMidUpload,
    /// Sends a wire *mask* frame where an upload belongs.
    MaskFrameAsUpload,
}

fn raw_envelope(kind: MsgKind, round: u32, len: usize) -> [u8; ENVELOPE_BYTES] {
    let mut h = [0u8; ENVELOPE_BYTES];
    h[0] = PROTO_MAGIC;
    h[1] = kind.id();
    h[2..6].copy_from_slice(&round.to_le_bytes());
    h[6..10].copy_from_slice(&u32::try_from(len).expect("payload fits u32").to_le_bytes());
    h
}

/// Plays the protocol honestly until the first granted upload, then
/// executes `mode`. Returns once the corruption is delivered (or at FIN
/// if never granted).
fn run_rogue(addr: &str, cfg: gluefl_core::SimConfig, id: usize, mode: Rogue) {
    let mut node = ClientNode::new(cfg, id);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut hello = [0u8; 8];
    hello[..4].copy_from_slice(&PROTO_VERSION.to_le_bytes());
    hello[4..].copy_from_slice(&u32::try_from(id).expect("id fits u32").to_le_bytes());
    write_msg(&mut stream, MsgKind::Hello, 0, &hello).expect("hello");
    let mut payload = Vec::new();
    let env =
        gluefl_transport::proto::read_msg_blocking(&mut stream, &mut payload).expect("welcome");
    assert_eq!(env.kind, MsgKind::Welcome);
    let mut upload_buf = Vec::new();
    loop {
        let env = match gluefl_transport::proto::read_msg_blocking(&mut stream, &mut payload) {
            Ok(env) => env,
            // The server may cut us off right after the corruption lands.
            Err(_) => return,
        };
        match env.kind {
            MsgKind::Invite => {
                let (analytic, wire) = node
                    .handle_invite(env.round, &payload)
                    .expect("rogue trains honestly");
                let mut offer = [0u8; 16];
                offer[..8].copy_from_slice(&analytic.to_le_bytes());
                offer[8..].copy_from_slice(&wire.to_le_bytes());
                if write_msg(&mut stream, MsgKind::Offer, env.round, &offer).is_err() {
                    return;
                }
            }
            MsgKind::Grant => {
                if payload.first() != Some(&1) {
                    node.discard_pending();
                    continue;
                }
                upload_buf.clear();
                node.encode_granted(env.round, &mut upload_buf)
                    .expect("granted upload encodes");
                match mode {
                    Rogue::TruncateAtFrameCut => {
                        let cut = usize::try_from(
                            frame_len_from_header(&upload_buf).expect("valid first frame"),
                        )
                        .expect("frame length fits usize");
                        let hdr = raw_envelope(MsgKind::Upload, env.round, upload_buf.len());
                        let _ = stream.write_all(&hdr);
                        let _ = stream.write_all(&upload_buf[..cut]);
                        let _ = stream.flush();
                        let _ = stream.shutdown(Shutdown::Write);
                    }
                    Rogue::FlipByte => {
                        let mid = upload_buf.len() / 2;
                        upload_buf[mid] ^= 0x40;
                        let _ = write_msg(&mut stream, MsgKind::Upload, env.round, &upload_buf);
                    }
                    Rogue::SlowLoris => {
                        let hdr = raw_envelope(MsgKind::Upload, env.round, upload_buf.len());
                        let _ = stream.write_all(&hdr[..4]);
                        let _ = stream.flush();
                        std::thread::sleep(Duration::from_millis(1200));
                    }
                    Rogue::DisconnectMidUpload => {
                        let hdr = raw_envelope(MsgKind::Upload, env.round, upload_buf.len());
                        let _ = stream.write_all(&hdr);
                        let _ = stream.write_all(&upload_buf[..upload_buf.len() / 2]);
                        let _ = stream.flush();
                        let _ = stream.shutdown(Shutdown::Both);
                    }
                    Rogue::MaskFrameAsUpload => {
                        let mut buf = Vec::new();
                        let _ = FrameWriter::new(WirePolicy::default()).mask(
                            &mut buf,
                            env.round,
                            &BitMask::from_indices(64, [1usize, 5, 9]),
                        );
                        let _ = write_msg(&mut stream, MsgKind::Upload, env.round, &buf);
                    }
                }
                return;
            }
            MsgKind::Fin => return,
            other => panic!("rogue got unexpected {other:?}"),
        }
    }
}

const MODES: [Rogue; 5] = [
    Rogue::TruncateAtFrameCut,
    Rogue::FlipByte,
    Rogue::SlowLoris,
    Rogue::DisconnectMidUpload,
    Rogue::MaskFrameAsUpload,
];

/// Runs `clients` participants where the last `MODES.len()` are rogues,
/// asserting the server completes all rounds and every honest client
/// exits cleanly. Returns (skipped_uploads, dead_clients).
fn run_adversarial(strategy: &str, clients: usize, rounds: u32, seed: u64) -> (usize, usize) {
    let mut cfg = smoke_config(strategy, clients, rounds, seed);
    // Invite exactly the keep set so every invited rogue is granted.
    cfg.oc = 1.0;
    let tel = Arc::new(Telemetry::new());
    let mut net = ServerConfig::local(clients);
    net.offer_timeout = Duration::from_secs(10);
    net.upload_timeout = Duration::from_secs(3);
    net.stall_grace = Duration::from_millis(300);
    net.read_tick = Duration::from_millis(50);
    net.telemetry = Some(Arc::clone(&tel));
    let server = Server::bind(cfg.clone(), net).expect("bind");
    let addr = server.local_addr().to_string();

    let honest_n = clients - MODES.len();
    let honest: Vec<_> = (0..honest_n)
        .map(|id| {
            let addr = addr.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || run_client(&addr, cfg, id))
        })
        .collect();
    let rogues: Vec<_> = MODES
        .iter()
        .enumerate()
        .map(|(k, &mode)| {
            let addr = addr.clone();
            let cfg = cfg.clone();
            let id = honest_n + k;
            std::thread::spawn(move || run_rogue(&addr, cfg, id, mode))
        })
        .collect();

    let report = server.run().expect("server completes despite adversaries");
    assert_eq!(
        report.records.len(),
        rounds as usize,
        "every round must complete"
    );
    for (id, h) in honest.into_iter().enumerate() {
        match h.join().expect("honest client must not panic") {
            Ok(()) => {}
            // An honest client can lose its FIN when the run ends while
            // the socket is being torn down; any earlier failure is real.
            Err(TransportError::Proto(_)) => {}
            Err(e) => panic!("honest client {id} failed: {e}"),
        }
    }
    for r in rogues {
        r.join().expect("rogue thread must not panic");
    }

    // The emitted counters must agree exactly with the report: skip and
    // kill events fire at the same program points that bump the
    // report's fields, so any drift between the two is a bug.
    let snap = tel.snapshot();
    let counter = |name: &str| {
        snap.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum::<f64>()
    };
    assert_eq!(
        counter("gluefl_server_uploads_skipped_total") as usize,
        report.skipped_uploads,
        "skip counter must match the report"
    );
    assert_eq!(
        counter("gluefl_server_clients_killed_total") as usize,
        report.dead_clients,
        "kill counter must match the report"
    );
    // Which rogues fire depends on the round draws, so the typed
    // decode-error and stall counts are bounded, not pinned: every
    // decode error skips exactly one upload, and every stall kills one
    // connection. (The single-rogue tests below pin exact counts.)
    assert!(
        counter("gluefl_server_decode_errors_total") <= report.skipped_uploads as f64,
        "more decode errors than skipped uploads"
    );
    assert!(
        counter("gluefl_server_stalls_total") <= report.dead_clients as f64,
        "more stalls than dead connections"
    );

    (report.skipped_uploads, report.dead_clients)
}

/// Runs one honest client and one rogue with `round_size == clients`,
/// so the rogue is granted deterministically in round 0. Returns the
/// final metrics snapshot for exact counter assertions.
fn run_single_rogue(mode: Rogue, seed: u64) -> gluefl_telemetry::Snapshot {
    let mut cfg = smoke_config("fedavg", 2, 2, seed);
    cfg.round_size = 2;
    cfg.oc = 1.0;
    let tel = Arc::new(Telemetry::new());
    let mut net = ServerConfig::local(2);
    net.offer_timeout = Duration::from_secs(10);
    net.upload_timeout = Duration::from_secs(3);
    net.stall_grace = Duration::from_millis(300);
    net.read_tick = Duration::from_millis(50);
    net.telemetry = Some(Arc::clone(&tel));
    let server = Server::bind(cfg.clone(), net).expect("bind");
    let addr = server.local_addr().to_string();

    let honest = {
        let (addr, cfg) = (addr.clone(), cfg.clone());
        std::thread::spawn(move || run_client(&addr, cfg, 0))
    };
    let rogue = std::thread::spawn(move || run_rogue(&addr, cfg, 1, mode));

    let report = server.run().expect("server completes");
    assert_eq!(report.records.len(), 2, "both rounds must complete");
    match honest.join().expect("honest client must not panic") {
        Ok(()) | Err(TransportError::Proto(_)) => {}
        Err(e) => panic!("honest client failed: {e}"),
    }
    rogue.join().expect("rogue thread must not panic");
    tel.snapshot()
}

#[test]
fn granted_mask_frame_counts_one_unexpected_kind_decode_error() {
    let snap = run_single_rogue(Rogue::MaskFrameAsUpload, 42);
    assert_eq!(
        snap.value(
            "gluefl_server_decode_errors_total",
            &[("kind", "unexpected_kind")],
        ),
        Some(1.0),
        "the mask-as-upload rogue must count exactly one unexpected_kind"
    );
}

#[test]
fn granted_byte_flip_counts_one_typed_decode_error() {
    let snap = run_single_rogue(Rogue::FlipByte, 43);
    let total: f64 = snap
        .samples
        .iter()
        .filter(|s| s.name == "gluefl_server_decode_errors_total")
        .map(|s| s.value)
        .sum();
    assert_eq!(
        total, 1.0,
        "one corrupted upload must count exactly one typed decode error"
    );
}

#[test]
fn slow_loris_counts_one_stall() {
    let snap = run_single_rogue(Rogue::SlowLoris, 44);
    assert_eq!(
        snap.value("gluefl_server_stalls_total", &[]),
        Some(1.0),
        "the mid-envelope stall must register exactly once"
    );
}

#[test]
fn socket_adversaries_cannot_stall_fedavg_rounds() {
    let (skipped, dead) = run_adversarial("fedavg", 16, 4, 1234);
    assert!(skipped >= 1, "no rogue upload was ever skipped");
    assert!(dead >= 1, "no rogue connection was ever declared dead");
}

#[test]
fn socket_adversaries_cannot_stall_gluefl_rounds() {
    let (skipped, dead) = run_adversarial("gluefl", 16, 4, 77);
    assert!(skipped >= 1, "no rogue upload was ever skipped");
    assert!(dead >= 1, "no rogue connection was ever declared dead");
}
