//! The headline acceptance gate: a real-socket run over loopback TCP
//! must reproduce the in-process [`Simulation`] **bit-exactly** — same
//! per-round invitations, keep sets, changed-position counts (mask
//! identity), measured wire bytes, and eval metrics (aggregate
//! identity), compared via `RoundRecord: PartialEq`, plus an FNV
//! fingerprint over the final parameter bits.
//!
//! 25 clients, 6 rounds, eval every 2 — comfortably past the ≥20-client
//! / ≥5-round bar — once per upload-variant family. MD-FedAvg is absent
//! by design: multinomial sampling may invite the same client twice in
//! one round, which the one-slot-per-connection wire protocol does not
//! represent.

use gluefl_core::{Simulation, WirePolicy};
use gluefl_telemetry::Telemetry;
use gluefl_transport::{
    fnv1a_f32_bits, run_client, run_client_traced, smoke_config, Server, ServerConfig,
};
use gluefl_wire::Codec;
use std::sync::Arc;

const CLIENTS: usize = 25;
const ROUNDS: u32 = 6;

fn assert_loopback_matches_simulator(strategy: &str, seed: u64) {
    assert_loopback_matches_simulator_with(strategy, seed, WirePolicy::default());
}

fn assert_loopback_matches_simulator_with(strategy: &str, seed: u64, wire: WirePolicy) {
    let mut cfg = smoke_config(strategy, CLIENTS, ROUNDS, seed);
    cfg.eval_every = 2;
    cfg.wire = wire;

    // In-process reference run.
    let mut sim = Simulation::new(cfg.clone());
    let expected: Vec<_> = (0..ROUNDS).map(|_| sim.step()).collect();
    let expected_fnv = fnv1a_f32_bits(sim.model().params());

    // The same run over real sockets.
    let server = Server::bind(cfg.clone(), ServerConfig::local(CLIENTS)).expect("bind");
    let addr = server.local_addr().to_string();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let addr = addr.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || run_client(&addr, cfg, id))
        })
        .collect();
    let report = server.run().expect("server run completes");
    for (id, handle) in clients.into_iter().enumerate() {
        handle
            .join()
            .expect("client thread does not panic")
            .unwrap_or_else(|e| panic!("client {id} failed: {e}"));
    }

    assert_eq!(report.dead_clients, 0, "no client may be declared dead");
    assert_eq!(report.skipped_uploads, 0, "no upload may be skipped");
    assert_eq!(report.records.len(), expected.len());
    for (got, want) in report.records.iter().zip(expected.iter()) {
        assert_eq!(
            got, want,
            "round {} diverged from the simulator",
            want.round
        );
    }
    assert_eq!(
        report.final_params_fnv, expected_fnv,
        "final global parameters diverged bit-wise"
    );
}

#[test]
fn loopback_matches_simulator_gluefl() {
    assert_loopback_matches_simulator("gluefl", 42);
}

#[test]
fn loopback_matches_simulator_fedavg() {
    assert_loopback_matches_simulator("fedavg", 7);
}

#[test]
fn loopback_matches_simulator_stc() {
    assert_loopback_matches_simulator("stc", 11);
}

#[test]
fn loopback_matches_simulator_stc_quantized() {
    assert_loopback_matches_simulator("stc-quant", 13);
}

#[test]
fn loopback_matches_simulator_apf() {
    assert_loopback_matches_simulator("apf", 17);
}

/// The entropy layouts (delta-varint indices, RLE mask sections) change
/// the bytes on the wire — including the broadcast's mask frame — but
/// the socket run must still pin the simulator bit-exactly, measured
/// bytes included.
#[test]
fn loopback_matches_simulator_gluefl_entropy() {
    assert_loopback_matches_simulator_with("gluefl", 23, WirePolicy::entropy(Codec::F32));
}

/// Quantized values + entropy layouts + codec-residual feedback into
/// error compensation: the feedback fires only for granted uploads with
/// seeds both drivers derive identically, so loopback stays bit-exact.
#[test]
fn loopback_matches_simulator_gluefl_entropy_quant() {
    assert_loopback_matches_simulator_with("gluefl", 29, WirePolicy::entropy(Codec::QuantU8));
}

/// STC's sparse f32 path under QuantU8 with codec-residual feedback.
#[test]
fn loopback_matches_simulator_stc_quant_codec() {
    assert_loopback_matches_simulator_with("stc", 31, WirePolicy::legacy(Codec::QuantU8));
}

/// Telemetry on BOTH sides — the simulator's phase spans and the
/// server's/clients' network recorders — must not perturb the
/// computation: the socket run still pins the simulator bit-exactly.
/// (`RoundRecord`'s equality deliberately ignores the measured timing
/// fields; everything else must still match to the bit.) The recorders
/// must also have actually recorded: every round carries phase spans
/// and the server saw upload bytes.
#[test]
fn loopback_matches_simulator_with_telemetry_enabled() {
    let mut cfg = smoke_config("gluefl", CLIENTS, ROUNDS, 37);
    cfg.eval_every = 2;

    let sim_tel = Arc::new(Telemetry::new());
    let mut sim = Simulation::new(cfg.clone()).with_telemetry(Arc::clone(&sim_tel));
    let expected: Vec<_> = (0..ROUNDS).map(|_| sim.step()).collect();
    let expected_fnv = fnv1a_f32_bits(sim.model().params());

    let srv_tel = Arc::new(Telemetry::new());
    let mut net = ServerConfig::local(CLIENTS);
    net.telemetry = Some(Arc::clone(&srv_tel));
    let server = Server::bind(cfg.clone(), net).expect("bind");
    let addr = server.local_addr().to_string();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let addr = addr.clone();
            let cfg = cfg.clone();
            let tel = Arc::new(Telemetry::new());
            std::thread::spawn(move || run_client_traced(&addr, cfg, id, Some(tel)))
        })
        .collect();
    let report = server.run().expect("server run completes");
    for (id, handle) in clients.into_iter().enumerate() {
        handle
            .join()
            .expect("client thread does not panic")
            .unwrap_or_else(|e| panic!("client {id} failed: {e}"));
    }

    assert_eq!(report.dead_clients, 0);
    assert_eq!(report.skipped_uploads, 0);
    assert_eq!(report.records.len(), expected.len());
    for (got, want) in report.records.iter().zip(expected.iter()) {
        assert_eq!(got, want, "round {} diverged under telemetry", want.round);
    }
    assert_eq!(report.final_params_fnv, expected_fnv);

    use gluefl_telemetry::Phase;
    assert!(sim_tel.phase_nanos(Phase::Train) > 0, "simulator recorded");
    let snap = srv_tel.snapshot();
    let upload_bytes = snap
        .value(
            "gluefl_server_bytes_total",
            &[("dir", "up"), ("frame", "upload")],
        )
        .unwrap_or(0.0);
    assert!(upload_bytes > 0.0, "server recorded upload bytes");
}
