//! Command-line options shared by all experiments.

use std::path::PathBuf;

/// Options accepted by every experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExptOpts {
    /// Communication rounds per run.
    pub rounds: u32,
    /// Fraction of the paper's client population to simulate.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Report bandwidth at paper-scale model sizes (multiply by
    /// `reference_params / simulated_params`).
    pub paper_scale: bool,
    /// Quick mode: fewer rounds / smaller sweeps for smoke testing.
    pub quick: bool,
    /// Ledger-freshness gate (`expt kernels` only): path to a committed
    /// `BENCH_kernels.json`; the run fails if that file is missing any
    /// kernel entry the benchmark emits.
    pub check: Option<PathBuf>,
    /// Kernel-name substring filter (`expt kernels` only): when set, only
    /// ledger entries whose name contains the substring are measured and
    /// emitted — the fast path for re-running one kernel while tuning.
    pub filter: Option<String>,
    /// Wire policy override (`--wire SPEC`): applied to every experiment
    /// configuration built through `setup`. `SPEC` is
    /// `{legacy|entropy}-{f32|f16|quant-u8}[-no-ec]`, e.g.
    /// `entropy-quant-u8` or `legacy-quant-u8-no-ec`. `None` keeps each
    /// experiment's own default (the byte-identical legacy F32 policy, or
    /// the sweep arms of `expt wire`).
    pub wire: Option<gluefl_core::WirePolicy>,
}

/// Parses a `--wire` policy spec:
/// `{legacy|entropy}-{f32|f16|quant-u8}[-no-ec]`.
///
/// # Errors
/// Returns a message naming the malformed spec.
pub fn parse_wire_policy(spec: &str) -> Result<gluefl_core::WirePolicy, String> {
    use gluefl_core::{WireCodec, WirePolicy};
    let (body, quant_ec) = match spec.strip_suffix("-no-ec") {
        Some(body) => (body, false),
        None => (spec, true),
    };
    let (layout, codec_name) = body
        .split_once('-')
        .ok_or_else(|| format!("--wire '{spec}': expected LAYOUT-CODEC[-no-ec]"))?;
    let codec = match codec_name {
        "f32" => WireCodec::F32,
        "f16" => WireCodec::F16,
        "quant-u8" => WireCodec::QuantU8,
        other => return Err(format!("--wire '{spec}': unknown codec '{other}'")),
    };
    let mut policy = match layout {
        "legacy" => WirePolicy::legacy(codec),
        "entropy" => WirePolicy::entropy(codec),
        other => return Err(format!("--wire '{spec}': unknown layout '{other}'")),
    };
    policy.quant_ec = quant_ec;
    Ok(policy)
}

impl Default for ExptOpts {
    fn default() -> Self {
        Self {
            rounds: 150,
            scale: 0.1,
            seed: 42,
            out_dir: PathBuf::from("results"),
            paper_scale: false,
            quick: false,
            check: None,
            filter: None,
            wire: None,
        }
    }
}

impl ExptOpts {
    /// Parses `--rounds N --scale F --seed N --out DIR --paper-scale
    /// --quick --check FILE --filter KERNEL --wire SPEC` from raw
    /// arguments.
    ///
    /// # Errors
    /// Returns a message naming the offending flag or value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Self::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--rounds" => {
                    opts.rounds = next_value(&mut it, "--rounds")?;
                    if opts.rounds == 0 {
                        return Err("--rounds must be positive".into());
                    }
                }
                "--scale" => {
                    opts.scale = next_value(&mut it, "--scale")?;
                    if !(opts.scale > 0.0 && opts.scale <= 1.0) {
                        return Err("--scale must be in (0,1]".into());
                    }
                }
                "--seed" => opts.seed = next_value(&mut it, "--seed")?,
                "--out" => {
                    opts.out_dir = PathBuf::from(it.next().ok_or("--out needs a value")?.clone());
                }
                "--paper-scale" => opts.paper_scale = true,
                "--check" => {
                    opts.check = Some(PathBuf::from(
                        it.next().ok_or("--check needs a value")?.clone(),
                    ));
                }
                "--filter" => {
                    opts.filter = Some(it.next().ok_or("--filter needs a value")?.clone());
                }
                "--wire" => {
                    opts.wire = Some(parse_wire_policy(it.next().ok_or("--wire needs a value")?)?);
                }
                "--quick" => {
                    opts.quick = true;
                    opts.rounds = opts.rounds.min(20);
                    opts.scale = opts.scale.min(0.02);
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(opts)
    }

    /// Whether a named ledger entry is selected by `--filter` (substring
    /// match; everything is selected when no filter is set).
    #[must_use]
    pub fn kernel_selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

fn next_value<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<T, String> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("invalid value for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExptOpts, String> {
        let v: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        ExptOpts::parse(&v)
    }

    #[test]
    fn defaults_without_args() {
        let o = parse(&[]).unwrap();
        assert_eq!(o, ExptOpts::default());
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&[
            "--rounds",
            "99",
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--out",
            "/tmp/x",
            "--paper-scale",
        ])
        .unwrap();
        assert_eq!(o.rounds, 99);
        assert!((o.scale - 0.5).abs() < 1e-12);
        assert_eq!(o.seed, 7);
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));
        assert!(o.paper_scale);
    }

    #[test]
    fn parses_check_flag() {
        let o = parse(&["--check", "BENCH_kernels.json"]).unwrap();
        assert_eq!(o.check, Some(PathBuf::from("BENCH_kernels.json")));
        assert!(parse(&["--check"]).is_err());
    }

    #[test]
    fn parses_filter_flag_and_selects_by_substring() {
        let o = parse(&["--filter", "gemm"]).unwrap();
        assert_eq!(o.filter.as_deref(), Some("gemm"));
        assert!(o.kernel_selected("gemm_nn_b16"));
        assert!(o.kernel_selected("gemm_tn_b16"));
        assert!(!o.kernel_selected("local_train_round"));
        assert!(parse(&["--filter"]).is_err());
    }

    #[test]
    fn no_filter_selects_everything() {
        let o = parse(&[]).unwrap();
        assert!(o.kernel_selected("gemm_nn_b16"));
        assert!(o.kernel_selected("local_train_round"));
    }

    #[test]
    fn parses_wire_policy_specs() {
        use gluefl_core::{IndexLayout, WireCodec};
        let o = parse(&["--wire", "entropy-quant-u8"]).unwrap();
        let w = o.wire.unwrap();
        assert_eq!(w.codec, WireCodec::QuantU8);
        assert_eq!(w.index_layout, IndexLayout::Entropy);
        assert!(w.rle);
        assert!(w.quant_ec);

        let w = parse(&["--wire", "legacy-f32"]).unwrap().wire.unwrap();
        assert_eq!(w, gluefl_core::WirePolicy::default());

        let w = parse(&["--wire", "legacy-quant-u8-no-ec"])
            .unwrap()
            .wire
            .unwrap();
        assert_eq!(w.codec, WireCodec::QuantU8);
        assert!(!w.quant_ec);

        assert!(parse(&["--wire", "f32"]).is_err());
        assert!(parse(&["--wire", "entropy-f64"]).is_err());
        assert!(parse(&["--wire", "modern-f32"]).is_err());
        assert!(parse(&["--wire"]).is_err());
    }

    #[test]
    fn quick_caps_rounds_and_scale() {
        let o = parse(&["--quick"]).unwrap();
        assert!(o.rounds <= 20);
        assert!(o.scale <= 0.02);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse(&["--rounds", "zero"]).is_err());
        assert!(parse(&["--rounds", "0"]).is_err());
        assert!(parse(&["--scale", "2.0"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--rounds"]).is_err());
    }
}
