//! Terminal line charts for experiment output.
//!
//! The paper's sensitivity figures are accuracy-vs-cumulative-downstream
//! curves; the harness renders the same series as compact ASCII charts so
//! the *shape* (who converges faster per byte, where curves cross) is
//! visible without leaving the terminal. Full-resolution data always goes
//! to CSV alongside.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in ascending-x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series; points are sorted by x.
    #[must_use]
    pub fn new(label: impl Into<String>, mut points: Vec<(f64, f64)>) -> Self {
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
        Self {
            label: label.into(),
            points,
        }
    }

    /// Linear interpolation of y at `x` (clamped to the series' range).
    #[must_use]
    pub fn sample(&self, x: f64) -> Option<f64> {
        let pts = &self.points;
        if pts.is_empty() {
            return None;
        }
        if x <= pts[0].0 {
            return Some(pts[0].1);
        }
        if x >= pts[pts.len() - 1].0 {
            return Some(pts[pts.len() - 1].1);
        }
        let i = pts.partition_point(|p| p.0 < x);
        let (x0, y0) = pts[i - 1];
        let (x1, y1) = pts[i];
        if (x1 - x0).abs() < f64::EPSILON {
            return Some(y1);
        }
        Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
    }
}

/// Renders multiple series in one character grid with a legend.
///
/// Each series is drawn with its own glyph (`*`, `o`, `+`, …); later
/// series overwrite earlier ones where they collide. Axes are labelled
/// with the data ranges.
///
/// # Example
///
/// ```
/// use gluefl_bench::plot::{render, Series};
/// let s = Series::new("a", vec![(0.0, 0.0), (1.0, 1.0)]);
/// let chart = render(&[s], 40, 10, "x", "y");
/// assert!(chart.contains("a"));
/// assert!(chart.lines().count() > 10);
/// ```
#[must_use]
pub fn render(
    series: &[Series],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let width = width.max(16);
    let height = height.max(4);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &all {
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_min = y_min.min(*y);
        y_max = y_max.max(*y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        // Dense sampling across columns using interpolation keeps lines
        // visually continuous even with few points.
        #[allow(clippy::needless_range_loop)] // col drives both x and grid
        for col in 0..width {
            let x = x_min + (x_max - x_min) * col as f64 / (width - 1) as f64;
            if x < s.points[0].0 || x > s.points[s.points.len() - 1].0 {
                continue;
            }
            if let Some(y) = s.sample(x) {
                let row_f = (y - y_min) / (y_max - y_min) * (height - 1) as f64;
                let row = height - 1 - (row_f.round() as usize).min(height - 1);
                grid[row][col] = glyph;
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{y_label}\n"));
    for (r, row) in grid.iter().enumerate() {
        let y_tick = if r == 0 {
            format!("{y_max:>8.3}")
        } else if r == height - 1 {
            format!("{y_min:>8.3}")
        } else {
            " ".repeat(8)
        };
        out.push_str(&format!("{y_tick} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    let x_lo = format!("{x_min:.3}");
    let x_hi = format!("{x_max:.3} {x_label}");
    out.push_str(&format!(
        "{} +{}\n{} {x_lo:<width$}{x_hi}\n",
        " ".repeat(8),
        "-".repeat(width),
        " ".repeat(8),
        width = width.saturating_sub(6),
    ));
    out.push_str("legend: ");
    for (si, s) in series.iter().enumerate() {
        if si > 0 {
            out.push_str("  ");
        }
        out.push_str(&format!("{} {}", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_sorts_points() {
        let s = Series::new("x", vec![(2.0, 1.0), (0.0, 0.0), (1.0, 0.5)]);
        assert_eq!(s.points[0], (0.0, 0.0));
        assert_eq!(s.points[2], (2.0, 1.0));
    }

    #[test]
    fn sample_interpolates_linearly() {
        let s = Series::new("x", vec![(0.0, 0.0), (10.0, 10.0)]);
        assert_eq!(s.sample(5.0), Some(5.0));
        assert_eq!(s.sample(-1.0), Some(0.0)); // clamp left
        assert_eq!(s.sample(99.0), Some(10.0)); // clamp right
        assert_eq!(Series::new("e", vec![]).sample(0.0), None);
    }

    #[test]
    fn render_contains_axes_and_legend() {
        let a = Series::new("alpha", vec![(0.0, 0.0), (1.0, 1.0)]);
        let b = Series::new("beta", vec![(0.0, 1.0), (1.0, 0.0)]);
        let chart = render(&[a, b], 40, 12, "GB", "accuracy");
        assert!(chart.contains("legend: * alpha  o beta"));
        assert!(chart.contains("accuracy"));
        assert!(chart.contains("GB"));
        // Both extremes appear as tick labels.
        assert!(chart.contains("1.000"));
        assert!(chart.contains("0.000"));
    }

    #[test]
    fn increasing_series_renders_monotonically() {
        let s = Series::new(
            "up",
            (0..20).map(|i| (f64::from(i), f64::from(i))).collect(),
        );
        let chart = render(&[s], 30, 10, "", "");
        // The glyph in the first data row (top) must be to the right of
        // the glyph in the last data row (bottom).
        let rows: Vec<&str> = chart.lines().skip(1).take(10).collect();
        let top_col = rows[0].find('*').unwrap();
        let bottom_col = rows[9].find('*').unwrap();
        assert!(top_col > bottom_col, "top {top_col} vs bottom {bottom_col}");
    }

    #[test]
    fn empty_input_is_graceful() {
        assert_eq!(render(&[], 40, 10, "", ""), "(no data)\n");
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let s = Series::new("flat", vec![(0.0, 0.5), (1.0, 0.5)]);
        let chart = render(&[s], 30, 8, "", "");
        assert!(chart.contains('*'));
    }
}
