//! Experiment harness regenerating every table and figure of the paper.
//!
//! The `expt` binary dispatches on an experiment id (`fig1`, `fig2`,
//! `table2`, `fig5`–`fig11`, `table3a`, `table3b`, `prop12`); each
//! experiment prints a paper-style table to stdout and writes CSV under
//! `results/`. See DESIGN.md §4 for the experiment ↔ paper artifact map.
//!
//! Experiments default to laptop scale (a few percent of the paper's
//! client populations, hundreds of rounds); `--scale`, `--rounds`, and
//! `--paper-scale` restore paper fidelity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod opts;
pub mod plot;
mod report;

pub use opts::ExptOpts;
pub use report::{format_table, write_csv, Table};
