//! Diagnostic: isolate GlueFL convergence behaviour across ablation arms.
//!
//! Not part of the paper reproduction — a debugging tool that prints
//! accuracy trajectories for GlueFL variants side by side.

use gluefl_compress::CompensationMode;
use gluefl_core::{GlueFlParams, SimConfig, Simulation, StrategyConfig};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rounds: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(100);
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let k_floor: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);

    let mut base = SimConfig::paper_setup(
        DatasetProfile::Femnist,
        DatasetModel::ShuffleNet,
        StrategyConfig::FedAvg,
        scale,
        rounds,
        7,
    );
    base.round_size = base.round_size.max(k_floor);
    base.eval_every = 10;
    base.target_accuracy = None;
    let k = base.round_size;
    let p = GlueFlParams::paper_default(k, DatasetModel::ShuffleNet);

    let mut arms: Vec<(String, StrategyConfig)> = vec![
        ("fedavg".into(), StrategyConfig::FedAvg),
        ("stc".into(), StrategyConfig::Stc { q: 0.2 }),
        ("gluefl-rec".into(), StrategyConfig::GlueFl(p.clone())),
    ];
    let mut none = p.clone();
    none.compensation = CompensationMode::None;
    arms.push(("gluefl-none".into(), StrategyConfig::GlueFl(none)));
    let mut equal = p.clone();
    equal.equal_weights = true;
    arms.push(("gluefl-equal".into(), StrategyConfig::GlueFl(equal)));
    let mut eq_none = p.clone();
    eq_none.equal_weights = true;
    eq_none.compensation = CompensationMode::None;
    arms.push(("gluefl-eq-none".into(), StrategyConfig::GlueFl(eq_none)));

    println!(
        "N={} K={} C={} S={} rounds={rounds}",
        base.dataset.clients, k, p.sticky_draw, p.sticky_group
    );
    print!("{:>8}", "round");
    for (name, _) in &arms {
        print!(" {name:>14}");
    }
    println!();

    let results: Vec<Vec<(u32, f64)>> = arms
        .iter()
        .map(|(_, s)| {
            let mut cfg = base.clone();
            cfg.strategy = s.clone();
            let r = Simulation::new(cfg).run();
            r.rounds
                .iter()
                .filter_map(|rec| rec.accuracy.map(|a| (rec.round, a)))
                .collect()
        })
        .collect();
    let evals = results[0].len();
    for e in 0..evals {
        print!("{:>8}", results[0][e].0);
        for r in &results {
            print!(" {:>13.1}%", r[e].1 * 100.0);
        }
        println!();
    }
}
