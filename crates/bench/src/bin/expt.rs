//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! expt <id> [--rounds N] [--scale F] [--seed N] [--out DIR] [--paper-scale] [--quick]
//!           [--check FILE] [--filter KERNEL]
//! ```
//!
//! `--check FILE` (used with `kernels`) fails the run when the committed
//! ledger `FILE` is missing any kernel entry the benchmark emits — CI's
//! ledger-freshness gate. `--filter KERNEL` (also `kernels`) re-runs only
//! the ledger entries whose name contains the substring — the fast loop
//! while tuning one kernel.
//!
//! `<id>` is one of: fig1, fig2, table2, fig5, fig6, fig7, fig8, fig9,
//! fig10, fig11, table3a, table3b, prop12, or `all`.

use gluefl_bench::{experiments, ExptOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: expt <experiment> [--rounds N] [--scale F] [--seed N] \
             [--out DIR] [--paper-scale] [--quick] [--check FILE] [--filter KERNEL]\n\
             experiments: {} | all",
            experiments::ALL.join(" | ")
        );
        std::process::exit(2);
    }
    let id = args[0].clone();
    let opts = match ExptOpts::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let start = std::time::Instant::now();
    if let Err(e) = experiments::run(&id, &opts) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    eprintln!("\n[{} completed in {:.1?}]", id, start.elapsed());
}
