//! Table formatting and CSV output.

use std::fs;
use std::path::Path;

/// A simple column-aligned text table for paper-style output.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as column-aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        format_table(&self.header, &self.rows)
    }

    /// Renders as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut s = self.header.join(",");
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.join(","));
            s.push('\n');
        }
        s
    }
}

/// Column-aligns `rows` under `header` with a separator line.
#[must_use]
pub fn format_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        #[allow(clippy::needless_range_loop)] // i indexes widths and cells
        for i in 0..cols {
            if i > 0 {
                line.push_str("  ");
            }
            let cell = cells.get(i).map_or("", String::as_str);
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_owned()
    };
    let mut out = fmt_row(header);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Writes `content` to `dir/name`, creating the directory if needed.
///
/// # Panics
/// Panics if the filesystem refuses (experiments treat this as fatal).
pub fn write_csv(dir: &Path, name: &str, content: &str) {
    fs::create_dir_all(dir).expect("create results directory");
    let path = dir.join(name);
    fs::write(&path, content).expect("write CSV file");
    println!("  wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "value" column starts at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn write_csv_creates_dir() {
        let dir = std::env::temp_dir().join("gluefl-test-report");
        let _ = std::fs::remove_dir_all(&dir);
        write_csv(&dir, "x.csv", "a\n");
        assert_eq!(std::fs::read_to_string(dir.join("x.csv")).unwrap(), "a\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
