//! Figure 8: effect of the shared-mask ratio `q_shr`.
//!
//! The paper sweeps q_shr ∈ {4%, 8%, 16%} for ShuffleNet (q = 20%) and
//! {6%, 12%, 24%} for ResNet-34 (q = 30%). Higher q_shr bounds mask
//! drift harder, cutting downstream bandwidth; regeneration + error
//! compensation keep accuracy from degrading, so the largest value wins.

use crate::experiments::common::{self, SweepArm};
use crate::ExptOpts;
use gluefl_core::{GlueFlParams, StrategyConfig};
use gluefl_ml::DatasetModel;

fn arms(k: usize, model: DatasetModel) -> Vec<SweepArm> {
    let ratios: &[f64] = match model {
        DatasetModel::ShuffleNet => &[0.04, 0.08, 0.16],
        DatasetModel::MobileNet | DatasetModel::ResNet34 => &[0.06, 0.12, 0.24],
    };
    ratios
        .iter()
        .map(|&q_shr| {
            let mut p = GlueFlParams::paper_default(k, model);
            p.q_shr = q_shr;
            SweepArm {
                label: format!("GlueFL (q_shr = {:.0}%)", q_shr * 100.0),
                strategy: StrategyConfig::GlueFl(p),
            }
        })
        .collect()
}

/// Runs the experiment.
///
/// # Errors
/// Never fails; the `Result` matches the dispatcher's signature.
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    println!("Figure 8: effect of shared mask ratio q_shr");
    for (dataset, model) in common::sensitivity_pairs(opts) {
        let cfg = common::setup(dataset, model, StrategyConfig::FedAvg, opts);
        common::run_sweep("fig8", dataset, model, &arms(cfg.round_size, model), opts);
    }
    println!(
        "paper check: the largest q_shr uses the least downstream bandwidth to \
         reach the target without a substantial accuracy drop"
    );
    Ok(())
}
