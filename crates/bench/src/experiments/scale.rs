//! Million-client scaling sweep: per-round control-plane cost vs N.
//!
//! Runs the full per-round control plane — availability queries, sticky
//! draw, link/speed lookups, keep-fastest selection, rebalance — at
//! population sizes N = 10⁴, 10⁵, 10⁶ (quick mode: 10⁴ only) **without**
//! instantiating any per-client training state. Every layer it exercises
//! is lazy: [`LazyAvailability`] materialises session cursors only for
//! touched clients, [`LinkCache`]/[`SpeedCache`] sample links on first
//! use, and the [`StickySampler`] draws fresh candidates by rejection, so
//! the measured per-round wall-clock should stay flat (O(participants +
//! log N)) while N grows 100×.
//!
//! Reports microseconds per round, the number of clients whose
//! availability state was ever materialised, the number of cached links,
//! and resident memory; writes `scale.csv` into the output directory.
//!
//! Run with `expt scale [--quick] [--out DIR]`.

use crate::ExptOpts;
use gluefl_net::{DeviceProfile, LazyAvailability, LinkCache, NetworkProfile, SpeedCache};
use gluefl_sampling::overcommit::{plan as oc_plan, OcStrategy};
use gluefl_sampling::StickySampler;
use gluefl_tensor::rng::derive_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Per-round payload used for the keep-fastest rule, in Mbit. The value
/// only has to rank clients; it mirrors a masked ShuffleNet update.
const PAYLOAD_MBIT: f64 = 8.0;

/// One population size's measurements.
struct ScalePoint {
    n: usize,
    rounds: u32,
    us_per_round: f64,
    avail_touched: usize,
    links_cached: usize,
    rss_mb: f64,
}

/// Resident set size in MB via `/proc/self/statm` (0.0 where
/// unsupported).
fn resident_mb() -> f64 {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| s.split_whitespace().nth(1).map(str::to_owned))
        .and_then(|pages| pages.parse::<f64>().ok())
        .map_or(0.0, |pages| pages * 4096.0 / 1e6)
}

/// Runs the control plane for `rounds` rounds at population size `n` and
/// returns the measurements.
fn run_point(n: usize, rounds: u32, seed: u64) -> ScalePoint {
    let plan = oc_plan(30, 24, 1.3, OcStrategy::Proportional);
    let group_size = 120.min(n / 2).max(plan.sticky_invites);
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, "scale-rng", n as u64));
    let mut sampler = StickySampler::new(n, group_size, &mut rng);
    let mut availability =
        LazyAvailability::new(n, 0.7, 24.0, derive_seed(seed, "availability", 0));
    let mut links = LinkCache::new(NetworkProfile::MlabEdge, derive_seed(seed, "network", 0));
    let mut speeds = SpeedCache::new(DeviceProfile::mobile(), derive_seed(seed, "devices", 0));

    let start = Instant::now();
    for round in 0..rounds {
        let draw = {
            let mut online = |id: usize| availability.is_online(id, round);
            sampler.draw(
                &mut rng,
                plan.sticky_invites,
                plan.fresh_invites,
                &mut online,
            )
        };
        // Keep-fastest within each group: rank invites by simulated
        // round time (upload over the client link + one local step).
        let mut time_of = |id: usize| {
            let link = links.get(id);
            let speed = speeds.get(id);
            PAYLOAD_MBIT / link.up_mbps.max(0.1) + 1.0 / speed.max(0.01)
        };
        let fastest = |ids: &[usize], keep: usize, time_of: &mut dyn FnMut(usize) -> f64| {
            let mut timed: Vec<(f64, usize)> = ids.iter().map(|&id| (time_of(id), id)).collect();
            timed.sort_by(|a, b| a.0.total_cmp(&b.0));
            timed.truncate(keep);
            let mut kept: Vec<usize> = timed.into_iter().map(|(_, id)| id).collect();
            kept.sort_unstable();
            kept
        };
        let kept_sticky = fastest(&draw.sticky, plan.keep_sticky, &mut time_of);
        let kept_fresh = fastest(&draw.fresh, plan.keep_fresh, &mut time_of);
        sampler.rebalance(&mut rng, &kept_sticky, &kept_fresh);
    }
    let elapsed = start.elapsed();

    ScalePoint {
        n,
        rounds,
        us_per_round: elapsed.as_secs_f64() * 1e6 / f64::from(rounds),
        avail_touched: availability.touched(),
        links_cached: links.cached(),
        rss_mb: resident_mb(),
    }
}

/// Runs the scaling sweep and writes `scale.csv`.
///
/// # Errors
/// Fails if the measured per-round cost grows anywhere near linearly
/// with N (the sweep exists to pin the O(participants + log N) claim).
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    let sizes: &[usize] = if opts.quick {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let rounds: u32 = if opts.quick { 50 } else { 200 };

    let points: Vec<ScalePoint> = sizes
        .iter()
        .map(|&n| run_point(n, rounds, opts.seed))
        .collect();

    let mut table = crate::Table::new([
        "N",
        "rounds",
        "us/round",
        "avail touched",
        "links cached",
        "RSS (MB)",
    ]);
    let mut csv = String::from("n,rounds,us_per_round,avail_touched,links_cached,rss_mb\n");
    for p in &points {
        table.row([
            format!("{}", p.n),
            format!("{}", p.rounds),
            format!("{:.1}", p.us_per_round),
            format!("{}", p.avail_touched),
            format!("{}", p.links_cached),
            format!("{:.1}", p.rss_mb),
        ]);
        csv.push_str(&format!(
            "{},{},{:.3},{},{},{:.1}\n",
            p.n, p.rounds, p.us_per_round, p.avail_touched, p.links_cached, p.rss_mb
        ));
    }
    println!("\nscaling sweep — lazy control plane, K = 30, OC = 1.3, S = 120");
    println!("{}", table.render());
    println!(
        "(per-round cost covers availability queries, sticky draw, \
         link/speed lookups, keep-fastest selection, and rebalance; \
         'avail touched' is the number of clients ever materialised)"
    );
    crate::write_csv(&opts.out_dir, "scale.csv", &csv);

    // Sublinearity gate: across a 100× growth in N the per-round cost
    // must grow far less than 100× (generous 10× bound absorbs timer
    // noise at microsecond scales).
    if let (Some(first), Some(last)) = (points.first(), points.last()) {
        if last.n > first.n {
            let growth = last.us_per_round / first.us_per_round.max(1e-9);
            let n_growth = last.n as f64 / first.n as f64;
            if growth > n_growth / 10.0 {
                return Err(format!(
                    "per-round cost grew {growth:.1}x over a {n_growth:.0}x \
                     population growth — control plane is not sublinear"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick sweep runs end to end, writes its CSV, and only touches
    /// a small fraction of the population.
    #[test]
    fn quick_sweep_runs_and_writes_csv() {
        let dir = std::env::temp_dir().join("gluefl_scale_sweep_test");
        let opts = ExptOpts {
            quick: true,
            out_dir: dir.clone(),
            ..ExptOpts::default()
        };
        run(&opts).unwrap();
        let csv = std::fs::read_to_string(dir.join("scale.csv")).unwrap();
        assert!(csv.starts_with("n,rounds,us_per_round"));
        assert!(csv.contains("10000,50,"));
    }

    /// Per-round work at N = 10⁵ touches O(participants · rounds) state,
    /// not O(N): the availability map and link cache stay sparse.
    #[test]
    fn control_plane_stays_sparse() {
        let p = run_point(100_000, 30, 7);
        assert!(
            p.avail_touched < 10_000,
            "availability materialised {} of 100k clients",
            p.avail_touched
        );
        assert!(
            p.links_cached < 10_000,
            "link cache holds {} of 100k clients",
            p.links_cached
        );
    }
}
