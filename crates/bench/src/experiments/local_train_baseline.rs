//! Verbatim pre-refactor local-training implementation, compiled into the
//! kernel ledger as the `local_train_*` baseline.
//!
//! This is the client training path as it existed before the
//! `TrainScratch` refactor: every client deep-clones the model, every
//! minibatch allocates fresh activation/cache/gradient buffers inside
//! `loss_and_grad`, the optimizer allocates its own velocity, and
//! `sample_batch` allocates the staging vectors. Keeping the old code in
//! tree (rather than trusting historical numbers) lets `expt kernels`
//! re-measure the speedup of the pooled path on the machine at hand and
//! assert bit-identical outputs first.
//!
//! One deliberate deviation: [`BaselineMlp`] stores offsets instead of
//! the old `ParamLayout` (whose segment names were heap `String`s), so
//! the baseline's per-client clone is slightly *cheaper* than the true
//! pre-refactor clone — the measured speedup is a conservative lower
//! bound.

use gluefl_data::{ClientDataset, SyntheticFlDataset};
use gluefl_ml::{Mlp, Sgd};
use gluefl_tensor::{vecops, BitMask};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Offsets of one linear layer inside the flat parameter vector.
#[derive(Debug, Clone, Copy)]
struct Lin {
    in_dim: usize,
    out_dim: usize,
    w_off: usize,
    b_off: usize,
}

/// Offsets and hyper-parameters of one BatchNorm layer.
#[derive(Debug, Clone, Copy)]
struct Bn {
    dim: usize,
    gamma_off: usize,
    beta_off: usize,
    mean_off: usize,
    var_off: usize,
    count_off: usize,
    momentum: f32,
    eps: f32,
}

/// Cached activations for one layer's backward pass (pre-refactor shape:
/// freshly allocated every forward).
#[derive(Debug, Clone)]
struct LayerCache {
    input: Vec<f32>,
    bn: Option<BnCache>,
    relu_mask: Vec<bool>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Vec<f32>,
    inv_std: Vec<f32>,
}

/// The pre-refactor allocating MLP: one flat parameter vector deep-cloned
/// per client, fresh buffers per minibatch.
#[derive(Debug, Clone)]
pub(crate) struct BaselineMlp {
    input_dim: usize,
    hidden: Vec<usize>,
    classes: usize,
    params: Vec<f32>,
    linears: Vec<Lin>,
    bns: Vec<Option<Bn>>,
}

impl BaselineMlp {
    /// Mirrors a current [`Mlp`]: same architecture, same flat offsets
    /// (read back from the layout segment names), same parameters.
    pub(crate) fn from_model(model: &Mlp) -> Self {
        let cfg = model.config();
        let layout = model.layout();
        let seg = |name: &str| {
            layout
                .segment(name)
                .unwrap_or_else(|| panic!("segment {name}"))
        };
        let mut linears = Vec::new();
        let mut bns = Vec::new();
        let mut in_dim = cfg.input_dim;
        for (i, &h) in cfg.hidden.iter().enumerate() {
            linears.push(Lin {
                in_dim,
                out_dim: h,
                w_off: seg(&format!("l{i}.weight")).start,
                b_off: seg(&format!("l{i}.bias")).start,
            });
            if cfg.batch_norm {
                bns.push(Some(Bn {
                    dim: h,
                    gamma_off: seg(&format!("bn{i}.weight")).start,
                    beta_off: seg(&format!("bn{i}.bias")).start,
                    mean_off: seg(&format!("bn{i}.running_mean")).start,
                    var_off: seg(&format!("bn{i}.running_var")).start,
                    count_off: seg(&format!("bn{i}.num_batches_tracked")).start,
                    momentum: 0.1,
                    eps: 1e-5,
                }));
            } else {
                bns.push(None);
            }
            in_dim = h;
        }
        linears.push(Lin {
            in_dim,
            out_dim: cfg.classes,
            w_off: seg("out.weight").start,
            b_off: seg("out.bias").start,
        });
        Self {
            input_dim: cfg.input_dim,
            hidden: cfg.hidden.clone(),
            classes: cfg.classes,
            params: model.params().to_vec(),
            linears,
            bns,
        }
    }

    pub(crate) fn num_params(&self) -> usize {
        self.params.len()
    }

    pub(crate) fn params(&self) -> &[f32] {
        &self.params
    }

    pub(crate) fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn set_params(&mut self, new: &[f32]) {
        self.params.copy_from_slice(new);
    }

    /// Pre-refactor `loss_and_grad`: training mode with running-statistics
    /// updates, allocating every intermediate buffer.
    pub(crate) fn loss_and_grad(&mut self, x: &[f32], y: &[usize]) -> (f64, Vec<f32>) {
        let batch = x.len() / self.input_dim;
        assert_eq!(batch, y.len(), "batch/label count mismatch");
        let classes = self.classes;
        let (mut logits, caches) = self.forward(x, batch);
        gluefl_ml::loss::log_softmax_rows(&mut logits, batch, classes);
        let mut d_logits = vec![0.0f32; logits.len()];
        let loss = gluefl_ml::loss::nll_and_grad(&logits, y, classes, &mut d_logits);
        let grad = self.backward(batch, &caches, d_logits);
        (loss, grad)
    }

    fn forward(&mut self, x: &[f32], batch: usize) -> (Vec<f32>, Vec<LayerCache>) {
        let n_hidden = self.hidden.len();
        let mut caches = Vec::with_capacity(n_hidden);
        let mut activ: Vec<f32> = x.to_vec();
        for i in 0..n_hidden {
            let lin = self.linears[i];
            let z = self.linear_forward(&activ, batch, lin);
            let (post_bn, bn_cache) = match self.bns[i] {
                Some(bn) => {
                    let (out, cache) = self.bn_forward(&z, batch, bn);
                    (out, Some(cache))
                }
                None => (z.clone(), None),
            };
            let mut relu_mask = vec![false; post_bn.len()];
            let mut a = post_bn;
            for (v, m) in a.iter_mut().zip(relu_mask.iter_mut()) {
                if *v > 0.0 {
                    *m = true;
                } else {
                    *v = 0.0;
                }
            }
            caches.push(LayerCache {
                input: activ,
                bn: bn_cache,
                relu_mask,
            });
            activ = a;
        }
        let out_lin = *self.linears.last().expect("output layer exists");
        let logits = self.linear_forward(&activ, batch, out_lin);
        caches.push(LayerCache {
            input: activ,
            bn: None,
            relu_mask: Vec::new(),
        });
        (logits, caches)
    }

    fn backward(&self, batch: usize, caches: &[LayerCache], d_logits: Vec<f32>) -> Vec<f32> {
        let mut grad = vec![0.0f32; self.params.len()];
        let n_hidden = self.hidden.len();
        let out_lin = *self.linears.last().expect("output layer exists");
        let out_cache = caches.last().expect("output cache exists");
        let mut d_activ =
            self.linear_backward(&out_cache.input, batch, out_lin, &d_logits, &mut grad);
        for i in (0..n_hidden).rev() {
            let cache = &caches[i];
            for (d, &m) in d_activ.iter_mut().zip(&cache.relu_mask) {
                if !m {
                    *d = 0.0;
                }
            }
            let d_pre_bn = match (&self.bns[i], &cache.bn) {
                (Some(bn), Some(bn_cache)) => {
                    self.bn_backward(batch, *bn, bn_cache, &d_activ, &mut grad)
                }
                _ => d_activ,
            };
            let lin = self.linears[i];
            d_activ = self.linear_backward(&cache.input, batch, lin, &d_pre_bn, &mut grad);
        }
        grad
    }

    fn linear_forward(&self, input: &[f32], batch: usize, lin: Lin) -> Vec<f32> {
        let w = &self.params[lin.w_off..lin.w_off + lin.in_dim * lin.out_dim];
        let b = &self.params[lin.b_off..lin.b_off + lin.out_dim];
        let mut out = vec![0.0f32; batch * lin.out_dim];
        for r in 0..batch {
            let xin = &input[r * lin.in_dim..(r + 1) * lin.in_dim];
            let row = &mut out[r * lin.out_dim..(r + 1) * lin.out_dim];
            for (o, dst) in row.iter_mut().enumerate() {
                let wrow = &w[o * lin.in_dim..(o + 1) * lin.in_dim];
                let mut acc = b[o];
                for (xi, wi) in xin.iter().zip(wrow) {
                    acc += xi * wi;
                }
                *dst = acc;
            }
        }
        out
    }

    fn linear_backward(
        &self,
        input: &[f32],
        batch: usize,
        lin: Lin,
        d_out: &[f32],
        grad: &mut [f32],
    ) -> Vec<f32> {
        let w = &self.params[lin.w_off..lin.w_off + lin.in_dim * lin.out_dim];
        let mut d_in = vec![0.0f32; batch * lin.in_dim];
        let (gw, gb) = (lin.w_off, lin.b_off);
        for r in 0..batch {
            let xin = &input[r * lin.in_dim..(r + 1) * lin.in_dim];
            let drow = &d_out[r * lin.out_dim..(r + 1) * lin.out_dim];
            let din_row = &mut d_in[r * lin.in_dim..(r + 1) * lin.in_dim];
            for (o, &d) in drow.iter().enumerate() {
                grad[gb + o] += d;
                let wrow = &w[o * lin.in_dim..(o + 1) * lin.in_dim];
                let gw_row = gw + o * lin.in_dim;
                for j in 0..lin.in_dim {
                    grad[gw_row + j] += d * xin[j];
                    din_row[j] += d * wrow[j];
                }
            }
        }
        d_in
    }

    fn bn_forward(&mut self, z: &[f32], batch: usize, bn: Bn) -> (Vec<f32>, BnCache) {
        let dim = bn.dim;
        let mut mu = vec![0.0f32; dim];
        let mut var = vec![0.0f32; dim];
        let inv_b = 1.0 / batch as f32;
        for r in 0..batch {
            for (o, m) in mu.iter_mut().enumerate() {
                *m += z[r * dim + o] * inv_b;
            }
        }
        for r in 0..batch {
            for (o, v) in var.iter_mut().enumerate() {
                let d = z[r * dim + o] - mu[o];
                *v += d * d * inv_b;
            }
        }
        // Running-statistics update (PyTorch semantics, unbiased var).
        let unbias = if batch > 1 {
            batch as f32 / (batch as f32 - 1.0)
        } else {
            1.0
        };
        let m = bn.momentum;
        for o in 0..dim {
            let rm = &mut self.params[bn.mean_off + o];
            *rm = (1.0 - m) * *rm + m * mu[o];
            let rv = &mut self.params[bn.var_off + o];
            *rv = (1.0 - m) * *rv + m * var[o] * unbias;
        }
        self.params[bn.count_off] += 1.0;
        let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + bn.eps).sqrt()).collect();
        let gamma = &self.params[bn.gamma_off..bn.gamma_off + dim];
        let beta = &self.params[bn.beta_off..bn.beta_off + dim];
        let mut x_hat = vec![0.0f32; batch * dim];
        let mut out = vec![0.0f32; batch * dim];
        for r in 0..batch {
            for o in 0..dim {
                let xh = (z[r * dim + o] - mu[o]) * inv_std[o];
                x_hat[r * dim + o] = xh;
                out[r * dim + o] = gamma[o] * xh + beta[o];
            }
        }
        (out, BnCache { x_hat, inv_std })
    }

    fn bn_backward(
        &self,
        batch: usize,
        bn: Bn,
        cache: &BnCache,
        d_out: &[f32],
        grad: &mut [f32],
    ) -> Vec<f32> {
        let dim = bn.dim;
        let gamma = &self.params[bn.gamma_off..bn.gamma_off + dim];
        let b = batch as f32;
        let mut sum_dy = vec![0.0f32; dim];
        let mut sum_dy_xhat = vec![0.0f32; dim];
        for r in 0..batch {
            for o in 0..dim {
                let dy = d_out[r * dim + o];
                sum_dy[o] += dy;
                sum_dy_xhat[o] += dy * cache.x_hat[r * dim + o];
            }
        }
        for o in 0..dim {
            grad[bn.gamma_off + o] += sum_dy_xhat[o];
            grad[bn.beta_off + o] += sum_dy[o];
        }
        let mut d_in = vec![0.0f32; batch * dim];
        for r in 0..batch {
            for o in 0..dim {
                let dy = d_out[r * dim + o];
                let xh = cache.x_hat[r * dim + o];
                d_in[r * dim + o] =
                    gamma[o] * cache.inv_std[o] / b * (b * dy - sum_dy[o] - xh * sum_dy_xhat[o]);
            }
        }
        d_in
    }
}

/// The pre-refactor per-client training loop: deep model clone, fresh
/// allocating optimizer, allocating minibatch and gradient calls.
#[allow(clippy::too_many_arguments)]
pub(crate) fn baseline_local_train(
    proto: &BaselineMlp,
    global: &[f32],
    ds: &ClientDataset,
    steps: usize,
    batch: usize,
    lr: f32,
    momentum: f32,
    seed: u64,
    out: &mut [f32],
    stats_positions: &[usize],
    stats_out: &mut [f32],
    trainable_mask: &BitMask,
) {
    let mut model = proto.clone();
    model.set_params(global);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut opt = Sgd::new(model.num_params(), lr, momentum);
    for _ in 0..steps {
        let (bx, by) = ds.sample_batch(&mut rng, batch);
        let (_, grad) = model.loss_and_grad(&bx, &by);
        opt.step(model.params_mut(), &grad);
    }
    let trained = model.params();
    for (s, &p) in stats_out.iter_mut().zip(stats_positions) {
        *s = trained[p] - global[p];
    }
    vecops::masked_sub_into(out, trained, global, trainable_mask);
}

/// Pooled counterpart of [`baseline_local_train`] over the current
/// kernels, for the equivalence gate and the `new` timing arm.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pooled_local_train(
    model: &Mlp,
    global: &[f32],
    data: &SyntheticFlDataset,
    id: usize,
    steps: usize,
    batch: usize,
    lr: f32,
    momentum: f32,
    seed: u64,
    out: &mut [f32],
    stats_positions: &[usize],
    stats_out: &mut [f32],
    trainable_mask: &BitMask,
    slot: &mut gluefl_core::TrainSlot,
) {
    gluefl_core::local_train_into(
        model.topology(),
        global,
        data,
        id,
        steps,
        batch,
        lr,
        momentum,
        seed,
        out,
        stats_positions,
        stats_out,
        trainable_mask,
        slot,
    );
}
