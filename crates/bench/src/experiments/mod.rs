//! One module per paper artifact. See DESIGN.md §4 for the mapping.

pub mod common;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod kernels;
mod local_train_baseline;
pub mod prop12;
pub mod scale;
pub mod table2;
pub mod table3;
pub mod trace;
pub mod wire;

use crate::ExptOpts;

/// All experiment ids, in the paper's order.
pub const ALL: &[&str] = &[
    "fig1", "fig2", "table2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table3a",
    "table3b", "prop12", "wire", "kernels", "scale", "trace",
];

/// Dispatches an experiment by id.
///
/// # Errors
/// Returns an error for unknown ids.
pub fn run(id: &str, opts: &ExptOpts) -> Result<(), String> {
    match id {
        "fig1" => fig1::run(opts),
        "fig2" => fig2::run(opts),
        "table2" => table2::run(opts),
        "fig5" => fig5::run(opts),
        "fig6" => fig6::run(opts),
        "fig7" => fig7::run(opts),
        "fig8" => fig8::run(opts),
        "fig9" => fig9::run(opts),
        "fig10" => fig10::run(opts),
        "fig11" => fig11::run(opts),
        "table3a" => table3::run_3a(opts),
        "table3b" => table3::run_3b(opts),
        "prop12" => prop12::run(opts),
        "wire" => wire::run(opts),
        "kernels" => kernels::run(opts),
        "scale" => scale::run(opts),
        "trace" => trace::run(opts),
        "all" => {
            for id in ALL {
                println!("\n================ {id} ================");
                run(id, opts)?;
            }
            Ok(())
        }
        other => Err(format!(
            "unknown experiment '{other}' (expected one of {ALL:?} or 'all')"
        )),
    }
}
