//! Shared experiment plumbing: configs, strategy sets, common targets.

use crate::ExptOpts;
use gluefl_compress::ApfConfig;
use gluefl_core::{GlueFlParams, RunResult, SimConfig, Simulation, StrategyConfig};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;

/// Builds the scaled paper setup for `(dataset, model, strategy)`.
///
/// Evaluation every round for smooth accuracy-vs-bandwidth curves; target
/// accuracy left unset (experiments derive a common achievable target
/// post-hoc, matching the paper's "highest achievable by all approaches"
/// rule).
#[must_use]
pub fn setup(
    dataset: DatasetProfile,
    model: DatasetModel,
    strategy: StrategyConfig,
    opts: &ExptOpts,
) -> SimConfig {
    let mut cfg =
        SimConfig::paper_setup(dataset, model, strategy, opts.scale, opts.rounds, opts.seed);
    cfg.eval_every = 5;
    cfg.target_accuracy = None;
    if let Some(wire) = opts.wire {
        cfg.wire = wire;
    }
    cfg
}

/// The paper's four Table-2 strategies for a given round size and model.
#[must_use]
pub fn paper_strategies(k: usize, model: DatasetModel) -> Vec<StrategyConfig> {
    let q = match model {
        DatasetModel::ShuffleNet => 0.20,
        DatasetModel::MobileNet | DatasetModel::ResNet34 => 0.30,
    };
    vec![
        StrategyConfig::FedAvg,
        StrategyConfig::Stc { q },
        StrategyConfig::Apf {
            config: ApfConfig::default(),
        },
        StrategyConfig::GlueFl(GlueFlParams::paper_default(k, model)),
    ]
}

/// Runs one configuration and returns its result.
#[must_use]
pub fn run_config(cfg: SimConfig) -> RunResult {
    Simulation::new(cfg).run()
}

/// The paper's reporting rule (§5.1 / Table 2 caption): the target is the
/// highest accuracy achievable by *all* approaches. We take the minimum
/// over runs of each run's best 5-eval rolling mean, scaled slightly down
/// (0.98) so every run crosses it robustly.
#[must_use]
pub fn common_target(results: &[RunResult]) -> f64 {
    let mut target = f64::INFINITY;
    for r in results {
        let mut best: f64 = 0.0;
        let mut window: Vec<f64> = Vec::new();
        for rec in &r.rounds {
            if let Some(a) = rec.accuracy {
                window.push(a);
                // Rolling mean over (up to) the last 5 evaluations.
                let w = &window[window.len().saturating_sub(5)..];
                best = best.max(w.iter().sum::<f64>() / w.len() as f64);
            }
        }
        target = target.min(best);
    }
    (target * 0.98).max(0.0)
}

/// Re-derives at-target metrics for every run against a common target.
#[must_use]
pub fn with_target(results: Vec<RunResult>, target: f64) -> Vec<RunResult> {
    results
        .into_iter()
        .map(|r| RunResult::from_rounds(r.strategy.clone(), r.rounds, Some(target)))
        .collect()
}

/// Bytes → display gigabytes, optionally re-scaled to the paper's model
/// size (`reference_params / simulated_params`).
#[must_use]
pub fn display_gb(bytes: u64, cfg: &SimConfig, sim_dim: usize, opts: &ExptOpts) -> f64 {
    let factor = if opts.paper_scale {
        cfg.model.paper_scale_factor(sim_dim)
    } else {
        1.0
    };
    bytes as f64 * factor / 1e9
}

/// Seconds → display hours.
#[must_use]
pub fn hours(secs: f64) -> f64 {
    secs / 3600.0
}

/// One arm of a sensitivity sweep (Figures 5–8, 10, 11).
#[derive(Debug, Clone)]
pub struct SweepArm {
    /// Display label, e.g. `"GlueFL (S = 4K)"`.
    pub label: String,
    /// The configuration this arm runs.
    pub strategy: StrategyConfig,
}

/// Runs a figure-style sensitivity sweep on `(dataset, model)`:
/// every arm plus a FedAvg reference, under identical randomness. Prints
/// a summary table (downstream GB at the common target, final accuracy)
/// and writes the full accuracy-vs-cumulative-downstream curves to
/// `<figure>_<dataset>.csv`.
pub fn run_sweep(
    figure: &str,
    dataset: DatasetProfile,
    model: DatasetModel,
    arms: &[SweepArm],
    opts: &crate::ExptOpts,
) {
    let mut all_arms = vec![SweepArm {
        label: "FedAvg".into(),
        strategy: StrategyConfig::FedAvg,
    }];
    all_arms.extend(arms.iter().cloned());

    let results: Vec<RunResult> = all_arms
        .iter()
        .map(|arm| {
            let cfg = setup(dataset, model, arm.strategy.clone(), opts);
            run_config(cfg)
        })
        .collect();
    let target = common_target(&results);
    let results = with_target(results, target);

    let mut table = crate::Table::new([
        "arm",
        "DV@target (GB)",
        "reached",
        "final acc",
        "total DV (GB)",
    ]);
    let mut csv = String::from("arm,cum_down_gb,accuracy\n");
    let cfg0 = setup(dataset, model, StrategyConfig::FedAvg, opts);
    let sim_dim = {
        let mut rng = gluefl_tensor::rng::seeded_rng(opts.seed, "sweep-dim", 0);
        cfg0.model
            .build(cfg0.dataset.feature_dim, cfg0.dataset.classes, &mut rng)
            .num_params()
    };
    for (arm, r) in all_arms.iter().zip(&results) {
        for (bytes, acc) in r.accuracy_curve() {
            csv.push_str(&format!(
                "{},{:.5},{:.4}\n",
                arm.label,
                display_gb(bytes, &cfg0, sim_dim, opts),
                acc
            ));
        }
        table.row([
            arm.label.clone(),
            format!(
                "{:.3}",
                display_gb(r.at_target.down_bytes, &cfg0, sim_dim, opts)
            ),
            if r.target_round.is_some() {
                "yes".into()
            } else {
                "no".to_owned()
            },
            format!("{:.1}%", r.total.accuracy * 100.0),
            format!(
                "{:.3}",
                display_gb(r.total.down_bytes, &cfg0, sim_dim, opts)
            ),
        ]);
    }
    println!(
        "\n{} on {} / {} — common target {:.1}%",
        figure,
        dataset.name(),
        model.name(),
        target * 100.0
    );
    println!("{}", table.render());
    // Terminal rendition of the paper's accuracy-vs-bandwidth panel.
    let chart_series: Vec<crate::plot::Series> = all_arms
        .iter()
        .zip(&results)
        .map(|(arm, r)| {
            crate::plot::Series::new(
                arm.label.clone(),
                r.accuracy_curve()
                    .into_iter()
                    .map(|(bytes, acc)| (display_gb(bytes, &cfg0, sim_dim, opts), acc))
                    .collect(),
            )
        })
        .collect();
    println!(
        "{}",
        crate::plot::render(
            &chart_series,
            72,
            16,
            "cumulative downstream (GB)",
            "accuracy"
        )
    );
    crate::write_csv(
        &opts.out_dir,
        &format!("{figure}_{}.csv", dataset.name()),
        &csv,
    );
}

/// The two (dataset, model) pairs the paper's sensitivity studies use:
/// FEMNIST/ShuffleNet and Google Speech/ResNet-34 (§5.3). In `--quick`
/// mode only the first pair runs.
#[must_use]
pub fn sensitivity_pairs(opts: &crate::ExptOpts) -> Vec<(DatasetProfile, DatasetModel)> {
    if opts.quick {
        vec![(DatasetProfile::Femnist, DatasetModel::ShuffleNet)]
    } else {
        vec![
            (DatasetProfile::Femnist, DatasetModel::ShuffleNet),
            (DatasetProfile::GoogleSpeech, DatasetModel::ResNet34),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gluefl_core::RoundRecord;

    fn result_with_accs(name: &str, accs: &[f64]) -> RunResult {
        let rounds: Vec<RoundRecord> = accs
            .iter()
            .enumerate()
            .map(|(i, &a)| RoundRecord {
                round: i as u32,
                accuracy: Some(a),
                ..Default::default()
            })
            .collect();
        RunResult::from_rounds(name, rounds, None)
    }

    #[test]
    fn common_target_takes_min_of_best_rolling() {
        let a = result_with_accs("a", &[0.1, 0.2, 0.5, 0.5, 0.5, 0.5, 0.5]);
        let b = result_with_accs("b", &[0.1, 0.2, 0.8, 0.8, 0.8, 0.8, 0.8]);
        let t = common_target(&[a, b]);
        // a's best rolling mean: last 5 = (0.2+0.5·4)/5 ... best window is
        // [0.5;5]/5 = 0.5 → wait, rounds: windows end at each eval;
        // best for a is 0.5 (the all-0.5 window). Scaled by 0.98.
        assert!((t - 0.5 * 0.98).abs() < 0.03);
    }

    #[test]
    fn with_target_recomputes_target_round() {
        let a = result_with_accs("a", &[0.1, 0.2, 0.5, 0.5, 0.5, 0.5, 0.5]);
        assert!(a.target_round.is_none());
        let out = with_target(vec![a], 0.3);
        assert!(out[0].target_round.is_some());
    }

    #[test]
    fn strategies_match_model_ratios() {
        let s = paper_strategies(30, DatasetModel::ShuffleNet);
        assert_eq!(s.len(), 4);
        match &s[1] {
            StrategyConfig::Stc { q } => assert!((q - 0.20).abs() < 1e-12),
            other => panic!("expected STC, got {other:?}"),
        }
        let s = paper_strategies(30, DatasetModel::ResNet34);
        match &s[3] {
            StrategyConfig::GlueFl(p) => assert!((p.q - 0.30).abs() < 1e-12),
            other => panic!("expected GlueFL, got {other:?}"),
        }
    }

    #[test]
    fn display_units() {
        let opts = ExptOpts::default();
        let cfg = setup(
            DatasetProfile::Femnist,
            DatasetModel::ShuffleNet,
            StrategyConfig::FedAvg,
            &opts,
        );
        assert!((display_gb(2_000_000_000, &cfg, 1000, &opts) - 2.0).abs() < 1e-9);
        assert!((hours(7200.0) - 2.0).abs() < 1e-12);
    }
}
