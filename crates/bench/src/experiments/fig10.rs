//! Figure 10: effect of shared-mask regeneration interval `I`.
//!
//! Regeneration (§3.3) rebuilds the shared mask from fresh
//! locally-important coordinates every `I` rounds. The paper compares
//! I ∈ {10, 20, ∞}: I = 10 converges best; never regenerating (∞) lets
//! the mask go stale and costs accuracy.

use crate::experiments::common::{self, SweepArm};
use crate::ExptOpts;
use gluefl_core::{GlueFlParams, StrategyConfig};
use gluefl_ml::DatasetModel;

fn arms(k: usize, model: DatasetModel) -> Vec<SweepArm> {
    [
        (Some(10u32), "I = 10"),
        (Some(20), "I = 20"),
        (None, "I = ∞"),
    ]
    .into_iter()
    .map(|(interval, label)| {
        let mut p = GlueFlParams::paper_default(k, model);
        p.regen_interval = interval;
        SweepArm {
            label: format!("GlueFL ({label})"),
            strategy: StrategyConfig::GlueFl(p),
        }
    })
    .collect()
}

/// Runs the experiment.
///
/// # Errors
/// Never fails; the `Result` matches the dispatcher's signature.
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    println!("Figure 10: effect of shared mask regeneration (I = 10/20/∞)");
    for (dataset, model) in common::sensitivity_pairs(opts) {
        let cfg = common::setup(dataset, model, StrategyConfig::FedAvg, opts);
        common::run_sweep("fig10", dataset, model, &arms(cfg.round_size, model), opts);
    }
    println!(
        "paper check: I = 10 gives the best accuracy per unit of downstream \
         bandwidth; I = ∞ (no regeneration) trails"
    );
    Ok(())
}
