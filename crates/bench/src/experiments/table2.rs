//! Table 2: volume and time to target accuracy, all strategies × tasks.
//!
//! For each (dataset, model) pair the paper reports Downstream Volume
//! (DV), Total Volume (TV), Download Time (DT), and Total training Time
//! (TT) at the target accuracy — the highest accuracy achievable by all
//! approaches. We run FedAvg, STC, APF, and GlueFL under identical
//! sampled randomness, derive the common target post-hoc, and print the
//! same four columns.

use crate::experiments::common;
use crate::{write_csv, ExptOpts, Table};
use gluefl_core::{RunResult, SimConfig};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;

/// The (dataset, model) pairs of Table 2.
#[must_use]
pub fn table2_pairs() -> Vec<(DatasetProfile, DatasetModel)> {
    vec![
        (DatasetProfile::Femnist, DatasetModel::ShuffleNet),
        (DatasetProfile::Femnist, DatasetModel::MobileNet),
        (DatasetProfile::OpenImage, DatasetModel::ShuffleNet),
        (DatasetProfile::OpenImage, DatasetModel::MobileNet),
        (DatasetProfile::GoogleSpeech, DatasetModel::ResNet34),
    ]
}

/// Runs the experiment.
///
/// # Errors
/// Never fails; the `Result` matches the dispatcher's signature.
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    println!("Table 2: bandwidth and training time to target accuracy");
    let pairs = if opts.quick {
        vec![(DatasetProfile::Femnist, DatasetModel::ShuffleNet)]
    } else {
        table2_pairs()
    };
    let mut table = Table::new([
        "dataset", "model", "strategy", "target", "DV (GB)", "TV (GB)", "DT (h)", "TT (h)",
        "reached",
    ]);
    let mut csv = String::from(
        "dataset,model,strategy,target,reached,target_round,dv_gb,tv_gb,dt_h,tt_h,final_acc\n",
    );

    for (dataset, model) in pairs {
        let cfg0 = common::setup(dataset, model, gluefl_core::StrategyConfig::FedAvg, opts);
        let strategies = common::paper_strategies(cfg0.round_size, model);
        let results: Vec<RunResult> = strategies
            .iter()
            .map(|s| {
                let cfg = common::setup(dataset, model, s.clone(), opts);
                common::run_config(cfg)
            })
            .collect();
        let target = common::common_target(&results);
        let results = common::with_target(results, target);
        for r in &results {
            emit_row(&mut table, &mut csv, dataset, model, r, target, &cfg0, opts);
        }
        println!(
            "  {} / {}: common target accuracy {:.1}%",
            dataset.name(),
            model.name(),
            target * 100.0
        );
    }
    write_csv(&opts.out_dir, "table2.csv", &csv);
    println!("{}", table.render());
    println!(
        "paper check: GlueFL has the lowest DV and DT in every row; STC/APF \
         beat FedAvg on TV but not on DV"
    );
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn emit_row(
    table: &mut Table,
    csv: &mut String,
    dataset: DatasetProfile,
    model: DatasetModel,
    r: &RunResult,
    target: f64,
    cfg: &SimConfig,
    opts: &ExptOpts,
) {
    // Display at the simulated model size (or paper scale with the flag);
    // the simulated dimension is recoverable from any round's byte counts,
    // but we use the config's built model dimension for exactness.
    let sim_dim = sim_dim_of(cfg, opts);
    let dv = common::display_gb(r.at_target.down_bytes, cfg, sim_dim, opts);
    let tv = common::display_gb(r.at_target.total_bytes, cfg, sim_dim, opts);
    let dt = common::hours(r.at_target.download_secs);
    let tt = common::hours(r.at_target.total_secs);
    let reached = r.target_round.is_some();
    table.row([
        dataset.name().to_owned(),
        model.name().to_owned(),
        r.strategy.clone(),
        format!("{:.1}%", target * 100.0),
        format!("{dv:.3}"),
        format!("{tv:.3}"),
        format!("{dt:.4}"),
        format!("{tt:.4}"),
        if reached {
            "yes".into()
        } else {
            "no".to_owned()
        },
    ]);
    csv.push_str(&format!(
        "{},{},{},{:.4},{},{},{:.4},{:.4},{:.3},{:.3},{:.4}\n",
        dataset.name(),
        model.name(),
        r.strategy,
        target,
        reached,
        r.target_round.map_or(String::new(), |t| t.to_string()),
        dv,
        tv,
        dt,
        tt,
        r.total.accuracy,
    ));
}

fn sim_dim_of(cfg: &SimConfig, opts: &ExptOpts) -> usize {
    // Rebuild a throwaway model to read the exact simulated dimension.
    let mut rng = gluefl_tensor::rng::seeded_rng(opts.seed, "table2-dim", 0);
    cfg.model
        .build(cfg.dataset.feature_dim, cfg.dataset.classes, &mut rng)
        .num_params()
}
