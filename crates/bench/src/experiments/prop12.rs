//! Propositions 1 & 2: re-sampling probabilities, analytic vs simulated.
//!
//! Reproduces the §3.1 case study (N = 2800, K = 30, S = 120, C = 24):
//! a sticky client's probability of being re-sampled after r rounds is
//! 20.0%, 15.0%, 11.2%, 8.5%, 6.4%, 4.8% for r = 1..6, against ~1.1% for
//! uniform sampling — and validates the closed forms against a Monte
//! Carlo run of the actual sticky sampler.

use crate::{write_csv, ExptOpts, Table};
use gluefl_sampling::analysis::{
    sticky_advantage_horizon, sticky_resample_prob, uniform_resample_prob,
};
use gluefl_sampling::{AllOnline, StickySampler};
use gluefl_tensor::rng::seeded_rng;

/// Runs the experiment.
///
/// # Errors
/// Never fails; the `Result` matches the dispatcher's signature.
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    println!("Propositions 1 & 2: re-sampling probability after r rounds");
    // Case-study parameters at paper scale — closed forms are free.
    let (n, k, s, c) = (2800usize, 30usize, 120usize, 24usize);
    let mut table = Table::new(["r", "sticky P(r)", "uniform P(r)", "advantage"]);
    let mut csv = String::from("r,sticky_prob,uniform_prob\n");
    for r in 1..=10u32 {
        let ps = sticky_resample_prob(n, k, s, c, r);
        let pu = uniform_resample_prob(n, k, r);
        table.row([
            r.to_string(),
            format!("{:.1}%", ps * 100.0),
            format!("{:.2}%", pu * 100.0),
            format!("{:.1}x", ps / pu),
        ]);
        csv.push_str(&format!("{r},{ps:.6},{pu:.6}\n"));
    }
    println!("{}", table.render());
    println!(
        "advantage horizon (Appendix A.3): sticky beats uniform for {} rounds",
        sticky_advantage_horizon(n, k, s, c).map_or("∞".into(), |h| h.to_string())
    );
    write_csv(&opts.out_dir, "prop12_analytic.csv", &csv);

    // Monte Carlo validation at a reduced scale (exact process).
    let (n, k, s, c) = (280usize, 6usize, 24usize, 4usize);
    let trials = if opts.quick { 20_000u32 } else { 120_000 };
    let mut rng = seeded_rng(opts.seed, "prop12-mc", 0);
    let mut sampler = StickySampler::new(n, s, &mut rng);
    let mut last_seen: Vec<Option<u32>> = vec![None; n];
    let mut gaps: Vec<u32> = Vec::new();
    for t in 0..trials {
        let draw = sampler.draw(&mut rng, c, k - c, &mut AllOnline);
        for cl in draw.all() {
            if let Some(prev) = last_seen[cl] {
                gaps.push(t - prev);
            }
        }
        sampler.rebalance(&mut rng, &draw.sticky, &draw.fresh);
        for cl in draw.all() {
            last_seen[cl] = Some(t);
        }
    }
    let total = gaps.len() as f64;
    let mut mc = Table::new(["r", "Monte Carlo", "Proposition 2", "abs diff"]);
    let mut mc_csv = String::from("r,monte_carlo,analytic\n");
    for r in 1..=6u32 {
        let observed = gaps.iter().filter(|&&g| g == r).count() as f64 / total;
        let predicted = sticky_resample_prob(n, k, s, c, r);
        mc.row([
            r.to_string(),
            format!("{:.2}%", observed * 100.0),
            format!("{:.2}%", predicted * 100.0),
            format!("{:.3}pp", (observed - predicted).abs() * 100.0),
        ]);
        mc_csv.push_str(&format!("{r},{observed:.6},{predicted:.6}\n"));
    }
    let mean_gap = gaps.iter().map(|&g| f64::from(g)).sum::<f64>() / total;
    println!("\nMonte Carlo validation (N={n}, K={k}, S={s}, C={c}, {trials} rounds):");
    println!("{}", mc.render());
    println!(
        "mean re-sampling gap {:.1} rounds vs N/K = {:.1} (Prop. 2: the mean is \
         unchanged; stickiness only shifts mass toward small r)",
        mean_gap,
        n as f64 / k as f64
    );
    write_csv(&opts.out_dir, "prop12_montecarlo.csv", &mc_csv);
    Ok(())
}
