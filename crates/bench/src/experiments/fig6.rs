//! Figure 6: effect of the sticky-group size `S`.
//!
//! The paper sweeps S ∈ {30, 60, 120, 240} with K = 30, i.e.
//! S/K ∈ {1, 2, 4, 8}. We parameterise by the ratio so the sweep is
//! scale-invariant. Larger S gives more diverse sticky data (better
//! accuracy) at more bandwidth; S = 4K is the paper default.

use crate::experiments::common::{self, SweepArm};
use crate::ExptOpts;
use gluefl_core::{GlueFlParams, StrategyConfig};
use gluefl_ml::DatasetModel;

fn arms(k: usize, n: usize, model: DatasetModel) -> Vec<SweepArm> {
    [1usize, 2, 4, 8]
        .into_iter()
        .filter(|m| m * k < n) // sticky group must leave non-sticky clients
        .map(|m| {
            let mut p = GlueFlParams::paper_default(k, model);
            p.sticky_group = m * k;
            // Keep the paper's C = 4K/5 draw, which requires C <= S.
            p.sticky_draw = p.sticky_draw.min(p.sticky_group);
            SweepArm {
                label: format!("GlueFL (S = {}K)", m),
                strategy: StrategyConfig::GlueFl(p),
            }
        })
        .collect()
}

/// Runs the experiment.
///
/// # Errors
/// Never fails; the `Result` matches the dispatcher's signature.
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    println!("Figure 6: effect of sticky group size S (paper: S = 30..240, K = 30)");
    for (dataset, model) in common::sensitivity_pairs(opts) {
        let cfg = common::setup(dataset, model, StrategyConfig::FedAvg, opts);
        let n = cfg.dataset.clients;
        common::run_sweep(
            "fig6",
            dataset,
            model,
            &arms(cfg.round_size, n, model),
            opts,
        );
    }
    println!(
        "paper check: very small S hurts accuracy (little data diversity in the \
         sticky group); S = 4K is a good default"
    );
    Ok(())
}
