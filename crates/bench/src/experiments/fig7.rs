//! Figure 7: effect of the sticky draw count `C`.
//!
//! The paper sweeps C ∈ {6, 18, 24} with K = 30 (C/K ∈ {0.2, 0.6, 0.8}).
//! Small C means more fresh clients per round — each of which downloads a
//! large stale update — so bandwidth grows sharply (C = 6 adds 76%
//! download per round in the paper) with no accuracy benefit.

use crate::experiments::common::{self, SweepArm};
use crate::ExptOpts;
use gluefl_core::{GlueFlParams, StrategyConfig};
use gluefl_ml::DatasetModel;

fn arms(k: usize, model: DatasetModel) -> Vec<SweepArm> {
    // C/K ratios of the paper's sweep, largest (default) last.
    [(1usize, 5usize), (3, 5), (4, 5)]
        .into_iter()
        .map(|(num, den)| {
            let mut p = GlueFlParams::paper_default(k, model);
            p.sticky_draw = (k * num / den).max(1);
            SweepArm {
                label: format!("GlueFL (C = {}K/{})", num, den),
                strategy: StrategyConfig::GlueFl(p),
            }
        })
        .collect()
}

/// Runs the experiment.
///
/// # Errors
/// Never fails; the `Result` matches the dispatcher's signature.
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    println!("Figure 7: effect of sticky sample count C (paper: C = 6/18/24, K = 30)");
    for (dataset, model) in common::sensitivity_pairs(opts) {
        let cfg = common::setup(dataset, model, StrategyConfig::FedAvg, opts);
        common::run_sweep("fig7", dataset, model, &arms(cfg.round_size, model), opts);
    }
    println!(
        "paper check: small C costs substantially more downstream bandwidth per \
         round while accuracy is flat — large C (4K/5) is preferable"
    );
    Ok(())
}
