//! Figure 5: unbiased vs equal aggregation weights.
//!
//! GlueFL (Equal) uses biased `1/K` weights; GlueFL uses the unbiased
//! inverse-propensity weights of §3.1. The paper shows equal weights
//! converge slower per unit of downstream bandwidth (41% extra bandwidth
//! on Google Speech). STC and APF are included as references.

use crate::experiments::common::{self, SweepArm};
use crate::ExptOpts;
use gluefl_compress::ApfConfig;
use gluefl_core::{GlueFlParams, StrategyConfig};
use gluefl_ml::DatasetModel;

fn arms(k: usize, model: DatasetModel) -> Vec<SweepArm> {
    let q = match model {
        DatasetModel::ShuffleNet => 0.20,
        DatasetModel::MobileNet | DatasetModel::ResNet34 => 0.30,
    };
    let unbiased = GlueFlParams::paper_default(k, model);
    let mut equal = unbiased.clone();
    equal.equal_weights = true;
    vec![
        SweepArm {
            label: "STC".into(),
            strategy: StrategyConfig::Stc { q },
        },
        SweepArm {
            label: "APF".into(),
            strategy: StrategyConfig::Apf {
                config: ApfConfig::default(),
            },
        },
        SweepArm {
            label: "GlueFL (Equal)".into(),
            strategy: StrategyConfig::GlueFl(equal),
        },
        SweepArm {
            label: "GlueFL".into(),
            strategy: StrategyConfig::GlueFl(unbiased),
        },
    ]
}

/// Runs the experiment.
///
/// # Errors
/// Never fails; the `Result` matches the dispatcher's signature.
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    println!("Figure 5: effect of aggregation weights (unbiased vs equal)");
    for (dataset, model) in common::sensitivity_pairs(opts) {
        let cfg = common::setup(dataset, model, StrategyConfig::FedAvg, opts);
        common::run_sweep("fig5", dataset, model, &arms(cfg.round_size, model), opts);
    }
    println!(
        "paper check: unbiased GlueFL reaches the target with no more (usually \
         less) downstream bandwidth than GlueFL (Equal)"
    );
    Ok(())
}
