//! Hot-path kernel microbenchmarks: pre-refactor baselines vs the current
//! word-level kernels, with a machine-readable `BENCH_kernels.json`.
//!
//! This is the perf ledger for the compute spine (top-k sparsification,
//! masked delta aggregation, masked apply, and the `K × steps` local
//! client training loop — the per-round dominant costs). The *baselines
//! are compiled into this experiment*: they are verbatim copies of the
//! pre-refactor implementations (per-bit scope filtering + index-keyed
//! introselect; per-client indirect sparse scatter; deep-clone-per-client
//! allocating training, see the `local_train_baseline` module), so every
//! run re-measures the speedup on the machine at hand rather than
//! trusting historical numbers. Each pair is also checked for identical
//! output before timing.
//!
//! Run with `expt kernels [--quick] [--out DIR] [--check FILE]
//! [--filter KERNEL]`; writes `BENCH_kernels.json` into the output
//! directory. With `--check FILE` the run fails if the committed ledger
//! `FILE` is missing any kernel entry this benchmark emits (CI's
//! ledger-freshness gate). With `--filter KERNEL` only entries whose
//! name contains the substring are measured and emitted — the fast loop
//! for re-running one kernel while tuning (input generation is shared
//! and unconditional, so a filtered entry sees exactly the data the full
//! run would hand it).
//!
//! The `gemm_*` entries time the blocked [`gluefl_tensor::gemm`] kernels
//! against their plain-loop reference twins at the paper's MLP shapes
//! ([192, 96] hidden layers, batch 16, plus an eval-sized batch); each
//! pair is asserted bit-identical before timing.
//!
//! The `wire_*` entries time the [`gluefl_wire`] frame writer (the
//! per-client serialize/deserialize step of every round) against
//! first-cut twins — fresh allocations, per-element pushes, per-bit
//! bitmap walks, and the definitional bit-at-a-time CRC-16 — at the
//! paper's upload shape (q = 4% of d): the legacy v1 layout (bitmap
//! positions) and the v2 entropy layout (`wire_encode_varint`, the
//! delta-varint position section). Every encoder pair is asserted
//! byte-identical and the decoder pair reconstruction-identical before
//! timing.
//!
//! The `stream_fold_sparse` entry times the round loop's aggregation
//! phase end to end: the per-arrival streaming fold (the
//! `StreamingAggregator` path the socket server and the simulator now
//! share) against the pre-refactor collect-then-aggregate round, both
//! producing bit-identical `MaskedUpdate`s over the same K = 30 sparse
//! uploads.

use super::local_train_baseline::{baseline_local_train, pooled_local_train, BaselineMlp};
use crate::ExptOpts;
use gluefl_core::aggregate::{
    accumulate_sparse, accumulate_sparse_packed, accumulate_weighted_values,
};
use gluefl_core::batch_local_train_into;
use gluefl_core::ScratchPool;
use gluefl_core::TrainSlot;
use gluefl_data::{DatasetProfile, SyntheticFlDataset};
use gluefl_ml::{BatchTrainScratch, Mlp, MlpConfig, Sgd, TrainScratch};
use gluefl_tensor::gemm::{
    gemm_nn, gemm_nn_batch, gemm_nn_ref, gemm_nt, gemm_nt_ref, gemm_tn, gemm_tn_ref, BatchOperand,
};
use gluefl_tensor::rng::derive_seed;
use gluefl_tensor::{
    top_k_abs_masked_into, top_k_abs_packed_into, vecops, BitMask, MaskedUpdate, SparseUpdate,
    TopKScope, TopKScratch,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured kernel pair.
struct Entry {
    name: &'static str,
    baseline_ns: f64,
    new_ns: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.baseline_ns / self.new_ns
    }
}

/// Runs the kernel benchmark suite and writes `BENCH_kernels.json`.
///
/// # Errors
/// Returns an error when the output directory cannot be written.
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    // Paper scale: ShuffleNet-sized flat model, q_shr = 16%, q = 20%.
    let d = if opts.quick { 100_000 } else { 1_000_000 };
    let reps = if opts.quick { 3 } else { 9 };
    let clients = 30;

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let values: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mask = BitMask::from_indices(d, (0..d).filter(|_| rng.gen::<f64>() < 0.16));
    let k = d / 25; // q − q_shr = 4%

    let mut entries = Vec::new();

    // --- top-k over the Outside scope (Algorithm 3 line 17). ---
    if opts.kernel_selected("topk_outside_16pct_mask") {
        let expected = baseline_top_k_outside(&values, k, &mask);
        let mut scratch = TopKScratch::with_capacity(d);
        let got = top_k_abs_masked_into(&values, k, TopKScope::Outside(&mask), &mut scratch);
        assert_eq!(got, expected.as_slice(), "top-k kernels disagree");
        let (baseline_ns, new_ns) = time_pair_ns(
            reps,
            || baseline_top_k_outside(&values, k, &mask).len(),
            || top_k_abs_masked_into(&values, k, TopKScope::Outside(&mask), &mut scratch).len(),
        );
        entries.push(Entry {
            name: "topk_outside_16pct_mask",
            baseline_ns,
            new_ns,
        });
    }

    // --- pool-parallel top-k candidate pass (parallel builds only). ---
    // The All-scope selection over the full 1M-dim vector routes its
    // candidate pass through the work-stealing pool; the baseline is the
    // same verbatim pre-refactor twin (an all-zeros Outside scope visits
    // every position).
    #[cfg(feature = "parallel")]
    if opts.kernel_selected("topk_parallel") {
        let zeros = BitMask::zeros(d);
        let expected = baseline_top_k_outside(&values, k, &zeros);
        let mut scratch = TopKScratch::with_capacity(d);
        let got = top_k_abs_masked_into(&values, k, TopKScope::All, &mut scratch);
        assert_eq!(got, expected.as_slice(), "parallel top-k diverged");
        let (baseline_ns, new_ns) = time_pair_ns(
            reps,
            || baseline_top_k_outside(&values, k, &zeros).len(),
            || top_k_abs_masked_into(&values, k, TopKScope::All, &mut scratch).len(),
        );
        entries.push(Entry {
            name: "topk_parallel",
            baseline_ns,
            new_ns,
        });
    }

    // --- masked delta aggregation (Algorithm 3 lines 21–24). ---
    if opts.kernel_selected("aggregate_masked_30_clients") {
        let splits: Vec<(SparseUpdate, SparseUpdate)> = (0..clients)
            .map(|c| {
                let mut crng = StdRng::seed_from_u64(opts.seed ^ (c as u64 + 1));
                let shared_vals: Vec<(u32, f32)> = mask
                    .iter_ones()
                    .map(|i| (i as u32, crng.gen_range(-1.0f32..1.0)))
                    .collect();
                let shared = SparseUpdate::from_pairs(d, shared_vals);
                let mut uniq = Vec::new();
                for i in 0..d as u32 {
                    if crng.gen::<f64>() < 0.04 {
                        uniq.push((i, crng.gen_range(-1.0f32..1.0)));
                    }
                }
                (shared, SparseUpdate::from_pairs(d, uniq))
            })
            .collect();
        let weights: Vec<f32> = (0..clients).map(|c| 1.0 / (c + 1) as f32).collect();

        let expected = baseline_aggregate(&splits, &weights, d);
        let mut pool = ScratchPool::new();
        let got = fused_aggregate(&splits, &weights, d, &mask, &mut pool);
        // Per accumulator position both paths add contributions in client
        // order, so the fused kernel is bit-identical to the baseline.
        assert_eq!(expected, got, "aggregation kernels diverged");
        pool.put(got);
        let (baseline_ns, new_ns) = time_pair_ns(
            reps,
            || baseline_aggregate(&splits, &weights, d).len(),
            || {
                let out = fused_aggregate(&splits, &weights, d, &mask, &mut pool);
                let n = out.len();
                pool.put(out);
                n
            },
        );
        entries.push(Entry {
            name: "aggregate_masked_30_clients",
            baseline_ns,
            new_ns,
        });
    }

    // --- packed unique aggregation + packed top-k (the O(q·d) GlueFL
    // aggregate). Baseline: the dense-era staging — accumulate the 30
    // clients' unique parts into a d-length buffer and run the dense
    // top-k over it. New: accumulate straight into (support, packed)
    // form and select over the packed pair, never touching O(d) floats.
    // Both paths are gated for identical selections and bit-identical
    // sums before timing. ---
    if opts.kernel_selected("aggregate_packed_topk") {
        let uniques: Vec<SparseUpdate> = (0..clients)
            .map(|c| {
                let mut crng = StdRng::seed_from_u64(opts.seed ^ 0x9a77 ^ ((c as u64) << 8));
                let mut pairs = Vec::new();
                for i in 0..d as u32 {
                    if crng.gen::<f64>() < 0.04 {
                        pairs.push((i, crng.gen_range(-1.0f32..1.0)));
                    }
                }
                SparseUpdate::from_pairs(d, pairs)
            })
            .collect();
        let weights: Vec<f32> = (0..clients).map(|c| 1.0 / (c + 1) as f32).collect();
        let uentries: Vec<(f32, &SparseUpdate)> =
            uniques.iter().zip(&weights).map(|(u, &w)| (w, u)).collect();
        let mut pool = ScratchPool::new();
        let mut dense_scratch = TopKScratch::with_capacity(d);
        let mut packed_scratch = TopKScratch::new();
        let mut support = BitMask::zeros(d);
        let mut offsets = Vec::new();
        let mut packed = Vec::new();
        // Equivalence gate: same selection, bit-identical sums.
        {
            let dense = accumulate_sparse(&uentries, d, &mut pool);
            let want =
                top_k_abs_masked_into(&dense, k, TopKScope::Outside(&mask), &mut dense_scratch)
                    .to_vec();
            accumulate_sparse_packed(&uentries, d, &mut support, &mut offsets, &mut packed);
            let got = top_k_abs_packed_into(
                &support,
                &packed,
                k,
                TopKScope::Outside(&mask),
                &mut packed_scratch,
            );
            assert_eq!(got, want.as_slice(), "packed aggregate top-k diverged");
            let mut r = 0usize;
            support.for_each_one(|i| {
                assert_eq!(
                    packed[r].to_bits(),
                    dense[i].to_bits(),
                    "packed sum diverged at {i}"
                );
                r += 1;
            });
            pool.put(dense);
        }
        let (baseline_ns, new_ns) = time_pair_ns(
            reps,
            || {
                let dense = accumulate_sparse(&uentries, d, &mut pool);
                let n =
                    top_k_abs_masked_into(&dense, k, TopKScope::Outside(&mask), &mut dense_scratch)
                        .len();
                pool.put(dense);
                n
            },
            || {
                accumulate_sparse_packed(&uentries, d, &mut support, &mut offsets, &mut packed);
                top_k_abs_packed_into(
                    &support,
                    &packed,
                    k,
                    TopKScope::Outside(&mask),
                    &mut packed_scratch,
                )
                .len()
            },
        );
        entries.push(Entry {
            name: "aggregate_packed_topk",
            baseline_ns,
            new_ns,
        });
    }

    // --- masked server-update application (the simulator apply path). ---
    // Baseline: the pre-refactor dense walk — densified update added with
    // `add_assign` over all d positions, then a dense changed-position
    // scan. New: `MaskedUpdate::add_to` (word-level scatter) plus the
    // mask-driven `for_each_nonzero` scan. Two densities: the full round
    // support q = 20% (near break-even: a random 20% mask leaves almost
    // no skippable words) and the slowly-shifting q − q_shr = 4% tail,
    // where the structural sparsity pays off.
    for (name, density) in [("masked_apply_20pct", 0.20), ("masked_apply_4pct", 0.04)] {
        let apply_mask = BitMask::from_indices(d, (0..d).filter(|_| rng.gen::<f64>() < density));
        let packed: Vec<f32> = (0..apply_mask.count_ones())
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        let update = MaskedUpdate::new(apply_mask, packed);
        let dense_update = update.to_dense();
        let params: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        // The inputs above always consume `rng`, so a filtered run hands
        // the surviving entries exactly the full run's data.
        if !opts.kernel_selected(name) {
            continue;
        }
        // Equivalence gate: both apply paths and both scans must agree.
        {
            let mut a = params.clone();
            vecops::add_assign(&mut a, &dense_update);
            let mut b = params.clone();
            update.add_to(&mut b);
            assert!(
                a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "apply kernels diverged"
            );
            let dense_changed = dense_update.iter().filter(|v| **v != 0.0).count();
            let mut masked_changed = 0usize;
            update.for_each_nonzero(|_, _| masked_changed += 1);
            assert_eq!(dense_changed, masked_changed, "changed scans diverged");
        }
        let mut params_base = params.clone();
        let mut params_new = params;
        let (baseline_ns, new_ns) = time_pair_ns(
            reps,
            || {
                vecops::add_assign(&mut params_base, &dense_update);
                dense_update.iter().filter(|v| **v != 0.0).count()
            },
            || {
                update.add_to(&mut params_new);
                let mut changed = 0usize;
                update.for_each_nonzero(|_, _| changed += 1);
                changed
            },
        );
        entries.push(Entry {
            name,
            baseline_ns,
            new_ns,
        });
    }

    // --- run-walk masked scatter (the `MaskedUpdate::add_to` inner loop). ---
    // Baseline: the per-bit word walk `BitMask::scatter_add` (one scalar
    // add per set bit). New: `BitMask::scatter_add_runs` — one contiguous
    // AXPY per run, the kernel `add_to` now dispatches to. The shape is
    // the run-structured case the apply path actually sees: a blocky
    // shared mask (64-wide runs, 16% density, mirroring layer-clustered
    // supports), where the run walk amortises the per-bit dispatch.
    {
        let rle_mask = BitMask::from_indices(d, (0..d).filter(|i| i % 400 < 64));
        let rle_packed: Vec<f32> = (0..rle_mask.count_ones())
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        // Inputs always consume `rng`, so filtered runs see the full
        // run's data.
        if opts.kernel_selected("masked_apply_rle") {
            let params: Vec<f32> = values.clone();
            let mut params_base = params.clone();
            let mut params_new = params;
            rle_mask.scatter_add(&mut params_base, &rle_packed, 1.0);
            rle_mask.scatter_add_runs(&mut params_new, &rle_packed, 1.0);
            assert!(
                params_base
                    .iter()
                    .zip(&params_new)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "run-walk scatter diverged from the per-bit walk"
            );
            let (baseline_ns, new_ns) = time_pair_ns(
                reps,
                || {
                    rle_mask.scatter_add(&mut params_base, &rle_packed, 1.0);
                    rle_packed.len()
                },
                || {
                    rle_mask.scatter_add_runs(&mut params_new, &rle_packed, 1.0);
                    rle_packed.len()
                },
            );
            entries.push(Entry {
                name: "masked_apply_rle",
                baseline_ns,
                new_ns,
            });
        }
    }

    // --- local client training (the K × steps per-round inner loop). ---
    // Baseline: the pre-refactor path — deep model clone per client,
    // fresh activation/cache/gradient/velocity allocations per minibatch.
    // New: `local_train_into` over one pooled `TrainSlot` (parameter
    // buffer `copy_from_slice`, reused `TrainScratch`). Both are gated
    // for bit-identical deltas before timing. The shape mirrors the
    // simulator's paper setup: FEMNIST profile (64 features, 62 classes),
    // ShuffleNet-like hidden [192, 96] with BatchNorm (~38k params),
    // batch 16, E = 10 local steps, K = 30 kept clients. NOTE: the
    // arithmetic is pinned bit-identical — including through the blocked
    // GEMM linear kernels, which preserve every reduction order — so the
    // serial entries measure the allocator overhead plus the GEMM win on
    // the matmul-bound minibatch steps.
    if opts.kernel_selected("local_train_step") || opts.kernel_selected("local_train_round") {
        let (clients, steps) = if opts.quick { (6, 3) } else { (30, 10) };
        let batch = 16;
        let (lr, momentum) = (0.05f32, 0.9f32);
        let mut ds_cfg = DatasetProfile::Femnist.config(0.02);
        ds_cfg.test_samples = 32;
        let mcfg = MlpConfig {
            input_dim: ds_cfg.feature_dim,
            hidden: vec![192, 96],
            classes: ds_cfg.classes,
            batch_norm: true,
        };
        let mut mrng = StdRng::seed_from_u64(opts.seed ^ 0x10c4);
        let model = Mlp::new(mcfg, &mut mrng);
        let proto = BaselineMlp::from_model(&model);
        let data = SyntheticFlDataset::generate(ds_cfg, opts.seed ^ 0x77);
        assert!(data.num_clients() >= clients, "dataset too small");
        let global = model.params().to_vec();
        let trainable_mask = model.layout().trainable_mask();
        let stats_positions: Vec<usize> = trainable_mask.not().iter_ones().collect();
        let dm = model.num_params();
        let mut slot = TrainSlot::default();

        // Equivalence gate: bit-identical deltas and BN drift per client.
        for id in 0..clients.min(4) {
            let seed = derive_seed(opts.seed, "bench-train", id as u64);
            let mut out_b = vec![0.0f32; dm];
            let mut stats_b = vec![0.0f32; stats_positions.len()];
            baseline_local_train(
                &proto,
                &global,
                &data.client(id),
                steps,
                batch,
                lr,
                momentum,
                seed,
                &mut out_b,
                &stats_positions,
                &mut stats_b,
                &trainable_mask,
            );
            let mut out_n = vec![0.0f32; dm];
            let mut stats_n = vec![0.0f32; stats_positions.len()];
            pooled_local_train(
                &model,
                &global,
                &data,
                id,
                steps,
                batch,
                lr,
                momentum,
                seed,
                &mut out_n,
                &stats_positions,
                &mut stats_n,
                &trainable_mask,
                &mut slot,
            );
            assert!(
                out_b
                    .iter()
                    .zip(&out_n)
                    .chain(stats_b.iter().zip(&stats_n))
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "local-train kernels diverged for client {id}"
            );
        }

        // Per-step: one loss_and_grad + SGD update on a fixed minibatch.
        if opts.kernel_selected("local_train_step") {
            let (bx, by) = data
                .client(0)
                .sample_batch(&mut StdRng::seed_from_u64(opts.seed ^ 0x51ec), batch);
            let mut bmodel = proto.clone();
            let mut bopt = Sgd::new(dm, lr, momentum);
            let mut params_new = global.clone();
            let mut scratch = TrainScratch::new();
            scratch.reset_velocity();
            let topo = model.topology();
            let (baseline_ns, new_ns) = time_pair_ns(
                reps,
                || {
                    let (_, g) = bmodel.loss_and_grad(&bx, &by);
                    bopt.step(bmodel.params_mut(), &g);
                    g.len()
                },
                || {
                    let _ = topo.loss_and_grad_into(&mut params_new, &bx, &by, &mut scratch);
                    scratch.sgd_step(&mut params_new, lr, momentum);
                    params_new.len()
                },
            );
            entries.push(Entry {
                name: "local_train_step",
                baseline_ns,
                new_ns,
            });
        }

        // Per-round: every client starts from the global weights and
        // trains `steps` minibatches — the simulator's whole training
        // phase. Baseline: the clone-era per-client loop (deep model
        // clone + fresh allocations per minibatch). New: the lockstep
        // *batched* driver — all K clients stacked into batched GEMMs
        // from one pooled `BatchTrainScratch`, exactly the arm
        // `Simulation::train_invited` runs.
        if opts.kernel_selected("local_train_round") {
            let mut out_b = vec![0.0f32; dm];
            let mut stats_b = vec![0.0f32; stats_positions.len()];
            let ids: Vec<usize> = (0..clients).collect();
            let seeds: Vec<u64> = ids
                .iter()
                .map(|&id| derive_seed(opts.seed, "bench-round", id as u64))
                .collect();
            let topo = model.topology();
            let mut batch_scratch = BatchTrainScratch::default();
            let mut outs: Vec<Vec<f32>> = (0..clients).map(|_| vec![0.0f32; dm]).collect();
            let stats_len = stats_positions.len();
            let mut stats_all = vec![0.0f32; clients * stats_len];
            // Equivalence gate: the one-call batched driver reproduces
            // the clone-era baseline bitwise for every client.
            batch_local_train_into(
                topo,
                &global,
                &data,
                &ids,
                &seeds,
                steps,
                batch,
                lr,
                momentum,
                &mut outs,
                &stats_positions,
                &mut stats_all,
                &trainable_mask,
                &mut batch_scratch,
                None,
            );
            for id in 0..clients {
                baseline_local_train(
                    &proto,
                    &global,
                    &data.client(id),
                    steps,
                    batch,
                    lr,
                    momentum,
                    seeds[id],
                    &mut out_b,
                    &stats_positions,
                    &mut stats_b,
                    &trainable_mask,
                );
                assert!(
                    out_b
                        .iter()
                        .zip(&outs[id])
                        .chain(
                            stats_b
                                .iter()
                                .zip(&stats_all[id * stats_len..][..stats_len])
                        )
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "batched round driver diverged for client {id}"
                );
            }
            let (baseline_ns, new_ns) = time_pair_ns(
                reps,
                || {
                    for (id, &seed) in seeds.iter().enumerate().take(clients) {
                        baseline_local_train(
                            &proto,
                            &global,
                            &data.client(id),
                            steps,
                            batch,
                            lr,
                            momentum,
                            seed,
                            &mut out_b,
                            &stats_positions,
                            &mut stats_b,
                            &trainable_mask,
                        );
                    }
                    clients
                },
                || {
                    batch_local_train_into(
                        topo,
                        &global,
                        &data,
                        &ids,
                        &seeds,
                        steps,
                        batch,
                        lr,
                        momentum,
                        &mut outs,
                        &stats_positions,
                        &mut stats_all,
                        &trainable_mask,
                        &mut batch_scratch,
                        None,
                    );
                    clients
                },
            );
            entries.push(Entry {
                name: "local_train_round",
                baseline_ns,
                new_ns,
            });
        }
    }

    // --- blocked GEMM vs plain-loop reference (the linear-layer spine). ---
    run_gemm_entries(opts, reps, &mut entries);

    // --- wire codec: sparse-frame encode/decode (gluefl-wire). ---
    run_wire_entries(opts, reps, d, &values, &mut entries);

    // --- streaming aggregation: per-arrival fold vs collect-then-fold. ---
    run_stream_entries(opts, reps, d, &mut entries);

    // --- million-client control plane: availability + round planning. ---
    run_scale_kernels(opts, reps, &mut entries);

    // --- Report. ---
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"dim\": {d},");
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"kernels\": [");
    for (i, e) in entries.iter().enumerate() {
        println!(
            "{:<32} baseline {:>12.0} ns   new {:>12.0} ns   speedup {:>6.2}x",
            e.name,
            e.baseline_ns,
            e.new_ns,
            e.speedup()
        );
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"baseline_ns\": {:.0}, \"new_ns\": {:.0}, \"speedup\": {:.2}}}{}",
            e.name,
            e.baseline_ns,
            e.new_ns,
            e.speedup(),
            comma
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("create {}: {e}", opts.out_dir.display()))?;
    let path = opts.out_dir.join("BENCH_kernels.json");
    std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("wrote {}", path.display());
    if let Some(committed) = &opts.check {
        check_ledger_freshness(committed, &entries)?;
    }
    Ok(())
}

/// Times the blocked GEMM kernels against their plain-loop reference
/// twins at the paper MLP's hottest shapes and appends one ledger entry
/// per layout: the training-batch forward/backward-data/backward-weights
/// trio on the 192 → 96 hidden layer, plus an eval-sized forward batch
/// on the 64 → 192 input layer. Every pair is asserted **bit-identical**
/// before timing — blocking must not reassociate any reduction.
fn run_gemm_entries(opts: &ExptOpts, reps: usize, entries: &mut Vec<Entry>) {
    // (name, m = batch, n = out_dim, k = in_dim, inner timing reps).
    let shapes: [(&'static str, usize, usize, usize, usize); 4] = [
        ("gemm_nn_b16", 16, 96, 192, 64),
        ("gemm_tn_b16", 16, 96, 192, 64),
        ("gemm_nt_b16", 16, 96, 192, 64),
        ("gemm_nn_eval_b1024", 1024, 192, 64, 4),
    ];
    for (name, m, n, k, inner) in shapes {
        if !opts.kernel_selected(name) {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x6e44);
        let x: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let w: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let bias: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        // Backward-layout operands: d_out is batch × out_dim, and the
        // weight-gradient accumulator starts from a non-trivial value.
        let d_out: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let grad0: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

        // Each timing sample runs `inner` back-to-back invocations so
        // microsecond kernels are measured over ~1 ms windows; the medians
        // are divided back down so the ledger reports per-invocation ns,
        // comparable with every other entry.
        let (batch_baseline_ns, batch_new_ns) = match name {
            "gemm_nn_b16" | "gemm_nn_eval_b1024" => {
                let mut got = vec![0.0f32; m * n];
                let mut want = vec![0.0f32; m * n];
                gemm_nn(&x, &w, &bias, m, n, k, &mut got);
                gemm_nn_ref(&x, &w, &bias, m, n, k, &mut want);
                assert_bits_identical(&got, &want, name);
                time_pair_ns(
                    reps,
                    || {
                        for _ in 0..inner {
                            gemm_nn_ref(&x, &w, &bias, m, n, k, &mut want);
                        }
                        want.len()
                    },
                    || {
                        for _ in 0..inner {
                            gemm_nn(&x, &w, &bias, m, n, k, &mut got);
                        }
                        got.len()
                    },
                )
            }
            "gemm_tn_b16" => {
                let mut got = vec![0.0f32; m * k];
                let mut want = vec![0.0f32; m * k];
                gemm_tn(&d_out, &w, m, n, k, &mut got);
                gemm_tn_ref(&d_out, &w, m, n, k, &mut want);
                assert_bits_identical(&got, &want, name);
                time_pair_ns(
                    reps,
                    || {
                        for _ in 0..inner {
                            gemm_tn_ref(&d_out, &w, m, n, k, &mut want);
                        }
                        want.len()
                    },
                    || {
                        for _ in 0..inner {
                            gemm_tn(&d_out, &w, m, n, k, &mut got);
                        }
                        got.len()
                    },
                )
            }
            "gemm_nt_b16" => {
                let mut got = grad0.clone();
                let mut want = grad0.clone();
                gemm_nt(&d_out, &x, m, n, k, &mut got);
                gemm_nt_ref(&d_out, &x, m, n, k, &mut want);
                assert_bits_identical(&got, &want, name);
                time_pair_ns(
                    reps,
                    || {
                        for _ in 0..inner {
                            gemm_nt_ref(&d_out, &x, m, n, k, &mut want);
                        }
                        want.len()
                    },
                    || {
                        for _ in 0..inner {
                            gemm_nt(&d_out, &x, m, n, k, &mut got);
                        }
                        got.len()
                    },
                )
            }
            other => unreachable!("unmapped gemm entry {other}"),
        };
        entries.push(Entry {
            name,
            baseline_ns: batch_baseline_ns / inner as f64,
            new_ns: batch_new_ns / inner as f64,
        });
    }

    // Batched-client stacking: the round's 30 × (16 × 64 → 192) step-0
    // forwards in one `gemm_nn_batch` call (shared weights → a single
    // stacked GEMM, row-sharded across the pool under `parallel`) vs the
    // per-client `gemm_nn` loop it replaced. Gated bit-identical.
    if opts.kernel_selected("gemm_batch_clients") {
        let (kclients, mb, n, kk, inner) = (30usize, 16usize, 192usize, 64usize, 8usize);
        let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xba7c);
        let a: Vec<f32> = (0..kclients * mb * kk)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        let w: Vec<f32> = (0..n * kk).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let bias: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut got = vec![0.0f32; kclients * mb * n];
        let mut want = vec![0.0f32; kclients * mb * n];
        gemm_nn_batch(
            &a,
            &BatchOperand::Shared(&w),
            &BatchOperand::Shared(&bias),
            kclients,
            mb,
            n,
            kk,
            &mut got,
        );
        for c in 0..kclients {
            gemm_nn(
                &a[c * mb * kk..][..mb * kk],
                &w,
                &bias,
                mb,
                n,
                kk,
                &mut want[c * mb * n..][..mb * n],
            );
        }
        assert_bits_identical(&got, &want, "gemm_batch_clients");
        let (batch_baseline_ns, batch_new_ns) = time_pair_ns(
            reps,
            || {
                for _ in 0..inner {
                    for c in 0..kclients {
                        gemm_nn(
                            &a[c * mb * kk..][..mb * kk],
                            &w,
                            &bias,
                            mb,
                            n,
                            kk,
                            &mut want[c * mb * n..][..mb * n],
                        );
                    }
                }
                want.len()
            },
            || {
                for _ in 0..inner {
                    gemm_nn_batch(
                        &a,
                        &BatchOperand::Shared(&w),
                        &BatchOperand::Shared(&bias),
                        kclients,
                        mb,
                        n,
                        kk,
                        &mut got,
                    );
                }
                got.len()
            },
        );
        entries.push(Entry {
            name: "gemm_batch_clients",
            baseline_ns: batch_baseline_ns / inner as f64,
            new_ns: batch_new_ns / inner as f64,
        });
    }
}

/// Times the [`gluefl_wire`] sparse-frame codec against its first-cut
/// twins at the round loop's upload shape: `nnz = d/25` (q = 4%, GlueFL's
/// full-mask upload density → bitmap positions). The baselines replicate
/// the frame layout byte for byte the way a straightforward
/// implementation would — fresh buffers per call, per-element pushes,
/// per-bit bitmap walks, and the definitional bit-at-a-time CRC-16 — and
/// both pairs are gated on identical output before timing.
fn run_wire_entries(
    opts: &ExptOpts,
    reps: usize,
    d: usize,
    dense: &[f32],
    entries: &mut Vec<Entry>,
) {
    if !opts.kernel_selected("wire_encode_sparse")
        && !opts.kernel_selected("wire_decode_sparse")
        && !opts.kernel_selected("wire_encode_varint")
    {
        return;
    }
    use gluefl_wire::{Codec, FrameWriter, Rounding, WirePolicy};
    let round = 11u32;
    let indices: Vec<u32> = (0..d as u32).step_by(25).collect();
    let values: Vec<f32> = indices.iter().map(|&i| dense[i as usize]).collect();

    // Equivalence gates: byte-identical frames, identical reconstruction.
    let legacy_writer = FrameWriter::new(WirePolicy::legacy(Codec::F32));
    let baseline_frame = baseline_encode_sparse(round, d, &indices, &values);
    let mut frame_buf = Vec::new();
    let n = legacy_writer.sparse(
        &mut frame_buf,
        round,
        Rounding::Nearest,
        d,
        &indices,
        &values,
    );
    assert_eq!(n, frame_buf.len());
    assert_eq!(baseline_frame, frame_buf, "wire encoders diverged");
    let (base_ix, base_vals) = baseline_decode_sparse(&baseline_frame);
    let decoded = gluefl_wire::decode_frame(&frame_buf).expect("valid frame");
    let (mut fast_ix, mut fast_vals) = (Vec::new(), Vec::new());
    decoded.indices_into(&mut fast_ix);
    decoded.values_into(&mut fast_vals);
    assert_eq!(base_ix, fast_ix, "wire decoders diverged on indices");
    assert!(
        base_vals
            .iter()
            .zip(&fast_vals)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "wire decoders diverged on values"
    );

    if opts.kernel_selected("wire_encode_sparse") {
        let mut pooled = Vec::with_capacity(frame_buf.len());
        let (baseline_ns, new_ns) = time_pair_ns(
            reps,
            || baseline_encode_sparse(round, d, &indices, &values).len(),
            || {
                pooled.clear();
                legacy_writer.sparse(&mut pooled, round, Rounding::Nearest, d, &indices, &values)
            },
        );
        entries.push(Entry {
            name: "wire_encode_sparse",
            baseline_ns,
            new_ns,
        });
    }
    if opts.kernel_selected("wire_decode_sparse") {
        let (baseline_ns, new_ns) = time_pair_ns(
            reps,
            || baseline_decode_sparse(&baseline_frame).0.len(),
            || {
                fast_ix.clear();
                fast_vals.clear();
                let frame = gluefl_wire::decode_frame(&frame_buf).expect("valid frame");
                frame.indices_into(&mut fast_ix);
                frame.values_into(&mut fast_vals);
                fast_ix.len()
            },
        );
        entries.push(Entry {
            name: "wire_decode_sparse",
            baseline_ns,
            new_ns,
        });
    }

    // v2 entropy layout: the delta-varint position section on a *random*
    // 4% support (irregular gaps, so the varints are genuinely
    // variable-width), against a naive per-element delta+varint twin
    // producing the identical SparseDelta frame.
    if opts.kernel_selected("wire_encode_varint") {
        let mut vrng = StdRng::seed_from_u64(opts.seed ^ 0x77a9);
        let vix: Vec<u32> = (0..d as u32).filter(|_| vrng.gen::<f64>() < 0.04).collect();
        let vvals: Vec<f32> = vix.iter().map(|&i| dense[i as usize]).collect();
        let entropy_writer = FrameWriter::new(WirePolicy::entropy(Codec::F32));

        // Equivalence gate: byte-identical frames (which also pins the
        // cost chooser to the delta layout at this density), plus a
        // round-trip decode of the varint section.
        let baseline_frame = baseline_encode_sparse_delta(round, d, &vix, &vvals);
        let mut frame_buf = Vec::new();
        let n = entropy_writer.sparse(&mut frame_buf, round, Rounding::Nearest, d, &vix, &vvals);
        assert_eq!(n, frame_buf.len());
        assert_eq!(baseline_frame, frame_buf, "varint encoders diverged");
        let decoded = gluefl_wire::decode_frame(&frame_buf).expect("valid frame");
        let mut got_ix = Vec::new();
        decoded.indices_into(&mut got_ix);
        assert_eq!(got_ix, vix, "varint round trip diverged");

        let mut pooled = Vec::with_capacity(frame_buf.len());
        let (baseline_ns, new_ns) = time_pair_ns(
            reps,
            || baseline_encode_sparse_delta(round, d, &vix, &vvals).len(),
            || {
                pooled.clear();
                entropy_writer.sparse(&mut pooled, round, Rounding::Nearest, d, &vix, &vvals)
            },
        );
        entries.push(Entry {
            name: "wire_encode_varint",
            baseline_ns,
            new_ns,
        });
    }
}

/// Times the round loop's aggregation phase end to end: the streaming
/// per-arrival fold ([`gluefl_core::stream::StreamingAggregator`], the
/// path the socket server and the simulator now share) against the
/// pre-refactor collect-then-aggregate round — every kept upload staged
/// in an `O(K·nnz)` buffer, then one batch [`Strategy::aggregate`] over
/// the id-sorted set.
///
/// The shape is the paper's upload profile: K = 30 kept clients, each a
/// sparse STC upload with `nnz ≈ 4%·d` on its own random support, folded
/// under an [`StcStrategy`] (whose fold seams are stateless, so both
/// twins can be re-timed from identically constructed instances). Each
/// side clones every upload per invocation — the stand-in for the decode
/// step producing a fresh upload — so the measured difference is the
/// staging buffer and deferred fold against fold-on-arrival with buffers
/// recycled through the [`ScratchPool`]. The gate asserts the two paths'
/// `MaskedUpdate`s (mask identity and value bits) agree exactly.
///
/// [`Strategy::aggregate`]: gluefl_core::strategies::Strategy::aggregate
/// [`StcStrategy`]: gluefl_core::strategies::StcStrategy
fn run_stream_entries(opts: &ExptOpts, reps: usize, d: usize, entries: &mut Vec<Entry>) {
    if !opts.kernel_selected("stream_fold_sparse") {
        return;
    }
    use gluefl_core::strategies::{Group, StcStrategy, Strategy, Upload};
    use gluefl_core::stream::StreamingAggregator;

    let clients = 30usize;
    let round = 0u32;
    let q = 0.04f64;
    // One sparse upload per kept client, each on its own ~4% support.
    let uploads: Vec<(usize, Group, Upload)> = (0..clients)
        .map(|c| {
            let mut crng = StdRng::seed_from_u64(opts.seed ^ 0x5f01 ^ ((c as u64) << 8));
            let mut pairs = Vec::new();
            for i in 0..d as u32 {
                if crng.gen::<f64>() < q {
                    pairs.push((i, crng.gen_range(-1.0f32..1.0)));
                }
            }
            (
                c,
                Group::Fresh,
                Upload::Sparse(SparseUpdate::from_pairs(d, pairs)),
            )
        })
        .collect();
    let ids: Vec<(usize, Group)> = uploads.iter().map(|&(c, g, _)| (c, g)).collect();
    let mk_strategy = || {
        StcStrategy::new(
            clients,
            clients,
            1.0,
            vec![1.0 / clients as f64; clients],
            q,
            d,
            d,
            BitMask::zeros(d),
        )
    };

    // Equivalence gate: batch aggregate ≡ streaming fold, bit for bit.
    let mut strat_base = mk_strategy();
    let mut pool_base = ScratchPool::new();
    let want = strat_base.aggregate(round, &uploads, &mut pool_base);
    let mut strat_new = mk_strategy();
    let mut pool_new = ScratchPool::new();
    let mut gate = StreamingAggregator::begin(round, &ids, &mut strat_new, &mut pool_new);
    for (c, _, upload) in &uploads {
        gate.accept(&mut strat_new, *c, upload.clone(), &mut pool_new)
            .expect("kept client accepted");
    }
    assert!(gate.complete());
    let got = gate.finish(&mut strat_new, &mut pool_new);
    assert_eq!(want.mask(), got.mask(), "fold masks diverged");
    assert!(
        want.values()
            .iter()
            .zip(got.values())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "fold values diverged"
    );
    pool_base.put_update(want);
    pool_new.put_update(got);

    let (baseline_ns, new_ns) = time_pair_ns(
        reps,
        || {
            // Pre-refactor round: stage a copy of every arrival, then
            // one batch aggregate over the full staged set.
            let staged: Vec<(usize, Group, Upload)> = uploads
                .iter()
                .map(|(c, g, u)| (*c, *g, u.clone()))
                .collect();
            let out = strat_base.aggregate(round, &staged, &mut pool_base);
            let n = out.nnz();
            pool_base.put_update(out);
            for (_, _, u) in staged {
                pool_base.reclaim_upload(u);
            }
            n
        },
        || {
            // Streaming round: each arrival folds immediately and its
            // buffers go straight back to the pool.
            let mut gate = StreamingAggregator::begin(round, &ids, &mut strat_new, &mut pool_new);
            for (c, _, u) in &uploads {
                gate.accept(&mut strat_new, *c, u.clone(), &mut pool_new)
                    .expect("kept client accepted");
            }
            let out = gate.finish(&mut strat_new, &mut pool_new);
            let n = out.nnz();
            pool_new.put_update(out);
            n
        },
    );
    entries.push(Entry {
        name: "stream_fold_sparse",
        baseline_ns,
        new_ns,
    });
}

/// Times the million-client control-plane kernels — the per-round costs
/// that used to scale with the population size N rather than the
/// participant count:
///
/// * `avail_advance_1m` — one round of availability state for the ~39
///   clients a round actually touches. Baseline: the eager
///   [`AvailabilityTraceRef`] twin advances all N Markov chains. New:
///   [`LazyAvailability`] advances only the touched clients' private
///   session trajectories. The two consume identical counter-based draw
///   streams, so the gate asserts bit-identical states before timing.
/// * `plan_round_1m` — one sticky round (draw + rebalance) at the
///   paper's K = 30, C = 24, OC = 1.3, S = 120. Baseline: a verbatim
///   copy of the pre-refactor round — dense candidate materialisation on
///   every draw and a full population rescan on every rebalance. New:
///   [`StickySampler`] with rejection-sampled fresh candidates and
///   in-place membership edits. The RNG streams differ, so the gate is
///   structural: draw sizes, group disjointness, and the constant group
///   size.
///
/// N is 10⁶ (10⁵ under `--quick`).
fn run_scale_kernels(opts: &ExptOpts, reps: usize, entries: &mut Vec<Entry>) {
    use gluefl_net::{AvailabilityTraceRef, LazyAvailability};
    use gluefl_sampling::overcommit::{plan as oc_plan, OcStrategy};
    use gluefl_sampling::{AllOnline, StickySampler};

    let n = if opts.quick { 100_000 } else { 1_000_000 };
    let (f, mean) = (0.7f64, 24.0f64);
    let seed = opts.seed ^ 0xa5a5;

    if opts.kernel_selected("avail_advance_1m") {
        // The ~K × OC clients one round actually looks at, spread across
        // the id space.
        let touched: Vec<usize> = (0..39).map(|i| i * (n / 39)).collect();
        // Equivalence gate: lazy ≡ eager bit for bit on the touched set.
        {
            let mut eager = AvailabilityTraceRef::new(n, f, mean, seed);
            let mut lazy = LazyAvailability::new(n, f, mean, seed);
            for r in 0..4u32 {
                for &c in &touched {
                    assert_eq!(
                        lazy.is_online(c, r),
                        eager.is_online(c),
                        "availability kernels diverged at client {c} round {r}"
                    );
                }
                eager.advance();
            }
        }
        let mut eager = AvailabilityTraceRef::new(n, f, mean, seed);
        let mut lazy = LazyAvailability::new(n, f, mean, seed);
        let mut lazy_round = 0u32;
        let (baseline_ns, new_ns) = time_pair_ns(
            reps,
            || {
                eager.advance();
                touched.iter().filter(|&&c| eager.is_online(c)).count() + 1
            },
            || {
                let r = lazy_round;
                lazy_round += 1;
                touched.iter().filter(|&&c| lazy.is_online(c, r)).count() + 1
            },
        );
        entries.push(Entry {
            name: "avail_advance_1m",
            baseline_ns,
            new_ns,
        });
    }

    if opts.kernel_selected("plan_round_1m") {
        let s_size = 120usize;
        let plan = oc_plan(30, 24, 1.3, OcStrategy::Proportional);
        let mut new_rng = StdRng::seed_from_u64(seed ^ 1);
        let mut sampler = StickySampler::new(n, s_size, &mut new_rng);
        let mut base_rng = StdRng::seed_from_u64(seed ^ 2);
        let mut baseline = BaselineSticky::new(n, s_size, &mut base_rng);
        // Structural gate: the two samplers consume different streams, so
        // the invariants (not the ids) must agree.
        {
            let d = sampler.draw(
                &mut new_rng,
                plan.sticky_invites,
                plan.fresh_invites,
                &mut AllOnline,
            );
            let (bs, bf) = baseline.draw(&mut base_rng, plan.sticky_invites, plan.fresh_invites);
            assert_eq!(d.sticky.len(), bs.len(), "sticky draw sizes diverged");
            assert_eq!(d.fresh.len(), bf.len(), "fresh draw sizes diverged");
            assert!(d.sticky.iter().all(|&c| sampler.is_sticky(c)));
            assert!(d.fresh.iter().all(|&c| !sampler.is_sticky(c)));
            sampler.rebalance(
                &mut new_rng,
                &d.sticky[..plan.keep_sticky],
                &d.fresh[..plan.keep_fresh],
            );
            baseline.rebalance(
                &mut base_rng,
                &bs[..plan.keep_sticky],
                &bf[..plan.keep_fresh],
            );
            assert_eq!(sampler.group_size(), s_size);
            assert_eq!(baseline.sticky.len(), s_size);
        }
        let (baseline_ns, new_ns) = time_pair_ns(
            reps,
            || {
                let (bs, bf) =
                    baseline.draw(&mut base_rng, plan.sticky_invites, plan.fresh_invites);
                baseline.rebalance(
                    &mut base_rng,
                    &bs[..plan.keep_sticky],
                    &bf[..plan.keep_fresh],
                );
                bs.len() + bf.len()
            },
            || {
                let d = sampler.draw(
                    &mut new_rng,
                    plan.sticky_invites,
                    plan.fresh_invites,
                    &mut AllOnline,
                );
                sampler.rebalance(
                    &mut new_rng,
                    &d.sticky[..plan.keep_sticky],
                    &d.fresh[..plan.keep_fresh],
                );
                d.sticky.len() + d.fresh.len()
            },
        );
        entries.push(Entry {
            name: "plan_round_1m",
            baseline_ns,
            new_ns,
        });
    }
}

/// Verbatim pre-refactor sticky sampler round: every draw materialises
/// the full non-sticky candidate vector and every rebalance rebuilds the
/// membership list with a population scan — the O(N) control plane the
/// current [`gluefl_sampling::StickySampler`] replaces.
struct BaselineSticky {
    n: usize,
    in_sticky: Vec<bool>,
    sticky: Vec<usize>,
}

impl BaselineSticky {
    fn new<R: Rng>(n: usize, group_size: usize, rng: &mut R) -> Self {
        use rand::seq::SliceRandom;
        let mut ids: Vec<usize> = (0..n).collect();
        let (chosen, _) = ids.partial_shuffle(rng, group_size);
        let mut sticky = chosen.to_vec();
        sticky.sort_unstable();
        let mut in_sticky = vec![false; n];
        for &c in &sticky {
            in_sticky[c] = true;
        }
        Self {
            n,
            in_sticky,
            sticky,
        }
    }

    fn draw<R: Rng>(&self, rng: &mut R, c: usize, fresh_count: usize) -> (Vec<usize>, Vec<usize>) {
        use rand::seq::SliceRandom;
        let mut sticky_pool = self.sticky.clone();
        let mut fresh_pool: Vec<usize> = (0..self.n).filter(|&i| !self.in_sticky[i]).collect();
        let take = c.min(sticky_pool.len());
        let (sp, _) = sticky_pool.partial_shuffle(rng, take);
        let mut sticky: Vec<usize> = sp.to_vec();
        let take_f = fresh_count.min(fresh_pool.len());
        let (fp, _) = fresh_pool.partial_shuffle(rng, take_f);
        let mut fresh: Vec<usize> = fp.to_vec();
        sticky.sort_unstable();
        fresh.sort_unstable();
        (sticky, fresh)
    }

    fn rebalance<R: Rng>(&mut self, rng: &mut R, participated: &[usize], admitted: &[usize]) {
        use rand::seq::SliceRandom;
        let mut evictable: Vec<usize> = self
            .sticky
            .iter()
            .copied()
            .filter(|c| !participated.contains(c))
            .collect();
        let evict_n = admitted.len().min(evictable.len());
        let (evicted, _) = evictable.partial_shuffle(rng, evict_n);
        for &c in evicted.iter() {
            self.in_sticky[c] = false;
        }
        for &c in &admitted[..evict_n] {
            self.in_sticky[c] = true;
        }
        self.sticky = (0..self.n).filter(|&i| self.in_sticky[i]).collect();
    }
}

/// First-cut sparse-frame encoder: the same byte layout as
/// a legacy-policy [`gluefl_wire::FrameWriter`] (asserted identical), written the
/// naive way — fresh output and bitmap buffers each call, per-element
/// pushes, a checksum-input copy, and the bit-at-a-time CRC.
fn baseline_encode_sparse(round: u32, dim: usize, indices: &[u32], values: &[f32]) -> Vec<u8> {
    let nnz = indices.len();
    let bitmap_len = dim.div_ceil(8);
    let use_bitmap = bitmap_len <= 4 * nnz;
    // Frame kind ids: 1 = SparseBitmap, 2 = SparseIndex (codec F32 = 0).
    let kind: u8 = if use_bitmap { 1 } else { 2 };
    let mut out = Vec::new();
    out.push(gluefl_wire::MAGIC);
    out.push((gluefl_wire::VERSION << 6) | (kind << 3));
    out.extend_from_slice(&round.to_le_bytes());
    out.extend_from_slice(&u32::try_from(dim).expect("dim fits u32").to_le_bytes());
    out.extend_from_slice(&u32::try_from(nnz).expect("nnz fits u32").to_le_bytes());
    out.extend_from_slice(&[0, 0]);
    if use_bitmap {
        let mut bitmap = vec![0u8; bitmap_len];
        for &i in indices {
            bitmap[i as usize / 8] |= 1 << (i % 8);
        }
        out.extend_from_slice(&bitmap);
    } else {
        for &i in indices {
            out.extend_from_slice(&i.to_le_bytes());
        }
    }
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let mut check_input = out[..14].to_vec();
    check_input.extend_from_slice(&out[16..]);
    let crc = gluefl_wire::crc::crc16_bitwise(&check_input);
    out[14..16].copy_from_slice(&crc.to_le_bytes());
    out
}

/// First-cut v2 entropy encoder: the same `SparseDelta` byte layout the
/// [`gluefl_wire::FrameWriter`] emits under `WirePolicy::entropy`
/// (asserted identical), written the naive way — fresh output buffer,
/// one push per varint byte, a checksum-input copy, and the
/// bit-at-a-time CRC.
fn baseline_encode_sparse_delta(
    round: u32,
    dim: usize,
    indices: &[u32],
    values: &[f32],
) -> Vec<u8> {
    // Frame kind id 7 = SparseDelta (codec F32 = 0); version 2 spills the
    // kind's fourth bit into the former reserved bit.
    let kind: u8 = 7;
    let mut out = Vec::new();
    out.push(gluefl_wire::MAGIC);
    out.push((gluefl_wire::VERSION_ENTROPY << 6) | ((kind & 0x07) << 3) | (kind >> 3));
    out.extend_from_slice(&round.to_le_bytes());
    out.extend_from_slice(&u32::try_from(dim).expect("dim fits u32").to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(indices.len())
            .expect("nnz fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&[0, 0]);
    let mut prev: Option<u32> = None;
    for &i in indices {
        // First index absolute, then gap − 1 (indices are strictly
        // increasing); canonical LEB128.
        let mut v = match prev {
            None => u64::from(i),
            Some(p) => u64::from(i - p - 1),
        };
        prev = Some(i);
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                break;
            }
            out.push(byte | 0x80);
        }
    }
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let mut check_input = out[..14].to_vec();
    check_input.extend_from_slice(&out[16..]);
    let crc = gluefl_wire::crc::crc16_bitwise(&check_input);
    out[14..16].copy_from_slice(&crc.to_le_bytes());
    out
}

/// First-cut sparse-frame decoder: checksum-input copy + bit-at-a-time
/// CRC, per-bit bitmap walk over all `d` positions, per-element value
/// reads into fresh vectors.
fn baseline_decode_sparse(buf: &[u8]) -> (Vec<u32>, Vec<f32>) {
    assert!(buf.len() >= 16 && buf[0] == gluefl_wire::MAGIC, "bad frame");
    let kind = (buf[1] >> 3) & 7;
    let dim = u32::from_le_bytes(buf[6..10].try_into().expect("4 bytes")) as usize;
    let nnz = u32::from_le_bytes(buf[10..14].try_into().expect("4 bytes")) as usize;
    let stored = u16::from_le_bytes(buf[14..16].try_into().expect("2 bytes"));
    let mut check_input = buf[..14].to_vec();
    check_input.extend_from_slice(&buf[16..]);
    assert_eq!(
        gluefl_wire::crc::crc16_bitwise(&check_input),
        stored,
        "bad checksum"
    );
    let mut indices = Vec::new();
    let mut pos = 16usize;
    if kind == 1 {
        let bitmap = &buf[pos..pos + dim.div_ceil(8)];
        for i in 0..dim {
            if bitmap[i / 8] >> (i % 8) & 1 == 1 {
                indices.push(u32::try_from(i).expect("dim fits u32"));
            }
        }
        pos += dim.div_ceil(8);
    } else {
        for _ in 0..nnz {
            indices.push(u32::from_le_bytes(
                buf[pos..pos + 4].try_into().expect("4 bytes"),
            ));
            pos += 4;
        }
    }
    assert_eq!(indices.len(), nnz, "bad position section");
    let mut values = Vec::new();
    for _ in 0..nnz {
        values.push(f32::from_le_bytes(
            buf[pos..pos + 4].try_into().expect("4 bytes"),
        ));
        pos += 4;
    }
    (indices, values)
}

/// Panics unless two kernel outputs agree to the last bit.
fn assert_bits_identical(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    assert!(
        got.iter()
            .zip(want)
            .all(|(g, w)| g.to_bits() == w.to_bits()),
        "{what}: blocked and reference kernels diverged"
    );
}

/// The ledger-freshness gate: every kernel entry this benchmark emits
/// must already be present (by name) in the committed ledger at `path`,
/// otherwise the committed numbers are stale — e.g. a new kernel landed
/// without re-running `expt kernels` and committing the refreshed
/// `BENCH_kernels.json`.
fn check_ledger_freshness(path: &std::path::Path, entries: &[Entry]) -> Result<(), String> {
    let committed = std::fs::read_to_string(path)
        .map_err(|e| format!("ledger check: read {}: {e}", path.display()))?;
    let missing: Vec<&str> = entries
        .iter()
        .map(|e| e.name)
        .filter(|n| !committed.contains(&format!("\"name\": \"{n}\"")))
        .collect();
    if missing.is_empty() {
        println!(
            "ledger {} covers all {} kernel entries",
            path.display(),
            entries.len()
        );
        Ok(())
    } else {
        Err(format!(
            "committed ledger {} is stale: missing kernel entries {missing:?} — \
             re-run `expt kernels --out .` and commit the refreshed BENCH_kernels.json",
            path.display()
        ))
    }
}

/// Median wall-clock nanoseconds of two kernels measured back to back
/// per repetition, so machine-load drift biases both sides equally. Each
/// result is consumed so the calls cannot be optimized away.
fn time_pair_ns(
    reps: usize,
    mut baseline: impl FnMut() -> usize,
    mut new: impl FnMut() -> usize,
) -> (f64, f64) {
    let sample = |f: &mut dyn FnMut() -> usize| -> f64 {
        let start = Instant::now();
        let n = std::hint::black_box(f());
        let ns = start.elapsed().as_nanos() as f64;
        assert!(n > 0);
        ns
    };
    // Warm both kernels once before sampling.
    sample(&mut baseline);
    sample(&mut new);
    let mut base_samples = Vec::with_capacity(reps);
    let mut new_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        base_samples.push(sample(&mut baseline));
        new_samples.push(sample(&mut new));
    }
    (median(base_samples), median(new_samples))
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Verbatim pre-refactor `top_k_abs_masked` for `TopKScope::Outside`:
/// per-bit mask tests materialize a candidate index vector, introselect
/// runs with an indirect magnitude-then-index key, and the survivors are
/// sorted at the end.
fn baseline_top_k_outside(values: &[f32], k: usize, m: &BitMask) -> Vec<usize> {
    let mut candidates: Vec<u32> = (0..values.len())
        .filter(|&i| !m.get(i))
        .map(|i| i as u32)
        .collect();
    if k == 0 || candidates.is_empty() {
        return Vec::new();
    }
    if k >= candidates.len() {
        return candidates.into_iter().map(|i| i as usize).collect();
    }
    let key = |i: u32| -> (f32, std::cmp::Reverse<u32>) {
        let m = values[i as usize].abs();
        (if m.is_nan() { -1.0 } else { m }, std::cmp::Reverse(i))
    };
    let cmp = |a: &u32, b: &u32| {
        let (ma, ia) = key(*a);
        let (mb, ib) = key(*b);
        mb.partial_cmp(&ma)
            .expect("magnitudes are never NaN after mapping")
            .then(ib.cmp(&ia))
    };
    candidates.select_nth_unstable_by(k - 1, cmp);
    candidates.truncate(k);
    candidates.sort_unstable();
    candidates.into_iter().map(|i| i as usize).collect()
}

/// Verbatim pre-refactor GlueFL aggregation inner loop: one indirect
/// sparse scatter per client part into freshly allocated accumulators.
fn baseline_aggregate(
    splits: &[(SparseUpdate, SparseUpdate)],
    weights: &[f32],
    dim: usize,
) -> Vec<f32> {
    let mut shr_acc = vec![0.0f32; dim];
    let mut uni_acc = vec![0.0f32; dim];
    for ((shared, unique), &w) in splits.iter().zip(weights) {
        shared.add_scaled_into(&mut shr_acc, w);
        unique.add_scaled_into(&mut uni_acc, w);
    }
    for (s, u) in shr_acc.iter_mut().zip(&uni_acc) {
        *s += u;
    }
    shr_acc
}

/// The current kernel path: shared parts summed as contiguous value
/// arrays and scattered through the mask once; unique parts block-reduced.
fn fused_aggregate(
    splits: &[(SparseUpdate, SparseUpdate)],
    weights: &[f32],
    dim: usize,
    mask: &BitMask,
    pool: &mut ScratchPool,
) -> Vec<f32> {
    let shared_entries: Vec<(f32, &[f32])> = splits
        .iter()
        .zip(weights)
        .map(|((shared, _), &w)| (w, shared.values()))
        .collect();
    let unique_entries: Vec<(f32, &SparseUpdate)> = splits
        .iter()
        .zip(weights)
        .map(|((_, unique), &w)| (w, unique))
        .collect();
    let nnz = mask.count_ones();
    let shr_vals = accumulate_weighted_values(&shared_entries, nnz, pool);
    let mut combined = accumulate_sparse(&unique_entries, dim, pool);
    mask.scatter_add(&mut combined, &shr_vals, 1.0);
    pool.put(shr_vals);
    combined
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_pairs_agree_and_report_is_written() {
        let dir = std::env::temp_dir().join("gluefl_kernels_test");
        let opts = ExptOpts {
            quick: true,
            out_dir: dir.clone(),
            ..ExptOpts::default()
        };
        run(&opts).unwrap();
        let json = std::fs::read_to_string(dir.join("BENCH_kernels.json")).unwrap();
        assert!(json.contains("topk_outside_16pct_mask"));
        assert!(json.contains("aggregate_masked_30_clients"));
        assert!(json.contains("masked_apply_20pct"));
        assert!(json.contains("masked_apply_rle"));
        assert!(json.contains("local_train_step"));
        assert!(json.contains("local_train_round"));
        assert!(json.contains("gemm_nn_b16"));
        assert!(json.contains("gemm_tn_b16"));
        assert!(json.contains("gemm_nt_b16"));
        assert!(json.contains("gemm_nn_eval_b1024"));
        assert!(json.contains("gemm_batch_clients"));
        assert!(json.contains("aggregate_packed_topk"));
        #[cfg(feature = "parallel")]
        assert!(json.contains("topk_parallel"));
        assert!(json.contains("wire_encode_sparse"));
        assert!(json.contains("wire_decode_sparse"));
        assert!(json.contains("wire_encode_varint"));
        assert!(json.contains("stream_fold_sparse"));
        assert!(json.contains("avail_advance_1m"));
        assert!(json.contains("plan_round_1m"));
        assert!(json.contains("speedup"));
    }

    /// `--filter` measures and emits only the matching entries; `--check`
    /// then gates exactly that emitted subset (unchanged semantics).
    #[test]
    fn filter_restricts_emitted_entries() {
        let dir = std::env::temp_dir().join("gluefl_kernels_filter_test");
        let opts = ExptOpts {
            quick: true,
            out_dir: dir.clone(),
            filter: Some("gemm".into()),
            ..ExptOpts::default()
        };
        run(&opts).unwrap();
        let json = std::fs::read_to_string(dir.join("BENCH_kernels.json")).unwrap();
        assert!(json.contains("gemm_nn_b16"));
        assert!(json.contains("gemm_tn_b16"));
        assert!(json.contains("gemm_nt_b16"));
        assert!(json.contains("gemm_nn_eval_b1024"));
        assert!(json.contains("gemm_batch_clients"));
        assert!(!json.contains("topk_outside_16pct_mask"));
        assert!(!json.contains("aggregate_packed_topk"));
        assert!(!json.contains("local_train_step"));
        assert!(!json.contains("wire_encode_sparse"));
        assert!(!json.contains("wire_encode_varint"));
        assert!(!json.contains("masked_apply_rle"));
        assert!(!json.contains("stream_fold_sparse"));
        // --check against the filtered output: the committed full ledger
        // covers the subset, so the gate passes…
        let full = dir.join("full.json");
        std::fs::write(
            &full,
            "{\"kernels\": [
    {\"name\": \"gemm_nn_b16\"}, {\"name\": \"gemm_tn_b16\"},
    {\"name\": \"gemm_nt_b16\"}, {\"name\": \"gemm_nn_eval_b1024\"},
    {\"name\": \"gemm_batch_clients\"},
    {\"name\": \"topk_outside_16pct_mask\"}]}",
        )
        .unwrap();
        let opts_checked = ExptOpts {
            check: Some(full),
            ..opts.clone()
        };
        run(&opts_checked).unwrap();
        // …and a ledger missing a *selected* entry still fails.
        let stale = dir.join("stale.json");
        std::fs::write(&stale, "{\"kernels\": [{\"name\": \"gemm_nn_b16\"}]}").unwrap();
        let opts_stale = ExptOpts {
            check: Some(stale),
            ..opts
        };
        let err = run(&opts_stale).unwrap_err();
        assert!(err.contains("gemm_tn_b16"), "unexpected error: {err}");
    }

    /// The freshness gate passes when every emitted entry is present in
    /// the committed ledger (matching the emitter's exact JSON shape) and
    /// fails, naming the gap, when one is missing.
    #[test]
    fn ledger_freshness_gate_detects_stale_ledger() {
        let dir = std::env::temp_dir().join("gluefl_kernels_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let entries = vec![
            Entry {
                name: "local_train_step",
                baseline_ns: 2.0,
                new_ns: 1.0,
            },
            Entry {
                name: "local_train_round",
                baseline_ns: 3.0,
                new_ns: 1.0,
            },
        ];
        // Fresh ledger: both names present, in the emitter's format.
        let fresh = dir.join("fresh.json");
        std::fs::write(
            &fresh,
            "{\"kernels\": [\n    {\"name\": \"local_train_step\", \"speedup\": 2.00},\n    \
             {\"name\": \"local_train_round\", \"speedup\": 3.00}\n]}\n",
        )
        .unwrap();
        check_ledger_freshness(&fresh, &entries).unwrap();
        // Stale ledger: one emitted entry missing.
        let stale = dir.join("stale.json");
        std::fs::write(
            &stale,
            "{\"kernels\": [{\"name\": \"local_train_step\", \"speedup\": 2.00}]}\n",
        )
        .unwrap();
        let err = check_ledger_freshness(&stale, &entries).unwrap_err();
        assert!(err.contains("stale"), "unexpected error: {err}");
        assert!(err.contains("local_train_round"));
        // Unreadable ledger is an error, not a pass.
        assert!(check_ledger_freshness(&dir.join("missing.json"), &entries).is_err());
    }
}
