//! `expt trace` — an instrumented simulator run that exports the
//! telemetry stack end to end: per-round per-phase wall times to
//! `trace.csv`, a self-time summary table, wire/pool counters bridged
//! into one metrics snapshot (dumped as `trace.prom`), and the
//! coverage check the acceptance criterion pins — measured phase spans
//! must sum to ≥95% of each round's measured wall time.

use crate::experiments::common::setup;
use crate::ExptOpts;
use gluefl_core::{GlueFlParams, Simulation, StrategyConfig};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;
use gluefl_telemetry::{Phase, Snapshot, Telemetry};
use std::sync::Arc;

/// Folds the process-wide wire-codec and thread-pool counters into the
/// run's snapshot, so one exposition carries every layer. The inputs
/// are deltas taken across the traced run — the statics are process
/// lifetime and other code may have bumped them earlier.
fn bridge_process_stats(
    snap: &mut Snapshot,
    wire_before: (
        Vec<gluefl_wire::stats::FrameCount>,
        Vec<(&'static str, u64)>,
    ),
    pool_before: gluefl_pool::PoolStats,
) {
    let count_of = |table: &[gluefl_wire::stats::FrameCount],
                    kind: gluefl_wire::FrameKind,
                    codec: gluefl_wire::Codec| {
        table
            .iter()
            .find(|f| f.kind == kind && f.codec == codec)
            .map_or(0, |f| f.count)
    };
    for f in gluefl_wire::stats::encoded_frames() {
        let delta = f.count - count_of(&wire_before.0, f.kind, f.codec);
        if delta > 0 {
            snap.push(
                "gluefl_wire_frames_encoded_total",
                &[("kind", f.kind.name()), ("codec", f.codec.name())],
                delta as f64,
            );
        }
    }
    let err_of = |table: &[(&'static str, u64)], kind: &str| {
        table
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, c)| *c)
    };
    for (kind, count) in gluefl_wire::stats::decode_errors() {
        let delta = count - err_of(&wire_before.1, kind);
        if delta > 0 {
            snap.push(
                "gluefl_wire_decode_errors_total",
                &[("kind", kind)],
                delta as f64,
            );
        }
    }
    let pool = gluefl_pool::stats();
    snap.push(
        "gluefl_pool_jobs_total",
        &[],
        (pool.jobs - pool_before.jobs) as f64,
    );
    snap.push(
        "gluefl_pool_steals_total",
        &[],
        (pool.steals - pool_before.steals) as f64,
    );
    snap.push(
        "gluefl_pool_idle_nanos_total",
        &[],
        (pool.idle_nanos - pool_before.idle_nanos) as f64,
    );
    snap.push(
        "gluefl_pool_runs_total",
        &[],
        (pool.runs - pool_before.runs) as f64,
    );
    snap.sort();
}

/// Runs the traced simulation and writes `trace.csv` + `trace.prom`.
///
/// # Errors
/// Returns a message when phase coverage falls below the 95% criterion.
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    let rounds = if opts.quick {
        opts.rounds.min(5)
    } else {
        opts.rounds.min(30)
    };
    let k = 30;
    let mut cfg = setup(
        DatasetProfile::Femnist,
        DatasetModel::ShuffleNet,
        StrategyConfig::GlueFl(GlueFlParams::paper_default(k, DatasetModel::ShuffleNet)),
        opts,
    );
    cfg.rounds = rounds;
    // Evaluation is outside the nine instrumented phases; keep it out of
    // the measured window so coverage reflects the round pipeline.
    cfg.eval_every = rounds + 1;

    let wire_before = (
        gluefl_wire::stats::encoded_frames(),
        gluefl_wire::stats::decode_errors(),
    );
    let pool_before = gluefl_pool::stats();

    let tel = Arc::new(Telemetry::new());
    let mut sim = Simulation::new(cfg).with_telemetry(Arc::clone(&tel));
    let mut records = Vec::with_capacity(rounds as usize);
    for _ in 0..rounds {
        records.push(sim.step());
    }

    // --- trace.csv: one row per round, measured columns only. ---
    let mut csv = String::from("round,step_ns");
    for phase in Phase::ALL {
        csv.push_str(&format!(",{}_ns", phase.name()));
    }
    csv.push_str(",up_bytes,wire_up_bytes,invited,kept\n");
    for rec in &records {
        csv.push_str(&format!("{},{}", rec.round, rec.step_nanos));
        for phase in Phase::ALL {
            csv.push_str(&format!(",{}", rec.phase_nanos_of(phase)));
        }
        csv.push_str(&format!(
            ",{},{},{},{}\n",
            rec.up_bytes, rec.wire_up_bytes, rec.invited, rec.kept
        ));
    }
    crate::write_csv(&opts.out_dir, "trace.csv", &csv);

    // --- Self-time summary. ---
    let step_total: u64 = records.iter().map(|r| r.step_nanos).sum();
    let mut table = crate::Table::new(["phase", "total (ms)", "share", "spans", "mean (µs)"]);
    for phase in Phase::ALL {
        let nanos = tel.phase_nanos(phase);
        let spans = tel.phase_spans(phase);
        table.row([
            phase.name().to_owned(),
            format!("{:.3}", nanos as f64 / 1e6),
            format!("{:.1}%", 100.0 * nanos as f64 / step_total.max(1) as f64),
            format!("{spans}"),
            format!("{:.1}", nanos as f64 / 1e3 / spans.max(1) as f64),
        ]);
    }
    println!("\ntrace — GlueFL on FEMNIST/ShuffleNet, {rounds} rounds");
    println!("{}", table.render());

    // --- Snapshot with wire + pool counters bridged in. ---
    let mut snap = tel.snapshot();
    bridge_process_stats(&mut snap, wire_before, pool_before);
    crate::write_csv(&opts.out_dir, "trace.prom", &snap.render_text());

    // --- Coverage: the spans must account for the measured wall time.
    //     (The acceptance criterion: within 5% of the round wall time.)
    let covered: u64 = records.iter().map(|r| r.measured_phase_total()).sum();
    let coverage = covered as f64 / step_total.max(1) as f64;
    println!(
        "phase coverage: {:.1}% of {:.3} ms measured wall time (criterion ≥95%)",
        coverage * 100.0,
        step_total as f64 / 1e6
    );
    if coverage < 0.95 {
        return Err(format!(
            "phase spans cover only {:.1}% of the measured round wall time (need ≥95%)",
            coverage * 100.0
        ));
    }
    if coverage > 1.0 {
        return Err(format!(
            "phase spans exceed the measured wall time ({:.1}%) — double counting",
            coverage * 100.0
        ));
    }
    Ok(())
}
