//! Figure 9: per-round time breakdown across network environments.
//!
//! For end-user edge devices (M-Lab), commercial 5G, and a datacenter
//! network, the paper shows the average per-round share of download,
//! upload, and computation time for each strategy. On edge networks,
//! transmission dominates and GlueFL's download savings shine; on 5G and
//! datacenter networks computation dominates for everyone.

use crate::experiments::common;
use crate::{write_csv, ExptOpts, Table};
use gluefl_core::StrategyConfig;
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;
use gluefl_net::{DeviceProfile, NetworkProfile};

/// Runs the experiment.
///
/// # Errors
/// Never fails; the `Result` matches the dispatcher's signature.
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    println!("Figure 9: time breakdown per round across network environments");
    let dataset = DatasetProfile::Femnist;
    let model = DatasetModel::ShuffleNet;
    let mut csv = String::from(
        "network,strategy,download_secs,upload_secs,compute_secs,\
         slowest_download_secs,slowest_upload_secs,slowest_compute_secs\n",
    );
    for network in NetworkProfile::all() {
        let mut table = Table::new([
            "strategy",
            "download (s)",
            "upload (s)",
            "compute (s)",
            "round total (s)",
        ]);
        let cfg0 = common::setup(dataset, model, StrategyConfig::FedAvg, opts);
        for strategy in common::paper_strategies(cfg0.round_size, model) {
            let mut cfg = common::setup(dataset, model, strategy, opts);
            cfg.network = network;
            // In 5G / datacenter settings the paper's clients are the same
            // devices; only the network changes.
            cfg.device = DeviceProfile::mobile();
            let result = common::run_config(cfg);
            let n = result.rounds.len().max(1) as f64;
            let dl: f64 = result
                .rounds
                .iter()
                .map(|r| r.mean_download_secs)
                .sum::<f64>()
                / n;
            let ul: f64 = result
                .rounds
                .iter()
                .map(|r| r.mean_upload_secs)
                .sum::<f64>()
                / n;
            let cp: f64 = result
                .rounds
                .iter()
                .map(|r| r.mean_compute_secs)
                .sum::<f64>()
                / n;
            let sdl: f64 = result
                .rounds
                .iter()
                .map(|r| r.slowest_download_secs)
                .sum::<f64>()
                / n;
            let sul: f64 = result
                .rounds
                .iter()
                .map(|r| r.slowest_upload_secs)
                .sum::<f64>()
                / n;
            let scp: f64 = result
                .rounds
                .iter()
                .map(|r| r.slowest_compute_secs)
                .sum::<f64>()
                / n;
            let total: f64 = result.rounds.iter().map(|r| r.round_secs).sum::<f64>() / n;
            table.row([
                result.strategy.clone(),
                format!("{dl:.2}"),
                format!("{ul:.2}"),
                format!("{cp:.2}"),
                format!("{total:.2}"),
            ]);
            csv.push_str(&format!(
                "{},{},{dl:.4},{ul:.4},{cp:.4},{sdl:.4},{sul:.4},{scp:.4}\n",
                network.name(),
                result.strategy,
            ));
        }
        println!(
            "\n[{}] mean per-round time per kept client:",
            network.name()
        );
        println!("{}", table.render());
    }
    write_csv(&opts.out_dir, "fig9_time_breakdown.csv", &csv);
    println!(
        "paper check: on the edge network transmission dominates and GlueFL has \
         the smallest download share; on 5G/datacenter computation dominates \
         for all strategies"
    );
    Ok(())
}
