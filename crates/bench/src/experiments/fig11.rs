//! Figure 11: effect of error compensation (None / EC / REC).
//!
//! GlueFL re-scales the carried-over compression residual by the ratio of
//! the aggregation weights applied at the two participations
//! (Equation 7). The paper shows plain EC (no re-scaling) *breaks*
//! convergence under sticky sampling, while REC accelerates it.

use crate::experiments::common::{self, SweepArm};
use crate::ExptOpts;
use gluefl_compress::CompensationMode;
use gluefl_core::{GlueFlParams, StrategyConfig};
use gluefl_ml::DatasetModel;

fn arms(k: usize, model: DatasetModel) -> Vec<SweepArm> {
    [
        (CompensationMode::None, "None"),
        (CompensationMode::Raw, "EC"),
        (CompensationMode::Rescaled, "REC"),
    ]
    .into_iter()
    .map(|(mode, label)| {
        let mut p = GlueFlParams::paper_default(k, model);
        p.compensation = mode;
        SweepArm {
            label: format!("GlueFL ({label})"),
            strategy: StrategyConfig::GlueFl(p),
        }
    })
    .collect()
}

/// Runs the experiment.
///
/// # Errors
/// Never fails; the `Result` matches the dispatcher's signature.
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    println!("Figure 11: effect of error compensation (None / EC / REC)");
    for (dataset, model) in common::sensitivity_pairs(opts) {
        let cfg = common::setup(dataset, model, StrategyConfig::FedAvg, opts);
        common::run_sweep("fig11", dataset, model, &arms(cfg.round_size, model), opts);
    }
    println!(
        "paper check: removing the re-scaling (EC) harms convergence — the \
         residual must be re-weighted to stay consistent with sticky \
         aggregation; REC performs best"
    );
    Ok(())
}
