//! Figure 2: STC's bandwidth under client sampling.
//!
//! Panel (a): per-round downstream and upstream MB of STC on FEMNIST for
//! mask ratios q ∈ {10%, 20%} — showing downstream dwarfing upstream.
//! Panel (b): the model volume a client must download when re-sampled
//! after skipping r rounds — staleness grows with the skip length.

use crate::experiments::common;
use crate::{write_csv, ExptOpts, Table};
use gluefl_core::{Simulation, StrategyConfig};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;
use gluefl_tensor::wire::bytes_to_mb;

/// Runs the experiment.
///
/// # Errors
/// Never fails; the `Result` matches the dispatcher's signature.
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    println!("Figure 2: STC bandwidth under client sampling (FEMNIST)");
    let mut panel_a = String::from("q,round,down_mb,up_mb\n");
    let mut panel_b = String::from("q,skip_rounds,download_mb\n");
    let mut summary = Table::new([
        "q",
        "mean down (MB/round)",
        "mean up (MB/round)",
        "download@skip10 (MB)",
        "frac of model",
    ]);

    for q in [0.10, 0.20] {
        let cfg = common::setup(
            DatasetProfile::Femnist,
            DatasetModel::ShuffleNet,
            StrategyConfig::Stc { q },
            opts,
        );
        let mut sim = Simulation::new(cfg.clone());
        let dim = sim.model().num_params();
        let scale = if opts.paper_scale {
            cfg.model.paper_scale_factor(dim)
        } else {
            1.0
        };
        let mut recs = Vec::new();
        for _ in 0..opts.rounds {
            recs.push(sim.step());
        }
        let mut down_sum = 0.0;
        let mut up_sum = 0.0;
        for r in &recs {
            let d = bytes_to_mb(r.down_bytes) * scale;
            let u = bytes_to_mb(r.up_bytes) * scale;
            panel_a.push_str(&format!("{q},{},{d:.4},{u:.4}\n", r.round));
            down_sum += d;
            up_sum += u;
        }
        // Panel (b): staleness profile at the end of training — bytes a
        // client that skipped r rounds would download.
        let st = sim.staleness();
        let max_skip = (opts.rounds - 1).min(45);
        let mut at_skip10 = 0.0;
        for r in 1..=max_skip {
            let v = st.version().saturating_sub(r);
            let mb = bytes_to_mb(st.stale_positions(v) as u64 * 4) * scale;
            panel_b.push_str(&format!("{q},{r},{mb:.4}\n"));
            if r == 10.min(max_skip) {
                at_skip10 = mb;
            }
        }
        let model_mb = bytes_to_mb(dim as u64 * 4) * scale;
        summary.row([
            format!("{:.0}%", q * 100.0),
            format!("{:.2}", down_sum / recs.len() as f64),
            format!("{:.2}", up_sum / recs.len() as f64),
            format!("{at_skip10:.2}"),
            format!("{:.0}%", 100.0 * at_skip10 / model_mb),
        ]);
    }
    write_csv(&opts.out_dir, "fig2a_per_round.csv", &panel_a);
    write_csv(&opts.out_dir, "fig2b_skip_download.csv", &panel_b);
    println!("{}", summary.render());
    println!(
        "paper check: a client re-sampled after ~10 skipped rounds downloads \
         50-80% of the model even though q ≤ 20%"
    );
    Ok(())
}
