//! Wire-policy sweep: end-to-end accuracy vs *measured* bytes under the
//! `gluefl-wire` encoding policies.
//!
//! Runs the same GlueFL and STC configurations (identical data, sampling,
//! and network randomness) under a menu of [`gluefl_core::WirePolicy`]
//! arms and reports per-arm final accuracy next to the analytic and
//! measured upstream volumes:
//!
//! * `f32` (legacy) — bit-exact; the measured and analytic byte columns
//!   must agree exactly (the round loop debug-asserts it per client;
//!   this experiment re-checks the totals).
//! * `f32 entropy` — same decoded values to the bit (accuracy identical
//!   to the `f32` arm, asserted), fewer measured bytes: the delta-varint
//!   and RLE position layouts only replace the v1 sections when cheaper.
//! * `f16`, `quant-u8 (-ec)` — lossy value codecs with codec-residual
//!   feedback off: accuracy dips below F32 while bytes shrink.
//! * `quant-u8 (+ec)` / entropy — the same quantizer with the shipped
//!   (dequantized) values folded back into each client's
//!   error-compensation bank; the *gap closure* column reports how much
//!   of the no-feedback arm's accuracy gap vs F32 the feedback recovers,
//!   at identical measured bytes.
//!
//! Every arm runs with over-commitment pinned off (keep == invited):
//! measured frame lengths drive per-client upload times, so under
//! keep-fastest a cheaper encoding can change which stragglers get
//! dropped — a real systems effect, but one that would entangle cohort
//! luck with codec quality in the accuracy column.
//!
//! Run with `expt wire [--quick] [--rounds N] [--scale F] [--out DIR]`;
//! writes `wire_policies.csv` into the output directory.

use super::common::{run_config, setup};
use crate::ExptOpts;
use gluefl_core::{RunResult, StrategyConfig, WireCodec, WirePolicy};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;
use gluefl_tensor::wire::bytes_to_mb;

/// One policy arm of the sweep.
struct Arm {
    name: &'static str,
    policy: WirePolicy,
}

fn arms() -> Vec<Arm> {
    let quant_no_ec = WirePolicy {
        quant_ec: false,
        ..WirePolicy::legacy(WireCodec::QuantU8)
    };
    let quant_entropy_no_ec = WirePolicy {
        quant_ec: false,
        ..WirePolicy::entropy(WireCodec::QuantU8)
    };
    vec![
        Arm {
            name: "f32",
            policy: WirePolicy::legacy(WireCodec::F32),
        },
        Arm {
            name: "f32 entropy",
            policy: WirePolicy::entropy(WireCodec::F32),
        },
        Arm {
            name: "f16",
            policy: WirePolicy::legacy(WireCodec::F16),
        },
        Arm {
            name: "quant-u8 -ec",
            policy: quant_no_ec,
        },
        Arm {
            name: "quant-u8 +ec",
            policy: WirePolicy::legacy(WireCodec::QuantU8),
        },
        Arm {
            name: "quant-u8 entropy -ec",
            policy: quant_entropy_no_ec,
        },
        Arm {
            name: "quant-u8 entropy +ec",
            policy: WirePolicy::entropy(WireCodec::QuantU8),
        },
    ]
}

/// Runs the policy sweep and writes `wire_policies.csv`.
///
/// # Errors
/// Never fails currently; the `Result` matches the experiment interface.
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    let (dataset, model) = (DatasetProfile::Femnist, DatasetModel::ShuffleNet);
    let k = {
        let cfg = setup(dataset, model, StrategyConfig::FedAvg, opts);
        cfg.round_size
    };
    let strategies = [
        StrategyConfig::GlueFl(gluefl_core::GlueFlParams::paper_default(k, model)),
        StrategyConfig::Stc { q: 0.2 },
    ];

    let mut table = crate::Table::new([
        "strategy",
        "policy",
        "final acc",
        "analytic up (MB)",
        "measured up (MB)",
        "ratio",
        "gap closed",
    ]);
    let mut csv = String::from(
        "strategy,policy,final_accuracy,analytic_up_bytes,wire_up_bytes,broadcast_bytes_per_round\n",
    );
    for strategy in &strategies {
        // Per-strategy reference points for the gap-closure column.
        let mut f32_acc: Option<f64> = None;
        let mut quant_gap: Option<f64> = None; // f32 − quant(-ec)
        let mut f32_wire: Option<u64> = None;
        for arm in arms() {
            let mut cfg = setup(dataset, model, strategy.clone(), opts);
            // No over-commitment: measured frame lengths drive upload
            // times, so under keep-fastest a cheaper encoding can change
            // which stragglers are dropped. Pinning keep == invited puts
            // every arm on the same kept cohort — the accuracy column
            // then isolates the encoding, and the entropy-F32 invariance
            // assert below is exact rather than seed-dependent.
            cfg.oc = 1.0;
            cfg.wire = arm.policy;
            let result: RunResult = run_config(cfg);
            let analytic_up: u64 = result.rounds.iter().map(|r| r.up_bytes).sum();
            let wire_up: u64 = result.rounds.iter().map(|r| r.wire_up_bytes).sum();
            let broadcast: u64 = result
                .rounds
                .iter()
                .map(|r| r.wire_broadcast_bytes)
                .max()
                .unwrap_or(0);
            let acc = result.total.accuracy;
            match arm.name {
                "f32" => {
                    assert_eq!(
                        analytic_up, wire_up,
                        "legacy-F32 measured bytes diverged from the analytic model"
                    );
                    f32_acc = Some(acc);
                    f32_wire = Some(wire_up);
                }
                "f32 entropy" => {
                    // Entropy layouts never change decoded values: same
                    // trajectory, same accuracy, fewer (or equal) bytes.
                    assert_eq!(
                        Some(acc),
                        f32_acc,
                        "entropy F32 accuracy diverged from legacy F32"
                    );
                    assert!(
                        Some(wire_up) <= f32_wire,
                        "entropy layouts may only shrink measured bytes"
                    );
                }
                "quant-u8 -ec" => quant_gap = f32_acc.map(|f| f - acc),
                _ => {}
            }
            // Gap closure vs the no-feedback quantized arm, shown for the
            // +ec arms (feedback changes no bytes, only accuracy). Only
            // reported when the quantizer actually opened a gap: dividing
            // by a noise-level gap (at paper scale QuantU8 often matches
            // F32 within ~0.1 pp already) yields meaningless ±100s.
            let gap_closed = match (arm.name, f32_acc, quant_gap) {
                (name, Some(f), Some(gap)) if name.ends_with("+ec") && gap > 2e-3 => {
                    format!("{:.0}%", (1.0 - (f - acc) / gap) * 100.0)
                }
                _ => "—".to_owned(),
            };
            table.row([
                result.strategy.clone(),
                arm.name.to_owned(),
                format!("{:.1}%", acc * 100.0),
                format!("{:.2}", bytes_to_mb(analytic_up)),
                format!("{:.2}", bytes_to_mb(wire_up)),
                format!("{:.3}", wire_up as f64 / analytic_up.max(1) as f64),
                gap_closed,
            ]);
            csv.push_str(&format!(
                "{},{},{:.4},{},{},{}\n",
                result.strategy, arm.name, acc, analytic_up, wire_up, broadcast
            ));
        }
    }
    println!("\nwire policy sweep — accuracy vs measured upstream bytes");
    println!("{}", table.render());
    println!(
        "(Legacy-F32 rows must match the analytic model exactly; entropy \
         rows keep F32 accuracy bit-identical at fewer measured bytes. \
         'gap closed' is how much of the quantizer's accuracy gap vs F32 \
         the codec-residual feedback recovers at identical bytes — shown \
         only when the gap exceeds 0.2 pp; at paper scale QuantU8 often \
         matches F32 within noise already. Broadcast model weights stay \
         full-precision by design.)"
    );
    crate::write_csv(&opts.out_dir, "wire_policies.csv", &csv);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep runs end to end in quick mode, writes its CSV, and the
    /// structural assertions (F32 measured ≡ analytic; entropy F32
    /// accuracy ≡ legacy F32 at ≤ bytes) hold.
    #[test]
    fn sweep_runs_and_writes_csv() {
        let dir = std::env::temp_dir().join("gluefl_wire_sweep_test");
        let opts = ExptOpts {
            quick: true,
            rounds: 3,
            scale: 0.01,
            out_dir: dir.clone(),
            ..ExptOpts::default()
        };
        run(&opts).unwrap();
        let csv = std::fs::read_to_string(dir.join("wire_policies.csv")).unwrap();
        assert!(csv.lines().count() >= 15, "expected 14 arms + header");
        assert!(csv.contains("quant-u8 +ec"));
        assert!(csv.contains("f32 entropy"));
    }
}
