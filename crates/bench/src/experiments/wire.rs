//! Wire-codec sweep: end-to-end accuracy vs *measured* bytes under the
//! `gluefl-wire` value codecs.
//!
//! Runs the same GlueFL and STC configurations (identical data, sampling,
//! and network randomness) with each upload codec — `F32` (bit-exact),
//! `F16`, and `QuantU8` (deterministic stochastic rounding) — and reports
//! per-arm final accuracy next to the analytic and measured upstream
//! volumes. With `F32` the two byte columns must agree exactly (the
//! round loop debug-asserts it per client; this experiment re-checks the
//! totals); the quantized rows show the accuracy-vs-bytes trade the
//! codec axis buys.
//!
//! Run with `expt wire [--quick] [--rounds N] [--scale F] [--out DIR]`;
//! writes `wire_codecs.csv` into the output directory.

use super::common::{run_config, setup};
use crate::ExptOpts;
use gluefl_core::{RunResult, StrategyConfig, WireCodec};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;
use gluefl_tensor::wire::bytes_to_mb;

/// Runs the codec sweep and writes `wire_codecs.csv`.
///
/// # Errors
/// Never fails currently; the `Result` matches the experiment interface.
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    let (dataset, model) = (DatasetProfile::Femnist, DatasetModel::ShuffleNet);
    let k = {
        let cfg = setup(dataset, model, StrategyConfig::FedAvg, opts);
        cfg.round_size
    };
    let strategies = [
        StrategyConfig::GlueFl(gluefl_core::GlueFlParams::paper_default(k, model)),
        StrategyConfig::Stc { q: 0.2 },
    ];
    let codecs = [
        ("f32", WireCodec::F32),
        ("f16", WireCodec::F16),
        ("quant-u8", WireCodec::QuantU8),
    ];

    let mut table = crate::Table::new([
        "strategy",
        "codec",
        "final acc",
        "analytic up (MB)",
        "measured up (MB)",
        "ratio",
    ]);
    let mut csv = String::from(
        "strategy,codec,final_accuracy,analytic_up_bytes,wire_up_bytes,broadcast_bytes_per_round\n",
    );
    for strategy in &strategies {
        for (codec_name, codec) in codecs {
            let mut cfg = setup(dataset, model, strategy.clone(), opts);
            cfg.wire_codec = codec;
            let result: RunResult = run_config(cfg);
            let analytic_up: u64 = result.rounds.iter().map(|r| r.up_bytes).sum();
            let wire_up: u64 = result.rounds.iter().map(|r| r.wire_up_bytes).sum();
            let broadcast: u64 = result
                .rounds
                .iter()
                .map(|r| r.wire_broadcast_bytes)
                .max()
                .unwrap_or(0);
            if codec == WireCodec::F32 {
                assert_eq!(
                    analytic_up, wire_up,
                    "F32 measured bytes diverged from the analytic model"
                );
            }
            let acc = result.total.accuracy;
            table.row([
                result.strategy.clone(),
                codec_name.to_owned(),
                format!("{:.1}%", acc * 100.0),
                format!("{:.2}", bytes_to_mb(analytic_up)),
                format!("{:.2}", bytes_to_mb(wire_up)),
                format!("{:.3}", wire_up as f64 / analytic_up.max(1) as f64),
            ]);
            csv.push_str(&format!(
                "{},{},{:.4},{},{},{}\n",
                result.strategy, codec_name, acc, analytic_up, wire_up, broadcast
            ));
        }
    }
    println!("\nwire codec sweep — accuracy vs measured upstream bytes");
    println!("{}", table.render());
    println!(
        "(F32 rows must match the analytic model exactly; quantized rows \
         trade bounded update error for upstream bytes. Broadcast stays \
         full-precision by design.)"
    );
    crate::write_csv(&opts.out_dir, "wire_codecs.csv", &csv);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep runs end to end in quick mode, writes its CSV, and the
    /// F32 arm's measured-equals-analytic assertion holds.
    #[test]
    fn sweep_runs_and_writes_csv() {
        let dir = std::env::temp_dir().join("gluefl_wire_sweep_test");
        let opts = ExptOpts {
            quick: true,
            rounds: 3,
            scale: 0.01,
            out_dir: dir.clone(),
            ..ExptOpts::default()
        };
        run(&opts).unwrap();
        let csv = std::fs::read_to_string(dir.join("wire_codecs.csv")).unwrap();
        assert!(csv.lines().count() >= 7, "expected 6 arms + header");
        assert!(csv.contains("quant-u8"));
    }
}
