//! Table 3: over-commitment strategies (3a) and values (3b).
//!
//! 3a fixes OC = 1.3 and varies how the 0.3·K extra invitations split
//! between the sticky and non-sticky groups (10% / 30% / 50% / the C÷K
//! default). 3b fixes the best split (10%) and sweeps OC ∈ 1.0..1.5.
//! The metric set is Table 2's DV/TV/DT/TT at the target accuracy.

use crate::experiments::common;
use crate::{write_csv, ExptOpts, Table};
use gluefl_core::{GlueFlParams, RunResult, SimConfig, StrategyConfig};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;
use gluefl_sampling::overcommit::OcStrategy;

fn base_cfg(opts: &ExptOpts) -> (SimConfig, GlueFlParams) {
    let cfg = common::setup(
        DatasetProfile::Femnist,
        DatasetModel::ShuffleNet,
        StrategyConfig::FedAvg,
        opts,
    );
    let params = GlueFlParams::paper_default(cfg.round_size, DatasetModel::ShuffleNet);
    (cfg, params)
}

fn run_arms(
    label_cfgs: Vec<(String, SimConfig)>,
    opts: &ExptOpts,
    csv_name: &str,
    header_note: &str,
) {
    let results: Vec<RunResult> = label_cfgs
        .iter()
        .map(|(_, cfg)| common::run_config(cfg.clone()))
        .collect();
    let target = common::common_target(&results);
    let results = common::with_target(results, target);
    let mut table = Table::new(["arm", "DV (GB)", "TV (GB)", "DT (h)", "TT (h)", "reached"]);
    let mut csv = String::from("arm,dv_gb,tv_gb,dt_h,tt_h,reached,target\n");
    let sim_dim = {
        let cfg0 = &label_cfgs[0].1;
        let mut rng = gluefl_tensor::rng::seeded_rng(opts.seed, "table3-dim", 0);
        cfg0.model
            .build(cfg0.dataset.feature_dim, cfg0.dataset.classes, &mut rng)
            .num_params()
    };
    for ((label, cfg), r) in label_cfgs.iter().zip(&results) {
        let dv = common::display_gb(r.at_target.down_bytes, cfg, sim_dim, opts);
        let tv = common::display_gb(r.at_target.total_bytes, cfg, sim_dim, opts);
        let dt = common::hours(r.at_target.download_secs);
        let tt = common::hours(r.at_target.total_secs);
        let reached = r.target_round.is_some();
        table.row([
            label.clone(),
            format!("{dv:.3}"),
            format!("{tv:.3}"),
            format!("{dt:.3}"),
            format!("{tt:.3}"),
            if reached {
                "yes".into()
            } else {
                "no".to_owned()
            },
        ]);
        csv.push_str(&format!(
            "{label},{dv:.4},{tv:.4},{dt:.4},{tt:.4},{reached},{target:.4}\n"
        ));
    }
    println!("(common target {:.1}%) {header_note}", target * 100.0);
    println!("{}", table.render());
    write_csv(&opts.out_dir, csv_name, &csv);
}

/// Runs Table 3a: over-commitment split strategies at OC = 1.3.
///
/// # Errors
/// Never fails; the `Result` matches the dispatcher's signature.
pub fn run_3a(opts: &ExptOpts) -> Result<(), String> {
    println!("Table 3a: over-commitment split strategies (OC = 1.3)");
    let (cfg, params) = base_cfg(opts);
    let mut arms = Vec::new();
    for (label, strategy) in [
        ("10% sticky", OcStrategy::StickyFraction(0.1)),
        ("30% sticky", OcStrategy::StickyFraction(0.3)),
        ("50% sticky", OcStrategy::StickyFraction(0.5)),
        ("C/K default", OcStrategy::Proportional),
    ] {
        let mut c = cfg.clone();
        c.strategy = StrategyConfig::GlueFl(params.clone());
        c.oc = 1.3;
        c.oc_strategy = strategy;
        arms.push((label.to_owned(), c));
    }
    run_arms(
        arms,
        opts,
        "table3a.csv",
        "— fewer sticky extras should cut training time at equal bandwidth",
    );
    Ok(())
}

/// Runs Table 3b: over-commitment values with the 10% split.
///
/// # Errors
/// Never fails; the `Result` matches the dispatcher's signature.
pub fn run_3b(opts: &ExptOpts) -> Result<(), String> {
    println!("Table 3b: over-commitment values (split = 10% sticky)");
    let (cfg, params) = base_cfg(opts);
    let values: &[f64] = if opts.quick {
        &[1.0, 1.3]
    } else {
        &[1.0, 1.1, 1.2, 1.3, 1.4, 1.5]
    };
    let mut arms = Vec::new();
    for &oc in values {
        let mut c = cfg.clone();
        c.strategy = StrategyConfig::GlueFl(params.clone());
        c.oc = oc;
        c.oc_strategy = OcStrategy::StickyFraction(0.1);
        arms.push((format!("OC = {oc:.1}"), c));
    }
    run_arms(
        arms,
        opts,
        "table3b.csv",
        "— OC = 1.0 has no straggler slack (huge TT); bandwidth grows with OC",
    );
    Ok(())
}
