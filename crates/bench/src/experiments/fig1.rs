//! Figure 1: client bandwidth distribution (scatter + CDF).
//!
//! The paper plots M-Lab NDT measurements for North America (June 2022):
//! a down/up scatter and the marginal CDFs, highlighting that ≈20% of
//! devices have ≤10 Mbps download. We regenerate both panels from the
//! calibrated `MlabEdge` sampler.

use crate::{write_csv, ExptOpts, Table};
use gluefl_net::{cdf, NetworkProfile};
use gluefl_tensor::rng::seeded_rng;

/// Runs the experiment.
///
/// # Errors
/// Never fails; the `Result` matches the dispatcher's signature.
pub fn run(opts: &ExptOpts) -> Result<(), String> {
    let n = if opts.quick { 1_000 } else { 5_000 };
    let mut rng = seeded_rng(opts.seed, "fig1", 0);
    let links = NetworkProfile::MlabEdge.sample_links(&mut rng, n);

    // Panel (a): scatter sample.
    let mut scatter = String::from("down_mbps,up_mbps\n");
    for l in &links {
        scatter.push_str(&format!("{:.3},{:.3}\n", l.down_mbps, l.up_mbps));
    }
    write_csv(&opts.out_dir, "fig1a_scatter.csv", &scatter);

    // Panel (b): CDFs.
    let downs: Vec<f64> = links.iter().map(|l| l.down_mbps).collect();
    let ups: Vec<f64> = links.iter().map(|l| l.up_mbps).collect();
    let (dx, dp) = cdf(&downs);
    let (ux, up) = cdf(&ups);
    let mut cdf_csv = String::from("kind,mbps,cum_prob\n");
    for (x, p) in dx.iter().zip(&dp) {
        cdf_csv.push_str(&format!("download,{x:.3},{p:.5}\n"));
    }
    for (x, p) in ux.iter().zip(&up) {
        cdf_csv.push_str(&format!("upload,{x:.3},{p:.5}\n"));
    }
    write_csv(&opts.out_dir, "fig1b_cdf.csv", &cdf_csv);

    // Console summary: key percentiles the paper's narrative relies on.
    let pct = |v: &[f64], p: f64| {
        let mut s = v.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        s[((s.len() - 1) as f64 * p) as usize]
    };
    let frac_below =
        |v: &[f64], x: f64| v.iter().filter(|&&b| b <= x).count() as f64 / v.len() as f64;
    let mut t = Table::new(["metric", "download", "upload"]);
    for (label, p) in [
        ("p10 (Mbps)", 0.1),
        ("p50 (Mbps)", 0.5),
        ("p90 (Mbps)", 0.9),
    ] {
        t.row([
            label.to_owned(),
            format!("{:.1}", pct(&downs, p)),
            format!("{:.1}", pct(&ups, p)),
        ]);
    }
    t.row([
        "P(≤10 Mbps)".to_owned(),
        format!("{:.1}%", 100.0 * frac_below(&downs, 10.0)),
        format!("{:.1}%", 100.0 * frac_below(&ups, 10.0)),
    ]);
    println!("Figure 1: edge bandwidth distribution ({n} clients)");
    println!("{}", t.render());
    println!(
        "paper check: ~20% of devices have ≤10 Mbps download → measured {:.1}%",
        100.0 * frac_below(&downs, 10.0)
    );
    Ok(())
}
