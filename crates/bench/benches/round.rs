//! End-to-end simulated round latency, per strategy.
//!
//! This is the wall-clock cost of *running the simulator*, not the
//! simulated round time; it bounds how fast experiments sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gluefl_compress::ApfConfig;
use gluefl_core::{GlueFlParams, SimConfig, Simulation, StrategyConfig};
use gluefl_data::DatasetProfile;
use gluefl_ml::DatasetModel;

fn cfg(strategy: StrategyConfig) -> SimConfig {
    let mut cfg = SimConfig::paper_setup(
        DatasetProfile::Femnist,
        DatasetModel::ShuffleNet,
        strategy,
        0.05,
        1_000_000, // never exhausted by the bench
        42,
    );
    cfg.model.hidden = vec![32];
    cfg.dataset.feature_dim = 16;
    cfg.dataset.classes = 10;
    cfg.dataset.test_samples = 100;
    cfg.eval_every = u32::MAX;
    cfg.availability = None;
    cfg
}

fn bench_rounds(c: &mut Criterion) {
    let strategies: Vec<(&str, StrategyConfig)> = vec![
        ("fedavg", StrategyConfig::FedAvg),
        ("stc", StrategyConfig::Stc { q: 0.2 }),
        (
            "apf",
            StrategyConfig::Apf {
                config: ApfConfig::default(),
            },
        ),
        (
            "gluefl",
            StrategyConfig::GlueFl(GlueFlParams::paper_default(30, DatasetModel::ShuffleNet)),
        ),
    ];
    let mut group = c.benchmark_group("simulated_round");
    group.sample_size(20);
    for (name, strategy) in strategies {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, s| {
            let mut sim = Simulation::new(cfg(s.clone()));
            b.iter(|| black_box(sim.step()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
