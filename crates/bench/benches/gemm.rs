//! Blocked GEMM vs plain-loop reference across the three MLP layouts.
//!
//! The linear layers dominate a simulated round after the allocation
//! refactors, so regressions in the blocked kernels must be visible
//! outside the `expt kernels` ledger too. Shapes mirror the paper's
//! [192, 96] MLP (64 features, 62 classes): training batch 16 for all
//! three layouts, plus an eval-sized forward batch.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gluefl_tensor::gemm::{gemm_nn, gemm_nn_ref, gemm_nt, gemm_nt_ref, gemm_tn, gemm_tn_ref};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn values(seed: u64, len: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// (m, n, k) = (batch, out_dim, in_dim) of the paper MLP's widest layers.
const SHAPES: [(usize, usize, usize); 2] = [(16, 192, 64), (16, 96, 192)];

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_nn");
    for (m, n, k) in SHAPES.into_iter().chain([(1024, 192, 64)]) {
        let a = values(1, m * k);
        let b = values(2, n * k);
        let bias = values(3, n);
        let mut out = vec![0.0f32; m * n];
        let id = format!("{m}x{n}x{k}");
        group.bench_with_input(BenchmarkId::new("blocked", &id), &a, |bench, a| {
            bench.iter(|| {
                gemm_nn(black_box(a), &b, &bias, m, n, k, &mut out);
                black_box(out[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", &id), &a, |bench, a| {
            bench.iter(|| {
                gemm_nn_ref(black_box(a), &b, &bias, m, n, k, &mut out);
                black_box(out[0])
            });
        });
    }
    group.finish();
}

fn bench_tn(c: &mut Criterion) {
    // For the backward layouts (m, p, n) = (batch, out_dim, in_dim),
    // i.e. the same paper shapes with the reduction over out_dim / batch.
    let mut group = c.benchmark_group("gemm_tn");
    for (m, p, n) in SHAPES {
        let a = values(4, m * p);
        let b = values(5, p * n);
        let mut out = vec![0.0f32; m * n];
        let id = format!("{m}x{p}x{n}");
        group.bench_with_input(BenchmarkId::new("blocked", &id), &a, |bench, a| {
            bench.iter(|| {
                gemm_tn(black_box(a), &b, m, p, n, &mut out);
                black_box(out[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", &id), &a, |bench, a| {
            bench.iter(|| {
                gemm_tn_ref(black_box(a), &b, m, p, n, &mut out);
                black_box(out[0])
            });
        });
    }
    group.finish();
}

fn bench_nt(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_nt");
    for (m, p, n) in SHAPES {
        let a = values(6, m * p);
        let b = values(7, m * n);
        // gemm_nt accumulates (`out += aᵀ·b`), so reset the gradient
        // buffer from a pristine copy each iteration — otherwise the
        // accumulator drifts across the measurement and the two arms run
        // against diverging values. The copy cost is identical per arm
        // and ≪ the kernel itself.
        let grad0 = values(8, p * n);
        let mut out = grad0.clone();
        let id = format!("{m}x{p}x{n}");
        group.bench_with_input(BenchmarkId::new("blocked", &id), &a, |bench, a| {
            bench.iter(|| {
                out.copy_from_slice(&grad0);
                gemm_nt(black_box(a), &b, m, p, n, &mut out);
                black_box(out[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", &id), &a, |bench, a| {
            bench.iter(|| {
                out.copy_from_slice(&grad0);
                gemm_nt_ref(black_box(a), &b, m, p, n, &mut out);
                black_box(out[0])
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nn, bench_tn, bench_nt);
criterion_main!(benches);
