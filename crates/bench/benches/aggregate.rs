//! Weighted sparse aggregation: the server-side hot loop of every round.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gluefl_tensor::SparseUpdate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const D: usize = 100_000;

fn client_updates(k: usize, density: f64) -> Vec<SparseUpdate> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..k)
        .map(|_| {
            let mut pairs: Vec<(u32, f32)> = Vec::new();
            for i in 0..D as u32 {
                if rng.gen::<f64>() < density {
                    pairs.push((i, rng.gen_range(-1.0..1.0)));
                }
            }
            SparseUpdate::from_pairs(D, pairs)
        })
        .collect()
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate");
    for k in [10usize, 30, 100] {
        let updates = client_updates(k, 0.2);
        group.bench_with_input(BenchmarkId::new("weighted_sum", k), &updates, |b, us| {
            b.iter(|| {
                let mut acc = vec![0.0f32; D];
                for (i, u) in us.iter().enumerate() {
                    u.add_scaled_into(&mut acc, 1.0 / (i + 1) as f32);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_apply_partial_download(c: &mut Criterion) {
    // Client-side: overwriting stale positions from a partial download.
    let update = &client_updates(1, 0.5)[0];
    c.bench_function("apply_partial_download_50pct", |b| {
        b.iter(|| {
            let mut model = vec![1.0f32; D];
            update.apply(&mut model);
            black_box(model)
        })
    });
}

criterion_group!(benches, bench_aggregate, bench_apply_partial_download);
criterion_main!(benches);
