//! Client sampling cost at cross-device population sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gluefl_sampling::{AllOnline, MdSampler, StickySampler, UniformSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler_draw");
    for n in [10_000usize, 100_000] {
        let uniform = UniformSampler::new(n);
        group.bench_with_input(BenchmarkId::new("uniform_k100", n), &uniform, |b, s| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(s.draw(&mut rng, 100, &mut AllOnline)));
        });
        let md = MdSampler::uniform(n);
        group.bench_with_input(BenchmarkId::new("multinomial_k100", n), &md, |b, s| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| black_box(s.draw(&mut rng, 100)));
        });
        let mut rng = StdRng::seed_from_u64(3);
        let sticky = StickySampler::new(n, 400, &mut rng);
        group.bench_with_input(BenchmarkId::new("sticky_c80_f20", n), &sticky, |b, s| {
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| black_box(s.draw(&mut rng, 80, 20, &mut AllOnline)));
        });
    }
    group.finish();
}

fn bench_sticky_round_trip(c: &mut Criterion) {
    // Draw + rebalance, the full per-round sampler cost.
    let n = 100_000;
    c.bench_function("sticky_draw_and_rebalance_n100k", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sampler = StickySampler::new(n, 400, &mut rng);
        b.iter(|| {
            let draw = sampler.draw(&mut rng, 80, 20, &mut AllOnline);
            sampler.rebalance(&mut rng, &draw.sticky, &draw.fresh);
            black_box(draw.len())
        });
    });
}

criterion_group!(benches, bench_samplers, bench_sticky_round_trip);
criterion_main!(benches);
