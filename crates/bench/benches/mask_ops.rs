//! Bitmask algebra at model scale (the shared mask `M_t` is a d-bit map).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gluefl_tensor::BitMask;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const D: usize = 1_000_000;

fn random_mask(seed: u64, density: f64) -> BitMask {
    let mut rng = StdRng::seed_from_u64(seed);
    BitMask::from_indices(D, (0..D).filter(|_| rng.gen::<f64>() < density))
}

fn bench_mask_ops(c: &mut Criterion) {
    let a = random_mask(1, 0.16);
    let b = random_mask(2, 0.16);
    let mut group = c.benchmark_group("mask_ops");
    group.bench_function("or", |bch| bch.iter(|| black_box(a.or(&b))));
    group.bench_function("and", |bch| bch.iter(|| black_box(a.and(&b))));
    group.bench_function("not", |bch| bch.iter(|| black_box(a.not())));
    group.bench_function("overlap", |bch| bch.iter(|| black_box(a.overlap(&b))));
    group.bench_function("count_ones", |bch| bch.iter(|| black_box(a.count_ones())));
    group.bench_function("iter_ones_sum", |bch| {
        bch.iter(|| black_box(a.iter_ones().sum::<usize>()))
    });
    group.finish();
}

fn bench_mask_apply(c: &mut Criterion) {
    let a = random_mask(3, 0.16);
    let mut rng = StdRng::seed_from_u64(4);
    let dense: Vec<f32> = (0..D).map(|_| rng.gen_range(-1.0..1.0)).collect();
    c.bench_function("mask_apply_to_dense", |bch| {
        bch.iter(|| {
            let mut v = dense.clone();
            a.apply_to(&mut v);
            black_box(v)
        })
    });
}

criterion_group!(benches, bench_mask_ops, bench_mask_apply);
criterion_main!(benches);
