//! Top-k selection: introselect (ours) vs full sort, across dimensions.
//!
//! Top-k runs on every client for every round (Algorithm 3 line 17) and
//! on the server (line 26); it must stay O(d).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gluefl_tensor::{top_k_abs, top_k_abs_masked, BitMask, TopKScope};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn values(d: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(1);
    (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn topk_by_sort(v: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| v[b].abs().partial_cmp(&v[a].abs()).unwrap());
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk");
    for d in [10_000usize, 100_000, 1_000_000] {
        let v = values(d);
        let k = d / 10;
        group.bench_with_input(BenchmarkId::new("introselect", d), &v, |b, v| {
            b.iter(|| black_box(top_k_abs(black_box(v), k)));
        });
        if d <= 100_000 {
            group.bench_with_input(BenchmarkId::new("full_sort", d), &v, |b, v| {
                b.iter(|| black_box(topk_by_sort(black_box(v), k)));
            });
        }
    }
    group.finish();
}

fn bench_topk_masked(c: &mut Criterion) {
    let d = 100_000;
    let v = values(d);
    // A 16% shared mask, as in the paper's ShuffleNet setting.
    let mask = BitMask::from_indices(d, (0..d).filter(|i| i % 6 == 0));
    let mut group = c.benchmark_group("topk_masked");
    group.bench_function("outside_shared_mask", |b| {
        b.iter(|| {
            black_box(top_k_abs_masked(
                black_box(&v),
                d / 25, // q − q_shr = 4%
                TopKScope::Outside(&mask),
            ))
        });
    });
    group.bench_function("inside_shared_mask", |b| {
        b.iter(|| {
            black_box(top_k_abs_masked(
                black_box(&v),
                d / 25,
                TopKScope::Inside(&mask),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_topk, bench_topk_masked);
criterion_main!(benches);
