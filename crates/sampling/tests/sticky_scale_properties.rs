//! Sticky-sampler invariants at population scale.
//!
//! These properties run at N = 10⁵ with tiny participant counts — the
//! regime the O(S + participants) draw path is built for. They pin the
//! structural invariants that must survive the rejection-sampled fast
//! path: constant group size, disjoint sticky/fresh draws, no duplicate
//! invites, membership consistency after rebalancing, and a per-round
//! membership change bounded by the admitted count.

use gluefl_sampling::overcommit::{plan as oc_plan, OcStrategy};
use gluefl_sampling::{AllOnline, DenseOnline, MdSampler, StickySampler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 100_000;

proptest! {
    /// Draws are disjoint, duplicate-free, correctly grouped, and sized.
    #[test]
    fn draw_invariants_at_scale(
        seed in 0u64..1_000,
        s in 40usize..200,
        c in 1usize..32,
        fresh in 0usize..16,
    ) {
        let c = c.min(s);
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = StickySampler::new(N, s, &mut rng);
        let d = sampler.draw(&mut rng, c, fresh, &mut AllOnline);
        prop_assert_eq!(d.sticky.len(), c);
        prop_assert_eq!(d.fresh.len(), fresh);
        prop_assert!(d.sticky.iter().all(|&i| sampler.is_sticky(i)));
        prop_assert!(d.fresh.iter().all(|&i| !sampler.is_sticky(i)));
        let mut all = d.all();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), c + fresh, "duplicate invites");
    }

    /// Over many rounds of draw + rebalance the group size stays constant,
    /// the bitmap and the member list agree, and at most `admitted` members
    /// change per round.
    #[test]
    fn rebalance_invariants_at_scale(
        seed in 0u64..500,
        s in 60usize..160,
        rounds in 1usize..12,
    ) {
        let (c, fresh) = (24usize.min(s), 6usize);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = StickySampler::new(N, s, &mut rng);
        for _ in 0..rounds {
            let before: Vec<usize> = sampler.sticky_group().to_vec();
            let d = sampler.draw(&mut rng, c, fresh, &mut AllOnline);
            sampler.rebalance(&mut rng, &d.sticky, &d.fresh);
            prop_assert_eq!(sampler.group_size(), s);
            // List is sorted, duplicate-free, and matches the bitmap.
            let list = sampler.sticky_group();
            prop_assert!(list.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(list.iter().all(|&i| sampler.is_sticky(i)));
            // Change fraction: exactly the admitted clients entered, and
            // as many left; everyone who participated stayed.
            let entered = list.iter().filter(|i| !before.contains(i)).count();
            prop_assert_eq!(entered, d.fresh.len());
            prop_assert!(d.sticky.iter().all(|&i| sampler.is_sticky(i)));
        }
    }

    /// With sparse availability the draw returns only online clients and
    /// still never duplicates or mixes groups.
    #[test]
    fn sparse_availability_at_scale(
        seed in 0u64..300,
        stride in 2usize..50,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = StickySampler::new(N, 120, &mut rng);
        let online: Vec<bool> = (0..N).map(|i| i % stride == 0).collect();
        let d = sampler.draw(&mut rng, 24, 6, &mut DenseOnline(&online));
        prop_assert!(d.all().iter().all(|&i| i % stride == 0));
        let mut all = d.all();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), d.len());
    }

    /// The MD sampler's per-draw path at population scale: `draw_one` is
    /// RNG-for-RNG identical to the batch `draw`, and `k` draws touch
    /// only the O(K) returned ids — there is no per-round O(N) state to
    /// initialise or reset, which is what keeps MD-based round planning
    /// at O(K log N) for N = 10⁵.
    #[test]
    fn md_draw_one_matches_batch_at_scale(
        seed in 0u64..1_000,
        k in 1usize..64,
    ) {
        let sampler = MdSampler::uniform(N);
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = rng_a.clone();
        let batch = sampler.draw(&mut rng_a, k);
        let singles: Vec<usize> = (0..k).map(|_| sampler.draw_one(&mut rng_b)).collect();
        prop_assert_eq!(&batch, &singles);
        // Touched set: exactly the k drawn ids, all in range. The draw
        // itself allocates nothing and holds no mutable state, so the
        // touched working set per round is the K results — nothing else.
        prop_assert_eq!(singles.len(), k);
        prop_assert!(singles.iter().all(|&c| c < N));
    }

    /// Over-commitment plans always invite at least what they keep and
    /// keep exactly the round size.
    #[test]
    fn oc_plan_invariants(
        k in 1usize..200,
        c_frac in 0.0f64..1.0,
        oc in 1.0f64..2.0,
    ) {
        let c = ((k as f64 * c_frac) as usize).min(k);
        for strat in [OcStrategy::Proportional, OcStrategy::StickyFraction(0.3)] {
            let p = oc_plan(k, c, oc, strat);
            prop_assert!(p.sticky_invites >= p.keep_sticky);
            prop_assert!(p.fresh_invites >= p.keep_fresh);
            prop_assert_eq!(p.total_keep(), k);
            prop_assert_eq!(p.keep_sticky, c);
            prop_assert!(p.total_invites() >= (k as f64 * oc) as usize);
        }
    }
}
