//! Over-commitment planning (paper §5.1 and §5.6, Table 3).
//!
//! FedScale-style systems sample `OC × K` clients per round and keep only
//! the first `K` updates, masking stragglers and offline clients
//! (Bonawitz et al. 2019). GlueFL additionally controls *where* the extra
//! `0.3·K` invitations go: since sticky clients download little and are
//! rarely stragglers, inviting fewer extras from the sticky group and more
//! from the non-sticky group reduces tail latency at no bandwidth cost
//! (Table 3a).

/// How the over-commitment budget is split between the sticky and
/// non-sticky groups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OcStrategy {
    /// Paper default: split proportionally to the round composition, i.e.
    /// a fraction `C/K` of the extras go to the sticky group.
    Proportional,
    /// Send a fixed fraction of the extras to the sticky group (Table 3a
    /// evaluates 10%, 30%, 50%).
    StickyFraction(f64),
}

/// A per-round invitation plan.
///
/// `sticky_invites ≥ c` and `fresh_invites ≥ k − c`; the round later keeps
/// the first `c` sticky finishers and first `k − c` fresh finishers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OcPlan {
    /// Number of sticky-group clients invited.
    pub sticky_invites: usize,
    /// Number of non-sticky clients invited.
    pub fresh_invites: usize,
    /// Target number of sticky participants kept (`C`).
    pub keep_sticky: usize,
    /// Target number of fresh participants kept (`K − C`).
    pub keep_fresh: usize,
}

impl OcPlan {
    /// Total invitations `≈ OC × K`.
    #[must_use]
    pub fn total_invites(&self) -> usize {
        self.sticky_invites + self.fresh_invites
    }

    /// Total participants kept (`K`).
    #[must_use]
    pub fn total_keep(&self) -> usize {
        self.keep_sticky + self.keep_fresh
    }
}

/// Plans a round's invitations for round size `k`, sticky draw `c`,
/// over-commitment factor `oc ≥ 1`, and a split [`OcStrategy`].
///
/// The extra budget is `round((oc − 1) · k)` clients; the strategy decides
/// how many of those go to the sticky group (rounded to the nearest whole
/// client, remainder to the non-sticky group).
///
/// # Panics
/// Panics if `c > k`, `oc < 1.0`, or a `StickyFraction` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use gluefl_sampling::overcommit::{plan, OcStrategy};
/// // Paper default: K=30, C=24, OC=1.3, proportional split (C/K = 80%).
/// let p = plan(30, 24, 1.3, OcStrategy::Proportional);
/// assert_eq!(p.total_invites(), 39);
/// assert_eq!(p.sticky_invites, 24 + 7); // 80% of 9 extras ≈ 7
/// // Table 3a row "10%": 1 extra to sticky, 8 to fresh.
/// let p = plan(30, 24, 1.3, OcStrategy::StickyFraction(0.1));
/// assert_eq!(p.sticky_invites, 25);
/// assert_eq!(p.fresh_invites, 14);
/// ```
#[must_use]
pub fn plan(k: usize, c: usize, oc: f64, strategy: OcStrategy) -> OcPlan {
    assert!(c <= k, "sticky draw {c} exceeds round size {k}");
    assert!(oc >= 1.0, "over-commitment factor must be >= 1.0, got {oc}");
    let extras = ((oc - 1.0) * k as f64).round() as usize;
    let frac = match strategy {
        OcStrategy::Proportional => {
            if k == 0 {
                0.0
            } else {
                c as f64 / k as f64
            }
        }
        OcStrategy::StickyFraction(f) => {
            assert!(
                (0.0..=1.0).contains(&f),
                "sticky fraction {f} outside [0,1]"
            );
            f
        }
    };
    let sticky_extra = ((extras as f64) * frac).round() as usize;
    let sticky_extra = sticky_extra.min(extras);
    OcPlan {
        sticky_invites: c + sticky_extra,
        fresh_invites: (k - c) + (extras - sticky_extra),
        keep_sticky: c,
        keep_fresh: k - c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_plan() {
        let p = plan(30, 24, 1.3, OcStrategy::Proportional);
        assert_eq!(p.total_invites(), 39);
        assert_eq!(p.total_keep(), 30);
        assert_eq!(p.keep_sticky, 24);
        assert_eq!(p.keep_fresh, 6);
        // C/K = 0.8 of 9 extras → 7 sticky, 2 fresh (paper §5.6: "7 : 2").
        assert_eq!(p.sticky_invites - p.keep_sticky, 7);
        assert_eq!(p.fresh_invites - p.keep_fresh, 2);
    }

    #[test]
    fn table3a_rows() {
        // Rows of Table 3a: 10% → 1:8, 30% → 3:6, 50% → 5:4 (approx;
        // 0.3·30 = 9 extras).
        for (frac, sticky_extra, fresh_extra) in [(0.1, 1, 8), (0.3, 3, 6), (0.5, 5, 4)] {
            let p = plan(30, 24, 1.3, OcStrategy::StickyFraction(frac));
            assert_eq!(
                (p.sticky_invites - 24, p.fresh_invites - 6),
                (sticky_extra, fresh_extra),
                "fraction {frac}"
            );
        }
    }

    #[test]
    fn oc_one_means_no_extras() {
        let p = plan(30, 24, 1.0, OcStrategy::Proportional);
        assert_eq!(p.total_invites(), 30);
        assert_eq!(p.sticky_invites, 24);
    }

    #[test]
    fn extras_are_rounded_to_nearest() {
        // OC=1.1, K=30 → 3 extras.
        let p = plan(30, 24, 1.1, OcStrategy::Proportional);
        assert_eq!(p.total_invites(), 33);
    }

    #[test]
    fn zero_sticky_round_routes_all_extras_fresh() {
        let p = plan(30, 0, 1.3, OcStrategy::Proportional);
        assert_eq!(p.sticky_invites, 0);
        assert_eq!(p.fresh_invites, 39);
    }

    #[test]
    #[should_panic(expected = "must be >= 1.0")]
    fn rejects_oc_below_one() {
        let _ = plan(30, 24, 0.9, OcStrategy::Proportional);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_fraction() {
        let _ = plan(30, 24, 1.3, OcStrategy::StickyFraction(1.5));
    }
}
