//! Closed-form sampling analysis (Appendix A, Propositions 1 and 2).
//!
//! These formulas answer: *given that a client was just sampled, what is
//! the probability that its next participation happens exactly `r` rounds
//! later?* GlueFL uses them to choose the sticky-group parameters `S` and
//! `C` so that a sticky client's short-term re-sampling probability
//! dominates uniform sampling for long enough to keep downloads small.

/// Probability that a uniformly-sampled client is next sampled exactly `r`
/// rounds later: `(K/N)·(1 − K/N)^{r−1}` (Proposition 1).
///
/// # Panics
/// Panics if `k > n`, `n == 0`, or `r == 0`.
///
/// # Example
/// ```
/// // FEMNIST case study: N=2800, K=30 → ≈1.1% per round.
/// let p = gluefl_sampling::analysis::uniform_resample_prob(2800, 30, 1);
/// assert!((p - 30.0 / 2800.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn uniform_resample_prob(n: usize, k: usize, r: u32) -> f64 {
    assert!(n > 0 && k <= n, "need 0 < k <= n");
    assert!(r > 0, "round offset r must be positive");
    let p = k as f64 / n as f64;
    p * (1.0 - p).powi(r as i32 - 1)
}

/// Expected number of rounds until a client is re-sampled under uniform
/// sampling: `N/K` (Proposition 1).
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
#[must_use]
pub fn uniform_expected_resample_rounds(n: usize, k: usize) -> f64 {
    assert!(k > 0 && k <= n, "need 0 < k <= n");
    n as f64 / k as f64
}

/// Probability that a client *currently in the sticky group* is next
/// sampled exactly `r` rounds later (Proposition 2):
///
/// ```text
///         K(NC − SK)/S · (1 − K/S)^{r−1}  +  (K−C)² · (1 − (K−C)/(N−S))^{r−1}
/// P(r) = ─────────────────────────────────────────────────────────────────────
///                              (N−S)K − (K−C)S
/// ```
///
/// The first term is the path where the client stays sticky until being
/// drawn from `S`; the second is the path where it is evicted and later
/// drawn from the non-sticky pool.
///
/// # Panics
/// Panics unless `0 < c <= k <= s < n` is *not required*, but the formula
/// needs `c <= s <= n`, `c <= k`, `k <= s` for the sticky-exit path
/// probabilities to be valid; the function asserts `0 < c <= k`, `k <= s`,
/// `s < n`, and `r > 0`.
///
/// # Example
/// ```
/// use gluefl_sampling::analysis::sticky_resample_prob;
/// // §3.1 case study: N=2800, K=30, S=120, C=24 gives
/// // 20.0%, 15.0%, 11.2%, 8.5%, 6.4%, 4.8% for r = 1..=6.
/// let p1 = sticky_resample_prob(2800, 30, 120, 24, 1);
/// assert!((p1 - 0.200).abs() < 5e-4);
/// let p3 = sticky_resample_prob(2800, 30, 120, 24, 3);
/// assert!((p3 - 0.1127).abs() < 5e-4);
/// ```
#[must_use]
pub fn sticky_resample_prob(n: usize, k: usize, s: usize, c: usize, r: u32) -> f64 {
    assert!(
        c > 0 && c <= k && k <= s && s < n,
        "need 0 < c <= k <= s < n"
    );
    assert!(r > 0, "round offset r must be positive");
    let (nf, kf, sf, cf) = (n as f64, k as f64, s as f64, c as f64);
    let denom = (nf - sf) * kf - (kf - cf) * sf;
    let stay = (1.0 - kf / sf).powi(r as i32 - 1);
    let exit = (1.0 - (kf - cf) / (nf - sf)).powi(r as i32 - 1);
    (kf * (nf * cf - sf * kf) / sf * stay + (kf - cf).powi(2) * exit) / denom
}

/// Expected number of rounds until a sticky client is re-sampled: `N/K`,
/// identical to uniform sampling (Proposition 2) — stickiness shifts
/// probability mass toward small `r` without changing the mean.
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
#[must_use]
pub fn sticky_expected_resample_rounds(n: usize, k: usize) -> f64 {
    uniform_expected_resample_rounds(n, k)
}

/// The horizon `r_max` (Appendix A.3) up to which a sticky client's
/// stay-in-group re-sampling probability `C/S·(1−K/S)^{r−1}` dominates the
/// uniform probability `K/N·(1−K/N)^{r−1}`:
///
/// `r_max = 1 + floor( log(CN/(SK)) / log(S(N−K)/(N(S−K))) )`.
///
/// Returns `None` when stickiness never dominates (`C/S <= K/N`).
///
/// # Panics
/// Panics unless `0 < c <= k < s < n`.
///
/// # Example
/// ```
/// // Case study: dominance holds for 11 rounds.
/// let h = gluefl_sampling::analysis::sticky_advantage_horizon(2800, 30, 120, 24);
/// assert_eq!(h, Some(11));
/// ```
#[must_use]
pub fn sticky_advantage_horizon(n: usize, k: usize, s: usize, c: usize) -> Option<u32> {
    assert!(c > 0 && c <= k && k < s && s < n, "need 0 < c <= k < s < n");
    let (nf, kf, sf, cf) = (n as f64, k as f64, s as f64, c as f64);
    if cf / sf <= kf / nf {
        return None;
    }
    let num = (cf * nf / (sf * kf)).ln();
    let den = (sf * (nf - kf) / (nf * (sf - kf))).ln();
    Some(1 + (num / den).floor() as u32)
}

/// Sums `P(r)` for `r = 1..=horizon` — the probability that a sticky
/// client participates again within `horizon` rounds. Useful for planning
/// mask-regeneration intervals against expected staleness.
///
/// # Panics
/// Same requirements as [`sticky_resample_prob`].
#[must_use]
pub fn sticky_resample_within(n: usize, k: usize, s: usize, c: usize, horizon: u32) -> f64 {
    (1..=horizon)
        .map(|r| sticky_resample_prob(n, k, s, c, r))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_case_study_value() {
        // "uniform sampling re-samples clients with a probability of
        // around 1.1%" (§3.1).
        let p = uniform_resample_prob(2800, 30, 1);
        assert!((p - 0.0107).abs() < 2e-4);
    }

    #[test]
    fn uniform_distribution_sums_to_one() {
        let total: f64 = (1..100_000u32)
            .map(|r| uniform_resample_prob(100, 10, r))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_expectation_matches_geometric_mean() {
        let mean: f64 = (1..100_000u32)
            .map(|r| uniform_resample_prob(100, 10, r) * f64::from(r))
            .sum();
        assert!((mean - uniform_expected_resample_rounds(100, 10)).abs() < 1e-6);
    }

    #[test]
    fn sticky_case_study_sequence() {
        // §3.1: 20.0%, 15.0%, 11.2%, 8.5%, 6.4%, 4.8% for r = 1..=6.
        // (the paper truncates 11.27% to 11.2%, hence the 1.2e-3 slack)
        let expected = [0.200, 0.150, 0.112, 0.085, 0.064, 0.048];
        for (i, &e) in expected.iter().enumerate() {
            let p = sticky_resample_prob(2800, 30, 120, 24, i as u32 + 1);
            assert!((p - e).abs() < 1.2e-3, "r={} expected {e} got {p}", i + 1);
        }
    }

    #[test]
    fn sticky_distribution_sums_to_one() {
        let total: f64 = (1..200_000u32)
            .map(|r| sticky_resample_prob(200, 10, 40, 8, r))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn sticky_mean_is_n_over_k() {
        let mean: f64 = (1..400_000u32)
            .map(|r| sticky_resample_prob(200, 10, 40, 8, r) * f64::from(r))
            .sum();
        assert!((mean - 20.0).abs() < 1e-6, "mean {mean}");
    }

    #[test]
    fn horizon_case_study() {
        assert_eq!(sticky_advantage_horizon(2800, 30, 120, 24), Some(11));
    }

    #[test]
    fn horizon_none_when_not_advantaged() {
        // C/S = 1/100 < K/N = 10/200: stickiness is a disadvantage.
        assert_eq!(sticky_advantage_horizon(200, 10, 100, 1), None);
    }

    #[test]
    fn within_probability_is_monotone_and_bounded() {
        let mut prev = 0.0;
        for h in 1..50 {
            let p = sticky_resample_within(2800, 30, 120, 24, h);
            assert!(p >= prev && p <= 1.0 + 1e-12);
            prev = p;
        }
    }

    /// Monte-Carlo validation of Proposition 2 against the actual
    /// `StickySampler` process.
    #[test]
    fn proposition2_matches_monte_carlo() {
        use crate::StickySampler;
        let (n, k, s, c) = (120usize, 6usize, 24usize, 4usize);
        let fresh = k - c;
        let mut rng = StdRng::seed_from_u64(77);
        let mut sampler = StickySampler::new(n, s, &mut rng);
        // Track, for clients that just participated AND are sticky, the
        // number of rounds until next participation.
        let mut next_gap: Vec<Option<u32>> = vec![None; n];
        let mut round_of_watch: Vec<u32> = vec![0; n];
        let mut gaps: Vec<u32> = Vec::new();
        for t in 0..120_000u32 {
            let draw = sampler.draw(&mut rng, c, fresh, &mut crate::AllOnline);
            for &cl in &draw.all() {
                if let Some(start) = next_gap[cl].take() {
                    let _ = start;
                    gaps.push(t - round_of_watch[cl]);
                }
            }
            sampler.rebalance(&mut rng, &draw.sticky, &draw.fresh);
            // After rebalance, participants from the sticky draw remain
            // sticky; fresh participants just joined. Both now satisfy
            // "sampled at the current round and in the sticky group".
            for &cl in &draw.all() {
                next_gap[cl] = Some(t);
                round_of_watch[cl] = t;
            }
        }
        let total = gaps.len() as f64;
        for r in 1..=3u32 {
            let observed = gaps.iter().filter(|&&g| g == r).count() as f64 / total;
            let predicted = sticky_resample_prob(n, k, s, c, r);
            assert!(
                (observed - predicted).abs() < 0.02,
                "r={r}: observed {observed:.4} vs predicted {predicted:.4}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "r must be positive")]
    fn rejects_r_zero() {
        let _ = uniform_resample_prob(10, 2, 0);
    }

    #[test]
    #[should_panic(expected = "need 0 < c <= k <= s < n")]
    fn sticky_rejects_bad_config() {
        let _ = sticky_resample_prob(100, 20, 10, 5, 1);
    }
}
