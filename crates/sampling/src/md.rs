//! Multinomial (MD) client sampling with replacement (Li et al., 2020).

use crate::ClientId;
use rand::Rng;

/// Samples `K` clients i.i.d. from a multinomial distribution proportional
/// to client importance weights `p_i`.
///
/// MD sampling was proposed to remove the bias of uniform sampling under
/// heterogeneous client weights (§6, "Client sampling"). A client can be
/// drawn multiple times in one round; its update is then counted once per
/// draw with weight `1/K` each, which keeps the aggregate unbiased:
/// `E[Δ] = Σ_i p_i Δ_i`.
///
/// # Example
///
/// ```
/// use gluefl_sampling::MdSampler;
/// use rand::SeedableRng;
/// let sampler = MdSampler::new(vec![0.1, 0.2, 0.3, 0.4]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let draws = sampler.draw(&mut rng, 8);
/// assert_eq!(draws.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MdSampler {
    /// Cumulative distribution over clients.
    cdf: Vec<f64>,
}

/// Error returned when the weight vector is not a probability distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidWeightsError {
    what: &'static str,
}

impl std::fmt::Display for InvalidWeightsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid client weights: {}", self.what)
    }
}

impl std::error::Error for InvalidWeightsError {}

impl MdSampler {
    /// Creates a sampler from client weights `p_i`.
    ///
    /// # Errors
    /// Returns [`InvalidWeightsError`] when the vector is empty, contains a
    /// negative or non-finite weight, or does not sum to a positive value.
    /// Weights are normalised internally, so they need not sum to exactly 1.
    pub fn new(weights: Vec<f64>) -> Result<Self, InvalidWeightsError> {
        if weights.is_empty() {
            return Err(InvalidWeightsError {
                what: "empty weight vector",
            });
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(InvalidWeightsError {
                what: "weights must be finite and non-negative",
            });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(InvalidWeightsError {
                what: "weights sum to zero",
            });
        }
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating point drift at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Self { cdf })
    }

    /// Creates a sampler with uniform weights over `n` clients.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "need at least one client");
        Self::new(vec![1.0; n]).expect("uniform weights are valid")
    }

    /// Total number of clients `N`.
    #[must_use]
    pub fn population(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one client — a single `O(log N)` CDF inversion consuming
    /// exactly one RNG value, with no allocation. `draw(rng, k)` is
    /// RNG-for-RNG identical to calling this `k` times.
    #[must_use]
    pub fn draw_one<R: Rng>(&self, rng: &mut R) -> ClientId {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Draws `k` clients i.i.d. (with replacement), in draw order.
    #[must_use]
    pub fn draw<R: Rng>(&self, rng: &mut R, k: usize) -> Vec<ClientId> {
        (0..k).map(|_| self.draw_one(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_weights() {
        assert!(MdSampler::new(vec![]).is_err());
        assert!(MdSampler::new(vec![-1.0, 2.0]).is_err());
        assert!(MdSampler::new(vec![f64::NAN]).is_err());
        assert!(MdSampler::new(vec![0.0, 0.0]).is_err());
    }

    #[test]
    fn error_displays() {
        let e = MdSampler::new(vec![]).unwrap_err();
        assert!(e.to_string().contains("invalid client weights"));
    }

    #[test]
    fn draw_count_and_range() {
        let s = MdSampler::uniform(10);
        let mut rng = StdRng::seed_from_u64(1);
        let d = s.draw(&mut rng, 100);
        assert_eq!(d.len(), 100);
        assert!(d.iter().all(|&c| c < 10));
    }

    #[test]
    fn frequencies_track_weights() {
        let s = MdSampler::new(vec![1.0, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let draws = s.draw(&mut rng, 40_000);
        let ones = draws.iter().filter(|&&c| c == 1).count() as f64 / 40_000.0;
        assert!((ones - 0.75).abs() < 0.02, "client 1 frequency {ones}");
    }

    #[test]
    fn zero_weight_client_never_drawn() {
        let s = MdSampler::new(vec![0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(s.draw(&mut rng, 1000).iter().all(|&c| c == 1));
    }

    #[test]
    fn unnormalised_weights_are_normalised() {
        let a = MdSampler::new(vec![2.0, 6.0]).unwrap();
        let b = MdSampler::new(vec![0.25, 0.75]).unwrap();
        assert_eq!(a, b);
    }
}
