//! The availability seam between samplers and whatever tracks client
//! presence.
//!
//! Samplers used to take a dense `Option<&[bool]>` of per-client online
//! flags — which forces whoever plans a round to materialise O(N) state
//! even when only O(participants) clients are ever looked at. The
//! [`OnlineQuery`] trait inverts that: samplers *ask* about exactly the
//! candidates they consider, so a lazy availability process (one that
//! derives each client's on/off state on demand) is queried O(participants)
//! times per round instead of being forced through an O(N) snapshot.

use crate::ClientId;

/// Answers "is client `id` online right now?" for a sampler.
///
/// Implementations may be stateful (`&mut self`): lazy availability
/// processes advance per-client cursors on first touch. Queries must be
/// *consistent* within one draw — repeated queries for the same client
/// return the same answer — which every deterministic process satisfies.
pub trait OnlineQuery {
    /// Whether client `id` can participate.
    fn is_online(&mut self, id: ClientId) -> bool;
}

/// Every client is online — the `None` of the old dense-slice API.
///
/// # Example
/// ```
/// use gluefl_sampling::{AllOnline, OnlineQuery};
/// assert!(AllOnline.is_online(123));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct AllOnline;

impl OnlineQuery for AllOnline {
    fn is_online(&mut self, _id: ClientId) -> bool {
        true
    }
}

/// A dense per-client flag slice — the old `Some(&[bool])` API, for
/// callers that already hold a population-wide snapshot (eager traces,
/// tests).
///
/// # Example
/// ```
/// use gluefl_sampling::{DenseOnline, OnlineQuery};
/// let flags = [true, false, true];
/// let mut q = DenseOnline(&flags);
/// assert!(q.is_online(0));
/// assert!(!q.is_online(1));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DenseOnline<'a>(pub &'a [bool]);

impl OnlineQuery for DenseOnline<'_> {
    fn is_online(&mut self, id: ClientId) -> bool {
        self.0[id]
    }
}

/// Closures are queries: pass `&mut |id| lazy.is_online(id, round)`.
impl<F: FnMut(ClientId) -> bool> OnlineQuery for F {
    fn is_online(&mut self, id: ClientId) -> bool {
        self(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_adapter_queries_through() {
        let mut calls = 0usize;
        {
            let mut q = |id: ClientId| {
                calls += 1;
                id.is_multiple_of(2)
            };
            assert!(q.is_online(4));
            assert!(!q.is_online(3));
        }
        assert_eq!(calls, 2);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn dense_adapter_panics_out_of_range() {
        let flags = [true];
        let mut q = DenseOnline(&flags);
        assert!(q.is_online(0));
        let _ = q.is_online(5);
    }
}
