//! Sticky sampling (GlueFL §3.1, Algorithm 2).

use crate::online::OnlineQuery;
use crate::ClientId;
use rand::seq::SliceRandom;
use rand::Rng;

/// One round's participant draw under sticky sampling.
///
/// `K = C ∪ R` in the paper's notation: `sticky` is the set `C` (drawn from
/// the sticky group `S`) and `fresh` is the set `R` (drawn from `N \ S`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StickyDraw {
    /// Participants drawn from the sticky group (the paper's `C`).
    pub sticky: Vec<ClientId>,
    /// Participants drawn from the non-sticky remainder (the paper's `R`).
    pub fresh: Vec<ClientId>,
}

impl StickyDraw {
    /// All participants, sticky first then fresh.
    #[must_use]
    pub fn all(&self) -> Vec<ClientId> {
        let mut v = self.sticky.clone();
        v.extend_from_slice(&self.fresh);
        v
    }

    /// Total number of participants `K`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sticky.len() + self.fresh.len()
    }

    /// Returns `true` when no client was drawn.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sticky.is_empty() && self.fresh.is_empty()
    }
}

/// The inverse-propensity aggregation weight factors of §3.1.
///
/// A sticky participant's update is weighted `ν_s = sticky_factor · p_i`
/// and a fresh participant's `ν_r = fresh_factor · p_i`; Theorem 1 shows
/// this makes the aggregated update unbiased.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StickyWeights {
    /// `S / C` — multiplier for sticky-group participants.
    pub sticky_factor: f64,
    /// `(N − S) / (K − C)` — multiplier for fresh participants.
    pub fresh_factor: f64,
}

/// Computes the [`StickyWeights`] for population `n`, sticky group size
/// `s`, sticky draw count `c`, and round size `k`.
///
/// # Panics
/// Panics unless `0 < c <= s`, `c <= k`, and `s <= n`. `k == c` (no fresh
/// clients) yields a `fresh_factor` of 0, which is safe because no fresh
/// update exists to be weighted.
///
/// # Example
/// ```
/// let w = gluefl_sampling::sticky_weights(2800, 120, 24, 30);
/// assert!((w.sticky_factor - 5.0).abs() < 1e-12);
/// assert!((w.fresh_factor - 2680.0 / 6.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn sticky_weights(n: usize, s: usize, c: usize, k: usize) -> StickyWeights {
    assert!(
        c > 0 && c <= s && s <= n && c <= k,
        "invalid sticky configuration"
    );
    let fresh_factor = if k == c {
        0.0
    } else {
        (n - s) as f64 / (k - c) as f64
    };
    StickyWeights {
        sticky_factor: s as f64 / c as f64,
        fresh_factor,
    }
}

/// GlueFL's sticky sampler (Algorithm 2).
///
/// The server maintains a sticky group `S` of fixed size. Each round it
/// draws `C` participants from `S` and `K−C` from the remainder, then
/// *rebalances*: the fresh participants join `S`, displacing an equal
/// number of randomly-chosen sticky clients that did not participate.
/// Clients in `S` therefore have a much higher short-term re-sampling
/// probability (Proposition 2) and hold nearly-current model state, which
/// is what makes masking effective for downstream bandwidth.
///
/// Per-round cost is O(S + participants), not O(N): the sticky pool is
/// walked directly (it has `S ≈ 4K` members), fresh candidates are
/// rejection-sampled from id space, and rebalancing edits the membership
/// list in place instead of rebuilding it from a population scan. The
/// per-client state is two flat SoA arrays — a membership bitmap and the
/// sorted member list — so a million-client sampler is ~1 MB plus `S`
/// ids.
///
/// # Example
///
/// ```
/// use gluefl_sampling::{AllOnline, StickySampler};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut s = StickySampler::new(30, 8, &mut rng);
/// let draw = s.draw(&mut rng, 4, 2, &mut AllOnline);
/// s.rebalance(&mut rng, &draw.sticky, &draw.fresh);
/// // The fresh participants are now sticky.
/// assert!(draw.fresh.iter().all(|&c| s.is_sticky(c)));
/// ```
#[derive(Debug, Clone)]
pub struct StickySampler {
    n: usize,
    /// Flat membership bitmap, indexed by client id.
    in_sticky: Vec<bool>,
    /// Sorted membership list (the paper's `S`).
    sticky: Vec<ClientId>,
}

impl StickySampler {
    /// Creates a sampler over `n` clients with a sticky group of size
    /// `group_size`, initialised uniformly at random (§3.1: "We randomly
    /// select S clients to initialize S in the beginning of training").
    ///
    /// # Panics
    /// Panics if `group_size == 0` or `group_size > n`.
    #[must_use]
    pub fn new<R: Rng>(n: usize, group_size: usize, rng: &mut R) -> Self {
        assert!(
            group_size > 0 && group_size <= n,
            "sticky group size {group_size} must be in 1..={n}"
        );
        let mut in_sticky = vec![false; n];
        let mut sticky: Vec<ClientId>;
        if group_size.saturating_mul(4) >= n {
            // Dense init for small populations.
            let mut ids: Vec<ClientId> = (0..n).collect();
            let (chosen, _) = ids.partial_shuffle(rng, group_size);
            sticky = chosen.to_vec();
            for &c in &sticky {
                in_sticky[c] = true;
            }
        } else {
            // Rejection init: O(S) expected work, no O(N) id vector.
            sticky = Vec::with_capacity(group_size);
            while sticky.len() < group_size {
                let id = rng.gen_range(0..n);
                if !in_sticky[id] {
                    in_sticky[id] = true;
                    sticky.push(id);
                }
            }
        }
        sticky.sort_unstable();
        Self {
            n,
            in_sticky,
            sticky,
        }
    }

    /// Total number of clients `N`.
    #[must_use]
    pub fn population(&self) -> usize {
        self.n
    }

    /// Current sticky-group size `S` (constant across rebalances).
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.sticky.len()
    }

    /// Whether client `id` is currently in the sticky group.
    ///
    /// # Panics
    /// Panics if `id >= N`.
    #[must_use]
    pub fn is_sticky(&self, id: ClientId) -> bool {
        self.in_sticky[id]
    }

    /// A sorted snapshot of the sticky group.
    #[must_use]
    pub fn sticky_group(&self) -> &[ClientId] {
        &self.sticky
    }

    /// Draws `c` sticky and `fresh_count` non-sticky participants, without
    /// replacement, restricted to online clients.
    ///
    /// If one group has fewer available candidates than requested, the
    /// deficit is made up from the other group when possible, so the total
    /// draw size is preserved unless the whole population is exhausted.
    /// Draws are sorted by client id within each group.
    ///
    /// Cost is O(S + participants): the sticky pool is filtered directly
    /// (S entries), and fresh candidates are rejection-sampled from
    /// `0..N` — an id is kept unless sticky, offline, or already drawn —
    /// falling back to an exact dense scan only when the fresh draw is a
    /// large fraction of the non-sticky population or availability is too
    /// sparse for rejection to land.
    #[must_use]
    pub fn draw<R: Rng>(
        &self,
        rng: &mut R,
        c: usize,
        fresh_count: usize,
        online: &mut dyn OnlineQuery,
    ) -> StickyDraw {
        let mut sticky_pool: Vec<ClientId> = self
            .sticky
            .iter()
            .copied()
            .filter(|&i| online.is_online(i))
            .collect();
        let take_sticky = c.min(sticky_pool.len());
        let (s_picked, _) = sticky_pool.partial_shuffle(rng, take_sticky);
        let mut sticky: Vec<ClientId> = s_picked.to_vec();

        // Make up any sticky deficit from the fresh pool and vice versa.
        let deficit = c - sticky.len();
        let want_fresh = fresh_count + deficit;
        let fresh = self.draw_fresh(rng, want_fresh, online);

        if fresh.len() < want_fresh {
            // Fresh pool exhausted: top up from remaining sticky clients.
            let short = want_fresh - fresh.len();
            let mut rest: Vec<ClientId> = self
                .sticky
                .iter()
                .copied()
                .filter(|&i| !sticky.contains(&i) && online.is_online(i))
                .collect();
            let take = short.min(rest.len());
            let (extra, _) = rest.partial_shuffle(rng, take);
            sticky.extend_from_slice(extra);
        }

        sticky.sort_unstable();
        StickyDraw { sticky, fresh }
    }

    /// Draws up to `want` distinct online non-sticky clients, sorted.
    fn draw_fresh<R: Rng>(
        &self,
        rng: &mut R,
        want: usize,
        online: &mut dyn OnlineQuery,
    ) -> Vec<ClientId> {
        if want == 0 {
            return Vec::new();
        }
        let outside = self.n - self.sticky.len();
        if want.saturating_mul(4) < outside {
            let mut fresh: Vec<ClientId> = Vec::with_capacity(want);
            let budget = 16 * want + 64;
            for _ in 0..budget {
                if fresh.len() == want {
                    return fresh; // sorted by construction
                }
                let id = rng.gen_range(0..self.n);
                if self.in_sticky[id] {
                    continue;
                }
                if let Err(pos) = fresh.binary_search(&id) {
                    if online.is_online(id) {
                        fresh.insert(pos, id);
                    }
                }
            }
            // Budget exhausted: redraw exactly via the dense scan.
        }
        let mut pool: Vec<ClientId> = (0..self.n)
            .filter(|&i| !self.in_sticky[i] && online.is_online(i))
            .collect();
        let take = want.min(pool.len());
        let (picked, _) = pool.partial_shuffle(rng, take);
        let mut fresh = picked.to_vec();
        fresh.sort_unstable();
        fresh
    }

    /// Post-round rebalancing (Algorithm 2 lines 20–21): each admitted
    /// fresh participant displaces one uniformly-random sticky client that
    /// did *not* participate this round. The group size is preserved.
    ///
    /// `participated_sticky` is the subset of the sticky draw that actually
    /// completed the round (with over-commitment, stragglers drop out);
    /// `admitted_fresh` is the subset of fresh participants admitted to the
    /// sticky group.
    ///
    /// # Panics
    /// Panics if an admitted client is already sticky or out of range.
    pub fn rebalance<R: Rng>(
        &mut self,
        rng: &mut R,
        participated_sticky: &[ClientId],
        admitted_fresh: &[ClientId],
    ) {
        for &c in admitted_fresh {
            assert!(c < self.n, "client {c} out of range {}", self.n);
            assert!(!self.in_sticky[c], "client {c} is already sticky");
        }
        // Candidates for eviction: sticky clients that did not participate.
        let mut evictable: Vec<ClientId> = self
            .sticky
            .iter()
            .copied()
            .filter(|c| !participated_sticky.contains(c))
            .collect();
        let evict_n = admitted_fresh.len().min(evictable.len());
        let (evicted, _) = evictable.partial_shuffle(rng, evict_n);
        // Admit only as many as we could evict, keeping |S| constant.
        let admitted = &admitted_fresh[..evict_n];
        for &c in evicted.iter() {
            self.in_sticky[c] = false;
        }
        for &c in admitted {
            self.in_sticky[c] = true;
        }
        // Edit the membership list in place — O(S log S), not an O(N) scan.
        let Self {
            sticky, in_sticky, ..
        } = self;
        sticky.retain(|&c| in_sticky[c]);
        sticky.extend_from_slice(admitted);
        sticky.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::{AllOnline, DenseOnline};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampler(seed: u64, n: usize, s: usize) -> (StickySampler, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sm = StickySampler::new(n, s, &mut rng);
        (sm, rng)
    }

    #[test]
    fn init_group_size_and_membership_agree() {
        let (sm, _) = sampler(1, 50, 12);
        assert_eq!(sm.group_size(), 12);
        assert_eq!(
            sm.sticky_group().len(),
            (0..50).filter(|&i| sm.is_sticky(i)).count()
        );
        assert!(sm.sticky_group().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn draw_respects_group_membership() {
        let (sm, mut rng) = sampler(2, 60, 15);
        for _ in 0..50 {
            let d = sm.draw(&mut rng, 6, 4, &mut AllOnline);
            assert_eq!(d.len(), 10);
            assert!(d.sticky.iter().all(|&c| sm.is_sticky(c)));
            assert!(d.fresh.iter().all(|&c| !sm.is_sticky(c)));
            // no duplicates across groups
            let mut all = d.all();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), 10);
        }
    }

    #[test]
    fn rebalance_keeps_size_and_admits_fresh() {
        let (mut sm, mut rng) = sampler(3, 40, 10);
        for _ in 0..100 {
            let d = sm.draw(&mut rng, 4, 3, &mut AllOnline);
            sm.rebalance(&mut rng, &d.sticky, &d.fresh);
            assert_eq!(sm.group_size(), 10);
            assert!(d.fresh.iter().all(|&c| sm.is_sticky(c)));
            // Participating sticky clients are never evicted.
            assert!(d.sticky.iter().all(|&c| sm.is_sticky(c)));
        }
    }

    #[test]
    fn rebalance_with_partial_participation() {
        let (mut sm, mut rng) = sampler(4, 40, 10);
        let d = sm.draw(&mut rng, 5, 5, &mut AllOnline);
        // Only 2 fresh clients were fast enough to be admitted.
        let admitted = &d.fresh[..2];
        sm.rebalance(&mut rng, &d.sticky[..3], admitted);
        assert_eq!(sm.group_size(), 10);
        assert!(admitted.iter().all(|&c| sm.is_sticky(c)));
    }

    #[test]
    fn draw_with_availability_filter() {
        let (sm, mut rng) = sampler(5, 30, 10);
        // Only even-numbered clients are online.
        let avail: Vec<bool> = (0..30).map(|i| i % 2 == 0).collect();
        let d = sm.draw(&mut rng, 3, 3, &mut DenseOnline(&avail));
        assert!(d.all().iter().all(|&c| c % 2 == 0));
    }

    #[test]
    fn draw_tops_up_from_other_group_when_short() {
        let (sm, mut rng) = sampler(6, 20, 19);
        // Only 1 non-sticky client exists; ask for 3 fresh.
        let d = sm.draw(&mut rng, 2, 3, &mut AllOnline);
        // Total preserved: deficit covered by extra sticky clients.
        assert_eq!(d.len(), 5);
        assert_eq!(d.fresh.len(), 1);
        assert_eq!(d.sticky.len(), 4);
    }

    #[test]
    fn weights_match_paper_defaults() {
        // FEMNIST defaults: N=2800, K=30, S=120, C=24.
        let w = sticky_weights(2800, 120, 24, 30);
        assert!((w.sticky_factor - 5.0).abs() < 1e-12);
        assert!((w.fresh_factor - 446.666_666_7).abs() < 1e-6);
    }

    #[test]
    fn weights_degenerate_full_sticky_round() {
        let w = sticky_weights(100, 20, 10, 10);
        assert_eq!(w.fresh_factor, 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid sticky configuration")]
    fn weights_reject_c_over_s() {
        let _ = sticky_weights(100, 5, 6, 10);
    }

    #[test]
    #[should_panic(expected = "already sticky")]
    fn rebalance_rejects_sticky_admission() {
        let (mut sm, mut rng) = sampler(7, 20, 5);
        let member = sm.sticky_group()[0];
        sm.rebalance(&mut rng, &[], &[member]);
    }

    #[test]
    fn long_run_membership_is_consistent() {
        let (mut sm, mut rng) = sampler(8, 100, 20);
        for _ in 0..500 {
            let d = sm.draw(&mut rng, 16, 4, &mut AllOnline);
            sm.rebalance(&mut rng, &d.sticky, &d.fresh);
            let flags = (0..100).filter(|&i| sm.is_sticky(i)).count();
            assert_eq!(flags, 20);
            assert_eq!(sm.sticky_group().len(), 20);
        }
    }

    #[test]
    fn resample_probability_matches_proposition2_empirically() {
        // Empirically verify the §3.1 case study at reduced scale:
        // a client that just participated (and is sticky) should be
        // re-sampled next round with probability ≈ C/S.
        let n = 200;
        let (mut sm, mut rng) = sampler(9, n, 40);
        let (c, fresh) = (8, 2);
        let mut first_round_hits = 0usize;
        let mut observations = 0usize;
        let mut watch: Option<ClientId> = None;
        for _ in 0..6000 {
            let d = sm.draw(&mut rng, c, fresh, &mut AllOnline);
            if let Some(w) = watch {
                observations += 1;
                if d.sticky.contains(&w) {
                    first_round_hits += 1;
                }
                watch = None;
            } else {
                // Watch one sticky participant that stays in the group.
                watch = d.sticky.first().copied();
            }
            sm.rebalance(&mut rng, &d.sticky, &d.fresh);
        }
        let freq = first_round_hits as f64 / observations as f64;
        let expect = c as f64 / 40.0; // C/S = 0.2
        assert!(
            (freq - expect).abs() < 0.03,
            "next-round re-sample frequency {freq} vs expected {expect}"
        );
    }
}
