//! Client sampling schemes for cross-device federated learning.
//!
//! This crate implements the sampling half of GlueFL (He et al., MLSys
//! 2023):
//!
//! * [`UniformSampler`] — FedAvg's uniform-without-replacement sampling of
//!   `K` out of `N` clients per round (§2.1 of the paper).
//! * [`MdSampler`] — multinomial (MD) sampling with replacement,
//!   proportional to client importance weights (Li et al. 2020, used here
//!   as an extra baseline).
//! * [`StickySampler`] — GlueFL's sticky sampling (§3.1, Algorithm 2): a
//!   persistent sticky group `S` from which `C` participants are drawn each
//!   round, plus `K−C` fresh clients, with post-round rebalancing.
//! * [`overcommit`] — FedScale-style over-commitment planning (§5.6): how
//!   many extra candidates to invite from each group so that stragglers can
//!   be dropped.
//! * [`analysis`] — closed forms of Propositions 1 and 2 (re-sampling
//!   probability after `r` rounds) used to pick `S` and `C`.
//!
//! Samplers ask about client availability through the [`OnlineQuery`]
//! trait instead of receiving a dense `&[bool]` snapshot, and draw fresh
//! candidates by rejection from id space. A round therefore costs
//! O(S + participants) — never a walk over the full population — which is
//! what makes million-client rounds cheap. [`AllOnline`] and
//! [`DenseOnline`] adapt the two common cases; any
//! `FnMut(ClientId) -> bool` closure also works.
//!
//! # Example
//!
//! ```
//! use gluefl_sampling::{AllOnline, StickySampler, sticky_weights};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // N = 100 clients, sticky group of 20.
//! let mut sampler = StickySampler::new(100, 20, &mut rng);
//! // Draw C = 8 sticky + K−C = 2 fresh participants.
//! let draw = sampler.draw(&mut rng, 8, 2, &mut AllOnline);
//! assert_eq!(draw.sticky.len(), 8);
//! assert_eq!(draw.fresh.len(), 2);
//! // After the round, evict 2 non-participants and admit the fresh ones.
//! sampler.rebalance(&mut rng, &draw.sticky, &draw.fresh);
//! assert_eq!(sampler.group_size(), 20);
//!
//! // Inverse-propensity aggregation weight factors (Theorem 1).
//! let w = sticky_weights(100, 20, 8, 10);
//! assert!((w.sticky_factor - 20.0 / 8.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod md;
mod online;
pub mod overcommit;
mod sticky;
mod uniform;

pub use md::{InvalidWeightsError, MdSampler};
pub use online::{AllOnline, DenseOnline, OnlineQuery};
pub use sticky::{sticky_weights, StickyDraw, StickySampler, StickyWeights};
pub use uniform::UniformSampler;

/// Identifier of a client, `0..N`.
pub type ClientId = usize;
