//! Uniform client sampling without replacement (FedAvg, §2.1).

use crate::ClientId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples `K` of `N` clients uniformly at random, without replacement,
/// optionally restricted to currently-available clients.
///
/// This is the client-sampling rule of FedAvg with partial participation:
/// every client is included in a round with probability `K/N`, so a client
/// is re-sampled every `N/K` rounds in expectation (Proposition 1).
///
/// # Example
///
/// ```
/// use gluefl_sampling::UniformSampler;
/// use rand::SeedableRng;
/// let sampler = UniformSampler::new(50);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let picked = sampler.draw(&mut rng, 10, None);
/// assert_eq!(picked.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformSampler {
    n: usize,
}

impl UniformSampler {
    /// Creates a sampler over `n` clients.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one client");
        Self { n }
    }

    /// Total number of clients `N`.
    #[must_use]
    pub fn population(&self) -> usize {
        self.n
    }

    /// Draws `k` distinct clients uniformly at random.
    ///
    /// When `available` is provided (length `N`, `true` = reachable), only
    /// available clients are candidates; if fewer than `k` are available,
    /// all of them are returned. The result is sorted by client id.
    ///
    /// # Panics
    /// Panics if `available` is provided with length `!= N`.
    #[must_use]
    pub fn draw<R: Rng>(&self, rng: &mut R, k: usize, available: Option<&[bool]>) -> Vec<ClientId> {
        if let Some(a) = available {
            assert_eq!(a.len(), self.n, "availability vector length mismatch");
        }
        let mut candidates: Vec<ClientId> = (0..self.n)
            .filter(|&i| available.is_none_or(|a| a[i]))
            .collect();
        let take = k.min(candidates.len());
        let (picked, _) = candidates.partial_shuffle(rng, take);
        let mut picked = picked.to_vec();
        picked.sort_unstable();
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn draws_k_distinct_sorted() {
        let s = UniformSampler::new(100);
        let mut rng = StdRng::seed_from_u64(3);
        let picked = s.draw(&mut rng, 30, None);
        assert_eq!(picked.len(), 30);
        assert!(picked.windows(2).all(|w| w[0] < w[1]));
        assert!(picked.iter().all(|&c| c < 100));
    }

    #[test]
    fn respects_availability() {
        let s = UniformSampler::new(10);
        let mut rng = StdRng::seed_from_u64(3);
        let avail: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        for _ in 0..20 {
            let picked = s.draw(&mut rng, 3, Some(&avail));
            assert!(picked.iter().all(|&c| c % 2 == 0));
        }
    }

    #[test]
    fn short_availability_caps_draw() {
        let s = UniformSampler::new(10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut avail = vec![false; 10];
        avail[4] = true;
        assert_eq!(s.draw(&mut rng, 5, Some(&avail)), vec![4]);
    }

    #[test]
    fn k_zero_is_empty() {
        let s = UniformSampler::new(5);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(s.draw(&mut rng, 0, None).is_empty());
    }

    #[test]
    fn k_over_population_returns_everyone() {
        let s = UniformSampler::new(5);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.draw(&mut rng, 50, None), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn inclusion_frequency_is_k_over_n() {
        // Empirical check of the K/N inclusion probability.
        let s = UniformSampler::new(40);
        let mut rng = StdRng::seed_from_u64(9);
        let rounds = 4000;
        let mut hits = vec![0usize; 40];
        for _ in 0..rounds {
            for c in s.draw(&mut rng, 10, None) {
                hits[c] += 1;
            }
        }
        for (c, &h) in hits.iter().enumerate() {
            let freq = h as f64 / rounds as f64;
            assert!(
                (freq - 0.25).abs() < 0.05,
                "client {c} frequency {freq} deviates from 0.25"
            );
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn availability_length_mismatch_panics() {
        let s = UniformSampler::new(5);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = s.draw(&mut rng, 2, Some(&[true; 4]));
    }
}
