//! Uniform client sampling without replacement (FedAvg, §2.1).

use crate::online::OnlineQuery;
use crate::ClientId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples `K` of `N` clients uniformly at random, without replacement,
/// restricted to currently-online clients.
///
/// This is the client-sampling rule of FedAvg with partial participation:
/// every client is included in a round with probability `K/N`, so a client
/// is re-sampled every `N/K` rounds in expectation (Proposition 1).
///
/// For `K ≪ N` the draw is *rejection-based*: candidate ids are drawn
/// directly from `0..N` and kept unless offline or already picked, which
/// costs O(K/f) expected work (`f` = online fraction) and touches only the
/// clients it considers — never the whole population. When `K` is a large
/// fraction of `N`, or rejection keeps missing (very sparse availability),
/// the draw falls back to the dense scan; both paths sample the same
/// uniform-without-replacement distribution.
///
/// # Example
///
/// ```
/// use gluefl_sampling::{AllOnline, UniformSampler};
/// use rand::SeedableRng;
/// let sampler = UniformSampler::new(50);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let picked = sampler.draw(&mut rng, 10, &mut AllOnline);
/// assert_eq!(picked.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformSampler {
    n: usize,
}

impl UniformSampler {
    /// Creates a sampler over `n` clients.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one client");
        Self { n }
    }

    /// Total number of clients `N`.
    #[must_use]
    pub fn population(&self) -> usize {
        self.n
    }

    /// Draws `k` distinct online clients uniformly at random; if fewer
    /// than `k` are online, all of them are returned. The result is sorted
    /// by client id.
    #[must_use]
    pub fn draw<R: Rng>(
        &self,
        rng: &mut R,
        k: usize,
        online: &mut dyn OnlineQuery,
    ) -> Vec<ClientId> {
        if k == 0 {
            return Vec::new();
        }
        // Dense path when the draw is a large fraction of the population:
        // rejection would mostly hit duplicates.
        if k.saturating_mul(4) >= self.n {
            return self.draw_dense(rng, k, online);
        }
        let mut picked: Vec<ClientId> = Vec::with_capacity(k);
        // Expected attempts ≈ k/f; the budget covers online fractions down
        // to ~1/16 before falling back to the exact dense scan.
        let budget = 16 * k + 64;
        for _ in 0..budget {
            if picked.len() == k {
                break;
            }
            let id = rng.gen_range(0..self.n);
            if let Err(pos) = picked.binary_search(&id) {
                if online.is_online(id) {
                    picked.insert(pos, id);
                }
            }
        }
        if picked.len() < k {
            // Budget exhausted — availability is too sparse for rejection.
            // Redraw exactly via the dense scan (still uniform).
            return self.draw_dense(rng, k, online);
        }
        picked // sorted by construction
    }

    /// Exact O(N) draw: materialise the online candidates and
    /// partial-shuffle. Fallback for dense draws and sparse availability.
    fn draw_dense<R: Rng>(
        &self,
        rng: &mut R,
        k: usize,
        online: &mut dyn OnlineQuery,
    ) -> Vec<ClientId> {
        let mut candidates: Vec<ClientId> = (0..self.n).filter(|&i| online.is_online(i)).collect();
        let take = k.min(candidates.len());
        let (picked, _) = candidates.partial_shuffle(rng, take);
        let mut picked = picked.to_vec();
        picked.sort_unstable();
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::{AllOnline, DenseOnline};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn draws_k_distinct_sorted() {
        let s = UniformSampler::new(100);
        let mut rng = StdRng::seed_from_u64(3);
        let picked = s.draw(&mut rng, 30, &mut AllOnline);
        assert_eq!(picked.len(), 30);
        assert!(picked.windows(2).all(|w| w[0] < w[1]));
        assert!(picked.iter().all(|&c| c < 100));
    }

    #[test]
    fn rejection_path_draws_k_distinct_sorted() {
        // k·4 < n forces the rejection path.
        let s = UniformSampler::new(10_000);
        let mut rng = StdRng::seed_from_u64(3);
        let picked = s.draw(&mut rng, 30, &mut AllOnline);
        assert_eq!(picked.len(), 30);
        assert!(picked.windows(2).all(|w| w[0] < w[1]));
        assert!(picked.iter().all(|&c| c < 10_000));
    }

    #[test]
    fn respects_availability() {
        let s = UniformSampler::new(10);
        let mut rng = StdRng::seed_from_u64(3);
        let avail: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        for _ in 0..20 {
            let picked = s.draw(&mut rng, 3, &mut DenseOnline(&avail));
            assert!(picked.iter().all(|&c| c % 2 == 0));
        }
    }

    #[test]
    fn rejection_respects_sparse_availability_via_fallback() {
        // 1% online at N = 2000: rejection exhausts its budget and the
        // dense fallback still returns exactly the online clients.
        let s = UniformSampler::new(2_000);
        let mut rng = StdRng::seed_from_u64(8);
        let avail: Vec<bool> = (0..2_000).map(|i| i % 100 == 0).collect();
        let picked = s.draw(&mut rng, 25, &mut DenseOnline(&avail));
        assert!(picked.iter().all(|&c| c % 100 == 0));
        assert_eq!(picked.len(), 20); // only 20 are online
    }

    #[test]
    fn short_availability_caps_draw() {
        let s = UniformSampler::new(10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut avail = vec![false; 10];
        avail[4] = true;
        assert_eq!(s.draw(&mut rng, 5, &mut DenseOnline(&avail)), vec![4]);
    }

    #[test]
    fn k_zero_is_empty() {
        let s = UniformSampler::new(5);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(s.draw(&mut rng, 0, &mut AllOnline).is_empty());
    }

    #[test]
    fn k_over_population_returns_everyone() {
        let s = UniformSampler::new(5);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.draw(&mut rng, 50, &mut AllOnline), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn inclusion_frequency_is_k_over_n() {
        // Empirical check of the K/N inclusion probability, on the
        // rejection path (k·4 < n).
        let s = UniformSampler::new(60);
        let mut rng = StdRng::seed_from_u64(9);
        let rounds = 4000;
        let mut hits = vec![0usize; 60];
        for _ in 0..rounds {
            for c in s.draw(&mut rng, 10, &mut AllOnline) {
                hits[c] += 1;
            }
        }
        for (c, &h) in hits.iter().enumerate() {
            let freq = h as f64 / rounds as f64;
            assert!(
                (freq - 10.0 / 60.0).abs() < 0.05,
                "client {c} frequency {freq} deviates from {}",
                10.0 / 60.0
            );
        }
    }

    #[test]
    fn draw_is_deterministic_per_rng_state() {
        let s = UniformSampler::new(5_000);
        let a = s.draw(&mut StdRng::seed_from_u64(4), 12, &mut AllOnline);
        let b = s.draw(&mut StdRng::seed_from_u64(4), 12, &mut AllOnline);
        assert_eq!(a, b);
    }
}
