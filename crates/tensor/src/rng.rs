//! Deterministic seed derivation.
//!
//! Every source of randomness in the workspace (data synthesis, client
//! sampling, network jitter, weight initialisation, ...) draws from its own
//! [`rand::rngs::StdRng`], seeded by mixing a single master seed with a
//! string label and an integer index. Two consequences:
//!
//! 1. re-running any experiment with the same master seed reproduces it
//!    bit-for-bit, and
//! 2. different strategies compared in one experiment face *identical*
//!    client data, sampling draws, and network conditions (paired
//!    comparison), because each subsystem derives its seed from a stable
//!    label rather than from call order.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes the bits of `x` with the splitmix64 finalizer.
///
/// This is the standard avalanche function from Vigna's `splitmix64`
/// generator; it maps any 64-bit input to a well-distributed 64-bit output
/// and is bijective, so distinct inputs never collide.
///
/// # Example
///
/// ```
/// let a = gluefl_tensor::rng::splitmix64(1);
/// let b = gluefl_tensor::rng::splitmix64(2);
/// assert_ne!(a, b);
/// ```
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a sub-seed from `master`, a stream `label`, and an `index`.
///
/// The label is folded in with FNV-1a so that e.g. `("sampling", 3)` and
/// `("network", 3)` give unrelated streams; the result is finalised with
/// [`splitmix64`].
///
/// # Example
///
/// ```
/// use gluefl_tensor::rng::derive_seed;
/// let s1 = derive_seed(42, "client-data", 0);
/// let s2 = derive_seed(42, "client-data", 1);
/// let s3 = derive_seed(42, "sampling", 0);
/// assert!(s1 != s2 && s1 != s3);
/// // Deterministic: same inputs, same output.
/// assert_eq!(s1, derive_seed(42, "client-data", 0));
/// ```
#[must_use]
pub fn derive_seed(master: u64, label: &str, index: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET ^ splitmix64(master);
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= splitmix64(index.wrapping_add(0x5151_5151));
    splitmix64(h)
}

/// Builds a [`StdRng`] from `(master, label, index)` via [`derive_seed`].
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut rng = gluefl_tensor::rng::seeded_rng(7, "init", 0);
/// let x: f64 = rng.gen();
/// let mut rng2 = gluefl_tensor::rng::seeded_rng(7, "init", 0);
/// let y: f64 = rng2.gen();
/// assert_eq!(x, y);
/// ```
#[must_use]
pub fn seeded_rng(master: u64, label: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, label, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_bijective_on_small_range() {
        let outs: HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn derive_seed_distinguishes_labels() {
        let a = derive_seed(0, "a", 0);
        let b = derive_seed(0, "b", 0);
        assert_ne!(a, b);
    }

    #[test]
    fn derive_seed_distinguishes_indices() {
        let seeds: HashSet<u64> = (0..1000).map(|i| derive_seed(9, "x", i)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn derive_seed_distinguishes_masters() {
        let seeds: HashSet<u64> = (0..1000).map(|m| derive_seed(m, "x", 0)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn seeded_rng_is_reproducible() {
        let xs: Vec<u32> = {
            let mut r = seeded_rng(1, "t", 2);
            (0..16).map(|_| r.gen()).collect()
        };
        let ys: Vec<u32> = {
            let mut r = seeded_rng(1, "t", 2);
            (0..16).map(|_| r.gen()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn label_prefix_does_not_collide() {
        // "ab" with index 1 must differ from "a" with any small index.
        let target = derive_seed(5, "ab", 1);
        for i in 0..100 {
            assert_ne!(target, derive_seed(5, "a", i));
        }
    }
}
