//! Sparse model updates: (index, value) pairs over a flat parameter vector.

use crate::wire::WireCost;
use crate::BitMask;

/// A sparse update over a `dim`-dimensional parameter vector.
///
/// Indices are strictly increasing `u32`s; values are `f32`. This is the
/// payload type for everything the paper sends over the network: masked
/// client gradients `Δ̃_i,shr` / `Δ̃_i,uni` (Algorithm 3 lines 16–17),
/// aggregated server updates `Δ̃_shr + Δ̃_uni`, and the partial-model
/// downloads clients receive when re-synchronising.
///
/// # Example
///
/// ```
/// use gluefl_tensor::SparseUpdate;
/// let u = SparseUpdate::from_pairs(6, vec![(1, 2.0), (4, -1.0)]);
/// let mut w = vec![1.0f32; 6];
/// // `apply` overwrites covered positions (partial-model download)...
/// u.apply(&mut w);
/// assert_eq!(w, vec![1.0, 2.0, 1.0, 1.0, -1.0, 1.0]);
/// // ...while `add_scaled_into` accumulates (weighted aggregation).
/// u.add_scaled_into(&mut w, 0.5);
/// assert_eq!(w, vec![1.0, 3.0, 1.0, 1.0, -1.5, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseUpdate {
    dim: usize,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseUpdate {
    /// Creates an empty update over `dim` coordinates.
    #[must_use]
    pub fn empty(dim: usize) -> Self {
        Self {
            dim,
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds an update from `(index, value)` pairs.
    ///
    /// Pairs are sorted by index; zero values are kept (an explicit zero is
    /// still a transferred value).
    ///
    /// # Panics
    /// Panics if an index is `>= dim` or if an index repeats.
    #[must_use]
    pub fn from_pairs(dim: usize, mut pairs: Vec<(u32, f32)>) -> Self {
        pairs.sort_unstable_by_key(|p| p.0);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            assert!((i as usize) < dim, "index {i} out of range {dim}");
            if let Some(&last) = indices.last() {
                assert_ne!(last, i, "duplicate index {i}");
            }
            indices.push(i);
            values.push(v);
        }
        Self {
            dim,
            indices,
            values,
        }
    }

    /// Extracts the coordinates of `dense` covered by `mask`
    /// (the `M ⊙ Δ` of Algorithm 3, kept sparse).
    ///
    /// # Panics
    /// Panics if `dense.len() != mask.len()`.
    #[must_use]
    pub fn from_dense_masked(dense: &[f32], mask: &BitMask) -> Self {
        Self::from_dense_masked_in(dense, mask, Vec::new(), Vec::new())
    }

    /// Buffer-reusing form of [`SparseUpdate::from_dense_masked`]: fills
    /// the caller's `indices`/`values` buffers (cleared first) instead of
    /// allocating fresh ones. Pair with [`SparseUpdate::into_buffers`] and
    /// a pool to keep the compress hot path allocation-free.
    ///
    /// # Panics
    /// Panics if `dense.len() != mask.len()`.
    #[must_use]
    pub fn from_dense_masked_in(
        dense: &[f32],
        mask: &BitMask,
        mut indices: Vec<u32>,
        mut values: Vec<f32>,
    ) -> Self {
        assert_eq!(dense.len(), mask.len(), "mask/vector length mismatch");
        let nnz = mask.count_ones();
        indices.clear();
        indices.reserve(nnz);
        values.clear();
        values.reserve(nnz);
        mask.for_each_one(|i| {
            indices.push(i as u32);
            values.push(dense[i]);
        });
        Self {
            dim: dense.len(),
            indices,
            values,
        }
    }

    /// Extracts the listed coordinates of `dense` (indices must be sorted
    /// and unique, e.g. output of [`crate::top_k_abs`]).
    ///
    /// # Panics
    /// Panics if indices are unsorted, repeated, or out of range.
    #[must_use]
    pub fn gather(dense: &[f32], sorted_indices: &[usize]) -> Self {
        Self::gather_in(dense, sorted_indices, Vec::new(), Vec::new())
    }

    /// Buffer-reusing form of [`SparseUpdate::gather`]: fills the caller's
    /// `indices`/`values` buffers (cleared first) instead of allocating.
    ///
    /// # Panics
    /// Panics if indices are unsorted, repeated, or out of range.
    #[must_use]
    pub fn gather_in(
        dense: &[f32],
        sorted_indices: &[usize],
        mut indices: Vec<u32>,
        mut values: Vec<f32>,
    ) -> Self {
        indices.clear();
        indices.reserve(sorted_indices.len());
        values.clear();
        values.reserve(sorted_indices.len());
        let mut prev: Option<usize> = None;
        for &i in sorted_indices {
            assert!(i < dense.len(), "index {i} out of range {}", dense.len());
            if let Some(p) = prev {
                assert!(p < i, "indices must be sorted and unique");
            }
            prev = Some(i);
            indices.push(i as u32);
            values.push(dense[i]);
        }
        Self {
            dim: dense.len(),
            indices,
            values,
        }
    }

    /// Wraps already-sorted `(indices, values)` buffers without copying —
    /// the constructor for payloads arriving off the wire, where the
    /// decoder has produced index/value arrays directly (paired with a
    /// pool via [`SparseUpdate::into_buffers`], it keeps the receive path
    /// allocation-free).
    ///
    /// # Panics
    /// Panics if the buffer lengths differ, an index is `>= dim`, or the
    /// indices are not strictly increasing.
    #[must_use]
    pub fn from_sorted_buffers(dim: usize, indices: Vec<u32>, values: Vec<f32>) -> Self {
        assert_eq!(
            indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        let mut prev: Option<u32> = None;
        for &i in &indices {
            assert!((i as usize) < dim, "index {i} out of range {dim}");
            if let Some(p) = prev {
                assert!(p < i, "indices must be sorted and unique");
            }
            prev = Some(i);
        }
        Self {
            dim,
            indices,
            values,
        }
    }

    /// Decomposes into the `(indices, values)` buffers so a pool can
    /// recycle their allocations (the inverse of the `*_in` constructors).
    #[must_use]
    pub fn into_buffers(self) -> (Vec<u32>, Vec<f32>) {
        (self.indices, self.values)
    }

    /// Dimension of the underlying parameter vector.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (index, value) pairs.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Returns `true` if the update carries no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The sorted coordinate indices.
    #[must_use]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The values, aligned with [`SparseUpdate::indices`].
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterates over `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f32)> + '_ {
        self.indices
            .iter()
            .zip(&self.values)
            .map(|(&i, &v)| (i as usize, v))
    }

    /// Sets the coordinates of `dense` covered by this update to the stored
    /// values (overwrite semantics — used for partial model downloads).
    ///
    /// # Panics
    /// Panics if `dense.len() != self.dim()`.
    pub fn apply(&self, dense: &mut [f32]) {
        assert_eq!(dense.len(), self.dim, "dimension mismatch");
        for (i, v) in self.iter() {
            dense[i] = v;
        }
    }

    /// Adds `scale ×` the stored values into `dense`
    /// (accumulate semantics — used for weighted aggregation).
    ///
    /// # Panics
    /// Panics if `dense.len() != self.dim()`.
    pub fn add_scaled_into(&self, dense: &mut [f32], scale: f32) {
        assert_eq!(dense.len(), self.dim, "dimension mismatch");
        for (i, v) in self.iter() {
            dense[i] += scale * v;
        }
    }

    /// Adds `scale ×` the stored values whose positions fall in
    /// `[lo, lo + out.len())` into `out`, where `out[0]` corresponds to
    /// global position `lo`.
    ///
    /// This is the shard kernel behind deterministic parallel
    /// aggregation: disjoint position ranges touch disjoint output
    /// slices, and within a position the accumulation order is the
    /// caller's call order — identical to [`SparseUpdate::add_scaled_into`].
    ///
    /// # Panics
    /// Panics if `lo + out.len()` exceeds the update's dimension.
    ///
    /// # Example
    /// ```
    /// use gluefl_tensor::SparseUpdate;
    /// let u = SparseUpdate::from_pairs(8, vec![(1, 1.0), (4, 2.0), (6, 3.0)]);
    /// let mut shard = vec![0.0f32; 3]; // positions 3..6
    /// u.add_scaled_range_into(&mut shard, 10.0, 3);
    /// assert_eq!(shard, vec![0.0, 20.0, 0.0]);
    /// ```
    pub fn add_scaled_range_into(&self, out: &mut [f32], scale: f32, lo: usize) {
        let hi = lo + out.len();
        assert!(hi <= self.dim, "range {lo}..{hi} exceeds dim {}", self.dim);
        let start = self.indices.partition_point(|&i| (i as usize) < lo);
        for t in start..self.indices.len() {
            let i = self.indices[t] as usize;
            if i >= hi {
                break;
            }
            out[i - lo] += scale * self.values[t];
        }
    }

    /// Densifies into a fresh `Vec<f32>` with zeros elsewhere.
    #[must_use]
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.dim];
        self.apply(&mut out);
        out
    }

    /// The set of covered positions as a [`BitMask`].
    #[must_use]
    pub fn support(&self) -> BitMask {
        BitMask::from_indices(self.dim, self.indices.iter().map(|&i| i as usize))
    }

    /// Wire cost of this update with positions transmitted explicitly
    /// (bitmap or index list, whichever is cheaper).
    #[must_use]
    pub fn wire_cost(&self) -> WireCost {
        WireCost::sparse(self.dim, self.nnz())
    }

    /// Wire cost when the receiver already knows the positions (values only).
    #[must_use]
    pub fn wire_cost_known_mask(&self) -> WireCost {
        WireCost::known_mask(self.nnz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::top_k_abs;

    #[test]
    fn from_pairs_sorts() {
        let u = SparseUpdate::from_pairs(10, vec![(7, 1.0), (2, 2.0)]);
        assert_eq!(u.indices(), &[2, 7]);
        assert_eq!(u.values(), &[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate index")]
    fn from_pairs_rejects_duplicates() {
        let _ = SparseUpdate::from_pairs(10, vec![(2, 1.0), (2, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_pairs_rejects_out_of_range() {
        let _ = SparseUpdate::from_pairs(2, vec![(2, 1.0)]);
    }

    #[test]
    fn from_dense_masked_roundtrip() {
        let dense = vec![1.0f32, 0.0, 3.0, 4.0];
        let mask = BitMask::from_indices(4, [0usize, 2]);
        let u = SparseUpdate::from_dense_masked(&dense, &mask);
        assert_eq!(u.nnz(), 2);
        assert_eq!(u.to_dense(), vec![1.0, 0.0, 3.0, 0.0]);
        assert_eq!(u.support(), mask);
    }

    #[test]
    fn gather_from_topk() {
        let dense = vec![0.1f32, -9.0, 0.2, 8.0];
        let idx = top_k_abs(&dense, 2);
        let u = SparseUpdate::gather(&dense, &idx);
        assert_eq!(u.indices(), &[1, 3]);
        assert_eq!(u.values(), &[-9.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn gather_rejects_unsorted() {
        let _ = SparseUpdate::gather(&[1.0, 2.0], &[1, 0]);
    }

    #[test]
    fn from_sorted_buffers_wraps_without_copying() {
        let u = SparseUpdate::from_sorted_buffers(10, vec![1, 4, 9], vec![1.0, 2.0, 3.0]);
        assert_eq!(u.indices(), &[1, 4, 9]);
        assert_eq!(u.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(
            u,
            SparseUpdate::from_pairs(10, vec![(1, 1.0), (4, 2.0), (9, 3.0)])
        );
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn from_sorted_buffers_rejects_unsorted() {
        let _ = SparseUpdate::from_sorted_buffers(10, vec![4, 1], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_sorted_buffers_rejects_out_of_range() {
        let _ = SparseUpdate::from_sorted_buffers(2, vec![2], vec![1.0]);
    }

    #[test]
    fn in_place_constructors_reuse_buffers_and_match() {
        let dense = vec![1.0f32, 0.0, 3.0, 4.0];
        let mask = BitMask::from_indices(4, [0usize, 2]);
        let fresh = SparseUpdate::from_dense_masked(&dense, &mask);
        // Recycle dirty buffers through the in-place constructor.
        let (ix, vals) = SparseUpdate::from_pairs(9, vec![(8, 9.0)]).into_buffers();
        let reused = SparseUpdate::from_dense_masked_in(&dense, &mask, ix, vals);
        assert_eq!(reused, fresh);

        let fresh = SparseUpdate::gather(&dense, &[1, 3]);
        let (ix, vals) = reused.into_buffers();
        let reused = SparseUpdate::gather_in(&dense, &[1, 3], ix, vals);
        assert_eq!(reused, fresh);
    }

    #[test]
    fn apply_overwrites_add_accumulates() {
        let u = SparseUpdate::from_pairs(3, vec![(1, 5.0)]);
        let mut w = vec![1.0f32, 1.0, 1.0];
        u.apply(&mut w);
        assert_eq!(w, vec![1.0, 5.0, 1.0]);
        u.add_scaled_into(&mut w, 2.0);
        assert_eq!(w, vec![1.0, 15.0, 1.0]);
    }

    #[test]
    fn empty_update() {
        let u = SparseUpdate::empty(5);
        assert!(u.is_empty());
        assert_eq!(u.to_dense(), vec![0.0; 5]);
        assert_eq!(u.wire_cost().value_bytes, 0);
    }

    #[test]
    fn explicit_zero_values_are_kept() {
        let u = SparseUpdate::from_pairs(4, vec![(0, 0.0)]);
        assert_eq!(u.nnz(), 1);
        assert_eq!(u.wire_cost().value_bytes, 4);
    }

    #[test]
    fn iter_yields_sorted_pairs() {
        let u = SparseUpdate::from_pairs(10, vec![(9, 1.0), (0, 2.0), (4, 3.0)]);
        let pairs: Vec<(usize, f32)> = u.iter().collect();
        assert_eq!(pairs, vec![(0, 2.0), (4, 3.0), (9, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn apply_dimension_mismatch_panics() {
        let u = SparseUpdate::empty(3);
        let mut w = vec![0.0f32; 4];
        u.apply(&mut w);
    }
}
