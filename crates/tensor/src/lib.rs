//! Dense vectors, bitmasks, top-k selection, and sparse updates.
//!
//! This crate is the numeric foundation of the GlueFL reproduction. All
//! federated-learning strategies in the workspace treat a model as one flat
//! `&[f32]` parameter vector; the types here provide the operations that the
//! paper's algorithms are written in terms of:
//!
//! * [`BitMask`] — the shared mask `M_t ∈ B^d` of Algorithm 3, a compact
//!   bitmap with set algebra (`and`/`or`/`not`) and set-bit iteration.
//! * [`top_k_abs`] / [`top_k_abs_masked`] — the `top_q(·)` operator used by
//!   STC (Algorithm 1 line 12/17) and by GlueFL's mask shifting
//!   (Algorithm 3 lines 17 and 26).
//! * [`SparseUpdate`] — an (indices, values) view of a masked model delta,
//!   with the wire-size accounting (`bitmap` vs `index` encoding) used for
//!   all bandwidth measurements in the evaluation.
//! * [`MaskedUpdate`] — a mask plus *packed* values, the server-side
//!   aggregate representation: strategies return one per round and the
//!   simulator applies it with the word-level scatter/[`vecops::masked_axpy`]
//!   kernels instead of a dense `O(d)` walk.
//! * [`vecops`] — axpy/scale/dot kernels shared by the ML substrate, plus
//!   fused masked kernels for the round hot path.
//! * [`gemm`] — register-blocked, cache-tiled `f32` matmul micro-kernels
//!   in the three layouts the MLP's linear layers need (forward,
//!   backward-data, accumulating backward-weights), each bit-exact
//!   against a plain-loop reference twin; large-batch forward calls shard
//!   disjoint row blocks across threads under the `parallel` feature.
//! * [`rng`] — deterministic seed derivation so that every experiment in the
//!   workspace is exactly reproducible from one master seed.
//!
//! # Kernel-layer invariants
//!
//! The hot-path kernels in this crate uphold three contracts that the
//! strategy and simulator layers rely on:
//!
//! * **Determinism.** Every kernel is a pure function of its inputs:
//!   identical slices and masks produce bit-identical outputs on every
//!   platform and run. Reductions ([`vecops::dot`], [`vecops::l2_norm`])
//!   use a fixed lane-accumulator order; nothing depends on thread
//!   schedule or allocation state.
//! * **Tie-breaking.** [`top_k_abs`] / [`top_k_abs_masked`] rank by
//!   magnitude descending, then index ascending; NaN magnitudes rank
//!   below every finite magnitude. The returned indices are always
//!   strictly increasing. Any reimplementation (reference or
//!   accelerated) must reproduce this exact order.
//! * **Scratch-buffer ownership.** Kernels never retain references to
//!   caller memory. [`TopKScratch`] is owned by the *caller* (one per
//!   simulation or per thread, never shared concurrently); its contents
//!   are unspecified between calls, and the slice returned by
//!   [`top_k_abs_masked_into`] is valid only until the next call that
//!   borrows the scratch. Masked kernels read [`BitMask::as_words`]
//!   directly and assume the documented invariant that tail bits beyond
//!   `len` are zero.
//!
//! # Example
//!
//! ```
//! use gluefl_tensor::{top_k_abs, BitMask, SparseUpdate};
//!
//! let delta = vec![0.1, -3.0, 0.2, 4.0, -0.05];
//! // The two largest-magnitude coordinates form the mask.
//! let idx = top_k_abs(&delta, 2);
//! let mask = BitMask::from_indices(delta.len(), idx.iter().copied());
//! assert!(mask.get(1) && mask.get(3));
//!
//! // Extract the masked update and apply it to a stale model copy.
//! let sparse = SparseUpdate::from_dense_masked(&delta, &mask);
//! let mut model = vec![0.0; 5];
//! sparse.apply(&mut model);
//! assert_eq!(model, vec![0.0, -3.0, 0.0, 4.0, 0.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmask;
pub mod gemm;
mod masked;
pub mod rng;
mod sparse;
mod topk;
pub mod vecops;
pub mod wire;

pub use bitmask::{BitMask, SetBits, ZeroBits};
pub use masked::MaskedUpdate;
pub use sparse::SparseUpdate;
pub use topk::{
    top_k_abs, top_k_abs_masked, top_k_abs_masked_into, top_k_abs_packed_into, TopKScope,
    TopKScratch,
};
pub use wire::{WireCost, WireEncoding, BYTES_PER_VALUE};
