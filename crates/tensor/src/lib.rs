//! Dense vectors, bitmasks, top-k selection, and sparse updates.
//!
//! This crate is the numeric foundation of the GlueFL reproduction. All
//! federated-learning strategies in the workspace treat a model as one flat
//! `&[f32]` parameter vector; the types here provide the operations that the
//! paper's algorithms are written in terms of:
//!
//! * [`BitMask`] — the shared mask `M_t ∈ B^d` of Algorithm 3, a compact
//!   bitmap with set algebra (`and`/`or`/`not`) and set-bit iteration.
//! * [`top_k_abs`] / [`top_k_abs_masked`] — the `top_q(·)` operator used by
//!   STC (Algorithm 1 line 12/17) and by GlueFL's mask shifting
//!   (Algorithm 3 lines 17 and 26).
//! * [`SparseUpdate`] — an (indices, values) view of a masked model delta,
//!   with the wire-size accounting (`bitmap` vs `index` encoding) used for
//!   all bandwidth measurements in the evaluation.
//! * [`vecops`] — axpy/scale/dot kernels shared by the ML substrate.
//! * [`rng`] — deterministic seed derivation so that every experiment in the
//!   workspace is exactly reproducible from one master seed.
//!
//! # Example
//!
//! ```
//! use gluefl_tensor::{top_k_abs, BitMask, SparseUpdate};
//!
//! let delta = vec![0.1, -3.0, 0.2, 4.0, -0.05];
//! // The two largest-magnitude coordinates form the mask.
//! let idx = top_k_abs(&delta, 2);
//! let mask = BitMask::from_indices(delta.len(), idx.iter().copied());
//! assert!(mask.get(1) && mask.get(3));
//!
//! // Extract the masked update and apply it to a stale model copy.
//! let sparse = SparseUpdate::from_dense_masked(&delta, &mask);
//! let mut model = vec![0.0; 5];
//! sparse.apply(&mut model);
//! assert_eq!(model, vec![0.0, -3.0, 0.0, 4.0, 0.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmask;
pub mod rng;
mod sparse;
mod topk;
pub mod vecops;
pub mod wire;

pub use bitmask::{BitMask, SetBits};
pub use sparse::SparseUpdate;
pub use topk::{top_k_abs, top_k_abs_masked, TopKScope};
pub use wire::{WireCost, WireEncoding, BYTES_PER_VALUE};
