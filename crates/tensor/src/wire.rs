//! Wire-size accounting for sparse and dense transfers.
//!
//! Every bandwidth number reported by the evaluation harness comes from this
//! module. The cost model matches how the paper's artifacts serialise
//! updates:
//!
//! * each transferred parameter value costs [`BYTES_PER_VALUE`] (f32);
//! * the *positions* of a sparse transfer are encoded either as a `d`-bit
//!   bitmap (`d/8` bytes, independent of sparsity) or as explicit `u32`
//!   indices (`4` bytes each) — whichever is smaller, chosen per message;
//! * positions already known to both sides (e.g. GlueFL's shared mask
//!   `M_t`, which the client received at download time) cost nothing when
//!   the values are sent back aligned to that mask.

/// Bytes used to encode one `f32` parameter value on the wire.
pub const BYTES_PER_VALUE: u64 = 4;

/// Bytes used to encode one explicit `u32` coordinate index.
pub const BYTES_PER_INDEX: u64 = 4;

/// Fixed per-message framing overhead (round id, lengths, checksums).
pub const HEADER_BYTES: u64 = 16;

/// How the positions of a sparse payload are described on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireEncoding {
    /// A `d`-bit bitmap: cost `ceil(d/8)` bytes regardless of sparsity.
    Bitmap,
    /// Explicit `u32` indices: cost `4·nnz` bytes.
    IndexList,
    /// Positions implied by a mask both sides already hold: cost 0.
    KnownMask,
    /// Dense payload over every coordinate: no position encoding needed.
    Dense,
}

/// The byte cost of one transfer, split into value and position bytes.
///
/// # Example
///
/// ```
/// use gluefl_tensor::WireCost;
/// // 1000 of 100_000 coordinates: index list (4 kB) beats bitmap (12.5 kB).
/// let c = WireCost::sparse(100_000, 1_000);
/// assert_eq!(c.encoding, gluefl_tensor::WireEncoding::IndexList);
/// assert_eq!(c.value_bytes, 4_000);
/// assert_eq!(c.position_bytes, 4_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WireCost {
    /// Bytes spent on parameter values.
    pub value_bytes: u64,
    /// Bytes spent describing which positions the values belong to.
    pub position_bytes: u64,
    /// Which position encoding produced `position_bytes`.
    pub encoding: WireEncoding,
}

impl WireCost {
    /// Cost of a dense transfer of `dim` values (e.g. FedAvg broadcast).
    #[must_use]
    pub fn dense(dim: usize) -> Self {
        Self {
            value_bytes: dim as u64 * BYTES_PER_VALUE,
            position_bytes: 0,
            encoding: WireEncoding::Dense,
        }
    }

    /// Cost of a sparse transfer of `nnz` values out of `dim` coordinates,
    /// using whichever of bitmap / index-list encoding is cheaper.
    ///
    /// # Panics
    /// Panics if `nnz > dim`.
    #[must_use]
    pub fn sparse(dim: usize, nnz: usize) -> Self {
        assert!(nnz <= dim, "nnz {nnz} exceeds dim {dim}");
        let bitmap = (dim as u64).div_ceil(8);
        let index = nnz as u64 * BYTES_PER_INDEX;
        let (position_bytes, encoding) = if bitmap <= index {
            (bitmap, WireEncoding::Bitmap)
        } else {
            (index, WireEncoding::IndexList)
        };
        Self {
            value_bytes: nnz as u64 * BYTES_PER_VALUE,
            position_bytes,
            encoding,
        }
    }

    /// Cost of sending `nnz` values whose positions are given by a mask the
    /// receiver already holds (GlueFL's shared-mask upload, Algorithm 3
    /// line 16: the server knows `M_t`, so only values travel).
    #[must_use]
    pub fn known_mask(nnz: usize) -> Self {
        Self {
            value_bytes: nnz as u64 * BYTES_PER_VALUE,
            position_bytes: 0,
            encoding: WireEncoding::KnownMask,
        }
    }

    /// An empty transfer.
    #[must_use]
    pub fn zero() -> Self {
        Self {
            value_bytes: 0,
            position_bytes: 0,
            encoding: WireEncoding::KnownMask,
        }
    }

    /// Total payload bytes including the fixed [`HEADER_BYTES`] framing.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.value_bytes + self.position_bytes + HEADER_BYTES
    }

    /// Total payload bytes excluding framing (useful for ratios).
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.value_bytes + self.position_bytes
    }
}

/// Converts a byte count to megabytes (10^6 bytes, as in the paper's plots).
#[must_use]
pub fn bytes_to_mb(bytes: u64) -> f64 {
    bytes as f64 / 1e6
}

/// Converts a byte count to gigabytes (10^9 bytes).
#[must_use]
pub fn bytes_to_gb(bytes: u64) -> f64 {
    bytes as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_cost_scales_with_dim() {
        let c = WireCost::dense(1000);
        assert_eq!(c.value_bytes, 4000);
        assert_eq!(c.position_bytes, 0);
        assert_eq!(c.total_bytes(), 4000 + HEADER_BYTES);
    }

    #[test]
    fn sparse_picks_cheaper_encoding() {
        // Very sparse: index list wins.
        let c = WireCost::sparse(1_000_000, 10);
        assert_eq!(c.encoding, WireEncoding::IndexList);
        assert_eq!(c.position_bytes, 40);
        // Dense-ish: bitmap wins (bitmap = 125 kB, indices = 2 MB).
        let c = WireCost::sparse(1_000_000, 500_000);
        assert_eq!(c.encoding, WireEncoding::Bitmap);
        assert_eq!(c.position_bytes, 125_000);
    }

    #[test]
    fn sparse_breakeven_point() {
        // bitmap bytes = d/8, index bytes = 4*nnz → breakeven nnz = d/32.
        let d = 3200;
        let at = WireCost::sparse(d, d / 32);
        assert_eq!(at.encoding, WireEncoding::Bitmap); // ties prefer bitmap
        let below = WireCost::sparse(d, d / 32 - 1);
        assert_eq!(below.encoding, WireEncoding::IndexList);
    }

    #[test]
    fn known_mask_has_no_position_cost() {
        let c = WireCost::known_mask(123);
        assert_eq!(c.value_bytes, 492);
        assert_eq!(c.position_bytes, 0);
    }

    #[test]
    fn zero_cost_is_header_only() {
        assert_eq!(WireCost::zero().total_bytes(), HEADER_BYTES);
        assert_eq!(WireCost::zero().payload_bytes(), 0);
    }

    #[test]
    fn sparse_full_equals_dense_values() {
        let c = WireCost::sparse(64, 64);
        assert_eq!(c.value_bytes, WireCost::dense(64).value_bytes);
        // Bitmap of 64 bits = 8 bytes, cheaper than 256 index bytes.
        assert_eq!(c.position_bytes, 8);
    }

    #[test]
    fn unit_conversions() {
        assert!((bytes_to_mb(2_500_000) - 2.5).abs() < 1e-12);
        assert!((bytes_to_gb(3_000_000_000) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds dim")]
    fn sparse_nnz_over_dim_panics() {
        let _ = WireCost::sparse(4, 5);
    }
}
