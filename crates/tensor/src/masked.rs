//! Packed masked model updates — the server's aggregate representation.
//!
//! A [`MaskedUpdate`] is the return type of the strategy seam's
//! aggregation step: a [`BitMask`] naming the covered positions plus the
//! covered values stored *packed* ("dense over the mask", one value per
//! set bit, in increasing position order). A full-dense update — FedAvg's
//! case — is expressed with a full (all-ones) mask, in which case the
//! packed layout coincides with the plain dense vector.
//!
//! The representation exists so the server never has to walk the whole
//! `d`-dimensional parameter vector to apply a sparse round update:
//! [`MaskedUpdate::add_to`] scatters through the mask at word level
//! (64 positions per mask word, with an all-ones-word fast path), and
//! [`MaskedUpdate::for_each_nonzero`] enumerates changed positions in
//! `O(d/64 + nnz)` for staleness tracking.

use crate::vecops;
use crate::wire::WireCost;
use crate::BitMask;

/// A model update over the positions of a [`BitMask`], with values packed
/// in increasing position order (`values.len() == mask.count_ones()`).
///
/// # Example
///
/// ```
/// use gluefl_tensor::{BitMask, MaskedUpdate};
/// let mask = BitMask::from_indices(6, [1usize, 4]);
/// let u = MaskedUpdate::new(mask, vec![2.0, -1.0]);
/// let mut params = vec![1.0f32; 6];
/// u.add_to(&mut params);
/// assert_eq!(params, vec![1.0, 3.0, 1.0, 1.0, 0.0, 1.0]);
/// assert_eq!(u.to_dense(), vec![0.0, 2.0, 0.0, 0.0, -1.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MaskedUpdate {
    mask: BitMask,
    values: Vec<f32>,
}

impl MaskedUpdate {
    /// Wraps a mask and its packed values.
    ///
    /// # Panics
    /// Panics if `values.len() != mask.count_ones()`.
    #[must_use]
    pub fn new(mask: BitMask, values: Vec<f32>) -> Self {
        assert_eq!(
            values.len(),
            mask.count_ones(),
            "values length must equal the mask's set-bit count"
        );
        Self { mask, values }
    }

    /// Packs the coordinates of `dense` covered by `mask`.
    ///
    /// # Panics
    /// Panics if `dense.len() != mask.len()`.
    #[must_use]
    pub fn from_dense_masked(dense: &[f32], mask: &BitMask) -> Self {
        assert_eq!(dense.len(), mask.len(), "mask/vector length mismatch");
        let mut values = Vec::with_capacity(mask.count_ones());
        mask.for_each_one(|i| values.push(dense[i]));
        Self {
            mask: mask.clone(),
            values,
        }
    }

    /// Dimension of the underlying parameter vector.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.mask.len()
    }

    /// Number of covered positions.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `true` when the mask covers every position (the packed values then
    /// *are* the dense vector).
    #[must_use]
    pub fn is_dense(&self) -> bool {
        self.values.len() == self.mask.len()
    }

    /// The support mask.
    #[must_use]
    pub fn mask(&self) -> &BitMask {
        &self.mask
    }

    /// The packed values, one per set mask bit, in position order.
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Decomposes into `(mask, values)` so a buffer pool can recycle both.
    #[must_use]
    pub fn into_parts(self) -> (BitMask, Vec<f32>) {
        (self.mask, self.values)
    }

    /// Adds the update into `dense`: `dense[i] += value(i)` for every
    /// covered position `i`; uncovered positions are untouched.
    ///
    /// Full-mask updates route through [`vecops::masked_axpy`] (whose
    /// all-ones words run the dense AXPY kernel); sparse updates use the
    /// run-walking [`BitMask::scatter_add_runs`], which performs one
    /// contiguous AXPY per maximal run of covered positions — aggregate
    /// masks regrown from top-k blocks are run-heavy, the same structure
    /// the wire layer's RLE sections exploit. Either way the
    /// per-position arithmetic is a single `+=`, so the result is
    /// bit-identical to a dense `add_assign` of
    /// [`MaskedUpdate::to_dense`] on the covered positions.
    ///
    /// # Panics
    /// Panics if `dense.len() != self.dim()`.
    pub fn add_to(&self, dense: &mut [f32]) {
        if self.is_dense() {
            vecops::masked_axpy(dense, 1.0, &self.values, &self.mask);
        } else {
            self.mask.scatter_add_runs(dense, &self.values, 1.0);
        }
    }

    /// Calls `f(position, value)` for every covered position whose value
    /// is non-zero, in increasing position order.
    ///
    /// This is the changed-position scan of the round loop: `O(d/64 +
    /// nnz)` instead of a dense `O(d)` walk.
    pub fn for_each_nonzero(&self, mut f: impl FnMut(usize, f32)) {
        let mut j = 0usize;
        self.mask.for_each_one(|i| {
            let v = self.values[j];
            j += 1;
            if v != 0.0 {
                f(i, v);
            }
        });
    }

    /// Densifies into a fresh `Vec<f32>` with zeros at uncovered
    /// positions (the reference layout; used by tests and benchmarks).
    #[must_use]
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim()];
        let mut j = 0usize;
        self.mask.for_each_one(|i| {
            out[i] = self.values[j];
            j += 1;
        });
        out
    }

    /// Wire cost of shipping this update: dense when the mask is full,
    /// otherwise sparse with bitmap/index positions (whichever is
    /// cheaper) — the encoding a server→client broadcast would use.
    #[must_use]
    pub fn wire_cost(&self) -> WireCost {
        if self.is_dense() {
            WireCost::dense(self.dim())
        } else {
            WireCost::sparse(self.dim(), self.nnz())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        let dense = vec![0.0f32, 1.5, 0.0, -2.0, 0.0, 3.0, 0.0];
        let mask = BitMask::from_indices(7, [1usize, 3, 5]);
        let u = MaskedUpdate::from_dense_masked(&dense, &mask);
        assert_eq!(u.nnz(), 3);
        assert_eq!(u.values(), &[1.5, -2.0, 3.0]);
        assert_eq!(u.to_dense(), dense);
        // Round-trip through the dense layout is the identity.
        assert_eq!(MaskedUpdate::from_dense_masked(&u.to_dense(), &mask), u);
    }

    #[test]
    fn add_to_matches_dense_add_reference() {
        for len in [1usize, 63, 64, 65, 130, 200] {
            let mask = BitMask::from_indices(len, (0..len).filter(|i| i % 3 != 1));
            let dense: Vec<f32> = (0..len).map(|i| i as f32 - 10.0).collect();
            let u = MaskedUpdate::from_dense_masked(&dense, &mask);
            let mut fast: Vec<f32> = (0..len).map(|i| (i as f32).sin()).collect();
            let mut reference = fast.clone();
            u.add_to(&mut fast);
            vecops::add_assign(&mut reference, &u.to_dense());
            assert_eq!(fast, reference, "len={len}");
        }
    }

    #[test]
    fn add_to_run_walk_matches_per_bit_scatter() {
        // Run-heavy, word-straddling, and singleton structures: the
        // run-walking path must equal per-bit scatter_add to the bit.
        for (len, picks) in [
            (
                200usize,
                (0..200).filter(|i| i / 50 % 2 == 0).collect::<Vec<_>>(),
            ),
            (130, (60..70).collect()),
            (64, vec![0, 63]),
            (300, (0..300).step_by(7).collect()),
        ] {
            let mask = BitMask::from_indices(len, picks);
            let values: Vec<f32> = (0..mask.count_ones())
                .map(|j| j as f32 * 0.3 - 1.0)
                .collect();
            let u = MaskedUpdate::new(mask.clone(), values.clone());
            let mut fast: Vec<f32> = (0..len).map(|i| (i as f32).cos()).collect();
            let mut reference = fast.clone();
            u.add_to(&mut fast);
            mask.scatter_add(&mut reference, &values, 1.0);
            assert_eq!(fast, reference, "len={len}");
        }
    }

    #[test]
    fn full_mask_is_dense_layout() {
        let values: Vec<f32> = (0..130).map(|i| i as f32).collect();
        let u = MaskedUpdate::new(BitMask::ones(130), values.clone());
        assert!(u.is_dense());
        assert_eq!(u.to_dense(), values);
        let mut params = vec![1.0f32; 130];
        u.add_to(&mut params);
        for (i, p) in params.iter().enumerate() {
            assert_eq!(*p, 1.0 + i as f32);
        }
    }

    #[test]
    fn for_each_nonzero_skips_explicit_zeros() {
        let mask = BitMask::from_indices(70, [0usize, 5, 64, 69]);
        let u = MaskedUpdate::new(mask, vec![1.0, 0.0, -2.0, 0.0]);
        let mut got = Vec::new();
        u.for_each_nonzero(|i, v| got.push((i, v)));
        assert_eq!(got, vec![(0, 1.0), (64, -2.0)]);
    }

    #[test]
    fn into_parts_returns_buffers() {
        let mask = BitMask::from_indices(4, [2usize]);
        let u = MaskedUpdate::new(mask.clone(), vec![7.0]);
        let (m, v) = u.into_parts();
        assert_eq!(m, mask);
        assert_eq!(v, vec![7.0]);
    }

    #[test]
    fn wire_cost_dense_vs_sparse() {
        let full = MaskedUpdate::new(BitMask::ones(64), vec![0.0; 64]);
        assert_eq!(full.wire_cost(), WireCost::dense(64));
        let sparse = MaskedUpdate::new(BitMask::from_indices(64, [1usize]), vec![1.0]);
        assert_eq!(sparse.wire_cost(), WireCost::sparse(64, 1));
    }

    #[test]
    #[should_panic(expected = "set-bit count")]
    fn new_rejects_misaligned_values() {
        let _ = MaskedUpdate::new(BitMask::from_indices(8, [1usize, 2]), vec![1.0]);
    }
}
