//! Register-blocked, cache-tiled `f32` matmul micro-kernels for the MLP
//! hot path.
//!
//! Three layouts, named for how the `gluefl-ml` linear layers consume
//! them (all matrices row-major; `W` is stored `[out_dim × in_dim]` as in
//! `torch.nn.Linear`):
//!
//! * [`gemm_nn`] — forward: `out = a · bᵀ + bias` with `a = x`
//!   (`m × k` activations) and `b = W` (`n × k`), i.e.
//!   `out[r][o] = bias[o] + Σ_t a[r][t]·b[o][t]`.
//! * [`gemm_tn`] — backward data: `out = a · b` with `a = d_out`
//!   (`m × p`) and `b = W` (`p × n`), i.e.
//!   `out[r][j] = Σ_o a[r][o]·b[o][j]`.
//! * [`gemm_nt`] — backward weights, *accumulating*: `out += aᵀ · b`
//!   with `a = d_out` (`m × p`) and `b = x` (`m × n`), i.e.
//!   `out[o][j] += Σ_r a[r][o]·b[r][j]`.
//!
//! Every kernel has a plain-loop reference twin ([`gemm_nn_ref`],
//! [`gemm_tn_ref`], [`gemm_nt_ref`]) and is **bit-exact** against it:
//! blocking tiles the loops for cache and register reuse but never
//! reassociates any output element's reduction. Each element's terms are
//! added in the same ascending reduction order as the naive triple loop,
//! starting from the same initial value (`bias[o]`, `0.0`, or the
//! existing accumulator), and Rust never contracts `mul` + `add` into a
//! fused multiply-add. Speed comes from register blocking — a tile of
//! independent accumulator chains hides FMA latency where the naive dot
//! product is one serial dependency chain — and from cache tiling of the
//! reduction dimension, not from reordered arithmetic. Two contracts
//! follow:
//!
//! * serial and `--features parallel` builds produce identical bits: the
//!   parallel path only shards **disjoint row blocks** of `out` across
//!   `std::thread::scope` workers, each running the serial kernel;
//! * training/eval trajectories upstream stay bit-identical to the
//!   pre-GEMM per-element loops (the `local_train_*` ledger gates remain
//!   bit-exact).
//!
//! # Example
//!
//! ```
//! use gluefl_tensor::gemm::{gemm_nn, gemm_nn_ref};
//!
//! // 2×3 activations, 4 output features, weights 4×3 row-major.
//! let x = [0.5f32, -1.0, 2.0, 1.5, 0.25, -0.75];
//! let w: Vec<f32> = (0..12).map(|i| i as f32 * 0.1).collect();
//! let bias = [0.1f32, 0.2, 0.3, 0.4];
//! let mut out = [0.0f32; 8];
//! let mut expected = [0.0f32; 8];
//! gemm_nn(&x, &w, &bias, 2, 4, 3, &mut out);
//! gemm_nn_ref(&x, &w, &bias, 2, 4, 3, &mut expected);
//! assert_eq!(out, expected); // bit-exact, not approximately equal
//! ```

/// Rows of `a` per register tile in [`gemm_nn`].
const NN_MR: usize = 4;
/// Rows of `b` (output columns) per register tile in [`gemm_nn`].
const NN_NR: usize = 4;
/// k-reduction cache tile in [`gemm_nn`]: `NN_MR + NN_NR` operand rows of
/// this many `f32`s (16 KiB) stay L1-resident while the register tile
/// walks them.
const NN_KC: usize = 512;

/// Output columns per register tile in [`gemm_tn`] / [`gemm_nt`] — eight
/// consecutive `f32`s, one AVX vector.
const JB: usize = 8;
/// Rows of `a` per register tile in [`gemm_tn`].
const TN_MR: usize = 2;
/// Rows of `out` per register tile in [`gemm_nt`].
const NT_OR: usize = 2;
/// Reduction cache tile in [`gemm_tn`] / [`gemm_nt`].
const RED_C: usize = 512;

/// Minimum rows before [`gemm_nn`] shards row blocks across threads.
#[cfg(feature = "parallel")]
const PAR_MIN_ROWS: usize = 128;
/// Minimum `m·n·k` multiply count before sharding is worth a thread spawn.
#[cfg(feature = "parallel")]
const PAR_MIN_MULS: usize = 1 << 21;

#[inline]
fn check_dims(a: &[f32], b: &[f32], m: usize, ak: usize, bk: usize, out: &[f32], on: usize) {
    assert_eq!(a.len(), m * ak, "gemm: `a` shape mismatch");
    assert_eq!(b.len(), bk, "gemm: `b` shape mismatch");
    assert_eq!(out.len(), on, "gemm: `out` shape mismatch");
}

// ---------------------------------------------------------------------------
// NN: out = a · bᵀ + bias (forward).
// ---------------------------------------------------------------------------

/// Blocked forward matmul: `out[r][o] = bias[o] + Σ_t a[r][t]·b[o][t]`
/// (`a: m × k`, `b: n × k`, `bias: n`, `out: m × n`, all row-major; `out`
/// is overwritten).
///
/// Bit-exact against [`gemm_nn_ref`]. Under the `parallel` feature, calls
/// with enough rows of work (large eval batches) shard disjoint row
/// blocks of `out` across `std::thread::scope` workers; the result is
/// bit-identical to the serial kernel because rows never share an
/// accumulator.
///
/// # Panics
/// Panics if any slice length disagrees with `(m, n, k)`.
pub fn gemm_nn(a: &[f32], b: &[f32], bias: &[f32], m: usize, n: usize, k: usize, out: &mut [f32]) {
    check_dims(a, b, m, k, n * k, out, m * n);
    assert_eq!(bias.len(), n, "gemm: `bias` shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    #[cfg(feature = "parallel")]
    if m >= PAR_MIN_ROWS && m * n * k >= PAR_MIN_MULS {
        gemm_nn_sharded(a, b, bias, m, n, k, out);
        return;
    }
    gemm_nn_serial(a, b, bias, m, n, k, out);
}

/// Row-sharded [`gemm_nn`]: each worker runs the serial kernel on a
/// disjoint row block, so the output bits cannot depend on the schedule.
#[cfg(feature = "parallel")]
fn gemm_nn_sharded(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(m);
    let rows = m.div_ceil(threads);
    std::thread::scope(|s| {
        for (a_block, out_block) in a.chunks(rows * k).zip(out.chunks_mut(rows * n)) {
            s.spawn(move || {
                gemm_nn_serial(a_block, b, bias, out_block.len() / n, n, k, out_block);
            });
        }
    });
}

fn gemm_nn_serial(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    // Every element's reduction chain starts at its bias term…
    for row in out.chunks_exact_mut(n) {
        row.copy_from_slice(bias);
    }
    // …and k-tiles continue it in ascending-t order, so the chain is the
    // naive `acc = bias[o]; for t { acc += a[r][t]·b[o][t] }` exactly.
    let mut k0 = 0;
    while k0 < k {
        let kt = (k - k0).min(NN_KC);
        let mut i0 = 0;
        while i0 < m {
            let mt = (m - i0).min(NN_MR);
            let mut o0 = 0;
            while o0 < n {
                let nt = (n - o0).min(NN_NR);
                if mt == NN_MR && nt == NN_NR {
                    let ar = [
                        &a[i0 * k + k0..][..kt],
                        &a[(i0 + 1) * k + k0..][..kt],
                        &a[(i0 + 2) * k + k0..][..kt],
                        &a[(i0 + 3) * k + k0..][..kt],
                    ];
                    let br = [
                        &b[o0 * k + k0..][..kt],
                        &b[(o0 + 1) * k + k0..][..kt],
                        &b[(o0 + 2) * k + k0..][..kt],
                        &b[(o0 + 3) * k + k0..][..kt],
                    ];
                    nn_micro(ar, br, n, i0, o0, out);
                } else {
                    nn_edge(a, b, m, n, k, i0, mt, o0, nt, k0, kt, out);
                }
                o0 += nt;
            }
            i0 += mt;
        }
        k0 += kt;
    }
}

/// Full `NN_MR × NN_NR` register tile: 16 independent accumulator chains
/// hide the FMA latency a single naive dot product serializes on.
#[inline]
fn nn_micro(
    ar: [&[f32]; NN_MR],
    br: [&[f32]; NN_NR],
    n: usize,
    i0: usize,
    o0: usize,
    out: &mut [f32],
) {
    let kt = ar[0].len();
    let mut acc = [[0.0f32; NN_NR]; NN_MR];
    for (i, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&out[(i0 + i) * n + o0..][..NN_NR]);
    }
    for t in 0..kt {
        let av = [ar[0][t], ar[1][t], ar[2][t], ar[3][t]];
        let bv = [br[0][t], br[1][t], br[2][t], br[3][t]];
        for (accr, &x) in acc.iter_mut().zip(&av) {
            for (c, &w) in accr.iter_mut().zip(&bv) {
                *c += x * w;
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        out[(i0 + i) * n + o0..][..NN_NR].copy_from_slice(row);
    }
}

/// Remainder tile of [`gemm_nn_serial`]: plain per-element chains in the
/// same ascending-t order.
#[allow(clippy::too_many_arguments)]
fn nn_edge(
    a: &[f32],
    b: &[f32],
    _m: usize,
    n: usize,
    k: usize,
    i0: usize,
    mt: usize,
    o0: usize,
    nt: usize,
    k0: usize,
    kt: usize,
    out: &mut [f32],
) {
    for i in i0..i0 + mt {
        let ar = &a[i * k + k0..][..kt];
        for o in o0..o0 + nt {
            let br = &b[o * k + k0..][..kt];
            let mut acc = out[i * n + o];
            for (&x, &w) in ar.iter().zip(br) {
                acc += x * w;
            }
            out[i * n + o] = acc;
        }
    }
}

/// Plain-loop reference twin of [`gemm_nn`] (identical semantics and
/// bits; kept for property tests and the `expt kernels` ledger baseline).
///
/// # Panics
/// Panics if any slice length disagrees with `(m, n, k)`.
pub fn gemm_nn_ref(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    check_dims(a, b, m, k, n * k, out, m * n);
    assert_eq!(bias.len(), n, "gemm: `bias` shape mismatch");
    for r in 0..m {
        let ar = &a[r * k..(r + 1) * k];
        for o in 0..n {
            let br = &b[o * k..(o + 1) * k];
            let mut acc = bias[o];
            for (&x, &w) in ar.iter().zip(br) {
                acc += x * w;
            }
            out[r * n + o] = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// TN: out = a · b (backward data).
// ---------------------------------------------------------------------------

/// Blocked backward-data matmul: `out[r][j] = Σ_o a[r][o]·b[o][j]`
/// (`a: m × p`, `b: p × n`, `out: m × n`, row-major; `out` is
/// overwritten). Bit-exact against [`gemm_tn_ref`].
///
/// # Panics
/// Panics if any slice length disagrees with `(m, p, n)`.
pub fn gemm_tn(a: &[f32], b: &[f32], m: usize, p: usize, n: usize, out: &mut [f32]) {
    check_dims(a, b, m, p, p * n, out, m * n);
    out.fill(0.0);
    // Reduction tiles ascend over o, so each element's chain is the naive
    // `acc = 0; for o { acc += a[r][o]·b[o][j] }` exactly.
    let mut o0 = 0;
    while o0 < p {
        let ot = (p - o0).min(RED_C);
        let mut i0 = 0;
        while i0 < m {
            let mt = (m - i0).min(TN_MR);
            let mut j0 = 0;
            while j0 < n {
                let jt = (n - j0).min(JB);
                if mt == TN_MR && jt == JB {
                    tn_micro(a, b, p, n, i0, o0, ot, j0, out);
                } else {
                    tn_edge(a, b, p, n, i0, mt, o0, ot, j0, jt, out);
                }
                j0 += jt;
            }
            i0 += mt;
        }
        o0 += ot;
    }
}

/// Full `TN_MR × JB` register tile: two output rows share every streamed
/// `b` row, and the eight-wide column block is one vector FMA per row.
#[allow(clippy::too_many_arguments)]
#[inline]
fn tn_micro(
    a: &[f32],
    b: &[f32],
    p: usize,
    n: usize,
    i0: usize,
    o0: usize,
    ot: usize,
    j0: usize,
    out: &mut [f32],
) {
    let a0 = &a[i0 * p + o0..][..ot];
    let a1 = &a[(i0 + 1) * p + o0..][..ot];
    let mut acc0: [f32; JB] = out[i0 * n + j0..][..JB].try_into().expect("JB block");
    let mut acc1: [f32; JB] = out[(i0 + 1) * n + j0..][..JB].try_into().expect("JB block");
    for (o_rel, (&x0, &x1)) in a0.iter().zip(a1).enumerate() {
        let br: &[f32; JB] = b[(o0 + o_rel) * n + j0..][..JB]
            .try_into()
            .expect("JB block");
        for ((c0, c1), &w) in acc0.iter_mut().zip(&mut acc1).zip(br) {
            *c0 += x0 * w;
            *c1 += x1 * w;
        }
    }
    out[i0 * n + j0..][..JB].copy_from_slice(&acc0);
    out[(i0 + 1) * n + j0..][..JB].copy_from_slice(&acc1);
}

/// Remainder tile of [`gemm_tn`]: per-element chains in the same
/// ascending-o order.
#[allow(clippy::too_many_arguments)]
fn tn_edge(
    a: &[f32],
    b: &[f32],
    p: usize,
    n: usize,
    i0: usize,
    mt: usize,
    o0: usize,
    ot: usize,
    j0: usize,
    jt: usize,
    out: &mut [f32],
) {
    for i in i0..i0 + mt {
        let ar = &a[i * p + o0..][..ot];
        for j in j0..j0 + jt {
            let mut acc = out[i * n + j];
            for (o_rel, &x) in ar.iter().enumerate() {
                acc += x * b[(o0 + o_rel) * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Plain-loop reference twin of [`gemm_tn`] (identical semantics and
/// bits).
///
/// # Panics
/// Panics if any slice length disagrees with `(m, p, n)`.
pub fn gemm_tn_ref(a: &[f32], b: &[f32], m: usize, p: usize, n: usize, out: &mut [f32]) {
    check_dims(a, b, m, p, p * n, out, m * n);
    for r in 0..m {
        let ar = &a[r * p..(r + 1) * p];
        for j in 0..n {
            let mut acc = 0.0f32;
            for (o, &x) in ar.iter().enumerate() {
                acc += x * b[o * n + j];
            }
            out[r * n + j] = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// NT: out += aᵀ · b (backward weights, accumulating).
// ---------------------------------------------------------------------------

/// Blocked accumulating backward-weights matmul:
/// `out[o][j] += Σ_r a[r][o]·b[r][j]` (`a: m × p`, `b: m × n`,
/// `out: p × n`, row-major; `out` is accumulated into, matching a weight
/// gradient `dW += d_outᵀ · x`). Bit-exact against [`gemm_nt_ref`].
///
/// # Panics
/// Panics if any slice length disagrees with `(m, p, n)`.
pub fn gemm_nt(a: &[f32], b: &[f32], m: usize, p: usize, n: usize, out: &mut [f32]) {
    check_dims(a, b, m, p, m * n, out, p * n);
    // Reduction tiles ascend over r and every chain starts from the
    // existing `out` value, so each element is the naive
    // `acc = out[o][j]; for r { acc += a[r][o]·b[r][j] }` exactly.
    let mut r0 = 0;
    while r0 < m {
        let rt = (m - r0).min(RED_C);
        let mut o0 = 0;
        while o0 < p {
            let pt = (p - o0).min(NT_OR);
            let mut j0 = 0;
            while j0 < n {
                let jt = (n - j0).min(JB);
                if pt == NT_OR && jt == JB {
                    nt_micro(a, b, p, n, r0, rt, o0, j0, out);
                } else {
                    nt_edge(a, b, p, n, r0, rt, o0, pt, j0, jt, out);
                }
                j0 += jt;
            }
            o0 += pt;
        }
        r0 += rt;
    }
}

/// Full `NT_OR × JB` register tile: two gradient rows share every
/// streamed `b` row while the batch dimension reduces in registers.
#[allow(clippy::too_many_arguments)]
#[inline]
fn nt_micro(
    a: &[f32],
    b: &[f32],
    p: usize,
    n: usize,
    r0: usize,
    rt: usize,
    o0: usize,
    j0: usize,
    out: &mut [f32],
) {
    let mut acc0: [f32; JB] = out[o0 * n + j0..][..JB].try_into().expect("JB block");
    let mut acc1: [f32; JB] = out[(o0 + 1) * n + j0..][..JB].try_into().expect("JB block");
    for r in r0..r0 + rt {
        let x0 = a[r * p + o0];
        let x1 = a[r * p + o0 + 1];
        let br: &[f32; JB] = b[r * n + j0..][..JB].try_into().expect("JB block");
        for ((c0, c1), &w) in acc0.iter_mut().zip(&mut acc1).zip(br) {
            *c0 += x0 * w;
            *c1 += x1 * w;
        }
    }
    out[o0 * n + j0..][..JB].copy_from_slice(&acc0);
    out[(o0 + 1) * n + j0..][..JB].copy_from_slice(&acc1);
}

/// Remainder tile of [`gemm_nt`]: per-element chains in the same
/// ascending-r order.
#[allow(clippy::too_many_arguments)]
fn nt_edge(
    a: &[f32],
    b: &[f32],
    p: usize,
    n: usize,
    r0: usize,
    rt: usize,
    o0: usize,
    pt: usize,
    j0: usize,
    jt: usize,
    out: &mut [f32],
) {
    for o in o0..o0 + pt {
        for j in j0..j0 + jt {
            let mut acc = out[o * n + j];
            for r in r0..r0 + rt {
                acc += a[r * p + o] * b[r * n + j];
            }
            out[o * n + j] = acc;
        }
    }
}

/// Plain-loop reference twin of [`gemm_nt`] (identical semantics and
/// bits).
///
/// # Panics
/// Panics if any slice length disagrees with `(m, p, n)`.
pub fn gemm_nt_ref(a: &[f32], b: &[f32], m: usize, p: usize, n: usize, out: &mut [f32]) {
    check_dims(a, b, m, p, m * n, out, p * n);
    for o in 0..p {
        for j in 0..n {
            let mut acc = out[o * n + j];
            for r in 0..m {
                acc += a[r * p + o] * b[r * n + j];
            }
            out[o * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fill(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
    }

    fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{what}: element {i}: {g} vs {w}");
        }
    }

    fn check_all(m: usize, n: usize, k: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * k);
        let w = fill(&mut rng, n * k);
        let bias = fill(&mut rng, n);
        // NN.
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_nn(&a, &w, &bias, m, n, k, &mut got);
        gemm_nn_ref(&a, &w, &bias, m, n, k, &mut want);
        assert_bits_eq(&got, &want, "nn");
        // TN: d_out is m × n, W is n × k, result m × k.
        let mut got = vec![0.0f32; m * k];
        let mut want = vec![0.0f32; m * k];
        let d_out = fill(&mut rng, m * n);
        gemm_tn(&d_out, &w, m, n, k, &mut got);
        gemm_tn_ref(&d_out, &w, m, n, k, &mut want);
        assert_bits_eq(&got, &want, "tn");
        // NT: accumulate into a shared non-zero gradient.
        let grad0 = fill(&mut rng, n * k);
        let mut got = grad0.clone();
        let mut want = grad0;
        gemm_nt(&d_out, &a, m, n, k, &mut got);
        gemm_nt_ref(&d_out, &a, m, n, k, &mut want);
        assert_bits_eq(&got, &want, "nt");
    }

    #[test]
    fn blocked_matches_reference_at_paper_shapes() {
        // [192, 96] MLP layers at training batch 16 and an eval batch.
        check_all(16, 192, 64, 1);
        check_all(16, 96, 192, 2);
        check_all(16, 62, 96, 3);
        check_all(200, 192, 64, 4);
    }

    #[test]
    fn blocked_matches_reference_off_block_boundaries() {
        for (i, &(m, n, k)) in [
            (1, 1, 1),
            (1, 192, 64),
            (5, 7, 9),
            (3, 13, 17),
            (NN_MR + 1, NN_NR + 1, NN_KC + 3),
            (2, JB - 1, 3),
            (7, JB + 1, 2),
        ]
        .iter()
        .enumerate()
        {
            check_all(m, n, k, 100 + i as u64);
        }
    }

    #[test]
    fn zero_k_reduces_to_bias_or_zero() {
        let bias = [1.5f32, -2.5];
        let mut out = [9.0f32; 4];
        gemm_nn(&[], &[], &bias, 2, 2, 0, &mut out);
        assert_eq!(out, [1.5, -2.5, 1.5, -2.5]);
        let mut out = [9.0f32; 4];
        gemm_tn(&[], &[], 2, 0, 2, &mut out);
        assert_eq!(out, [0.0; 4]);
        let mut out = [9.0f32; 4];
        gemm_nt(&[], &[], 0, 2, 2, &mut out);
        assert_eq!(out, [9.0; 4]); // accumulating: untouched
    }

    #[test]
    fn nt_accumulates_on_top_of_existing_values() {
        let a = [1.0f32, 2.0]; // 1 × 2
        let b = [3.0f32, 4.0, 5.0]; // 1 × 3
        let mut out = vec![10.0f32; 6];
        gemm_nt(&a, &b, 1, 2, 3, &mut out);
        assert_eq!(out, vec![13.0, 14.0, 15.0, 16.0, 18.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "`a` shape mismatch")]
    fn shape_mismatch_panics() {
        let mut out = [0.0f32; 4];
        gemm_nn(&[0.0; 3], &[0.0; 4], &[0.0; 2], 2, 2, 2, &mut out);
    }

    /// Under the `parallel` feature, a batch large enough to trigger row
    /// sharding must still match the reference twin bit for bit.
    #[cfg(feature = "parallel")]
    #[test]
    fn sharded_rows_match_reference_bitwise() {
        let (m, n, k) = (PAR_MIN_ROWS * 3 + 5, 96, 192);
        assert!(m * n * k >= PAR_MIN_MULS, "shape must trigger sharding");
        let mut rng = StdRng::seed_from_u64(7);
        let a = fill(&mut rng, m * k);
        let w = fill(&mut rng, n * k);
        let bias = fill(&mut rng, n);
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_nn(&a, &w, &bias, m, n, k, &mut got);
        gemm_nn_ref(&a, &w, &bias, m, n, k, &mut want);
        assert_bits_eq(&got, &want, "sharded nn");
    }
}
