//! Register-blocked, cache-tiled `f32` matmul micro-kernels for the MLP
//! hot path.
//!
//! Three layouts, named for how the `gluefl-ml` linear layers consume
//! them (all matrices row-major; `W` is stored `[out_dim × in_dim]` as in
//! `torch.nn.Linear`):
//!
//! * [`gemm_nn`] — forward: `out = a · bᵀ + bias` with `a = x`
//!   (`m × k` activations) and `b = W` (`n × k`), i.e.
//!   `out[r][o] = bias[o] + Σ_t a[r][t]·b[o][t]`.
//! * [`gemm_tn`] — backward data: `out = a · b` with `a = d_out`
//!   (`m × p`) and `b = W` (`p × n`), i.e.
//!   `out[r][j] = Σ_o a[r][o]·b[o][j]`.
//! * [`gemm_nt`] — backward weights, *accumulating*: `out += aᵀ · b`
//!   with `a = d_out` (`m × p`) and `b = x` (`m × n`), i.e.
//!   `out[o][j] += Σ_r a[r][o]·b[r][j]`.
//!
//! Every kernel has a plain-loop reference twin ([`gemm_nn_ref`],
//! [`gemm_tn_ref`], [`gemm_nt_ref`]) and is **bit-exact** against it:
//! blocking tiles the loops for cache and register reuse but never
//! reassociates any output element's reduction. Each element's terms are
//! added in the same ascending reduction order as the naive triple loop,
//! starting from the same initial value (`bias[o]`, `0.0`, or the
//! existing accumulator), and Rust never contracts `mul` + `add` into a
//! fused multiply-add. Speed comes from register blocking — a tile of
//! independent accumulator chains hides FMA latency where the naive dot
//! product is one serial dependency chain — and from cache tiling of the
//! reduction dimension, not from reordered arithmetic. Two contracts
//! follow:
//!
//! * serial and `--features parallel` builds produce identical bits: the
//!   parallel path only shards **disjoint row blocks** of `out` across
//!   the vendored `gluefl_pool` work-stealing pool, each job running
//!   the serial kernel;
//! * training/eval trajectories upstream stay bit-identical to the
//!   pre-GEMM per-element loops (the `local_train_*` ledger gates remain
//!   bit-exact).
//!
//! # Batched-client kernels
//!
//! Local federated training runs K clients at minibatch 16, which caps
//! the register tile at m = 16 per GEMM. [`gemm_nn_batch`] /
//! [`gemm_tn_batch`] stack the K clients' minibatches into one
//! `(K·16) × in_dim` call: on step 0 of a round every client still holds
//! the global weights ([`BatchOperand::Shared`] — one big GEMM), and
//! from step 1 each client multiplies its own packed weight tile viewed
//! in place inside its flat parameter vector
//! ([`BatchOperand::PerClient`] — clients become pool jobs). Stacking is
//! bit-exact against the per-client calls because an output element's
//! reduction chain depends only on `k` and the tile constants, never on
//! the row count of the call.
//!
//! # Example
//!
//! ```
//! use gluefl_tensor::gemm::{gemm_nn, gemm_nn_ref};
//!
//! // 2×3 activations, 4 output features, weights 4×3 row-major.
//! let x = [0.5f32, -1.0, 2.0, 1.5, 0.25, -0.75];
//! let w: Vec<f32> = (0..12).map(|i| i as f32 * 0.1).collect();
//! let bias = [0.1f32, 0.2, 0.3, 0.4];
//! let mut out = [0.0f32; 8];
//! let mut expected = [0.0f32; 8];
//! gemm_nn(&x, &w, &bias, 2, 4, 3, &mut out);
//! gemm_nn_ref(&x, &w, &bias, 2, 4, 3, &mut expected);
//! assert_eq!(out, expected); // bit-exact, not approximately equal
//! ```

/// Rows of `a` per register tile in [`gemm_nn`].
const NN_MR: usize = 4;
/// Rows of `b` (output columns) per register tile in [`gemm_nn`] — wide
/// enough that the inner loop is whole SIMD vectors (one AVX-512 or two
/// AVX2 lanes of independent output columns).
const NN_NR: usize = 16;
/// k-reduction cache tile in [`gemm_nn`]: one packed `NN_NR`-wide `b`
/// panel of this many rows (32 KiB) stays L1-resident while the register
/// tile walks every `a` row past it.
const NN_KC: usize = 512;

/// Output columns per register tile in [`gemm_tn`] / [`gemm_nt`] —
/// sixteen consecutive `f32`s, one AVX-512 (or two AVX2) vector of
/// independent accumulator chains.
const JB: usize = 16;
/// Rows of `a` per register tile in [`gemm_tn`].
const TN_MR: usize = 4;
/// Rows of `out` per register tile in [`gemm_nt`].
const NT_OR: usize = 4;
/// Reduction cache tile in [`gemm_tn`] / [`gemm_nt`].
const RED_C: usize = 512;

/// Minimum rows before [`gemm_nn`] shards row blocks across threads.
#[cfg(feature = "parallel")]
const PAR_MIN_ROWS: usize = 128;
/// Minimum `m·n·k` multiply count before sharding is worth a thread spawn.
#[cfg(feature = "parallel")]
const PAR_MIN_MULS: usize = 1 << 21;

#[inline]
fn check_dims(a: &[f32], b: &[f32], m: usize, ak: usize, bk: usize, out: &[f32], on: usize) {
    assert_eq!(a.len(), m * ak, "gemm: `a` shape mismatch");
    assert_eq!(b.len(), bk, "gemm: `b` shape mismatch");
    assert_eq!(out.len(), on, "gemm: `out` shape mismatch");
}

// ---------------------------------------------------------------------------
// NN: out = a · bᵀ + bias (forward).
// ---------------------------------------------------------------------------

/// Blocked forward matmul: `out[r][o] = bias[o] + Σ_t a[r][t]·b[o][t]`
/// (`a: m × k`, `b: n × k`, `bias: n`, `out: m × n`, all row-major; `out`
/// is overwritten).
///
/// Bit-exact against [`gemm_nn_ref`]. Under the `parallel` feature, calls
/// with enough rows of work (large eval batches) shard disjoint row
/// blocks of `out` across `std::thread::scope` workers; the result is
/// bit-identical to the serial kernel because rows never share an
/// accumulator.
///
/// # Panics
/// Panics if any slice length disagrees with `(m, n, k)`.
pub fn gemm_nn(a: &[f32], b: &[f32], bias: &[f32], m: usize, n: usize, k: usize, out: &mut [f32]) {
    check_dims(a, b, m, k, n * k, out, m * n);
    assert_eq!(bias.len(), n, "gemm: `bias` shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    #[cfg(feature = "parallel")]
    if m >= PAR_MIN_ROWS && m * n * k >= PAR_MIN_MULS {
        gemm_nn_sharded(a, b, bias, m, n, k, out);
        return;
    }
    gemm_nn_serial(a, b, bias, m, n, k, out);
}

/// Row-sharded [`gemm_nn`]: each [`gluefl_pool`] job runs the serial
/// kernel on a disjoint row block, so the output bits cannot depend on
/// the schedule.
#[cfg(feature = "parallel")]
fn gemm_nn_sharded(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(m);
    let rows = m.div_ceil(threads);
    let jobs: Vec<(&[f32], &mut [f32])> =
        a.chunks(rows * k).zip(out.chunks_mut(rows * n)).collect();
    gluefl_pool::run(threads, jobs, |(a_block, out_block)| {
        gemm_nn_serial(a_block, b, bias, out_block.len() / n, n, k, out_block);
    });
}

fn gemm_nn_serial(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    // Every element's reduction chain starts at its bias term…
    for row in out.chunks_exact_mut(n) {
        row.copy_from_slice(bias);
    }
    // …and k-tiles continue it in ascending-t order, so the chain is the
    // naive `acc = bias[o]; for t { acc += a[r][t]·b[o][t] }` exactly.
    //
    // `b` rows are k-contiguous, so a dot-product inner loop would put
    // the reduction in the vector lanes — where bit-exactness forbids
    // vectorizing. Instead each NN_NR-wide column panel is repacked
    // t-major once per k-tile; the microkernel then broadcasts `a` and
    // runs whole vectors of independent output columns. Packing only
    // relocates operands, so every chain's order is untouched.
    let mut bp = [0.0f32; NN_KC * NN_NR];
    let mut k0 = 0;
    while k0 < k {
        let kt = (k - k0).min(NN_KC);
        let mut o0 = 0;
        while o0 < n {
            let nt = (n - o0).min(NN_NR);
            if nt == NN_NR {
                for j in 0..NN_NR {
                    for (t, &w) in b[(o0 + j) * k + k0..][..kt].iter().enumerate() {
                        bp[t * NN_NR + j] = w;
                    }
                }
                let panel = &bp[..kt * NN_NR];
                let mut i0 = 0;
                while i0 < m {
                    let mt = (m - i0).min(NN_MR);
                    if mt == NN_MR {
                        let ar = [
                            &a[i0 * k + k0..][..kt],
                            &a[(i0 + 1) * k + k0..][..kt],
                            &a[(i0 + 2) * k + k0..][..kt],
                            &a[(i0 + 3) * k + k0..][..kt],
                        ];
                        nn_micro(ar, panel, n, i0, o0, out);
                    } else {
                        nn_edge(a, b, m, n, k, i0, mt, o0, NN_NR, k0, kt, out);
                    }
                    i0 += mt;
                }
            } else {
                nn_edge(a, b, m, n, k, 0, m, o0, nt, k0, kt, out);
            }
            o0 += nt;
        }
        k0 += kt;
    }
}

/// Full `NN_MR × NN_NR` register tile over a t-major packed `b` panel:
/// 64 independent accumulator chains, vectorized across output columns
/// (never across `t`, which would reassociate the reduction).
#[inline]
fn nn_micro(ar: [&[f32]; NN_MR], panel: &[f32], n: usize, i0: usize, o0: usize, out: &mut [f32]) {
    let kt = ar[0].len();
    let mut acc = [[0.0f32; NN_NR]; NN_MR];
    for (i, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&out[(i0 + i) * n + o0..][..NN_NR]);
    }
    let [acc0, acc1, acc2, acc3] = &mut acc;
    for (t, bv) in panel.chunks_exact(NN_NR).take(kt).enumerate() {
        let (x0, x1, x2, x3) = (ar[0][t], ar[1][t], ar[2][t], ar[3][t]);
        // Rows hand-jammed into one flat column loop — see [`nt_micro`].
        for (j, &w) in bv.iter().enumerate() {
            acc0[j] += x0 * w;
            acc1[j] += x1 * w;
            acc2[j] += x2 * w;
            acc3[j] += x3 * w;
        }
    }
    for (i, row) in acc.iter().enumerate() {
        out[(i0 + i) * n + o0..][..NN_NR].copy_from_slice(row);
    }
}

/// Remainder tile of [`gemm_nn_serial`]: plain per-element chains in the
/// same ascending-t order.
#[allow(clippy::too_many_arguments)]
fn nn_edge(
    a: &[f32],
    b: &[f32],
    _m: usize,
    n: usize,
    k: usize,
    i0: usize,
    mt: usize,
    o0: usize,
    nt: usize,
    k0: usize,
    kt: usize,
    out: &mut [f32],
) {
    for i in i0..i0 + mt {
        let ar = &a[i * k + k0..][..kt];
        for o in o0..o0 + nt {
            let br = &b[o * k + k0..][..kt];
            let mut acc = out[i * n + o];
            for (&x, &w) in ar.iter().zip(br) {
                acc += x * w;
            }
            out[i * n + o] = acc;
        }
    }
}

/// Plain-loop reference twin of [`gemm_nn`] (identical semantics and
/// bits; kept for property tests and the `expt kernels` ledger baseline).
///
/// # Panics
/// Panics if any slice length disagrees with `(m, n, k)`.
pub fn gemm_nn_ref(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    check_dims(a, b, m, k, n * k, out, m * n);
    assert_eq!(bias.len(), n, "gemm: `bias` shape mismatch");
    for r in 0..m {
        let ar = &a[r * k..(r + 1) * k];
        for o in 0..n {
            let br = &b[o * k..(o + 1) * k];
            let mut acc = bias[o];
            for (&x, &w) in ar.iter().zip(br) {
                acc += x * w;
            }
            out[r * n + o] = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// TN: out = a · b (backward data).
// ---------------------------------------------------------------------------

/// Blocked backward-data matmul: `out[r][j] = Σ_o a[r][o]·b[o][j]`
/// (`a: m × p`, `b: p × n`, `out: m × n`, row-major; `out` is
/// overwritten). Bit-exact against [`gemm_tn_ref`].
///
/// # Panics
/// Panics if any slice length disagrees with `(m, p, n)`.
pub fn gemm_tn(a: &[f32], b: &[f32], m: usize, p: usize, n: usize, out: &mut [f32]) {
    check_dims(a, b, m, p, p * n, out, m * n);
    out.fill(0.0);
    // Reduction tiles ascend over o, so each element's chain is the naive
    // `acc = 0; for o { acc += a[r][o]·b[o][j] }` exactly.
    let mut o0 = 0;
    while o0 < p {
        let ot = (p - o0).min(RED_C);
        let mut i0 = 0;
        while i0 < m {
            let mt = (m - i0).min(TN_MR);
            let mut j0 = 0;
            while j0 < n {
                let jt = (n - j0).min(JB);
                if mt == TN_MR && jt == JB {
                    tn_micro(a, b, p, n, i0, o0, ot, j0, out);
                } else {
                    tn_edge(a, b, p, n, i0, mt, o0, ot, j0, jt, out);
                }
                j0 += jt;
            }
            i0 += mt;
        }
        o0 += ot;
    }
}

/// Full `TN_MR × JB` register tile: four output rows share every
/// streamed `b` row, and the sixteen-wide column block vectorizes across
/// independent output columns (never across `o`, the reduction).
#[allow(clippy::too_many_arguments)]
#[inline]
fn tn_micro(
    a: &[f32],
    b: &[f32],
    p: usize,
    n: usize,
    i0: usize,
    o0: usize,
    ot: usize,
    j0: usize,
    out: &mut [f32],
) {
    let ar: [&[f32]; TN_MR] = [
        &a[i0 * p + o0..][..ot],
        &a[(i0 + 1) * p + o0..][..ot],
        &a[(i0 + 2) * p + o0..][..ot],
        &a[(i0 + 3) * p + o0..][..ot],
    ];
    let mut acc = [[0.0f32; JB]; TN_MR];
    for (i, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&out[(i0 + i) * n + j0..][..JB]);
    }
    let [acc0, acc1, acc2, acc3] = &mut acc;
    for o_rel in 0..ot {
        let br: &[f32; JB] = b[(o0 + o_rel) * n + j0..][..JB]
            .try_into()
            .expect("JB block");
        let (x0, x1, x2, x3) = (ar[0][o_rel], ar[1][o_rel], ar[2][o_rel], ar[3][o_rel]);
        // Rows hand-jammed into one flat column loop — see [`nt_micro`].
        for (j, &w) in br.iter().enumerate() {
            acc0[j] += x0 * w;
            acc1[j] += x1 * w;
            acc2[j] += x2 * w;
            acc3[j] += x3 * w;
        }
    }
    for (i, row) in acc.iter().enumerate() {
        out[(i0 + i) * n + j0..][..JB].copy_from_slice(row);
    }
}

/// Remainder tile of [`gemm_tn`]: per-element chains in the same
/// ascending-o order.
#[allow(clippy::too_many_arguments)]
fn tn_edge(
    a: &[f32],
    b: &[f32],
    p: usize,
    n: usize,
    i0: usize,
    mt: usize,
    o0: usize,
    ot: usize,
    j0: usize,
    jt: usize,
    out: &mut [f32],
) {
    for i in i0..i0 + mt {
        let ar = &a[i * p + o0..][..ot];
        for j in j0..j0 + jt {
            let mut acc = out[i * n + j];
            for (o_rel, &x) in ar.iter().enumerate() {
                acc += x * b[(o0 + o_rel) * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Plain-loop reference twin of [`gemm_tn`] (identical semantics and
/// bits).
///
/// # Panics
/// Panics if any slice length disagrees with `(m, p, n)`.
pub fn gemm_tn_ref(a: &[f32], b: &[f32], m: usize, p: usize, n: usize, out: &mut [f32]) {
    check_dims(a, b, m, p, p * n, out, m * n);
    for r in 0..m {
        let ar = &a[r * p..(r + 1) * p];
        for j in 0..n {
            let mut acc = 0.0f32;
            for (o, &x) in ar.iter().enumerate() {
                acc += x * b[o * n + j];
            }
            out[r * n + j] = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// NT: out += aᵀ · b (backward weights, accumulating).
// ---------------------------------------------------------------------------

/// Blocked accumulating backward-weights matmul:
/// `out[o][j] += Σ_r a[r][o]·b[r][j]` (`a: m × p`, `b: m × n`,
/// `out: p × n`, row-major; `out` is accumulated into, matching a weight
/// gradient `dW += d_outᵀ · x`). Bit-exact against [`gemm_nt_ref`].
///
/// # Panics
/// Panics if any slice length disagrees with `(m, p, n)`.
pub fn gemm_nt(a: &[f32], b: &[f32], m: usize, p: usize, n: usize, out: &mut [f32]) {
    check_dims(a, b, m, p, m * n, out, p * n);
    // Reduction tiles ascend over r and every chain starts from the
    // existing `out` value, so each element is the naive
    // `acc = out[o][j]; for r { acc += a[r][o]·b[r][j] }` exactly.
    let mut r0 = 0;
    while r0 < m {
        let rt = (m - r0).min(RED_C);
        let mut o0 = 0;
        while o0 < p {
            let pt = (p - o0).min(NT_OR);
            let mut j0 = 0;
            while j0 < n {
                let jt = (n - j0).min(JB);
                if pt == NT_OR && jt == JB {
                    nt_micro(a, b, p, n, r0, rt, o0, j0, out);
                } else {
                    nt_edge(a, b, p, n, r0, rt, o0, pt, j0, jt, out);
                }
                j0 += jt;
            }
            o0 += pt;
        }
        r0 += rt;
    }
}

/// Full `NT_OR × JB` register tile: four gradient rows share every
/// streamed `b` row while the batch dimension reduces in registers; the
/// sixteen-wide column block vectorizes across independent gradient
/// columns (never across `r`, the reduction).
#[allow(clippy::too_many_arguments)]
#[inline]
fn nt_micro(
    a: &[f32],
    b: &[f32],
    p: usize,
    n: usize,
    r0: usize,
    rt: usize,
    o0: usize,
    j0: usize,
    out: &mut [f32],
) {
    let mut acc = [[0.0f32; JB]; NT_OR];
    for (o, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&out[(o0 + o) * n + j0..][..JB]);
    }
    let [acc0, acc1, acc2, acc3] = &mut acc;
    for r in r0..r0 + rt {
        let av: &[f32; NT_OR] = a[r * p + o0..][..NT_OR].try_into().expect("NT_OR block");
        let br: &[f32; JB] = b[r * n + j0..][..JB].try_into().expect("JB block");
        // One flat loop over columns with the rows hand-jammed: the only
        // dimension the vectorizer can widen is `j`. (A nested
        // rows-within-columns loop lets it interleave across rows
        // instead, which runs several times slower.)
        for (j, &w) in br.iter().enumerate() {
            acc0[j] += av[0] * w;
            acc1[j] += av[1] * w;
            acc2[j] += av[2] * w;
            acc3[j] += av[3] * w;
        }
    }
    for (o, row) in acc.iter().enumerate() {
        out[(o0 + o) * n + j0..][..JB].copy_from_slice(row);
    }
}

/// Remainder tile of [`gemm_nt`]: per-element chains in the same
/// ascending-r order.
#[allow(clippy::too_many_arguments)]
fn nt_edge(
    a: &[f32],
    b: &[f32],
    p: usize,
    n: usize,
    r0: usize,
    rt: usize,
    o0: usize,
    pt: usize,
    j0: usize,
    jt: usize,
    out: &mut [f32],
) {
    for o in o0..o0 + pt {
        for j in j0..j0 + jt {
            let mut acc = out[o * n + j];
            for r in r0..r0 + rt {
                acc += a[r * p + o] * b[r * n + j];
            }
            out[o * n + j] = acc;
        }
    }
}

/// Plain-loop reference twin of [`gemm_nt`] (identical semantics and
/// bits).
///
/// # Panics
/// Panics if any slice length disagrees with `(m, p, n)`.
pub fn gemm_nt_ref(a: &[f32], b: &[f32], m: usize, p: usize, n: usize, out: &mut [f32]) {
    check_dims(a, b, m, p, m * n, out, p * n);
    for o in 0..p {
        for j in 0..n {
            let mut acc = out[o * n + j];
            for r in 0..m {
                acc += a[r * p + o] * b[r * n + j];
            }
            out[o * n + j] = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Batched-client kernels: K clients' minibatches in one call.
// ---------------------------------------------------------------------------

/// One weight/bias operand of a batched-client GEMM.
///
/// On step 0 of a round every client still holds the global weights, so
/// the whole batch multiplies against **one** shared matrix
/// ([`BatchOperand::Shared`]) and the kernel degenerates to a single
/// stacked `(K·mb) × n` GEMM — the shape that finally exceeds the m = 16
/// register-tile cap per client. From step 1 on, the clients' weights
/// have diverged; [`BatchOperand::PerClient`] views client `c`'s packed
/// tile at `base[c·stride + off ..]` — for the ml crate that is the
/// contiguous `W`/`bias` segment inside client `c`'s flat parameter
/// vector (stride = the parameter count), so no copy is ever made.
#[derive(Debug, Clone, Copy)]
pub enum BatchOperand<'a> {
    /// One operand matrix shared by every client.
    Shared(&'a [f32]),
    /// Per-client packed tiles: client `c`'s operand is
    /// `base[c·stride + off ..][..len]`.
    PerClient {
        /// Backing buffer holding every client's tile.
        base: &'a [f32],
        /// Distance between consecutive clients' tiles.
        stride: usize,
        /// Offset of the tile inside each client's stride.
        off: usize,
    },
}

impl<'a> BatchOperand<'a> {
    /// Client `c`'s `len`-element tile.
    #[inline]
    fn tile(&self, c: usize, len: usize) -> &'a [f32] {
        match *self {
            Self::Shared(s) => &s[..len],
            Self::PerClient { base, stride, off } => &base[c * stride + off..][..len],
        }
    }

    /// Validates that every client's tile of `len` elements is in bounds.
    fn check(&self, clients: usize, len: usize, what: &str) {
        match *self {
            Self::Shared(s) => assert_eq!(s.len(), len, "gemm batch: `{what}` shape mismatch"),
            Self::PerClient { base, stride, off } => {
                if clients > 0 {
                    assert!(
                        (clients - 1) * stride + off + len <= base.len(),
                        "gemm batch: `{what}` tiles out of bounds"
                    );
                }
            }
        }
    }
}

/// Batched-client forward matmul: client `c` occupies rows
/// `[c·mb, (c+1)·mb)` of the stacked `a` (`(clients·mb) × k`) and `out`
/// (`(clients·mb) × n`), and multiplies against its own `n × k` weight
/// tile and `n`-long bias tile from `w`/`bias`.
///
/// **Bit-exact against per-client [`gemm_nn`] calls on the same rows**:
/// each output element's reduction chain depends only on `k` and the
/// tile constants, never on how many rows the call carries, so stacking
/// clients cannot reassociate anything. With both operands
/// [`BatchOperand::Shared`] the call collapses to one stacked
/// [`gemm_nn`] (which row-shards across the `gluefl_pool` workers under the
/// `parallel` feature); otherwise clients become pool jobs.
///
/// # Panics
/// Panics if any slice length disagrees with `(clients, mb, n, k)`.
#[allow(clippy::too_many_arguments)] // mirrors the (a, w, bias, dims..., out) GEMM signature family
pub fn gemm_nn_batch(
    a: &[f32],
    w: &BatchOperand<'_>,
    bias: &BatchOperand<'_>,
    clients: usize,
    mb: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), clients * mb * k, "gemm batch: `a` shape mismatch");
    assert_eq!(
        out.len(),
        clients * mb * n,
        "gemm batch: `out` shape mismatch"
    );
    w.check(clients, n * k, "w");
    bias.check(clients, n, "bias");
    if clients == 0 || mb == 0 || n == 0 {
        return;
    }
    if let (BatchOperand::Shared(wv), BatchOperand::Shared(bv)) = (w, bias) {
        // Step-0 shape: one big GEMM over the stacked batch.
        gemm_nn(a, wv, bv, clients * mb, n, k, out);
        return;
    }
    #[cfg(feature = "parallel")]
    if clients > 1 && clients * mb * n * k >= PAR_MIN_MULS {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(clients);
        if threads > 1 {
            let jobs: Vec<(usize, &mut [f32])> = out.chunks_mut(mb * n).enumerate().collect();
            gluefl_pool::run(threads, jobs, |(c, out_block)| {
                gemm_nn_serial(
                    &a[c * mb * k..][..mb * k],
                    w.tile(c, n * k),
                    bias.tile(c, n),
                    mb,
                    n,
                    k,
                    out_block,
                );
            });
            return;
        }
    }
    for (c, out_block) in out.chunks_mut(mb * n).enumerate() {
        gemm_nn_serial(
            &a[c * mb * k..][..mb * k],
            w.tile(c, n * k),
            bias.tile(c, n),
            mb,
            n,
            k,
            out_block,
        );
    }
}

/// Batched-client backward-data matmul: client `c` occupies rows
/// `[c·mb, (c+1)·mb)` of the stacked `a` (`(clients·mb) × p`) and `out`
/// (`(clients·mb) × n`), multiplying against its own `p × n` tile of
/// `b`. Bit-exact against per-client [`gemm_tn`] calls on the same rows
/// (rows never share an accumulator). With a shared operand the call is
/// one stacked [`gemm_tn`], client-block-sharded across the
/// `gluefl_pool` workers under the `parallel` feature.
///
/// # Panics
/// Panics if any slice length disagrees with `(clients, mb, p, n)`.
pub fn gemm_tn_batch(
    a: &[f32],
    b: &BatchOperand<'_>,
    clients: usize,
    mb: usize,
    p: usize,
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), clients * mb * p, "gemm batch: `a` shape mismatch");
    assert_eq!(
        out.len(),
        clients * mb * n,
        "gemm batch: `out` shape mismatch"
    );
    b.check(clients, p * n, "b");
    if clients == 0 || mb == 0 {
        return;
    }
    #[cfg(feature = "parallel")]
    if clients > 1 && clients * mb * p * n >= PAR_MIN_MULS {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(clients);
        if threads > 1 {
            let jobs: Vec<(usize, &mut [f32])> = out.chunks_mut(mb * n).enumerate().collect();
            gluefl_pool::run(threads, jobs, |(c, out_block)| {
                gemm_tn(
                    &a[c * mb * p..][..mb * p],
                    b.tile(c, p * n),
                    mb,
                    p,
                    n,
                    out_block,
                );
            });
            return;
        }
    }
    match b {
        BatchOperand::Shared(bv) => gemm_tn(a, bv, clients * mb, p, n, out),
        BatchOperand::PerClient { .. } => {
            for (c, out_block) in out.chunks_mut(mb * n).enumerate() {
                gemm_tn(
                    &a[c * mb * p..][..mb * p],
                    b.tile(c, p * n),
                    mb,
                    p,
                    n,
                    out_block,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fill(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
    }

    fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{what}: element {i}: {g} vs {w}");
        }
    }

    fn check_all(m: usize, n: usize, k: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, m * k);
        let w = fill(&mut rng, n * k);
        let bias = fill(&mut rng, n);
        // NN.
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_nn(&a, &w, &bias, m, n, k, &mut got);
        gemm_nn_ref(&a, &w, &bias, m, n, k, &mut want);
        assert_bits_eq(&got, &want, "nn");
        // TN: d_out is m × n, W is n × k, result m × k.
        let mut got = vec![0.0f32; m * k];
        let mut want = vec![0.0f32; m * k];
        let d_out = fill(&mut rng, m * n);
        gemm_tn(&d_out, &w, m, n, k, &mut got);
        gemm_tn_ref(&d_out, &w, m, n, k, &mut want);
        assert_bits_eq(&got, &want, "tn");
        // NT: accumulate into a shared non-zero gradient.
        let grad0 = fill(&mut rng, n * k);
        let mut got = grad0.clone();
        let mut want = grad0;
        gemm_nt(&d_out, &a, m, n, k, &mut got);
        gemm_nt_ref(&d_out, &a, m, n, k, &mut want);
        assert_bits_eq(&got, &want, "nt");
    }

    #[test]
    fn blocked_matches_reference_at_paper_shapes() {
        // [192, 96] MLP layers at training batch 16 and an eval batch.
        check_all(16, 192, 64, 1);
        check_all(16, 96, 192, 2);
        check_all(16, 62, 96, 3);
        check_all(200, 192, 64, 4);
    }

    #[test]
    fn blocked_matches_reference_off_block_boundaries() {
        for (i, &(m, n, k)) in [
            (1, 1, 1),
            (1, 192, 64),
            (5, 7, 9),
            (3, 13, 17),
            (NN_MR + 1, NN_NR + 1, NN_KC + 3),
            (2, JB - 1, 3),
            (7, JB + 1, 2),
        ]
        .iter()
        .enumerate()
        {
            check_all(m, n, k, 100 + i as u64);
        }
    }

    #[test]
    fn zero_k_reduces_to_bias_or_zero() {
        let bias = [1.5f32, -2.5];
        let mut out = [9.0f32; 4];
        gemm_nn(&[], &[], &bias, 2, 2, 0, &mut out);
        assert_eq!(out, [1.5, -2.5, 1.5, -2.5]);
        let mut out = [9.0f32; 4];
        gemm_tn(&[], &[], 2, 0, 2, &mut out);
        assert_eq!(out, [0.0; 4]);
        let mut out = [9.0f32; 4];
        gemm_nt(&[], &[], 0, 2, 2, &mut out);
        assert_eq!(out, [9.0; 4]); // accumulating: untouched
    }

    #[test]
    fn nt_accumulates_on_top_of_existing_values() {
        let a = [1.0f32, 2.0]; // 1 × 2
        let b = [3.0f32, 4.0, 5.0]; // 1 × 3
        let mut out = vec![10.0f32; 6];
        gemm_nt(&a, &b, 1, 2, 3, &mut out);
        assert_eq!(out, vec![13.0, 14.0, 15.0, 16.0, 18.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "`a` shape mismatch")]
    fn shape_mismatch_panics() {
        let mut out = [0.0f32; 4];
        gemm_nn(&[0.0; 3], &[0.0; 4], &[0.0; 2], 2, 2, 2, &mut out);
    }

    /// Batched-client calls must reproduce the per-client kernels bit
    /// for bit — shared step-0 weights and diverged per-client tiles,
    /// on-tile and off-tile client counts and minibatch sizes alike.
    fn check_batch(clients: usize, mb: usize, n: usize, k: usize, seed: u64, shared: bool) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = fill(&mut rng, clients * mb * k);
        // Per-client tiles live inside a padded per-client "params"
        // stride, mimicking the ml crate's flat parameter vectors.
        let stride = n * k + n + 3;
        let params = fill(&mut rng, clients.max(1) * stride);
        let shared_w = fill(&mut rng, n * k);
        let shared_b = fill(&mut rng, n);
        let (w, bias) = if shared {
            (
                BatchOperand::Shared(&shared_w),
                BatchOperand::Shared(&shared_b),
            )
        } else {
            (
                BatchOperand::PerClient {
                    base: &params,
                    stride,
                    off: 0,
                },
                BatchOperand::PerClient {
                    base: &params,
                    stride,
                    off: n * k,
                },
            )
        };
        let mut got = vec![0.0f32; clients * mb * n];
        gemm_nn_batch(&a, &w, &bias, clients, mb, n, k, &mut got);
        let mut want = vec![0.0f32; clients * mb * n];
        for c in 0..clients {
            let (wc, bc) = if shared {
                (&shared_w[..], &shared_b[..])
            } else {
                (
                    &params[c * stride..][..n * k],
                    &params[c * stride + n * k..][..n],
                )
            };
            gemm_nn(
                &a[c * mb * k..][..mb * k],
                wc,
                bc,
                mb,
                n,
                k,
                &mut want[c * mb * n..][..mb * n],
            );
        }
        assert_bits_eq(&got, &want, "nn batch");
        // TN: stacked d_out is (clients·mb) × n against n × k tiles.
        let d_out = fill(&mut rng, clients * mb * n);
        let b_op = if shared {
            BatchOperand::Shared(&shared_w)
        } else {
            BatchOperand::PerClient {
                base: &params,
                stride,
                off: 0,
            }
        };
        let mut got = vec![0.0f32; clients * mb * k];
        gemm_tn_batch(&d_out, &b_op, clients, mb, n, k, &mut got);
        let mut want = vec![0.0f32; clients * mb * k];
        for c in 0..clients {
            let bc = if shared {
                &shared_w[..]
            } else {
                &params[c * stride..][..n * k]
            };
            gemm_tn(
                &d_out[c * mb * n..][..mb * n],
                bc,
                mb,
                n,
                k,
                &mut want[c * mb * k..][..mb * k],
            );
        }
        assert_bits_eq(&got, &want, "tn batch");
    }

    #[test]
    fn batched_clients_match_per_client_calls_bitwise() {
        for (i, &(clients, mb)) in [(1, 16), (30, 16), (3, 5), (7, 1), (2, 16)]
            .iter()
            .enumerate()
        {
            check_batch(clients, mb, 96, 192, 40 + i as u64, true);
            check_batch(clients, mb, 96, 192, 60 + i as u64, false);
            check_batch(clients, mb, 7, 9, 80 + i as u64, false);
        }
    }

    #[test]
    fn batched_zero_clients_is_a_no_op() {
        let w = [0.5f32; 6];
        let b = [0.1f32; 2];
        gemm_nn_batch(
            &[],
            &BatchOperand::Shared(&w),
            &BatchOperand::Shared(&b),
            0,
            4,
            2,
            3,
            &mut [],
        );
    }

    /// Under the `parallel` feature, a batch large enough to trigger row
    /// sharding must still match the reference twin bit for bit.
    #[cfg(feature = "parallel")]
    #[test]
    fn sharded_rows_match_reference_bitwise() {
        let (m, n, k) = (PAR_MIN_ROWS * 3 + 5, 96, 192);
        assert!(m * n * k >= PAR_MIN_MULS, "shape must trigger sharding");
        let mut rng = StdRng::seed_from_u64(7);
        let a = fill(&mut rng, m * k);
        let w = fill(&mut rng, n * k);
        let bias = fill(&mut rng, n);
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_nn(&a, &w, &bias, m, n, k, &mut got);
        gemm_nn_ref(&a, &w, &bias, m, n, k, &mut want);
        assert_bits_eq(&got, &want, "sharded nn");
    }
}
