//! Flat-vector kernels shared by the ML substrate and the strategies.
//!
//! All of these operate on plain `&[f32]` slices and panic on length
//! mismatch — models in this workspace are always flat parameter vectors,
//! so no shape machinery is needed.
//!
//! The element-wise kernels process fixed `LANES`-wide chunks with a
//! scalar remainder so the compiler can auto-vectorize the inner loops;
//! reductions keep one accumulator per lane and combine them in a fixed
//! order, so results are deterministic for a given input (independent of
//! platform or call site). The `masked_*` kernels fuse a [`BitMask`]
//! scope into the arithmetic at word level — all-ones words take the
//! dense fast path, all-zero words are skipped — replacing
//! `BitMask::apply_to` + copy round-trips in the round hot path.

use crate::BitMask;

/// Chunk width of the element-wise kernels.
const LANES: usize = 8;

/// `y ← y + a·x` (AXPY).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
///
/// # Example
/// ```
/// let mut y = vec![1.0f32, 1.0];
/// gluefl_tensor::vecops::axpy(&mut y, 2.0, &[3.0, 4.0]);
/// assert_eq!(y, vec![7.0, 9.0]);
/// ```
pub fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    let mut yc = y.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (yk, xk) in (&mut yc).zip(&mut xc) {
        for j in 0..LANES {
            yk[j] += a * xk[j];
        }
    }
    for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi += a * xi;
    }
}

/// `y ← a·y`.
pub fn scale(y: &mut [f32], a: f32) {
    for yi in y.iter_mut() {
        *yi *= a;
    }
}

/// `y ← y + x`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
///
/// # Example
/// ```
/// let mut y = vec![1.0f32, 2.0];
/// gluefl_tensor::vecops::add_assign(&mut y, &[10.0, 20.0]);
/// assert_eq!(y, vec![11.0, 22.0]);
/// ```
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "add_assign length mismatch");
    let mut yc = y.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (yk, xk) in (&mut yc).zip(&mut xc) {
        for j in 0..LANES {
            yk[j] += xk[j];
        }
    }
    for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi += xi;
    }
}

/// Dot product `⟨x, y⟩` accumulated in `f64` for stability.
///
/// Uses `LANES` independent accumulators combined in a fixed order, so
/// the result is deterministic for a given input.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn dot(x: &[f32], y: &[f32]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut acc = [0.0f64; LANES];
    let mut xc = x.chunks_exact(LANES);
    let mut yc = y.chunks_exact(LANES);
    for (xk, yk) in (&mut xc).zip(&mut yc) {
        for j in 0..LANES {
            acc[j] += f64::from(xk[j]) * f64::from(yk[j]);
        }
    }
    let mut total: f64 = acc.iter().sum();
    for (xi, yi) in xc.remainder().iter().zip(yc.remainder()) {
        total += f64::from(*xi) * f64::from(*yi);
    }
    total
}

/// Euclidean norm `‖x‖₂` accumulated in `f64`.
#[must_use]
pub fn l2_norm(x: &[f32]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut xc = x.chunks_exact(LANES);
    for xk in &mut xc {
        for j in 0..LANES {
            acc[j] += f64::from(xk[j]) * f64::from(xk[j]);
        }
    }
    let mut total: f64 = acc.iter().sum();
    for xi in xc.remainder() {
        total += f64::from(*xi) * f64::from(*xi);
    }
    total.sqrt()
}

/// Elementwise difference `a - b` into a fresh vector.
///
/// # Panics
/// Panics if `a.len() != b.len()`.
#[must_use]
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; a.len()];
    sub_into(&mut out, a, b);
    out
}

/// Elementwise difference `out ← a - b` into an existing buffer
/// (the allocation-free form used by the round hot path).
///
/// # Panics
/// Panics if the three lengths differ.
///
/// # Example
/// ```
/// let mut out = vec![0.0f32; 2];
/// gluefl_tensor::vecops::sub_into(&mut out, &[5.0, 7.0], &[2.0, 3.0]);
/// assert_eq!(out, vec![3.0, 4.0]);
/// ```
pub fn sub_into(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    assert_eq!(out.len(), a.len(), "sub length mismatch");
    let mut oc = out.chunks_exact_mut(LANES);
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for ((ok, ak), bk) in (&mut oc).zip(&mut ac).zip(&mut bc) {
        for j in 0..LANES {
            ok[j] = ak[j] - bk[j];
        }
    }
    for ((oi, ai), bi) in oc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *oi = ai - bi;
    }
}

/// Elementwise sum `a + b` into a fresh vector.
///
/// # Panics
/// Panics if `a.len() != b.len()`.
#[must_use]
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    let mut out = a.to_vec();
    add_assign(&mut out, b);
    out
}

/// Fused masked AXPY: `y[i] ← y[i] + a·x[i]` for every position `i`
/// covered by `mask`; other positions are untouched.
///
/// Word-level: all-ones mask words run the dense `LANES`-chunk kernel,
/// all-zero words are skipped entirely.
///
/// # Panics
/// Panics if the lengths differ.
///
/// # Example
/// ```
/// use gluefl_tensor::{vecops::masked_axpy, BitMask};
/// let m = BitMask::from_indices(3, [0usize, 2]);
/// let mut y = vec![1.0f32, 1.0, 1.0];
/// masked_axpy(&mut y, 2.0, &[10.0, 10.0, 10.0], &m);
/// assert_eq!(y, vec![21.0, 1.0, 21.0]);
/// ```
pub fn masked_axpy(y: &mut [f32], a: f32, x: &[f32], mask: &BitMask) {
    assert_eq!(y.len(), x.len(), "masked_axpy length mismatch");
    assert_eq!(y.len(), mask.len(), "masked_axpy mask length mismatch");
    for ((yk, xk), &w) in y.chunks_mut(64).zip(x.chunks(64)).zip(mask.as_words()) {
        if w == 0 {
            continue;
        }
        if w == u64::MAX {
            axpy(yk, a, xk);
            continue;
        }
        let mut bits = w;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            yk[b] += a * xk[b];
            bits &= bits - 1;
        }
    }
}

/// Fused masked difference: `out[i] ← a[i] - b[i]` where `mask` covers
/// `i`, `0.0` elsewhere. Replaces a `sub` + [`BitMask::apply_to`]
/// round-trip with one pass.
///
/// # Panics
/// Panics if the lengths differ.
///
/// # Example
/// ```
/// use gluefl_tensor::{vecops::masked_sub_into, BitMask};
/// let m = BitMask::from_indices(3, [1usize]);
/// let mut out = vec![9.0f32; 3];
/// masked_sub_into(&mut out, &[5.0, 6.0, 7.0], &[1.0, 1.0, 1.0], &m);
/// assert_eq!(out, vec![0.0, 5.0, 0.0]);
/// ```
pub fn masked_sub_into(out: &mut [f32], a: &[f32], b: &[f32], mask: &BitMask) {
    assert_eq!(a.len(), b.len(), "masked_sub length mismatch");
    assert_eq!(out.len(), a.len(), "masked_sub length mismatch");
    assert_eq!(out.len(), mask.len(), "masked_sub mask length mismatch");
    for (((ok, ak), bk), &w) in out
        .chunks_mut(64)
        .zip(a.chunks(64))
        .zip(b.chunks(64))
        .zip(mask.as_words())
    {
        if w == 0 {
            ok.fill(0.0);
            continue;
        }
        if w == u64::MAX {
            sub_into(ok, ak, bk);
            continue;
        }
        for (j, o) in ok.iter_mut().enumerate() {
            *o = if (w >> j) & 1 == 1 {
                ak[j] - bk[j]
            } else {
                0.0
            };
        }
    }
}

/// Mean of the entries (0.0 for an empty slice).
#[must_use]
pub fn mean(x: &[f32]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().map(|v| f64::from(*v)).sum::<f64>() / x.len() as f64
    }
}

/// Number of entries whose absolute value exceeds `eps`.
#[must_use]
pub fn count_above(x: &[f32], eps: f32) -> usize {
    x.iter().filter(|v| v.abs() > eps).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let mut y = vec![0.0f32, 1.0, 2.0];
        axpy(&mut y, -1.0, &[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn axpy_covers_chunks_and_remainder() {
        let n = LANES * 3 + 5;
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut y = vec![1.0f32; n];
        axpy(&mut y, 2.0, &x);
        for (i, v) in y.iter().enumerate() {
            assert_eq!(*v, 1.0 + 2.0 * i as f32, "position {i}");
        }
    }

    #[test]
    fn scale_basic() {
        let mut y = vec![2.0f32, -4.0];
        scale(&mut y, 0.5);
        assert_eq!(y, vec![1.0, -2.0]);
    }

    #[test]
    fn add_assign_matches_add() {
        let a: Vec<f32> = (0..37).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..37).map(|i| 2.0 * i as f32).collect();
        let mut y = a.clone();
        add_assign(&mut y, &b);
        assert_eq!(y, add(&a, &b));
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn dot_matches_sequential_reference() {
        let x: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let y: Vec<f32> = (0..100).map(|i| (i as f32).cos()).collect();
        let seq: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| f64::from(*a) * f64::from(*b))
            .sum();
        assert!((dot(&x, &y) - seq).abs() < 1e-9);
    }

    #[test]
    fn sub_add_inverse() {
        let a = vec![5.0f32, 7.0];
        let b = vec![2.0f32, 3.0];
        assert_eq!(add(&sub(&a, &b), &b), a);
    }

    #[test]
    fn sub_into_matches_sub() {
        let a: Vec<f32> = (0..29).map(|i| i as f32 * 1.5).collect();
        let b: Vec<f32> = (0..29).map(|i| i as f32).collect();
        let mut out = vec![f32::NAN; 29];
        sub_into(&mut out, &a, &b);
        assert_eq!(out, sub(&a, &b));
    }

    #[test]
    fn masked_axpy_touches_only_covered() {
        let n = 130;
        let mask = BitMask::from_indices(n, (0..n).filter(|i| i % 3 == 0));
        let x = vec![1.0f32; n];
        let mut y = vec![0.0f32; n];
        masked_axpy(&mut y, 2.0, &x, &mask);
        for (i, v) in y.iter().enumerate() {
            let expected = if mask.get(i) { 2.0 } else { 0.0 };
            assert_eq!(*v, expected, "position {i}");
        }
    }

    #[test]
    fn masked_axpy_full_and_empty_words() {
        let n = 192;
        // Words: first all-ones, second all-zero, third mixed.
        let mask = BitMask::from_indices(n, (0..64).chain((128..192).filter(|i| i % 2 == 0)));
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut fast = vec![1.0f32; n];
        masked_axpy(&mut fast, 0.5, &x, &mask);
        let mut slow = vec![1.0f32; n];
        for i in 0..n {
            if mask.get(i) {
                slow[i] += 0.5 * x[i];
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn masked_sub_into_matches_sub_then_apply() {
        let n = 100;
        let mask = BitMask::from_indices(n, (0..n).filter(|i| i % 7 != 0));
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| (i / 2) as f32).collect();
        let mut fused = vec![f32::NAN; n];
        masked_sub_into(&mut fused, &a, &b, &mask);
        let mut reference = sub(&a, &b);
        mask.apply_to(&mut reference);
        assert_eq!(fused, reference);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn count_above_threshold() {
        assert_eq!(count_above(&[0.1, -0.5, 0.0, 2.0], 0.3), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_mismatch_panics() {
        let mut y = vec![0.0f32];
        axpy(&mut y, 1.0, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn masked_axpy_mask_mismatch_panics() {
        let mut y = vec![0.0f32; 4];
        masked_axpy(&mut y, 1.0, &[0.0; 4], &BitMask::zeros(5));
    }
}
