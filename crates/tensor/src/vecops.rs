//! Flat-vector kernels shared by the ML substrate and the strategies.
//!
//! All of these operate on plain `&[f32]` slices and panic on length
//! mismatch — models in this workspace are always flat parameter vectors,
//! so no shape machinery is needed.

/// `y ← y + a·x` (AXPY).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
///
/// # Example
/// ```
/// let mut y = vec![1.0f32, 1.0];
/// gluefl_tensor::vecops::axpy(&mut y, 2.0, &[3.0, 4.0]);
/// assert_eq!(y, vec![7.0, 9.0]);
/// ```
pub fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `y ← a·y`.
pub fn scale(y: &mut [f32], a: f32) {
    for yi in y.iter_mut() {
        *yi *= a;
    }
}

/// Dot product `⟨x, y⟩` accumulated in `f64` for stability.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn dot(x: &[f32], y: &[f32]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| f64::from(*a) * f64::from(*b))
        .sum()
}

/// Euclidean norm `‖x‖₂` accumulated in `f64`.
#[must_use]
pub fn l2_norm(x: &[f32]) -> f64 {
    x.iter().map(|v| f64::from(*v) * f64::from(*v)).sum::<f64>().sqrt()
}

/// Elementwise difference `a - b` into a fresh vector.
///
/// # Panics
/// Panics if `a.len() != b.len()`.
#[must_use]
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Elementwise sum `a + b` into a fresh vector.
///
/// # Panics
/// Panics if `a.len() != b.len()`.
#[must_use]
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Mean of the entries (0.0 for an empty slice).
#[must_use]
pub fn mean(x: &[f32]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().map(|v| f64::from(*v)).sum::<f64>() / x.len() as f64
    }
}

/// Number of entries whose absolute value exceeds `eps`.
#[must_use]
pub fn count_above(x: &[f32], eps: f32) -> usize {
    x.iter().filter(|v| v.abs() > eps).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let mut y = vec![0.0f32, 1.0, 2.0];
        axpy(&mut y, -1.0, &[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn scale_basic() {
        let mut y = vec![2.0f32, -4.0];
        scale(&mut y, 0.5);
        assert_eq!(y, vec![1.0, -2.0]);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn sub_add_inverse() {
        let a = vec![5.0f32, 7.0];
        let b = vec![2.0f32, 3.0];
        assert_eq!(add(&sub(&a, &b), &b), a);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn count_above_threshold() {
        assert_eq!(count_above(&[0.1, -0.5, 0.0, 2.0], 0.3), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_mismatch_panics() {
        let mut y = vec![0.0f32];
        axpy(&mut y, 1.0, &[1.0, 2.0]);
    }
}
