//! Compact bitmaps over parameter positions.

use std::fmt;

/// A fixed-length bitmap over `len` parameter positions.
///
/// This is the representation of the paper's shared mask `M_t ∈ B^d`
/// (Algorithm 3): bit `j` is set iff position `j` is covered by the mask.
/// Bits are stored in `u64` words; all operations outside bounds panic, and
/// the unused tail bits of the last word are kept at zero so that
/// [`BitMask::count_ones`] and word-level algebra stay exact.
///
/// # Example
///
/// ```
/// use gluefl_tensor::BitMask;
/// let mut m = BitMask::zeros(10);
/// m.set(3, true);
/// m.set(7, true);
/// assert_eq!(m.count_ones(), 2);
/// assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![3, 7]);
/// let inv = m.not();
/// assert_eq!(inv.count_ones(), 8);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMask {
    words: Vec<u64>,
    len: usize,
}

impl BitMask {
    /// Creates an all-zero mask over `len` positions.
    ///
    /// # Example
    /// ```
    /// let m = gluefl_tensor::BitMask::zeros(100);
    /// assert_eq!(m.count_ones(), 0);
    /// assert_eq!(m.len(), 100);
    /// ```
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one mask over `len` positions.
    ///
    /// # Example
    /// ```
    /// let m = gluefl_tensor::BitMask::ones(70);
    /// assert_eq!(m.count_ones(), 70);
    /// ```
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut m = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        m.clear_tail();
        m
    }

    /// Builds a mask from an iterator of set positions.
    ///
    /// Duplicate indices are allowed (idempotent).
    ///
    /// # Panics
    /// Panics if any index is `>= len`.
    ///
    /// # Example
    /// ```
    /// let m = gluefl_tensor::BitMask::from_indices(8, [1usize, 5, 5]);
    /// assert_eq!(m.count_ones(), 2);
    /// ```
    #[must_use]
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, indices: I) -> Self {
        let mut m = Self::zeros(len);
        for i in indices {
            m.set(i, true);
        }
        m
    }

    /// Number of positions the mask covers (the model dimension `d`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the mask covers zero positions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if value {
            *w |= bit;
        } else {
            *w &= !bit;
        }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits, `count_ones / len` (0.0 for an empty mask).
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Bitwise AND (set intersection).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        self.zip_words(other, |a, b| a & b)
    }

    /// Bitwise OR (set union).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        self.zip_words(other, |a, b| a | b)
    }

    /// Set difference `self \ other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[must_use]
    pub fn and_not(&self, other: &Self) -> Self {
        self.zip_words(other, |a, b| a & !b)
    }

    /// Bitwise complement (the `¬M_t` of Algorithm 3 line 17).
    #[must_use]
    pub fn not(&self) -> Self {
        let mut out = Self {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.clear_tail();
        out
    }

    /// Resets the mask in place to all-zeros over `len` positions,
    /// reusing the word allocation (buffer-pool friendly: a pooled mask
    /// is `reset` instead of reallocated).
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
    }

    /// Overwrites `self` with a copy of `src`, reusing the word
    /// allocation (any previous length is discarded).
    pub fn copy_from(&mut self, src: &Self) {
        self.len = src.len;
        self.words.clear();
        self.words.extend_from_slice(&src.words);
    }

    /// Sets every bit in place (the all-ones mask of the current length).
    pub fn fill_ones(&mut self) {
        self.words.fill(u64::MAX);
        self.clear_tail();
    }

    /// Merges `other` into `self` in place (set union).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn union_with(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of positions set in both masks (overlap `|A ∩ B|`).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[must_use]
    pub fn overlap(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "mask length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the set positions in increasing order.
    ///
    /// # Example
    /// ```
    /// let m = gluefl_tensor::BitMask::from_indices(130, [0usize, 64, 129]);
    /// assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![0, 64, 129]);
    /// ```
    #[must_use]
    pub fn iter_ones(&self) -> SetBits<'_> {
        SetBits {
            mask: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterates over the *unset* positions in increasing order.
    ///
    /// Word-level: whole all-ones words are skipped in one step, so
    /// enumerating the complement of a dense mask costs `O(d/64 + zeros)`
    /// rather than `O(d)` per-bit tests.
    ///
    /// # Example
    /// ```
    /// let m = gluefl_tensor::BitMask::from_indices(5, [0usize, 2, 3]);
    /// assert_eq!(m.iter_zeros().collect::<Vec<_>>(), vec![1, 4]);
    /// // iter_ones and iter_zeros partition the positions.
    /// assert_eq!(m.iter_ones().count() + m.iter_zeros().count(), 5);
    /// ```
    #[must_use]
    pub fn iter_zeros(&self) -> ZeroBits<'_> {
        ZeroBits {
            mask: self,
            word_idx: 0,
            current: self.complement_word(0),
        }
    }

    /// Calls `f` with each set position in increasing order.
    ///
    /// Equivalent to `for i in self.iter_ones() { f(i) }` but with the
    /// word loop inlined — this is the preferred form in hot paths.
    ///
    /// # Example
    /// ```
    /// let m = gluefl_tensor::BitMask::from_indices(130, [1usize, 64, 129]);
    /// let mut got = Vec::new();
    /// m.for_each_one(|i| got.push(i));
    /// assert_eq!(got, vec![1, 64, 129]);
    /// ```
    pub fn for_each_one(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            let base = wi * 64;
            while w != 0 {
                f(base + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
    }

    /// The backing `u64` words, least-significant bit first. Unused tail
    /// bits of the last word are always zero.
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Calls `f(start, len)` for each maximal run of consecutive set
    /// bits, in increasing order.
    ///
    /// Word-level: all-zero and all-ones words are consumed in one step,
    /// so enumerating the runs of a block-structured mask costs
    /// `O(d/64 + runs)` — this is the walk behind the wire protocol's
    /// run-length mask sections and the run-aware scatter kernels.
    ///
    /// # Example
    /// ```
    /// let m = gluefl_tensor::BitMask::from_indices(10, [1usize, 2, 3, 7]);
    /// let mut runs = Vec::new();
    /// m.for_each_run(|start, len| runs.push((start, len)));
    /// assert_eq!(runs, vec![(1, 3), (7, 1)]);
    /// ```
    pub fn for_each_run(&self, mut f: impl FnMut(usize, usize)) {
        let mut open: Option<usize> = None; // start of the run in progress
        for (wi, &word) in self.words.iter().enumerate() {
            let base = wi * 64;
            if word == 0 {
                if let Some(start) = open.take() {
                    f(start, base - start);
                }
                continue;
            }
            if word == u64::MAX {
                if open.is_none() {
                    open = Some(base);
                }
                continue;
            }
            let mut bit = 0usize;
            while bit < 64 {
                let rest = word >> bit;
                if let Some(start) = open {
                    let ones = rest.trailing_ones() as usize;
                    if bit + ones >= 64 {
                        break; // run continues into the next word
                    }
                    bit += ones;
                    f(start, base + bit - start);
                    open = None;
                } else {
                    let zeros = rest.trailing_zeros() as usize;
                    if bit + zeros >= 64 {
                        break; // no more set bits in this word
                    }
                    bit += zeros;
                    open = Some(base + bit);
                }
            }
        }
        if let Some(start) = open {
            f(start, self.len - start);
        }
    }

    /// Sets the `count` bits starting at `start` (word-level: interior
    /// whole words are filled in one store each).
    ///
    /// # Panics
    /// Panics if `start + count > len`.
    pub fn set_range(&mut self, start: usize, count: usize) {
        assert!(
            start + count <= self.len,
            "range {start}+{count} out of bounds {}",
            self.len
        );
        if count == 0 {
            return;
        }
        let end = start + count; // exclusive
        let (first_w, last_w) = (start / 64, (end - 1) / 64);
        if first_w == last_w {
            let width = count;
            let bits = if width == 64 {
                u64::MAX
            } else {
                ((1u64 << width) - 1) << (start % 64)
            };
            self.words[first_w] |= bits;
            return;
        }
        self.words[first_w] |= u64::MAX << (start % 64);
        for w in &mut self.words[first_w + 1..last_w] {
            *w = u64::MAX;
        }
        let tail = end % 64;
        self.words[last_w] |= if tail == 0 {
            u64::MAX
        } else {
            (1u64 << tail) - 1
        };
    }

    /// Adds `scale × values[j]` to the `j`-th covered position of `dense`,
    /// like [`BitMask::scatter_add`], but walking maximal runs of set
    /// bits and running one contiguous AXPY per run instead of per-bit
    /// scatter within mixed words.
    ///
    /// Bit-identical to `scatter_add` — every covered position receives
    /// the same single `+= scale · v` — but when the mask has long runs
    /// (shared masks regrown from top-k blocks, RLE-shipped masks) the
    /// inner loop is the vectorized dense kernel.
    ///
    /// # Panics
    /// Panics if `dense.len() != self.len()` or `values.len()` differs
    /// from the number of set bits.
    pub fn scatter_add_runs(&self, dense: &mut [f32], values: &[f32], scale: f32) {
        assert_eq!(dense.len(), self.len, "mask/vector length mismatch");
        assert_eq!(
            values.len(),
            self.count_ones(),
            "values length must equal count_ones"
        );
        let mut j = 0usize;
        self.for_each_run(|start, len| {
            crate::vecops::axpy(&mut dense[start..start + len], scale, &values[j..j + len]);
            j += len;
        });
    }

    /// Appends the mask's canonical byte serialization — exactly
    /// `ceil(len/8)` bytes, little-endian within each backing word, bit
    /// `i` of the mask at bit `i % 8` of byte `i / 8` — to `out`.
    ///
    /// This is the `d`-bit bitmap layout of the wire protocol's position
    /// sections; the tail bits of the final byte beyond `len` are zero
    /// (the word invariant guarantees it).
    ///
    /// # Example
    /// ```
    /// let m = gluefl_tensor::BitMask::from_indices(10, [0usize, 9]);
    /// let mut out = Vec::new();
    /// m.extend_le_bytes(&mut out);
    /// assert_eq!(out, vec![0b0000_0001, 0b0000_0010]);
    /// ```
    pub fn extend_le_bytes(&self, out: &mut Vec<u8>) {
        let n_bytes = self.len.div_ceil(8);
        out.reserve(n_bytes);
        let mut remaining = n_bytes;
        for w in &self.words {
            let take = remaining.min(8);
            out.extend_from_slice(&w.to_le_bytes()[..take]);
            remaining -= take;
            if remaining == 0 {
                break;
            }
        }
    }

    /// Overwrites the mask's bits from the canonical byte serialization
    /// produced by [`BitMask::extend_le_bytes`], keeping the current
    /// length (word storage is reused — pool-friendly).
    ///
    /// # Panics
    /// Panics if `bytes.len() != ceil(len/8)` or if a padding bit beyond
    /// `len` is set in the final byte (callers deserializing untrusted
    /// input must validate the tail first).
    pub fn fill_from_le_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(
            bytes.len(),
            self.len.div_ceil(8),
            "byte length must be ceil(len/8)"
        );
        if !self.len.is_multiple_of(8) {
            let tail = bytes[bytes.len() - 1];
            assert_eq!(
                tail >> (self.len % 8),
                0,
                "padding bits beyond len must be zero"
            );
        }
        self.words.fill(0);
        for (wi, chunk) in bytes.chunks(8).enumerate() {
            let mut word_bytes = [0u8; 8];
            word_bytes[..chunk.len()].copy_from_slice(chunk);
            self.words[wi] = u64::from_le_bytes(word_bytes);
        }
    }

    /// Adds `scale × values[j]` to the `j`-th covered position of `dense`,
    /// where `values` is packed in increasing position order.
    ///
    /// This is the aggregation/apply kernel for mask-aligned payloads:
    /// when many clients share the same mask, their value arrays can be
    /// summed contiguously and scattered through the mask once — and the
    /// server applies a packed [`crate::MaskedUpdate`] the same way.
    /// Word-level: all-zero words are skipped, all-ones words run the
    /// dense AXPY kernel over the 64 contiguous packed values, and only
    /// mixed words fall back to per-bit scatter.
    ///
    /// # Panics
    /// Panics if `dense.len() != self.len()` or `values.len()` differs
    /// from the number of set bits.
    ///
    /// # Example
    /// ```
    /// let m = gluefl_tensor::BitMask::from_indices(4, [1usize, 3]);
    /// let mut dense = vec![0.0f32; 4];
    /// m.scatter_add(&mut dense, &[10.0, 20.0], 0.5);
    /// assert_eq!(dense, vec![0.0, 5.0, 0.0, 10.0]);
    /// ```
    pub fn scatter_add(&self, dense: &mut [f32], values: &[f32], scale: f32) {
        assert_eq!(dense.len(), self.len, "mask/vector length mismatch");
        assert_eq!(
            values.len(),
            self.count_ones(),
            "values length must equal count_ones"
        );
        let mut j = 0usize;
        for (wi, &word) in self.words.iter().enumerate() {
            if word == 0 {
                continue;
            }
            let base = wi * 64;
            if word == u64::MAX {
                // A full word has 64 set bits, so the packed values are
                // contiguous and the dense chunk is a whole word: run the
                // vectorized AXPY (same per-element `+= scale·v`).
                crate::vecops::axpy(&mut dense[base..base + 64], scale, &values[j..j + 64]);
                j += 64;
                continue;
            }
            let mut w = word;
            while w != 0 {
                let i = base + w.trailing_zeros() as usize;
                dense[i] += scale * values[j];
                j += 1;
                w &= w - 1;
            }
        }
    }

    /// Zeroes every position of `dense` that the mask does not cover
    /// (the `M ⊙ Δ` operation of Algorithm 3 line 16).
    ///
    /// Word-level: all-ones words are skipped, all-zero words become a
    /// single `fill`, and only mixed words fall back to per-bit tests.
    ///
    /// # Panics
    /// Panics if `dense.len() != self.len()`.
    pub fn apply_to(&self, dense: &mut [f32]) {
        assert_eq!(dense.len(), self.len, "mask/vector length mismatch");
        for (chunk, &w) in dense.chunks_mut(64).zip(&self.words) {
            if w == u64::MAX {
                continue;
            }
            if w == 0 {
                chunk.fill(0.0);
                continue;
            }
            for (b, v) in chunk.iter_mut().enumerate() {
                if (w >> b) & 1 == 0 {
                    *v = 0.0;
                }
            }
        }
    }

    /// Complement of word `wi` with the unused tail bits cleared.
    fn complement_word(&self, wi: usize) -> u64 {
        let Some(&w) = self.words.get(wi) else {
            return 0;
        };
        let mut c = !w;
        if wi == self.words.len() - 1 {
            let tail = self.len % 64;
            if tail != 0 {
                c &= (1u64 << tail) - 1;
            }
        }
        c
    }

    fn zip_words(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(self.len, other.len, "mask length mismatch");
        Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| f(*a, *b))
                .collect(),
            len: self.len,
        }
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Debug for BitMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BitMask(len={}, ones={}, density={:.4})",
            self.len,
            self.count_ones(),
            self.density()
        )
    }
}

/// Iterator over the set bit positions of a [`BitMask`], in increasing order.
///
/// Produced by [`BitMask::iter_ones`].
#[derive(Debug, Clone)]
pub struct SetBits<'a> {
    mask: &'a BitMask,
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.mask.words.len() {
                return None;
            }
            self.current = self.mask.words[self.word_idx];
        }
    }
}

/// Iterator over the *unset* bit positions of a [`BitMask`], in
/// increasing order. Produced by [`BitMask::iter_zeros`].
#[derive(Debug, Clone)]
pub struct ZeroBits<'a> {
    mask: &'a BitMask,
    word_idx: usize,
    current: u64,
}

impl Iterator for ZeroBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.mask.words.len() {
                return None;
            }
            self.current = self.mask.complement_word(self.word_idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_counts() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 1000] {
            assert_eq!(BitMask::zeros(len).count_ones(), 0, "len={len}");
            assert_eq!(BitMask::ones(len).count_ones(), len, "len={len}");
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMask::zeros(200);
        m.set(0, true);
        m.set(63, true);
        m.set(64, true);
        m.set(199, true);
        assert!(m.get(0) && m.get(63) && m.get(64) && m.get(199));
        assert!(!m.get(1) && !m.get(62) && !m.get(65) && !m.get(198));
        m.set(63, false);
        assert!(!m.get(63));
        assert_eq!(m.count_ones(), 3);
    }

    #[test]
    fn not_respects_tail() {
        let m = BitMask::zeros(70);
        let inv = m.not();
        assert_eq!(inv.count_ones(), 70);
        // De Morgan on the complement: not(not(m)) == m
        assert_eq!(inv.not(), m);
    }

    #[test]
    fn and_or_and_not_are_setwise() {
        let a = BitMask::from_indices(10, [1usize, 2, 3]);
        let b = BitMask::from_indices(10, [3usize, 4]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![3]);
        assert_eq!(a.or(&b).iter_ones().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(a.and_not(&b).iter_ones().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(a.overlap(&b), 1);
    }

    #[test]
    fn union_with_accumulates() {
        let mut acc = BitMask::zeros(8);
        acc.union_with(&BitMask::from_indices(8, [0usize]));
        acc.union_with(&BitMask::from_indices(8, [7usize, 0]));
        assert_eq!(acc.count_ones(), 2);
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let idx = vec![0usize, 1, 63, 64, 65, 127, 128, 199];
        let m = BitMask::from_indices(200, idx.iter().copied());
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn apply_to_zeroes_uncovered() {
        let m = BitMask::from_indices(4, [1usize, 3]);
        let mut v = vec![1.0f32, 2.0, 3.0, 4.0];
        m.apply_to(&mut v);
        assert_eq!(v, vec![0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn apply_to_matches_per_bit_reference() {
        for len in [0usize, 1, 63, 64, 65, 130, 200] {
            let m = BitMask::from_indices(len, (0..len).filter(|i| i % 3 == 0));
            let mut fast: Vec<f32> = (0..len).map(|i| i as f32 + 1.0).collect();
            let mut slow = fast.clone();
            m.apply_to(&mut fast);
            for (i, v) in slow.iter_mut().enumerate() {
                if !m.get(i) {
                    *v = 0.0;
                }
            }
            assert_eq!(fast, slow, "len={len}");
        }
    }

    #[test]
    fn iter_zeros_is_complement_of_iter_ones() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 200] {
            let m = BitMask::from_indices(len, (0..len).filter(|i| i % 7 == 0 || i % 5 == 2));
            let zeros: Vec<usize> = m.iter_zeros().collect();
            let expected: Vec<usize> = (0..len).filter(|&i| !m.get(i)).collect();
            assert_eq!(zeros, expected, "len={len}");
            assert_eq!(m.iter_zeros().count() + m.iter_ones().count(), len);
        }
    }

    #[test]
    fn iter_zeros_skips_full_words() {
        let m = BitMask::ones(200);
        assert_eq!(m.iter_zeros().count(), 0);
        let z = BitMask::zeros(130);
        assert_eq!(
            z.iter_zeros().collect::<Vec<_>>(),
            (0..130).collect::<Vec<_>>()
        );
    }

    #[test]
    fn for_each_one_matches_iter_ones() {
        let idx = vec![0usize, 1, 63, 64, 65, 127, 128, 199];
        let m = BitMask::from_indices(200, idx.iter().copied());
        let mut got = Vec::new();
        m.for_each_one(|i| got.push(i));
        assert_eq!(got, idx);
    }

    #[test]
    fn scatter_add_accumulates_in_order() {
        let m = BitMask::from_indices(70, [0usize, 64, 69]);
        let mut dense = vec![1.0f32; 70];
        m.scatter_add(&mut dense, &[1.0, 2.0, 3.0], 2.0);
        assert_eq!(dense[0], 3.0);
        assert_eq!(dense[64], 5.0);
        assert_eq!(dense[69], 7.0);
        assert_eq!(dense[1], 1.0);
    }

    #[test]
    #[should_panic(expected = "count_ones")]
    fn scatter_add_rejects_wrong_value_count() {
        let m = BitMask::from_indices(8, [1usize, 2]);
        m.scatter_add(&mut [0.0; 8], &[1.0], 1.0);
    }

    #[test]
    fn scatter_add_full_word_fast_path_matches_per_bit() {
        // First word all-ones, second all-zero, third mixed, tail partial.
        let n = 200;
        let m = BitMask::from_indices(n, (0..64).chain((128..200).filter(|i| i % 2 == 0)));
        let values: Vec<f32> = (0..m.count_ones()).map(|j| j as f32 - 20.0).collect();
        let mut fast = vec![1.0f32; n];
        m.scatter_add(&mut fast, &values, 0.5);
        let mut slow = vec![1.0f32; n];
        let mut j = 0usize;
        for (i, s) in slow.iter_mut().enumerate() {
            if m.get(i) {
                *s += 0.5 * values[j];
                j += 1;
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn for_each_run_matches_per_bit_reference() {
        let patterns: Vec<(usize, Vec<usize>)> = vec![
            (0, vec![]),
            (1, vec![0]),
            (10, vec![1, 2, 3, 7]),
            (64, (0..64).collect()),
            (65, (0..65).collect()),
            (130, vec![63, 64, 65, 127, 128]),
            (200, (0..200).filter(|i| i % 3 != 0).collect()),
            (256, (64..192).collect()),
            (70, vec![69]),
        ];
        for (len, idx) in patterns {
            let m = BitMask::from_indices(len, idx.iter().copied());
            let mut runs = Vec::new();
            m.for_each_run(|s, l| runs.push((s, l)));
            // Reference: scan bits one by one.
            let mut expected = Vec::new();
            let mut open: Option<usize> = None;
            for i in 0..len {
                match (m.get(i), open) {
                    (true, None) => open = Some(i),
                    (false, Some(s)) => {
                        expected.push((s, i - s));
                        open = None;
                    }
                    _ => {}
                }
            }
            if let Some(s) = open {
                expected.push((s, len - s));
            }
            assert_eq!(runs, expected, "len={len}");
            let covered: usize = runs.iter().map(|&(_, l)| l).sum();
            assert_eq!(covered, m.count_ones(), "len={len}");
        }
    }

    #[test]
    fn set_range_matches_per_bit_sets() {
        for (len, start, count) in [
            (10usize, 2usize, 5usize),
            (64, 0, 64),
            (130, 60, 10),
            (300, 0, 300),
            (300, 63, 129),
            (70, 69, 1),
            (70, 5, 0),
        ] {
            let mut fast = BitMask::from_indices(len, [0usize]);
            fast.set_range(start, count);
            let mut slow = BitMask::from_indices(len, [0usize]);
            for i in start..start + count {
                slow.set(i, true);
            }
            assert_eq!(fast, slow, "len={len} start={start} count={count}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_range_rejects_overflow() {
        BitMask::zeros(10).set_range(8, 3);
    }

    #[test]
    fn scatter_add_runs_is_bit_identical_to_scatter_add() {
        for len in [1usize, 63, 64, 65, 130, 200, 513] {
            let m = BitMask::from_indices(len, (0..len).filter(|i| i % 7 < 4));
            let values: Vec<f32> = (0..m.count_ones())
                .map(|j| ((j as f32) * 0.37).sin())
                .collect();
            let mut a: Vec<f32> = (0..len).map(|i| i as f32 * 0.01).collect();
            let mut b = a.clone();
            m.scatter_add(&mut a, &values, 1.5);
            m.scatter_add_runs(&mut b, &values, 1.5);
            assert!(
                a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "len={len}"
            );
        }
    }

    #[test]
    fn reset_reuses_and_zeroes() {
        let mut m = BitMask::from_indices(100, [3usize, 99]);
        m.reset(70);
        assert_eq!(m.len(), 70);
        assert_eq!(m.count_ones(), 0);
        m.set(69, true);
        assert!(m.get(69));
    }

    #[test]
    fn copy_from_overwrites_any_previous_state() {
        let src = BitMask::from_indices(130, [0usize, 64, 129]);
        let mut dst = BitMask::ones(5);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn fill_ones_respects_tail() {
        let mut m = BitMask::zeros(70);
        m.fill_ones();
        assert_eq!(m, BitMask::ones(70));
        assert_eq!(m.count_ones(), 70);
    }

    #[test]
    fn density_is_fractional() {
        let m = BitMask::from_indices(200, 0..20usize);
        assert!((m.density() - 0.1).abs() < 1e-12);
        assert_eq!(BitMask::zeros(0).density(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = BitMask::zeros(4).get(4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let _ = BitMask::zeros(4).and(&BitMask::zeros(5));
    }

    #[test]
    fn le_bytes_round_trip_across_word_boundaries() {
        for len in [1usize, 7, 8, 9, 63, 64, 65, 128, 130] {
            let m = BitMask::from_indices(len, (0..len).filter(|i| i % 3 == 0));
            let mut bytes = Vec::new();
            m.extend_le_bytes(&mut bytes);
            assert_eq!(bytes.len(), len.div_ceil(8), "len={len}");
            let mut back = BitMask::zeros(len);
            back.fill_from_le_bytes(&bytes);
            assert_eq!(back, m, "len={len}");
        }
    }

    #[test]
    #[should_panic(expected = "ceil(len/8)")]
    fn fill_from_le_bytes_rejects_wrong_length() {
        BitMask::zeros(10).fill_from_le_bytes(&[0u8; 1]);
    }

    #[test]
    #[should_panic(expected = "padding bits")]
    fn fill_from_le_bytes_rejects_set_padding() {
        BitMask::zeros(10).fill_from_le_bytes(&[0, 0b0000_0100]);
    }
}
